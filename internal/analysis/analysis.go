// Package analysis is a minimal, dependency-free static-analysis framework
// for this repository's own invariants: the conventions the compiler cannot
// see but the correctness story rests on (layering, observability cost
// discipline, simulator determinism, node formatting, atomic alignment).
//
// It deliberately does not depend on golang.org/x/tools — packages are
// enumerated with `go list -json`, parsed with go/parser, and type-checked
// with go/types over the stdlib source importer, keeping go.mod free of
// external requirements. The shape mirrors x/tools/go/analysis (Analyzer,
// Pass, Reportf) so analyzers could migrate if the zero-dep policy is ever
// relaxed.
//
// Findings can be suppressed at the offending line (or the line above it)
// with a staticcheck-style directive naming the analyzer and a reason:
//
//	//lint:ignore nodefmt the raw word is the whole point here
//
// A directive with no reason is ignored, so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and lint:ignore directives.
	Name string
	// Doc is the one-line rule statement shown by hhclint's usage text.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the import path the package was checked under. Analyzers
	// scope their rules by it (e.g. obscost only guards repro/internal/).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic: which analyzer fired, where, and why.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// StaleIgnore is a //lint:ignore directive that suppressed no finding
// during a run: the code it excused has been fixed (or the directive was
// never right), and it should be deleted before it silences a future,
// genuine finding on that line.
type StaleIgnore struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
}

// String renders the conventional file:line form.
func (s StaleIgnore) String() string {
	return fmt.Sprintf("%s:%d: stale //lint:ignore %s: suppresses no finding", s.File, s.Line, strings.Join(s.Analyzers, ","))
}

// Run applies every analyzer to every package, drops suppressed findings,
// and returns the rest sorted by position. Analyzer errors (not findings —
// failures of the analyzer itself) are returned after all packages ran.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunWithStale(pkgs, analyzers)
	return findings, err
}

// RunWithStale is Run plus the audit trail: it also returns every
// //lint:ignore directive (for an analyzer in this run) that suppressed
// nothing, sorted by position.
func RunWithStale(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []StaleIgnore, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	var stale []StaleIgnore
	var firstErr error
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(f Finding) {
				if !sup.suppressed(f) {
					findings = append(findings, f)
				}
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		stale = append(stale, sup.stale(ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, stale, firstErr
}
