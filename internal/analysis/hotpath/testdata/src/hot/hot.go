// Package hot exercises the //hhc:hotpath purity rule.
package hot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"regexp"
)

var errShort = errors.New("payload too short")

// fast is marked and clean: sentinel errors and append-style encoding.
//
//hhc:hotpath
func fast(buf []byte, x uint32) ([]byte, error) {
	if x == 0 {
		return nil, errShort
	}
	return binary.BigEndian.AppendUint32(buf, x), nil
}

// slow is unmarked, so it may format freely.
func slow(x int) string {
	return fmt.Sprintf("%d", x)
}

// leaky is marked but reaches for the reflective formatters.
//
//hhc:hotpath
func leaky(x any) ([]byte, error) {
	if x == nil {
		return nil, fmt.Errorf("nil input") // want `hot-path function leaky calls fmt\.Errorf`
	}
	if reflect.DeepEqual(x, 0) { // want `hot-path function leaky calls reflect\.DeepEqual`
		return nil, errShort
	}
	return json.Marshal(x) // want `hot-path function leaky calls json\.Marshal`
}

// closures inherit the enclosing declaration's marking.
//
//hhc:hotpath
func viaClosure(s string) func() bool {
	return func() bool {
		re := regexp.MustCompile("^x") // want `hot-path function viaClosure calls regexp\.MustCompile`
		return re.MatchString(s)       // want `hot-path function viaClosure calls regexp\.MatchString`
	}
}

// delegate is marked but hands its cold arm to an unmarked helper —
// the sanctioned idiom, so no finding.
//
//hhc:hotpath
func delegate(buf []byte, x uint32) []byte {
	if x == 0 {
		return coldPath(buf)
	}
	return binary.BigEndian.AppendUint32(buf, x)
}

func coldPath(buf []byte) []byte {
	return append(buf, slow(len(buf))...)
}
