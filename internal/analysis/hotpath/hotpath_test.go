package hotpath_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/hot", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, hotpath.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
