// Package hotpath guards the allocation discipline of functions marked
// with the //hhc:hotpath directive. The wire-v2 serve path earns its
// single-digit allocs/op by construction — append-style encoders,
// preallocated sentinel errors, pooled buffers — and the budget in
// TestServeV2AllocBudget only stays honest if nobody reintroduces a
// formatter in a later edit. The cheap failure modes are always the same
// few packages: fmt (every call allocates its argument slice and usually
// a string), encoding/json (reflection-driven marshalling), reflect, and
// regexp. A marked function may not call into any of them.
//
// Like obscost, the check is type-based: a call counts if the callee
// object resolves to one of the banned packages, whether it is reached
// as fmt.Errorf, through a method value, or via a dot import. Cold-path
// helpers remain free to format — the rule follows the marked function's
// body (closures included), not the whole file — so the idiom of a
// //hhc:hotpath function delegating its error arm to an unmarked
// slow-path helper is exactly what the analyzer encourages.
package hotpath

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// directive is the marker comment, written immediately above the func
// declaration (as its own doc line or the tail of a doc comment).
const directive = "//hhc:hotpath"

// banned maps import path -> true for packages whose every call is an
// allocation or reflection hazard on a hot path.
var banned = map[string]bool{
	"fmt":           true,
	"encoding/json": true,
	"reflect":       true,
	"regexp":        true,
}

// Analyzer is the hot-path purity rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//hhc:hotpath functions must not call fmt, encoding/json, reflect, or regexp",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					id = fun.Sel
				case *ast.Ident:
					id = fun
				default:
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil || !banned[obj.Pkg().Path()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"hot-path function %s calls %s.%s; //hhc:hotpath code must stay allocation-free (use sentinel errors and append-style encoding, or delegate to an unmarked cold helper)",
					name, obj.Pkg().Name(), obj.Name())
				return true
			})
		}
	}
	return nil
}

// marked reports whether the declaration carries the //hhc:hotpath
// directive anywhere in its doc comment group.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
