package ctxflow_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/flow", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, ctxflow.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestCmdRoots confirms Background/TODO are allowed under cmd/ paths.
func TestCmdRoots(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/flowcmd", "repro/cmd/fake")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{ctxflow.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding under cmd/: %s", f)
	}
}
