// Package flowcmd is loaded under a repro/cmd/ import path: binaries own
// the process-level context roots, so Background here is legitimate.
package flowcmd

import "context"

func run(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

// Main builds the root context the way a cmd/ entry point does.
func Main() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return run(ctx)
}
