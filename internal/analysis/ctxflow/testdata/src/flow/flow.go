// Package flow exercises the ctxflow analyzer: fresh roots in internal
// code, unthreaded contexts, blank context parameters, the ctxroot
// annotation, and its reason requirement.
package flow

import "context"

// query stands in for any context-taking callee.
func query(ctx context.Context, q string) error {
	<-ctx.Done()
	_ = q
	return nil
}

// Bad1: fresh root via Background in an internal package.
func Bad1() {
	ctx := context.Background() // want `context\.Background creates a fresh root outside cmd/`
	_ = query(ctx, "x")
}

// Bad2: TODO is just as much a root.
func Bad2() error {
	return query(context.TODO(), "y") // want `context\.TODO creates a fresh root outside cmd/`
}

// Bad3: accepts ctx, calls a ctx-taking callee, never threads it.
func Bad3(ctx context.Context, q string) error {
	return query(context.TODO(), q) // want `context\.TODO creates a fresh root` `Bad3 accepts a context\.Context but calls query without threading it`
}

// Bad4: a blank ctx parameter can never thread, yet the callee wanted one.
func Bad4(_ context.Context) {
	_ = query(nil, "z") // want `Bad4 accepts a context\.Context but calls query without threading it`
}

// Good threads its context.
func Good(ctx context.Context, q string) error {
	return query(ctx, q)
}

// GoodDerived uses ctx through a derived context.
func GoodDerived(ctx context.Context, q string) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return query(sub, q)
}

// GoodSelect uses ctx for cancellation only; callees taking no ctx are fine.
func GoodSelect(ctx context.Context) {
	select {
	case <-ctx.Done():
	default:
	}
}

// GoodRoot owns a root on purpose and says why.
//
//hhc:ctxroot sweeper outlives any single request
func GoodRoot() {
	ctx := context.Background()
	_ = query(ctx, "sweep")
}

// BadRootNoReason declares a root without justifying it.
//
//hhc:ctxroot
func BadRootNoReason() { // want `//hhc:ctxroot needs a reason`
	ctx := context.Background()
	_ = query(ctx, "sweep")
}

// GoodIgnored documents a deliberate fresh root inline.
func GoodIgnored() {
	//lint:ignore ctxflow one-shot startup probe, nothing to inherit
	ctx := context.Background()
	_ = query(ctx, "probe")
}
