// Package ctxflow enforces context threading. Two rules:
//
// First, context.Background() and context.TODO() may not be called in
// internal packages — a fresh root context severs cancellation and
// deadline flow from the caller. Roots belong in cmd/ binaries; an
// internal function that legitimately owns a root (a daemon loop, a
// detached janitor) declares it:
//
//	//hhc:ctxroot janitor outlives any one request
//	func (s *Server) sweep() { ctx := context.Background(); ... }
//
// Second, a function that accepts a context.Context and calls a callee
// that also takes one must actually thread its context somewhere: a ctx
// parameter that is never used while context-taking callees are invoked
// means cancellation silently stops propagating at this frame.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the context-flow rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "thread context.Context through; no Background()/TODO() outside cmd/ and annotated roots",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inCmd := strings.HasPrefix(pass.Path, "repro/cmd")
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reason, isRoot := analysis.FuncDirective(fd, "ctxroot")
			if isRoot && reason == "" {
				pass.Reportf(fd.Pos(), "//hhc:ctxroot needs a reason: say why this function owns a fresh context root")
			}
			if !inCmd && !isRoot {
				checkNoFreshRoots(pass, fd)
			}
			if !isRoot {
				checkThreading(pass, fd)
			}
		}
	}
	return nil
}

// checkNoFreshRoots flags context.Background/TODO calls inside fd.
func checkNoFreshRoots(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s creates a fresh root outside cmd/: thread the caller's ctx or annotate //hhc:ctxroot <reason>",
				fn.Name())
		}
		return true
	})
}

// checkThreading flags fd when it accepts a context.Context it never
// uses while calling at least one context-taking callee.
func checkThreading(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := ctxParams(pass, fd)
	if len(params) == 0 {
		return
	}
	for _, p := range params {
		if p != nil && usesObject(pass, fd.Body, p) {
			return
		}
	}
	// No ctx param is ever referenced; find the first callee that wanted one.
	var offender *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if offender != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn != nil && takesContext(fn) {
			offender = call
			return false
		}
		return true
	})
	if offender != nil {
		callee := analysis.CalleeFunc(pass.Info, offender)
		pass.Reportf(offender.Pos(),
			"%s accepts a context.Context but calls %s without threading it",
			fd.Name.Name, callee.Name())
	}
}

// ctxParams returns the objects of fd's context.Context parameters. A
// blank (_) parameter contributes a nil entry: it counts as "accepts a
// context" but can never be used.
func ctxParams(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, fld := range fd.Type.Params.List {
		if !isContextType(pass.Info.TypeOf(fld.Type)) {
			continue
		}
		if len(fld.Names) == 0 {
			out = append(out, nil) // unnamed param
			continue
		}
		for _, nm := range fld.Names {
			if nm.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, pass.Info.Defs[nm])
		}
	}
	return out
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// takesContext reports whether fn's signature includes a context.Context
// parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
