package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the shared intra-package substrate the concurrency
// analyzers (lockguard, goroutinelife, ctxflow, atomicmix) build on:
// resolving call expressions to their package-local declarations, walking
// bodies transitively along that local call graph, and reading //hhc:
// function directives. It deliberately stops at the package boundary —
// the invariants it supports are package-local contracts (a guarded
// field, a goroutine's lifecycle), and cross-package analysis would need
// whole-program facts this zero-dependency driver does not keep.

// CallGraph indexes one package's function declarations by their type
// objects, so analyzers can hop from a call expression to the callee's
// body when both live in the package under analysis.
type CallGraph struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph builds the declaration index for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{pass: pass, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				cg.decls[fn] = fd
			}
		}
	}
	return cg
}

// Decl returns the package-local declaration of fn (nil when fn is
// external, an interface method, or bodiless).
func (cg *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// CalleeOf resolves a call expression to the static *types.Func it
// invokes, looking through parentheses. Calls through function values,
// interface dispatch without a concrete callee, and type conversions
// resolve to nil.
func (cg *CallGraph) CalleeOf(call *ast.CallExpr) *types.Func {
	return CalleeFunc(cg.pass.Info, call)
}

// CalleeFunc is CalleeOf without the index: it resolves the callee object
// of one call from type info alone.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		fn, _ = info.Defs[id].(*types.Func)
	}
	return fn
}

// ReachableBodies walks the intra-package call graph from root (a
// statement or expression), visiting root itself and the body of every
// package-local function transitively reachable through static calls.
// visit is called once per distinct body (root first); the walk is
// cycle-safe. Function literals inside a visited body are part of that
// body and are walked in place.
func (cg *CallGraph) ReachableBodies(root ast.Node, visit func(body ast.Node)) {
	seen := make(map[*ast.FuncDecl]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		visit(n)
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := cg.CalleeOf(call)
			if fn == nil {
				return true
			}
			fd := cg.decls[fn]
			if fd == nil || seen[fd] {
				return true
			}
			seen[fd] = true
			walk(fd.Body)
			return true
		})
	}
	walk(root)
}

// FuncDirective scans a declaration's doc comment for a //hhc:<name>
// directive and returns the text after it (the directive's argument,
// possibly empty) and whether it was present. Directives ride in doc
// comments the way //hhc:hotpath does:
//
//	//hhc:holds mu
//	func (t *T) siftUp(i int) { ... }
func FuncDirective(fd *ast.FuncDecl, name string) (arg string, ok bool) {
	if fd == nil || fd.Doc == nil {
		return "", false
	}
	return directiveIn(fd.Doc, name)
}

// directiveIn scans one comment group for //hhc:<name>.
func directiveIn(cg *ast.CommentGroup, name string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	marker := "//hhc:" + name
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		rest, found := strings.CutPrefix(text, marker)
		if !found {
			continue
		}
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// EnclosingFuncs maps every node position inside a file to its enclosing
// function declaration. Built once per file, it answers "which function am
// I in" for analyzers that report on expressions.
type EnclosingFuncs struct {
	decls []*ast.FuncDecl
}

// NewEnclosingFuncs indexes one file's function declarations.
func NewEnclosingFuncs(f *ast.File) *EnclosingFuncs {
	e := &EnclosingFuncs{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			e.decls = append(e.decls, fd)
		}
	}
	return e
}

// At returns the function declaration whose body spans pos (nil at file
// scope — var initializers, for instance).
func (e *EnclosingFuncs) At(n ast.Node) *ast.FuncDecl {
	for _, fd := range e.decls {
		if fd.Pos() <= n.Pos() && n.End() <= fd.End() {
			return fd
		}
	}
	return nil
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// BaseExprString renders the base expression of a field selector in a
// canonical textual form ("s", "t.out", "c.shards[i]") so two accesses
// through the same path can be matched up. Expressions outside the small
// supported grammar render as "" and never match anything.
func BaseExprString(e ast.Expr) string {
	switch x := Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := BaseExprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := BaseExprString(x.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.StarExpr:
		return BaseExprString(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return BaseExprString(x.X)
		}
		return ""
	case *ast.CallExpr:
		return ""
	default:
		return ""
	}
}
