// Package guard exercises the lockguard analyzer: guarded-by field
// annotations, the must-hold path analysis, RLock read/write asymmetry,
// the //hhc:holds helper directive, the fresh-local constructor
// exemption, and the //lint:ignore escape hatch.
package guard

import "sync"

// Counter is the basic guarded struct.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Bad1: plain unlocked read.
func (c *Counter) Bad1() int {
	return c.n // want `read of n \(guarded by mu\) in Bad1 without holding c\.mu`
}

// Bad2: plain unlocked write.
func (c *Counter) Bad2() {
	c.n = 7 // want `write to n \(guarded by mu\) in Bad2 without holding c\.mu`
}

// Bad3: access after the lock is released.
func (c *Counter) Bad3() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `read of n \(guarded by mu\) in Bad3 without holding c\.mu`
}

// Bad4: the lock is only taken on one branch, so the access after the
// merge is not protected on every path.
func (c *Counter) Bad4(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want `write to n \(guarded by mu\) in Bad4 without holding c\.mu`
	if cond {
		c.mu.Unlock()
	}
}

// Bad5: a goroutine does not inherit the spawner's lock.
func (c *Counter) Bad5() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write to n \(guarded by mu\) in Bad5 without holding c\.mu`
	}()
}

// Good: classic lock/defer-unlock.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodSeq: lock and unlock in sequence, access in between.
func (c *Counter) GoodSeq() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// GoodBranches: every early-return branch unlocks after its access;
// the fallthrough path stays held.
func (c *Counter) GoodBranches(cond bool) int {
	c.mu.Lock()
	if cond {
		v := c.n
		c.mu.Unlock()
		return v
	}
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// bump is only called with c.mu held, and says so.
//
//hhc:holds mu
func (c *Counter) bump(d int) {
	c.n += d
}

// GoodHelper drives the annotated helper under the lock.
func (c *Counter) GoodHelper() {
	c.mu.Lock()
	c.bump(2)
	c.mu.Unlock()
}

// NewCounter mutates the value before publication: exempt.
func NewCounter(start int) *Counter {
	c := &Counter{}
	c.n = start
	return c
}

// Ignored documents a deliberate unguarded read.
func (c *Counter) Ignored() int {
	//lint:ignore lockguard racy snapshot is acceptable for metrics
	return c.n
}

// Table uses an RWMutex: reads need at least RLock, writes the full Lock.
type Table struct {
	rw sync.RWMutex
	m  map[string]int // guarded by rw
}

// GoodRead reads under RLock.
func (t *Table) GoodRead(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// BadWriteUnderRLock: an RLock does not license writes.
func (t *Table) BadWriteUnderRLock(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = 1 // want `write to m \(guarded by rw\) in BadWriteUnderRLock without holding t\.rw`
}

// GoodWrite writes under the exclusive lock.
func (t *Table) GoodWrite(k string, v int) {
	t.rw.Lock()
	t.m[k] = v
	t.rw.Unlock()
}

// BadLoop: the unlock inside the loop body means the next iteration's
// read is not covered.
func (t *Table) BadLoop(keys []string) int {
	sum := 0
	t.rw.RLock()
	for _, k := range keys {
		sum += t.m[k] // want `read of m \(guarded by rw\) in BadLoop without holding t\.rw`
		t.rw.RUnlock()
	}
	return sum
}

// Orphan annotations that name a non-existent sibling are themselves
// findings, so typos fail loudly instead of silently unguarding.
type Orphan struct {
	mu sync.Mutex
	v  int // guarded by lock // want `guarded-by annotation names lock, which is not a sibling field`
}
