// Package lockguard enforces guarded-by contracts on struct fields. A
// field whose doc or line comment says
//
//	ring []Span // guarded by mu
//
// names a sibling mutex field (sync.Mutex or sync.RWMutex), and every
// read or write of that field must then happen with the mutex held on
// every path to the access. The check is a must-hold analysis over the
// statement structure: Lock/RLock set the held state, Unlock/RUnlock
// clear it, deferred unlocks keep it held to the end of the function,
// and branches merge by intersection (a lock taken in only one arm of an
// if does not count after the merge). Writes require the exclusive lock;
// an RLock only licenses reads.
//
// Two idioms are exempt without ceremony: accesses through a local bound
// to a fresh allocation (constructors mutate unpublished values), and
// functions annotated
//
//	//hhc:holds mu
//
// which declare that every caller already holds the named mutex (the
// RequestTracer.siftUp pattern — helpers only ever called under the
// recorder lock). Anything else needs a justified //lint:ignore.
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the guarded-by rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed with that mutex held",
	Run:  run,
}

// guardRx extracts the mutex name from a field comment.
var guardRx = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guard records one annotated field: the object and its mutex's name.
type guard struct {
	mu string // sibling field name of the guarding mutex
}

// lockState is the must-hold state of one mutex expression: excl while
// Lock is held, shared while RLock (or Lock) is.
type lockState struct {
	excl, shared bool
}

func merge(a, b lockState) lockState {
	return lockState{excl: a.excl && b.excl, shared: a.shared && b.shared}
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards finds every `// guarded by <mu>` field annotation and
// validates that the named mutex is a sibling field.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			names := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					names[nm.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardNameOf(fld)
				if mu == "" {
					continue
				}
				if !names[mu] {
					pass.Reportf(fld.Pos(),
						"guarded-by annotation names %s, which is not a sibling field", mu)
					continue
				}
				for _, nm := range fld.Names {
					if obj := pass.Info.Defs[nm]; obj != nil {
						guards[obj] = guard{mu: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardNameOf extracts the guard mutex name from a field's doc or
// trailing comment.
func guardNameOf(fld *ast.Field) string {
	for _, cgr := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cgr == nil {
			continue
		}
		if m := guardRx.FindStringSubmatch(cgr.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// access is one guarded-field use found in a function body.
type access struct {
	sel   *ast.SelectorExpr
	field types.Object
	write bool
}

// checkFunc runs the must-hold evaluation over one function body and
// reports unguarded accesses.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]guard) {
	holds := heldByDirective(fd)
	fresh := analysis.FreshLocals(fd, pass.Info)
	ev := &evaluator{pass: pass, guards: guards, holds: holds, fresh: fresh, fn: fd.Name.Name}
	ev.block(fd.Body.List, make(map[string]lockState))
}

// heldByDirective parses //hhc:holds mu[,mu2] into the set of mutex
// names the caller guarantees.
func heldByDirective(fd *ast.FuncDecl) map[string]bool {
	arg, ok := analysis.FuncDirective(fd, "holds")
	if !ok || arg == "" {
		return nil
	}
	out := make(map[string]bool)
	for _, name := range strings.FieldsFunc(arg, func(r rune) bool { return r == ',' || r == ' ' }) {
		out[name] = true
	}
	return out
}

// evaluator walks statements carrying the per-mutex held state.
type evaluator struct {
	pass   *analysis.Pass
	guards map[types.Object]guard
	holds  map[string]bool // //hhc:holds names
	fresh  map[types.Object]bool
	fn     string
	mute   int // >0 during probe passes: evaluate state, suppress reports
}

// block evaluates a statement list, mutating held in place, and returns
// whether control definitely leaves the function (return/panic) at the
// end of the list.
func (ev *evaluator) block(stmts []ast.Stmt, held map[string]lockState) bool {
	for _, st := range stmts {
		if ev.stmt(st, held) {
			return true
		}
	}
	return false
}

// stmt evaluates one statement: checks the accesses it contains against
// the current state, then applies its lock/unlock effects. Returns true
// when the statement definitely terminates the function.
func (ev *evaluator) stmt(st ast.Stmt, held map[string]lockState) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if mu, op := lockCallOf(ev.pass, s.X); op != "" {
			ev.apply(held, mu, op)
			return false
		}
		ev.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the lock stays held for the
		// rest of the body. A deferred Lock would be bizarre; ignore both
		// for state. Accesses inside deferred closures are evaluated
		// conservatively (held state unknown -> empty).
		if _, op := lockCallOf(ev.pass, s.Call); op == "" {
			ev.checkExpr(s.Call, held)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			ev.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			ev.checkWrite(lhs, held)
		}
	case *ast.IncDecStmt:
		ev.checkWrite(s.X, held)
	case *ast.IfStmt:
		if s.Init != nil {
			ev.stmt(s.Init, held)
		}
		ev.checkExpr(s.Cond, held)
		bodyHeld := copyState(held)
		bodyExit := ev.block(s.Body.List, bodyHeld)
		elseHeld := copyState(held)
		elseExit := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseExit = ev.block(e.List, elseHeld)
			case *ast.IfStmt:
				elseExit = ev.stmt(e, elseHeld)
			}
		}
		switch {
		case bodyExit && elseExit:
			return true
		case bodyExit:
			assign(held, elseHeld)
		case elseExit:
			assign(held, bodyHeld)
		default:
			assign(held, mergeStates(bodyHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ev.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ev.checkExpr(s.Cond, held)
		}
		bodyHeld := ev.loopBody(s.Body, held)
		if s.Post != nil {
			ev.stmt(s.Post, bodyHeld)
		}
		// The loop may run zero times; only state held both before and
		// after an iteration survives.
		assign(held, mergeStates(held, bodyHeld))
	case *ast.RangeStmt:
		ev.checkExpr(s.X, held)
		bodyHeld := ev.loopBody(s.Body, held)
		assign(held, mergeStates(held, bodyHeld))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ev.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ev.checkExpr(s.Tag, held)
		}
		return ev.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ev.stmt(s.Init, held)
		}
		ev.stmt(s.Assign, held)
		return ev.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		return ev.caseBodies(s.Body, held)
	case *ast.BlockStmt:
		return ev.block(s.List, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ev.checkExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto: treat as terminating this path so state
		// from a locked loop-break arm does not leak into the merge.
		return true
	case *ast.GoStmt:
		// The spawned body runs concurrently: evaluate it with no locks
		// held (goroutinelife owns its lifecycle).
		ev.checkConcurrent(s.Call)
	case *ast.SendStmt:
		ev.checkExpr(s.Chan, held)
		ev.checkExpr(s.Value, held)
	case *ast.DeclStmt:
		ev.checkExpr(s.Decl, held)
	case *ast.LabeledStmt:
		return ev.stmt(s.Stmt, held)
	default:
		if st != nil {
			ev.checkExpr(st, held)
		}
	}
	return false
}

// loopBody evaluates a loop body and returns the end-of-iteration state.
// A first, muted pass discovers what one iteration does to the locks;
// the reporting pass then runs from the weakest iteration-entry state
// (entry merged with post-body), so a lock dropped at the bottom of the
// body correctly fails reads at the top of the next iteration.
func (ev *evaluator) loopBody(body *ast.BlockStmt, held map[string]lockState) map[string]lockState {
	probe := copyState(held)
	ev.mute++
	ev.block(body.List, probe)
	ev.mute--
	iter := mergeStates(held, probe)
	ev.block(body.List, iter)
	return iter
}

// caseBodies evaluates every clause of a switch/select with a copy of the
// incoming state and merges the survivors by intersection.
func (ev *evaluator) caseBodies(body *ast.BlockStmt, held map[string]lockState) bool {
	var merged map[string]lockState
	any := false
	allExit := true
	sawDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				ev.checkExpr(e, held)
			}
			if c.List == nil {
				sawDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				ev.stmt(c.Comm, copyState(held))
			} else {
				sawDefault = true
			}
			stmts = c.Body
		}
		clauseHeld := copyState(held)
		if ev.block(stmts, clauseHeld) {
			continue
		}
		allExit = false
		if !any {
			merged, any = clauseHeld, true
		} else {
			merged = mergeStates(merged, clauseHeld)
		}
	}
	if allExit && len(body.List) > 0 && sawDefault {
		return true
	}
	if any {
		if !sawDefault {
			// A switch without default may fall through untouched.
			merged = mergeStates(merged, held)
		}
		assign(held, merged)
	}
	return false
}

// checkConcurrent evaluates an expression that runs on another goroutine
// (go statements, deferred closures): no lock is considered held.
func (ev *evaluator) checkConcurrent(e ast.Expr) {
	ev.checkExpr(e, make(map[string]lockState))
}

// checkExpr inspects an AST subtree for guarded-field accesses, reading
// them against the current held state. Nested function literals are
// evaluated as concurrent contexts (they may run later, without the
// lock), except immediately-invoked ones, which inherit the state.
func (ev *evaluator) checkExpr(n ast.Node, held map[string]lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			ev.block(x.Body.List, make(map[string]lockState))
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if sel, ok := analysis.Unparen(x.X).(*ast.SelectorExpr); ok {
					// Taking a field's address is as good as writing it.
					ev.checkAccess(sel, held, true)
					return false
				}
			}
		case *ast.SelectorExpr:
			ev.checkAccess(x, held, false)
			return false
		}
		return true
	})
}

// checkWrite checks the target of an assignment.
func (ev *evaluator) checkWrite(lhs ast.Expr, held map[string]lockState) {
	switch x := analysis.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		ev.checkAccess(x, held, true)
	case *ast.IndexExpr:
		// s.ring[i] = v writes through the guarded slice.
		if sel, ok := analysis.Unparen(x.X).(*ast.SelectorExpr); ok {
			ev.checkAccess(sel, held, true)
		} else {
			ev.checkExpr(x.X, held)
		}
		ev.checkExpr(x.Index, held)
	case *ast.StarExpr:
		ev.checkExpr(x.X, held)
	case *ast.Ident:
	default:
		ev.checkExpr(lhs, held)
	}
}

// checkAccess resolves one selector and reports it if it reads or writes
// a guarded field without the right lock. It recurses into the base so
// chained accesses (s.a.b) are each checked.
func (ev *evaluator) checkAccess(sel *ast.SelectorExpr, held map[string]lockState, write bool) {
	defer ev.checkExpr(sel.X, held)
	obj := ev.pass.Info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	g, guarded := ev.guards[obj]
	if !guarded || ev.mute > 0 {
		return
	}
	if ev.holds[g.mu] {
		return
	}
	if analysis.FreshBase(sel.X, ev.pass.Info, ev.fresh) {
		return
	}
	base := analysis.BaseExprString(sel.X)
	muExpr := g.mu
	if base != "" {
		muExpr = base + "." + g.mu
	}
	st := held[muExpr]
	if write {
		if !st.excl {
			ev.pass.Reportf(sel.Sel.Pos(),
				"write to %s (guarded by %s) in %s without holding %s; lock it, annotate the helper //hhc:holds %s, or justify with //lint:ignore lockguard",
				obj.Name(), g.mu, ev.fn, muExpr, g.mu)
		}
		return
	}
	if !st.excl && !st.shared {
		ev.pass.Reportf(sel.Sel.Pos(),
			"read of %s (guarded by %s) in %s without holding %s; lock it, annotate the helper //hhc:holds %s, or justify with //lint:ignore lockguard",
			obj.Name(), g.mu, ev.fn, muExpr, g.mu)
	}
}

// apply records one lock-state transition on the named mutex expression.
func (ev *evaluator) apply(held map[string]lockState, mu, op string) {
	st := held[mu]
	switch op {
	case "Lock":
		st.excl, st.shared = true, true
	case "RLock":
		st.shared = true
	case "Unlock":
		st.excl, st.shared = false, false
	case "RUnlock":
		st.shared = st.excl // an RUnlock under a write lock changes nothing
		if !st.excl {
			st.shared = false
		}
	}
	held[mu] = st
}

// lockCallOf matches expressions of the form <path>.Lock() / RLock /
// Unlock / RUnlock where the method belongs to the sync package, and
// returns the canonical mutex expression string plus the operation.
func lockCallOf(pass *analysis.Pass, e ast.Expr) (mu, op string) {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	mu = analysis.BaseExprString(sel.X)
	if mu == "" {
		return "", ""
	}
	return mu, sel.Sel.Name
}

func copyState(held map[string]lockState) map[string]lockState {
	out := make(map[string]lockState, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func mergeStates(a, b map[string]lockState) map[string]lockState {
	out := make(map[string]lockState)
	for k, v := range a {
		out[k] = merge(v, b[k])
	}
	return out
}

func assign(dst, src map[string]lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
