package lockguard_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/guard", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, lockguard.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
