package nodefmt

import (
	"reflect"
	"testing"
)

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbArg
	}{
		{"plain", nil},
		{"%d", []verbArg{{'d', 0}}},
		{"a %s b %v", []verbArg{{'s', 0}, {'v', 1}}},
		{"100%% %d", []verbArg{{'d', 0}}},
		{"%06d %-8s", []verbArg{{'d', 0}, {'s', 1}}},
		{"%*d", []verbArg{{'d', 1}}},
		{"%.*f %s", []verbArg{{'f', 1}, {'s', 2}}},
		{"%[2]v %[1]v", []verbArg{{'v', 1}, {'v', 0}}},
		{"%#x:%d", []verbArg{{'x', 0}, {'d', 1}}},
		{"trailing %", nil},
	}
	for _, c := range cases {
		if got := parseVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}
