// Package errs exercises the error-formatting contract. The rule is
// path-independent, so the checked import path does not matter.
package errs

import (
	"fmt"

	"repro/internal/hhc"
)

// BadNode hands raw node words to fmt verbs.
func BadNode(g *hhc.Graph, u, v hhc.Node) error {
	if u == v {
		return fmt.Errorf("self pair %v", u) // want `raw hhc\.Node passed to fmt\.Errorf`
	}
	return fmt.Errorf("pair %x -> %d bad", u, v) // want `raw hhc\.Node` `raw hhc\.Node`
}

// BadCause drops the error chain.
func BadCause(err error) error {
	return fmt.Errorf("construct failed: %v", err) // want `cause formatted with %v; wrap it with %w`
}

// BadCauseString drops it through %s just the same.
func BadCauseString(err error) error {
	return fmt.Errorf("at offset %06d: %s", 42, err) // want `cause formatted with %s; wrap it with %w`
}

// Good renders nodes with FormatNode and wraps the cause.
func Good(g *hhc.Graph, u hhc.Node, err error) error {
	return fmt.Errorf("node %s: %w", g.FormatNode(u), err)
}

// GoodWords: the coordinates are plain integers once unpacked, and the
// rule does not second-guess genuinely numeric formatting.
func GoodWords(u hhc.Node) error {
	return fmt.Errorf("x word %#x, processor %d", u.X, u.Y)
}
