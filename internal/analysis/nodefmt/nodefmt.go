// Package nodefmt enforces the error-message contract for node addresses
// and causes. User-facing errors render hhc.Node values through
// Graph.FormatNode — the "x:y" form ParseNode accepts back — never by
// handing the raw node word to a fmt verb (%d, %x, %v, or the Stringer
// debug form), so every address a user sees is one they can paste into a
// -u/-v flag. And a wrapped cause must travel through %w, not %v/%s, so
// callers keep errors.Is/errors.As.
package nodefmt

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the error-formatting rule.
var Analyzer = &analysis.Analyzer{
	Name: "nodefmt",
	Doc:  "fmt.Errorf must render hhc.Node via FormatNode and wrap causes with %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Ellipsis.IsValid() || len(call.Args) < 2 {
				return true
			}
			if !isErrorf(pass, call) {
				return true
			}
			// Raw nodes: any hhc.Node argument is a violation no matter
			// the verb — there is no verb that renders the x:y form.
			for _, arg := range call.Args[1:] {
				if t := pass.Info.Types[arg].Type; t != nil && isNode(t) {
					pass.Reportf(arg.Pos(),
						"raw hhc.Node passed to fmt.Errorf; render it with g.FormatNode so the address is parseable")
				}
			}
			// Dropped causes: an error formatted with %v/%s/%q loses the
			// chain; only %w keeps errors.Is and errors.As working.
			format, ok := constString(pass, call.Args[0])
			if !ok {
				return true
			}
			for _, va := range parseVerbs(format) {
				i := 1 + va.argIndex
				if i <= 0 || i >= len(call.Args) {
					continue
				}
				if va.verb != 'v' && va.verb != 's' && va.verb != 'q' {
					continue
				}
				t := pass.Info.Types[call.Args[i]].Type
				if t != nil && implementsError(t) {
					pass.Reportf(call.Args[i].Pos(),
						"cause formatted with %%%c; wrap it with %%w so callers keep errors.Is/errors.As",
						va.verb)
				}
			}
			return true
		})
	}
	return nil
}

func isErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf"
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv := pass.Info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isNode(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/hhc" && obj.Name() == "Node"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	return types.Implements(t, errorIface)
}

// verbArg maps one conversion in a format string to the variadic argument
// it consumes (0-based, before the +1 shift past the format itself).
type verbArg struct {
	verb     byte
	argIndex int
}

// parseVerbs scans a Printf-style format. It handles %%, flags,
// *-consuming width/precision, and explicit [n] argument indexes — the
// full grammar fmt documents, minus nothing the repo uses.
func parseVerbs(format string) []verbArg {
	var out []verbArg
	arg := 0
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && isFlag(format[i]) {
			i++
		}
		i, arg = starOrDigits(format, i, arg)
		if i < len(format) && format[i] == '.' {
			i++
			i, arg = starOrDigits(format, i, arg)
		}
		if i < len(format) && format[i] == '[' {
			j := i + 1
			num := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				num = num*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && num > 0 {
				arg = num - 1
				i = j + 1
			}
		}
		if i >= len(format) {
			break
		}
		out = append(out, verbArg{verb: format[i], argIndex: arg})
		arg++
		i++
	}
	return out
}

func isFlag(c byte) bool {
	return c == '+' || c == '-' || c == '#' || c == ' ' || c == '0'
}

// starOrDigits advances past a width or precision: a literal number
// consumes no argument, a '*' consumes one.
func starOrDigits(format string, i, arg int) (int, int) {
	if i < len(format) && format[i] == '*' {
		return i + 1, arg + 1
	}
	for i < len(format) && format[i] >= '0' && format[i] <= '9' {
		i++
	}
	return i, arg
}
