package nodefmt_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/nodefmt"
)

func TestErrorfContract(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/errs", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, nodefmt.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
