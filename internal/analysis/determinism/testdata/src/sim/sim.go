// Package sim is checked under repro/internal/netsim, a guarded
// simulation package.
package sim

import (
	"math/rand"
	"time"
)

// Bad reaches for every banned ambient-state source.
func Bad() int64 {
	t := time.Now()       // want `time\.Now reads the wall clock`
	_ = time.Since(t)     // want `time\.Since reads the wall clock`
	_ = rand.Intn(10)     // want `global rand\.Intn is shared process state`
	return rand.Int63n(7) // want `global rand\.Int63n is shared process state`
}

// Good draws from an explicitly seeded generator — the sanctioned way.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Suppressed shows the escape hatch: a justified lint:ignore on the line
// above silences exactly this analyzer here.
func Suppressed() time.Time {
	//lint:ignore determinism this helper feeds a log banner, not the simulation
	return time.Now()
}
