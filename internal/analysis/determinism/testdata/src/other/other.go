// Package other is checked under repro/internal/exp, which is not a
// guarded simulation package: measurement harnesses are allowed to read
// the wall clock — no findings expected.
package other

import (
	"math/rand"
	"time"
)

func Elapsed() time.Duration {
	t := time.Now()
	_ = rand.Intn(3)
	return time.Since(t)
}
