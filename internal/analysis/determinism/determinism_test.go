package determinism_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
)

var loader = analysis.NewLoader()

func runCase(t *testing.T, dir, path string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, determinism.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestGuardedPackage covers the positive findings, the seeded-generator
// negative, and the lint:ignore suppression path of the framework (the
// Suppressed helper carries no want comment: if suppression broke, its
// finding would fail the harness as unexpected).
func TestGuardedPackage(t *testing.T) {
	runCase(t, "testdata/src/sim", "repro/internal/netsim")
}

func TestUnguardedPackage(t *testing.T) {
	runCase(t, "testdata/src/other", "repro/internal/exp")
}
