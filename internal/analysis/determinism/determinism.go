// Package determinism keeps the simulators reproducible. netsim and
// dessim results are only comparable across runs (and across refactors —
// the property every simulator regression test relies on) if all
// randomness flows from an explicit seed and all time is simulated.
// The rule therefore bans the two ambient-state escape hatches inside the
// simulation packages: wall-clock reads (time.Now, time.Since) and the
// process-global math/rand generator. Seeded *rand.Rand instances and
// rand.New/NewSource remain legal — they are the sanctioned way in.
package determinism

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/analysis"
)

// guarded names the packages (by final import-path element) whose outputs
// must be a pure function of their inputs and seeds.
var guarded = map[string]bool{
	"netsim": true,
	"dessim": true,
	"sched":  true,
	"gen":    true,
}

// bannedTime are the wall-clock reads.
var bannedTime = map[string]bool{"Now": true, "Since": true}

// Analyzer is the reproducibility rule.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "simulation packages must not read the wall clock or the global math/rand generator",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !guarded[path.Base(pass.Path)] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn on a seeded generator) are
			// fine; only package-level functions carry ambient state.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; simulation code must use the simulated clock",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"global %s.%s is shared process state; draw from a seeded *rand.Rand instead",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
