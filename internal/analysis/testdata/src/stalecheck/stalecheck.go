// Package stalecheck feeds RunWithStale one directive that earns its
// keep, one that suppresses nothing, and one naming an analyzer outside
// the run (unjudgeable, so never reported stale).
package stalecheck

func used() int {
	//lint:ignore retrule this return is deliberately flagged and excused
	return 1
}

func stale() int {
	//lint:ignore retrule left behind after the code it excused was fixed
	x := 2
	return x
}

func unjudgeable() {
	//lint:ignore notinthisrun silenced analyzer was not part of the run
	_ = 3
}
