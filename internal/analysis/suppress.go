package analysis

import (
	"sort"
	"strings"
)

// suppressions indexes lint:ignore directives of one package. A directive
//
//	//lint:ignore name1,name2 reason
//
// silences findings of the named analyzers on the directive's own line
// (trailing comment) and on the line immediately below it (comment-only
// line above the offending statement). The reason is mandatory — a bare
// //lint:ignore name is not a directive.
//
// Each directive tracks whether it actually suppressed anything during a
// run, so hhclint's -stale-ignores mode can report suppressions that
// outlived the finding they were written for.
type suppressions struct {
	// byLine maps file -> line -> directives registered there.
	byLine map[string]map[int][]*directive
	// all lists every directive once, in source order of discovery.
	all []*directive
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	file  string
	line  int // the comment's own line
	names []string
	used  bool // did it suppress at least one finding this run
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*directive)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line, names: names}
				s.all = append(s.all, d)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return s
}

// parseIgnore extracts the analyzer names from a lint:ignore comment,
// requiring a non-empty reason after them.
func parseIgnore(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "lint:ignore")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of reason
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// suppressed reports whether f is silenced by a directive, marking the
// directive as used when it is.
func (s *suppressions) suppressed(f Finding) bool {
	hit := false
	for _, d := range s.byLine[f.Pos.Filename][f.Pos.Line] {
		for _, name := range d.names {
			if name == f.Analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns the directives that suppressed nothing, restricted to
// those whose analyzers all actually ran — a directive naming an
// analyzer outside this run cannot be judged and is never reported.
func (s *suppressions) stale(ran map[string]bool) []StaleIgnore {
	var out []StaleIgnore
	for _, d := range s.all {
		if d.used {
			continue
		}
		judgeable := true
		for _, name := range d.names {
			if !ran[name] {
				judgeable = false
				break
			}
		}
		if judgeable {
			out = append(out, StaleIgnore{File: d.file, Line: d.line, Analyzers: d.names})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
