package analysis

import (
	"strings"
)

// suppressions indexes lint:ignore directives of one package. A directive
//
//	//lint:ignore name1,name2 reason
//
// silences findings of the named analyzers on the directive's own line
// (trailing comment) and on the line immediately below it (comment-only
// line above the offending statement). The reason is mandatory — a bare
// //lint:ignore name is not a directive.
type suppressions struct {
	// byLine maps file -> line -> analyzer names ignored there.
	byLine map[string]map[int][]string
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return s
}

// parseIgnore extracts the analyzer names from a lint:ignore comment,
// requiring a non-empty reason after them.
func parseIgnore(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "lint:ignore")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of reason
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

func (s *suppressions) suppressed(f Finding) bool {
	for _, name := range s.byLine[f.Pos.Filename][f.Pos.Line] {
		if name == f.Analyzer {
			return true
		}
	}
	return false
}
