// Package topo is checked under the path repro/internal/hhc, so the
// topology-layer import bans apply to it.
package topo

import (
	_ "flag" // want `only cmd/ binaries and internal/cliutil may import flag`

	_ "repro/internal/core" // want `topology package repro/internal/hhc must not import service layer repro/internal/core`
	_ "repro/internal/obs"  // want `topology package repro/internal/hhc must not import service layer repro/internal/obs`

	_ "repro/internal/graph" // a sibling topology package is fine
)
