// Package cmdok is checked under the path repro/cmd/fake: a binary may
// import flag and the service layers freely — no findings expected.
package cmdok

import (
	_ "flag"

	_ "repro/internal/core"
	_ "repro/internal/obs"
)
