package layering_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/layering"
)

var loader = analysis.NewLoader()

func runCase(t *testing.T, dir, path string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, layering.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestTopologyImports(t *testing.T) {
	runCase(t, "testdata/src/topo", "repro/internal/hhc")
}

func TestCmdMayImportServices(t *testing.T) {
	runCase(t, "testdata/src/cmdok", "repro/cmd/fake")
}

// TestNonTopologyMayImportServices checks the rule is scoped to the
// topology set: the same file set under a service-layer path is clean.
func TestNonTopologyMayImportServices(t *testing.T) {
	pkg, err := loader.LoadDir("testdata/src/cmdok", "repro/internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{layering.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The flag import must still fire outside cmd/; the service-layer
	// imports must not (netsim is not a topology package).
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "may import flag") {
		t.Fatalf("want exactly the flag finding, got %v", findings)
	}
}
