// Package layering enforces the repository's import DAG: topology
// packages sit below the service layers, and flag parsing stays in the
// binaries. The compiler only prevents cycles; these rules prevent the
// inversions that a cycle-free graph still allows.
package layering

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// topology packages model the networks themselves (addresses, adjacency,
// routing). They must stay importable by everything, so they may not
// reach up into construction, caching, simulation, or observability.
var topology = map[string]bool{
	"repro/internal/hhc":       true,
	"repro/internal/hypercube": true,
	"repro/internal/hcn":       true,
	"repro/internal/ccc":       true,
	"repro/internal/graph":     true,
}

// services are the layers topology packages must not depend on.
var services = map[string]bool{
	"repro/internal/core":   true,
	"repro/internal/cache":  true,
	"repro/internal/netsim": true,
	"repro/internal/obs":    true,
}

// Analyzer is the layering rule set.
var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc:  "topology packages must not import service layers; only cmd/ and cliutil may import flag",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	fromTopology := topology[pass.Path]
	flagAllowed := strings.HasPrefix(pass.Path, "repro/cmd/") || pass.Path == "repro/internal/cliutil"
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fromTopology && services[ipath] {
				pass.Reportf(imp.Pos(),
					"topology package %s must not import service layer %s",
					pass.Path, ipath)
			}
			if ipath == "flag" && !flagAllowed {
				pass.Reportf(imp.Pos(),
					"only cmd/ binaries and internal/cliutil may import flag; %s must take configuration as arguments",
					pass.Path)
			}
		}
	}
	return nil
}
