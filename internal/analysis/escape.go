package analysis

import (
	"go/ast"
	"go/types"
)

// Escape half of the substrate: constructors legitimately touch guarded
// fields and mix plain writes with later-atomic fields, because the value
// under construction has not been published to any other goroutine yet.
// FreshLocals spots that idiom — a local variable bound to an allocation
// made in this function — so lockguard and atomicmix can exempt accesses
// through it instead of demanding a lock inside New*.
//
// The analysis is deliberately conservative in one direction only: a
// local stays "fresh" for the whole function body. That admits a
// theoretical false negative (allocate, hand to a goroutine, keep
// mutating), but goroutinelife covers the goroutine half of that
// pattern, and the alternative — flow-sensitive publication tracking —
// costs far more than the constructor idiom justifies.

// FreshLocals returns the local objects of fn that are bound to a fresh
// allocation: assigned (or initialized) from &T{...}, T{...}, new(T), or
// a call to a package-local function returning such a value is NOT
// chased — only direct allocation spellings count.
func FreshLocals(fn ast.Node, info *types.Info) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if isFreshAlloc(st.Rhs[i], info) {
					fresh[obj] = true
				} else if st.Tok.String() == "=" && fresh[obj] {
					// Rebinding a fresh local to something shared spoils it.
					delete(fresh, obj)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) && isFreshAlloc(st.Values[i], info) {
					if obj := info.Defs[name]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// isFreshAlloc reports whether e spells a fresh allocation: a composite
// literal, its address, or new(T).
func isFreshAlloc(e ast.Expr, info *types.Info) bool {
	switch x := Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op.String() != "&" {
			return false
		}
		_, ok := Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "new"
	default:
		return false
	}
}

// FreshBase reports whether the base of a selector path is a fresh local:
// the root identifier of expr ("s" in s.ring, s.buf[i]) resolves to an
// object in fresh.
func FreshBase(expr ast.Expr, info *types.Info, fresh map[types.Object]bool) bool {
	for {
		switch x := Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && fresh[obj]
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return false
		}
	}
}
