package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// retrule flags every return statement — a maximally simple analyzer to
// drive the suppression machinery.
var retrule = &analysis.Analyzer{
	Name: "retrule",
	Doc:  "flags every return statement (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

// TestRunWithStale checks the three directive fates: used (suppresses a
// finding), stale (suppresses nothing, reported), and unjudgeable (names
// an analyzer outside the run, never reported).
func TestRunWithStale(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/stalecheck", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	findings, stale, err := analysis.RunWithStale([]*analysis.Package{pkg}, []*analysis.Analyzer{retrule})
	if err != nil {
		t.Fatal(err)
	}
	// used()'s return is suppressed; stale()'s return is not (the directive
	// sits two lines above it).
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the unsuppressed return in stale()", findings)
	}
	if !strings.Contains(findings[0].Pos.Filename, "stalecheck.go") || findings[0].Pos.Line != 14 {
		t.Errorf("finding at %s:%d, want stalecheck.go:14", findings[0].Pos.Filename, findings[0].Pos.Line)
	}
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the retrule directive in stale()", stale)
	}
	if stale[0].Line != 12 || len(stale[0].Analyzers) != 1 || stale[0].Analyzers[0] != "retrule" {
		t.Errorf("stale = %+v, want line 12 analyzers [retrule]", stale[0])
	}
}
