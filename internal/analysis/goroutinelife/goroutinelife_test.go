package goroutinelife_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/life", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, goroutinelife.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestOutsideInternal confirms the analyzer is scoped to internal/
// packages: the same testdata loaded under a cmd/ import path is clean.
func TestOutsideInternal(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/life", "repro/cmd/fake")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{goroutinelife.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding outside internal/: %s", f)
	}
}
