// Package goroutinelife requires every go statement in internal packages
// to be tied to a lifecycle. A goroutine counts as managed when its body
// — or any package-local function it transitively calls — contains
// lifecycle evidence: a (*sync.WaitGroup).Done call, a channel receive
// (including range-over-channel and select), or a close of a channel it
// owns. Fire-and-forget goroutines that are genuinely intentional must
// say so where they start:
//
//	//hhc:detached closed via http.Server.Close in Stop
//	go func() { _ = srv.Serve(ln) }()
//
// The annotation goes on the go statement's line or the line above, and
// the reason is mandatory — a bare //hhc:detached is itself a finding.
// Silent goroutine leaks (spawn, no join, no stop signal) are the PR-4/
// PR-6 class of liveness bug this analyzer exists to kill.
package goroutinelife

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the goroutine-lifecycle rule.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "go statements in internal/ must join a WaitGroup, watch a stop/close channel, or be annotated //hhc:detached <reason>",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Path, "/internal/") {
		return nil
	}
	cg := analysis.NewCallGraph(pass)
	for _, f := range pass.Files {
		detached := detachedLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			line := pass.Fset.Position(gs.Pos()).Line
			if reason, ok := detached[line]; ok {
				if reason == "" {
					pass.Reportf(gs.Pos(),
						"//hhc:detached needs a reason: say why this goroutine has no lifecycle")
				}
				return true
			}
			if hasLifecycle(pass, cg, gs.Call) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no lifecycle: tie it to a sync.WaitGroup, a stop/close channel, or annotate //hhc:detached <reason>")
			return true
		})
	}
	return nil
}

// detachedLines maps each line that may carry a go statement to the
// reason of a //hhc:detached annotation covering it. An annotation on
// line N covers go statements on N (trailing comment) and N+1 (comment
// above), mirroring how //lint:ignore registers.
func detachedLines(pass *analysis.Pass, f *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cgr := range f.Comments {
		for _, c := range cgr.List {
			text := strings.TrimSpace(c.Text)
			rest, found := strings.CutPrefix(text, "//hhc:detached")
			if !found {
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			reason := strings.TrimSpace(rest)
			out[line] = reason
			out[line+1] = reason
		}
	}
	return out
}

// hasLifecycle searches the spawned call and every package-local body it
// transitively reaches for lifecycle evidence.
func hasLifecycle(pass *analysis.Pass, cg *analysis.CallGraph, call *ast.CallExpr) bool {
	found := false
	cg.ReachableBodies(call, func(body ast.Node) {
		if found {
			return
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if found {
				return false
			}
			switch x := m.(type) {
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					found = true // channel receive (covers select comm cases too)
				}
			case *ast.RangeStmt:
				if _, ok := pass.Info.TypeOf(x.X).Underlying().(*types.Chan); ok {
					found = true
				}
			case *ast.CallExpr:
				if isClose(pass, x) || isWaitGroupDone(pass, x) {
					found = true
				}
			}
			return !found
		})
	})
	return found
}

// isClose matches the close builtin applied to a channel.
func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// isWaitGroupDone matches (*sync.WaitGroup).Done.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.Info, call)
	return fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "sync" && fn.Name() == "Done"
}
