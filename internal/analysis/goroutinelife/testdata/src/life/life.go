// Package life exercises the goroutinelife analyzer: bare goroutines,
// external spawns, transitive evidence through package-local callees,
// the annotation escape hatch, and the reason requirement.
package life

import (
	"sync"
	"time"
)

// Bad1: fire-and-forget closure with no lifecycle at all.
func Bad1() {
	go func() { // want `goroutine has no lifecycle`
		_ = time.Now()
	}()
}

// Bad2: spawning an external function gives the analyzer no body to
// inspect, so it demands an annotation.
func Bad2() {
	go time.Sleep(time.Millisecond) // want `goroutine has no lifecycle`
}

// spin has no lifecycle evidence of its own.
func spin() {
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
}

// Bad3: the transitive walk reaches spin and still finds nothing.
func Bad3() {
	go spin() // want `goroutine has no lifecycle`
}

// Bad4: the annotation without a reason is itself a finding.
func Bad4() {
	//hhc:detached
	go spin() // want `//hhc:detached needs a reason`
}

// GoodWG joins a WaitGroup.
func GoodWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		spin()
	}()
}

// GoodStop watches a stop channel.
func GoodStop(stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				spin()
			}
		}
	}()
}

// GoodRange drains a channel until it is closed by the producer.
func GoodRange(ch <-chan int) {
	go func() {
		for range ch {
		}
	}()
}

// GoodClose signals its own completion.
func GoodClose(done chan<- struct{}) {
	go func() {
		defer close(done)
		spin()
	}()
}

// drain carries the evidence for the transitive case.
func drain(ch <-chan int, done chan struct{}) {
	defer close(done)
	for range ch {
	}
}

// GoodTransitive reaches drain's evidence through the call graph.
func GoodTransitive(ch <-chan int, done chan struct{}) {
	go drain(ch, done)
}

// GoodDetached is explicitly fire-and-forget, with a reason.
func GoodDetached() {
	//hhc:detached best-effort warmup; process exit reaps it
	go spin()
}

// GoodDetachedTrailing carries the annotation as a trailing comment.
func GoodDetachedTrailing() {
	go spin() //hhc:detached best-effort warmup; process exit reaps it
}
