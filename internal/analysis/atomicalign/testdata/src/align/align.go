// Package align exercises the 386 offset computation.
package align

import "sync/atomic"

type bad struct {
	ready int32
	n     int64 // offset 4 on 386: int64 aligns to 4 there
}

func Add(b *bad) {
	atomic.AddInt64(&b.n, 1) // want `atomic\.AddInt64 on field n at 386 offset 4`
}

type worse struct {
	a, b, c int32
	hits    uint64 // offset 12 on 386
}

func Load(w *worse) uint64 {
	return atomic.LoadUint64(&w.hits) // want `atomic\.LoadUint64 on field hits at 386 offset 12`
}

type outer struct {
	tag int32
	in  inner // starts at offset 4
}

type inner struct {
	v int64
}

func Nested(o *outer) {
	atomic.StoreInt64(&o.in.v, 9) // want `atomic\.StoreInt64 on field v at 386 offset 4`
}

type good struct {
	n     int64 // first word of the allocation: guaranteed aligned
	ready int32
}

func Ok(g *good) {
	atomic.AddInt64(&g.n, 1)
}

type wrapped struct {
	pad int32
	v   atomic.Int64 // typed wrapper self-aligns; always safe
}

func OkWrapped(w *wrapped) {
	w.v.Add(1)
}

var global int64

// OkGlobal: package-level words are 8-aligned by the linker.
func OkGlobal() {
	atomic.AddInt64(&global, 1)
}
