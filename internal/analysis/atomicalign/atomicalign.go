// Package atomicalign guards the 32-bit builds. On 386 and 32-bit ARM the
// sync/atomic 64-bit operations fault unless their operand is 64-bit
// aligned, and the compiler only guarantees that for the first word of an
// allocation — a struct field at offset 4 compiles everywhere and crashes
// on the first Add. The analyzer finds every &struct.field handed to a
// 64-bit sync/atomic function and checks the field's offset under 386
// layout rules, whatever GOARCH the analysis itself runs on.
//
// The typed wrappers (atomic.Int64, atomic.Uint64) carry their own
// alignment and are always safe; this rule only concerns the raw
// *int64/*uint64 function forms.
package atomicalign

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// banned64 are the sync/atomic functions whose operand must be 8-aligned.
var banned64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 computes layout the way the gc compiler does on GOARCH=386.
var sizes32 = types.SizesFor("gc", "386")

// Analyzer is the 32-bit alignment rule.
var Analyzer = &analysis.Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic operands that are struct fields must be 64-bit aligned on 32-bit targets",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !banned64[fn.Name()] {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			fieldSel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.Info.Selections[fieldSel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			off, ok := exprOffset386(pass, fieldSel)
			if ok && off%8 != 0 {
				pass.Reportf(call.Pos(),
					"atomic.%s on field %s at 386 offset %d (not 64-bit aligned); move 64-bit fields first or pad, or use atomic.Int64/Uint64",
					fn.Name(), selection.Obj().Name(), off)
			}
			return true
		})
	}
	return nil
}

// exprOffset386 resolves the selected field's byte offset within the
// allocation that contains it under 32-bit layout. Implicit embedding is
// handled by the selection's index chain; explicit chains through struct
// values (o.in.v) are nested single-step selections, so the base
// selector's own offset is accumulated recursively. A pointer hop — base
// of pointer type — starts a fresh allocation, whose first word is the
// one placement the runtime does guarantee to be aligned.
func exprOffset386(pass *analysis.Pass, sel *ast.SelectorExpr) (int64, bool) {
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return 0, false
	}
	off, ok := chainOffset386(selection)
	if !ok {
		return 0, false
	}
	if base, isSel := sel.X.(*ast.SelectorExpr); isSel {
		bt := pass.Info.Types[base].Type
		if bt != nil {
			if _, isPtr := bt.Underlying().(*types.Pointer); !isPtr {
				if boff, bok := exprOffset386(pass, base); bok {
					off += boff
				}
			}
		}
	}
	return off, true
}

// chainOffset386 resolves one selection's byte offset relative to its
// receiver, following the (possibly embedded) index chain.
func chainOffset386(sel *types.Selection) (int64, bool) {
	t := sel.Recv()
	var off int64
	for _, idx := range sel.Index() {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			// An embedded-pointer hop is a separate allocation; the offset
			// chain restarts and the outer layout no longer matters.
			t = p.Elem()
			off = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes32.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return off, true
}
