package atomicalign_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicalign"
)

func TestAlignment(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/align", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, atomicalign.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
