package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked unit of analysis.
type Package struct {
	// Path is the import path the files were checked under.
	Path string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs collects parse and type-check problems. Analyzers still run on
	// a partially-checked package, but the driver reports these and fails.
	Errs []error
}

// Loader parses and type-checks packages. One Loader shares a file set and
// an importer across every load, so the (expensive) source-import of shared
// dependencies happens once per process, not once per package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader backed by the stdlib source importer, which
// resolves both standard-library and module-internal import paths by
// type-checking their sources — no compiled export data, no x/tools.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates packages matching the go-list patterns (e.g. "./...",
// "repro/internal/...") and loads each one. Test files are not loaded: the
// invariants guard shipped code, and several rules (flag imports, wall
// clocks) are legitimately relaxed in tests.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkgs = append(pkgs, l.load(lp.ImportPath, lp.Dir, files))
	}
	return pkgs, nil
}

// LoadDir loads every non-test .go file in dir as one package checked
// under the given import path. This is the testdata entry point: the path
// decides which scope-sensitive rules apply, independent of where the
// files actually live.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.load(path, dir, files), nil
}

// load parses and type-checks one file list. Parse and type errors are
// recorded on the package, not returned: a single malformed file should
// surface as a finding-adjacent error, not abort the whole run.
func (l *Loader) load(path, dir string, filenames []string) *Package {
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			pkg.Errs = append(pkg.Errs, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	// Check reports every error through conf.Error and still returns as
	// much of the package as it could make sense of.
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	return pkg
}
