// Package obscost keeps the observability layer honest about its cost.
// PR 2's contract is "zero-cost when off": the uninstrumented branch of
// every hot path must not touch internal/obs at all. That only holds if
// obs calls are quarantined where the convention puts them — files named
// obs.go (the wiring and wrapper layer) and functions whose name ends in
// Observed (the explicitly instrumented twins of hot-path functions).
//
// The check is type-based, not textual: any call that resolves to a
// function or method declared in repro/internal/obs is a violation, even
// when the receiver is reached through a local struct field (for example
// o.Tracer.Start, where Start belongs to *obs.Tracer). Type references —
// struct fields, signatures, var declarations — are free and stay legal
// everywhere.
//
// The *Observed exemption is narrower than the obs.go one: it sanctions
// the metric and span surface (counters, gauges, histograms, tracer
// spans), whose cost is a few atomic stores. The logging and
// flight-recorder surface (obs.Logger, obs.RequestTracer and its Req /
// ReqSpan handles) formats and writes — I/O that has no place in a hot
// path's instrumented twin either. Those calls are confined to obs.go
// files, full stop.
package obscost

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

const obsPath = "repro/internal/obs"

// Analyzer is the obs-quarantine rule.
var Analyzer = &analysis.Analyzer{
	Name: "obscost",
	Doc:  "only obs.go files and *Observed functions may call into internal/obs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// The rule guards library code. cmd/ binaries are the wiring layer
	// (they build registries and mount HTTP handlers), and internal/obs
	// itself obviously calls itself.
	if !strings.HasPrefix(pass.Path, "repro/internal/") || pass.Path == obsPath {
		return nil
	}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if filepath.Base(pos.Filename) == "obs.go" {
			continue
		}
		funcs := funcRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
				return true
			}
			if fn := funcs.enclosing(call.Pos()); strings.HasSuffix(fn, "Observed") {
				if !ioBearing(obj) {
					return true
				}
				pass.Reportf(call.Pos(),
					"call to %s.%s: the logging/flight-recorder surface does I/O and is confined to obs.go files; the *Observed exemption does not apply",
					obj.Pkg().Name(), obj.Name())
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s outside an obs.go file or *Observed function breaks the zero-cost-when-off contract",
				obj.Pkg().Name(), obj.Name())
			return true
		})
	}
	return nil
}

// ioBearing reports whether an obs object belongs to the logging or
// flight-recorder surface: constructors of the two sinks, and every
// method on the structured logger or the request-trace handles. These
// format and write, so *Observed functions may not call them.
func ioBearing(obj types.Object) bool {
	switch obj.Name() {
	case "NewLogger", "NewRequestTracer":
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Logger", "RequestTracer", "Req", "ReqSpan":
		return true
	}
	return false
}

// funcRange ties a declared function's body extent to its name, so calls
// inside closures inherit the enclosing declaration's exemption.
type funcRange struct {
	from, to token.Pos
	name     string
}

type funcRangeList []funcRange

func funcRanges(f *ast.File) funcRangeList {
	var rs funcRangeList
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			rs = append(rs, funcRange{from: fd.Pos(), to: fd.End(), name: fd.Name.Name})
		}
	}
	return rs
}

func (rs funcRangeList) enclosing(pos token.Pos) string {
	for _, r := range rs {
		if r.from <= pos && pos < r.to {
			return r.name
		}
	}
	return ""
}
