// Package wiring is checked under repro/cmd/fake: binaries are the
// wiring layer and may call obs directly — no findings expected.
package wiring

import "repro/internal/obs"

func Main() {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "demo").Inc()
}
