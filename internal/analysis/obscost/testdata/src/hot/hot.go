// Package hot is checked under repro/internal/fake: library code where
// direct obs calls outside obs.go / *Observed functions are violations.
package hot

import "repro/internal/obs"

// Holder shows that type references are free: fields and signatures may
// name obs types without breaking the zero-cost contract.
type Holder struct {
	Reg    *obs.Registry
	Tracer *obs.Tracer
	Log    *obs.Logger
	Rec    *obs.RequestTracer
}

// Hot is an uninstrumented function: it must not call into obs.
func Hot(h *Holder) {
	r := obs.NewRegistry() // want `call to obs\.NewRegistry outside an obs\.go file`
	_ = r
	h.Tracer.Start("x") // want `call to obs\.Start outside an obs\.go file`
}

// HotClosure shows closures inherit their declaration's status.
func HotClosure() func() {
	return func() {
		obs.NewTracer(0) // want `call to obs\.NewTracer outside an obs\.go file`
	}
}

// warmObserved is the sanctioned instrumented twin: calls are fine, and
// so are calls from closures declared inside it.
func warmObserved(h *Holder) {
	sp := h.Tracer.Start("y")
	defer func() { sp.End() }()
	obs.NewRegistry()
}

// loudObserved shows the narrowed exemption: metric and span calls pass,
// but the logging/flight-recorder surface does I/O and stays confined to
// obs.go even inside an *Observed function.
func loudObserved(h *Holder) {
	h.Tracer.Start("z")
	h.Log.Info("served")                // want `call to obs\.Info: the logging/flight-recorder surface does I/O`
	obs.NewLogger(nil, obs.LevelInfo)   // want `call to obs\.NewLogger: the logging/flight-recorder surface does I/O`
	q := h.Rec.StartRequest("op", "r1") // want `call to obs\.StartRequest: the logging/flight-recorder surface does I/O`
	q.StartSpan("phase")                // want `call to obs\.StartSpan: the logging/flight-recorder surface does I/O`
}

// hotLog: outside *Observed functions the logging surface reports through
// the general rule, like any other obs call.
func hotLog(h *Holder) {
	h.Log.Error("boom") // want `call to obs\.Error outside an obs\.go file`
}
