package hot

import "repro/internal/obs"

// Wire lives in obs.go, the designated wiring file: direct calls allowed.
func Wire() *Holder {
	return &Holder{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(0)}
}
