package obscost_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/obscost"
)

var loader = analysis.NewLoader()

func runCase(t *testing.T, dir, path string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, obscost.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestLibraryCode(t *testing.T) {
	runCase(t, "testdata/src/hot", "repro/internal/fake")
}

func TestCmdWiringExempt(t *testing.T) {
	runCase(t, "testdata/src/wiring", "repro/cmd/fake")
}
