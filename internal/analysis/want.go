package analysis

import (
	"fmt"
	"regexp"
	"strconv"
)

// wantRx matches one quoted expectation inside a want comment — either a
// double-quoted Go string or a backquoted raw string (the usual form,
// since patterns are regexps full of backslashes).
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want entry: a message regexp anchored to a line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// CheckWant runs the analyzers over the package and compares findings
// against `// want "regexp"` comments in its sources: every finding must
// match a want on its line, every want must be consumed by a finding.
// Returned problems are human-readable mismatch descriptions; an empty
// slice means the package behaved exactly as annotated.
//
// This is the testdata harness: analyzer tests load a directory with
// Loader.LoadDir (choosing the import path the scope rules should see) and
// fail on any returned problem.
func CheckWant(pkg *Package, analyzers ...*Analyzer) ([]string, error) {
	if len(pkg.Errs) > 0 {
		return nil, fmt.Errorf("testdata must type-check: %w", pkg.Errs[0])
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %w", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	findings, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	var problems []string
findings:
	for _, f := range findings {
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.matched = true
				continue findings
			}
		}
		problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", w.file, w.line, w.rx))
		}
	}
	return problems, nil
}

// cutWant returns the comment text after a "// want" marker.
func cutWant(text string) (string, bool) {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(text); i++ {
		if text[i:i+len(marker)] == marker {
			return text[i+len(marker):], true
		}
	}
	return "", false
}
