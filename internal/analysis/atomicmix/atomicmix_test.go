package atomicmix_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	loader := analysis.NewLoader()
	pkg, err := loader.LoadDir("testdata/src/mix", "repro/internal/fake")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := analysis.CheckWant(pkg, atomicmix.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
