// Package mix exercises the atomicmix analyzer: plain reads and writes
// of atomically-accessed fields, package-level variables, the
// constructor exemption, helper address-passing, and the ignore hatch.
package mix

import "sync/atomic"

// Stats mixes an atomic counter with plain accessors — the violation.
type Stats struct {
	hits int64
	name string
}

// Inc is the atomic side: it marks hits as an atomic object.
func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
}

// Bad1: plain read of an atomically-updated field.
func (s *Stats) Bad1() int64 {
	return s.hits // want `hits is accessed via sync/atomic elsewhere; plain access in Bad1`
}

// Bad2: plain write.
func (s *Stats) Bad2() {
	s.hits = 0 // want `hits is accessed via sync/atomic elsewhere; plain access in Bad2`
}

// Bad3: plain increment — a read-modify-write race.
func (s *Stats) Bad3() {
	s.hits++ // want `hits is accessed via sync/atomic elsewhere; plain access in Bad3`
}

// GoodLoad uses the atomic read.
func (s *Stats) GoodLoad() int64 {
	return atomic.LoadInt64(&s.hits)
}

// GoodOther touches only the untracked field.
func (s *Stats) GoodOther() string {
	return s.name
}

// NewStats initializes through a fresh local before publication: exempt.
func NewStats(seed int64) *Stats {
	s := &Stats{}
	s.hits = seed
	return s
}

// bump receives the address; passing it on is not a plain access.
func bump(p *int64) {
	atomic.AddInt64(p, 1)
}

// GoodHelper hands the field to an atomic helper by address.
func GoodHelper(s *Stats) {
	bump(&s.hits)
}

// GoodIgnored documents a deliberate racy read.
func (s *Stats) GoodIgnored() int64 {
	//lint:ignore atomicmix approximate value is fine for the debug page
	return s.hits
}

// ready is a package-level atomic flag.
var ready uint32

// MarkReady publishes atomically.
func MarkReady() {
	atomic.StoreUint32(&ready, 1)
}

// Bad4: plain read of the package-level atomic variable.
func Bad4() bool {
	return ready == 1 // want `ready is accessed via sync/atomic elsewhere; plain access in Bad4`
}

// GoodReady loads it atomically.
func GoodReady() bool {
	return atomic.LoadUint32(&ready) == 1
}
