// Package atomicmix flags mixed atomic/plain access. Once any code in a
// package touches a field or package variable through sync/atomic, every
// other access must be atomic too: a plain load can see a torn or stale
// value next to atomic.AddInt64, and the race detector only catches the
// schedules it happens to run. This is the bug class behind the PR-7
// epoch-publication spin — one forgotten plain read of an
// atomically-published counter.
//
// The analyzer collects every object whose address reaches a sync/atomic
// call (atomic.AddInt64(&s.n, 1), atomic.StoreUint32(&ready, 1), ...)
// and then reports plain reads and writes of those objects anywhere else
// in the package. Taking the address (&s.n) is not itself flagged — that
// is how the value is handed to atomic helpers. Constructor writes
// through a fresh, unpublished local are exempt; anything else needs a
// //lint:ignore atomicmix with a reason, or better, a migration to the
// atomic.Int64 wrapper types that make mixing impossible.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mixed atomic/plain access rule.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere may never be read or written as a plain variable elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	atomicObjs := collectAtomicObjects(pass)
	if len(atomicObjs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := analysis.FreshLocals(fd, pass.Info)
			checkBody(pass, fd, fresh, atomicObjs)
		}
	}
	return nil
}

// collectAtomicObjects finds every field or variable whose address is
// passed to a sync/atomic function anywhere in the package.
func collectAtomicObjects(pass *analysis.Pass) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := analysis.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if obj := addressedObject(pass, un.X); obj != nil {
					objs[obj] = true
				}
			}
			return true
		})
	}
	return objs
}

// addressedObject resolves a bare selector or identifier to the field or
// variable object it denotes.
func addressedObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := analysis.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel]
	case *ast.Ident:
		return pass.Info.Uses[x]
	default:
		return nil
	}
}

// checkBody reports plain accesses to atomic objects inside one function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, fresh map[types.Object]bool, atomicObjs map[types.Object]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			// Address-taking is how the object reaches atomic helpers
			// (directly or via a pointer passed on); not itself a plain
			// access.
			if x.Op.String() == "&" {
				if inner := addressedObject(pass, x.X); inner != nil && atomicObjs[inner] {
					return false
				}
			}
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[x.Sel]
			if obj != nil && atomicObjs[obj] && !analysis.FreshBase(x.X, pass.Info, fresh) {
				report(pass, x.Sel.Pos(), obj.Name(), fd.Name.Name)
			}
		case *ast.Ident:
			// Package-level variables accessed bare. Struct fields have a
			// nil parent scope, so selector hits above do not re-report here.
			obj := pass.Info.Uses[x]
			if obj != nil && atomicObjs[obj] && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				report(pass, x.Pos(), obj.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, name, fn string) {
	pass.Reportf(pos,
		"%s is accessed via sync/atomic elsewhere; plain access in %s races with it (use atomic load/store or an atomic-typed field)",
		name, fn)
}
