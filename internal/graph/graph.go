// Package graph provides a small toolkit for implicit graphs: graphs whose
// vertex set is 0..Order()-1 and whose edges are produced on demand by a
// neighbor function. It is the substrate used for ground-truth verification
// (BFS distances, eccentricities, connectivity) of the interconnection
// networks built on top of it.
package graph

import (
	"errors"
	"fmt"
)

// Graph is an undirected implicit graph over vertex IDs 0..Order()-1.
//
// Implementations must be safe for concurrent readers: Neighbors must not
// mutate shared state.
type Graph interface {
	// Order returns the number of vertices. Vertex IDs are 0..Order()-1.
	Order() int64

	// MaxDegree returns an upper bound on vertex degree, used for buffer
	// sizing by traversal algorithms.
	MaxDegree() int

	// Neighbors appends the neighbors of v to buf and returns the extended
	// slice. The same neighbor must not appear twice, and v itself must not
	// appear. For an undirected graph, u ∈ Neighbors(v) iff v ∈ Neighbors(u).
	Neighbors(v uint64, buf []uint64) []uint64
}

// ErrTooLarge is returned by dense algorithms when the graph's order exceeds
// the given limit.
var ErrTooLarge = errors.New("graph: order too large for dense traversal")

// MaxDenseOrder is the largest graph order the dense (array-backed) BFS
// routines accept. 2^26 vertices at 4 bytes of distance each is 256 MiB,
// comfortably within a development machine's budget.
const MaxDenseOrder = 1 << 26

// Unreached marks vertices not reached by a BFS.
const Unreached = int32(-1)

// BFS computes single-source shortest-path distances from src to every
// vertex. The result slice is indexed by vertex ID; unreachable vertices
// hold Unreached.
func BFS(g Graph, src uint64) ([]int32, error) {
	n := g.Order()
	if n > MaxDenseOrder {
		return nil, fmt.Errorf("%w: order %d > %d", ErrTooLarge, n, MaxDenseOrder)
	}
	if int64(src) >= n {
		return nil, fmt.Errorf("graph: source %d out of range [0,%d)", src, n)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := make([]uint64, 1, 1024)
	queue[0] = src
	buf := make([]uint64, 0, g.MaxDegree())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		buf = g.Neighbors(v, buf[:0])
		for _, w := range buf {
			if dist[w] == Unreached {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}

// Distance returns the length of a shortest path between src and dst, or an
// error if dst is unreachable. It runs a BFS that stops as soon as dst is
// settled, so it is cheaper than BFS when dst is close to src.
func Distance(g Graph, src, dst uint64) (int, error) {
	n := g.Order()
	if n > MaxDenseOrder {
		return 0, fmt.Errorf("%w: order %d > %d", ErrTooLarge, n, MaxDenseOrder)
	}
	if int64(src) >= n || int64(dst) >= n {
		return 0, fmt.Errorf("graph: vertex out of range [0,%d)", n)
	}
	if src == dst {
		return 0, nil
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := make([]uint64, 1, 1024)
	queue[0] = src
	buf := make([]uint64, 0, g.MaxDegree())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		buf = g.Neighbors(v, buf[:0])
		for _, w := range buf {
			if dist[w] == Unreached {
				if w == dst {
					return int(dv) + 1, nil
				}
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return 0, fmt.Errorf("graph: vertex %d unreachable from %d", dst, src)
}

// ShortestPath returns one shortest path from src to dst as a vertex
// sequence including both endpoints.
func ShortestPath(g Graph, src, dst uint64) ([]uint64, error) {
	n := g.Order()
	if n > MaxDenseOrder {
		return nil, fmt.Errorf("%w: order %d > %d", ErrTooLarge, n, MaxDenseOrder)
	}
	if int64(src) >= n || int64(dst) >= n {
		return nil, fmt.Errorf("graph: vertex out of range [0,%d)", n)
	}
	if src == dst {
		return []uint64{src}, nil
	}
	const noParent = ^uint64(0)
	parent := make([]uint64, n)
	for i := range parent {
		parent[i] = noParent
	}
	parent[src] = src
	queue := make([]uint64, 1, 1024)
	queue[0] = src
	buf := make([]uint64, 0, g.MaxDegree())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		buf = g.Neighbors(v, buf[:0])
		for _, w := range buf {
			if parent[w] == noParent {
				parent[w] = v
				if w == dst {
					// Walk back to src.
					var rev []uint64
					for c := dst; ; c = parent[c] {
						rev = append(rev, c)
						if c == src {
							break
						}
					}
					for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
						rev[i], rev[j] = rev[j], rev[i]
					}
					return rev, nil
				}
				queue = append(queue, w)
			}
		}
	}
	return nil, fmt.Errorf("graph: vertex %d unreachable from %d", dst, src)
}

// Eccentricity returns the greatest BFS distance from src to any reachable
// vertex, and whether the whole graph was reached.
func Eccentricity(g Graph, src uint64) (ecc int, connected bool, err error) {
	dist, err := BFS(g, src)
	if err != nil {
		return 0, false, err
	}
	connected = true
	for _, d := range dist {
		if d == Unreached {
			connected = false
			continue
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc, connected, nil
}

// Diameter computes the exact diameter by running a BFS from every vertex.
// It is intended for small graphs (order up to a few thousand).
func Diameter(g Graph) (int, error) {
	n := g.Order()
	const maxExact = 1 << 14
	if n > maxExact {
		return 0, fmt.Errorf("%w: exact diameter needs order <= %d, have %d", ErrTooLarge, maxExact, n)
	}
	diam := 0
	for v := int64(0); v < n; v++ {
		ecc, connected, err := Eccentricity(g, uint64(v))
		if err != nil {
			return 0, err
		}
		if !connected {
			return 0, errors.New("graph: disconnected")
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// IsConnected reports whether every vertex is reachable from vertex 0.
func IsConnected(g Graph) (bool, error) {
	if g.Order() == 0 {
		return true, nil
	}
	_, connected, err := Eccentricity(g, 0)
	return connected, err
}

// CountEdges returns the number of undirected edges by summing degrees.
func CountEdges(g Graph) (int64, error) {
	n := g.Order()
	if n > MaxDenseOrder {
		return 0, fmt.Errorf("%w: order %d > %d", ErrTooLarge, n, MaxDenseOrder)
	}
	var twice int64
	buf := make([]uint64, 0, g.MaxDegree())
	for v := int64(0); v < n; v++ {
		buf = g.Neighbors(uint64(v), buf[:0])
		twice += int64(len(buf))
	}
	if twice%2 != 0 {
		return 0, errors.New("graph: neighbor relation is not symmetric (odd degree sum)")
	}
	return twice / 2, nil
}
