package graph

import (
	"testing"
)

// ring returns the n-cycle as a FuncGraph.
func ring(n int64) Graph {
	return FuncGraph{
		N:      n,
		Degree: 2,
		Fn: func(v uint64, buf []uint64) []uint64 {
			next := (v + 1) % uint64(n)
			prev := (v + uint64(n) - 1) % uint64(n)
			if next == prev { // n == 2
				return append(buf, next)
			}
			return append(buf, prev, next)
		},
	}
}

// twoTriangles is a disconnected graph: vertices 0-2 and 3-5.
func twoTriangles() Graph {
	adj := map[uint64][]uint64{
		0: {1, 2}, 1: {0, 2}, 2: {0, 1},
		3: {4, 5}, 4: {3, 5}, 5: {3, 4},
	}
	return FuncGraph{N: 6, Degree: 2, Fn: func(v uint64, buf []uint64) []uint64 {
		return append(buf, adj[v]...)
	}}
}

func TestBFSRing(t *testing.T) {
	g := ring(10)
	dist, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	dist, err := BFS(twoTriangles(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 3; v <= 5; v++ {
		if dist[v] != Unreached {
			t.Fatalf("dist[%d] = %d, want Unreached", v, dist[v])
		}
	}
	conn, err := IsConnected(twoTriangles())
	if err != nil || conn {
		t.Fatalf("IsConnected = %v, %v; want false", conn, err)
	}
	conn, err = IsConnected(ring(5))
	if err != nil || !conn {
		t.Fatalf("IsConnected(ring) = %v, %v; want true", conn, err)
	}
}

func TestDistance(t *testing.T) {
	g := ring(12)
	d, err := Distance(g, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Fatalf("Distance = %d, want 5", d)
	}
	if d, err = Distance(g, 4, 4); err != nil || d != 0 {
		t.Fatalf("Distance(v,v) = %d, %v", d, err)
	}
	if _, err = Distance(twoTriangles(), 0, 4); err == nil {
		t.Fatal("unreachable: want error")
	}
	if _, err = Distance(g, 0, 99); err == nil {
		t.Fatal("out of range: want error")
	}
}

func TestShortestPath(t *testing.T) {
	g := ring(8)
	p, err := ShortestPath(g, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 || p[0] != 1 || p[4] != 5 {
		t.Fatalf("path = %v", p)
	}
	for i := 1; i < len(p); i++ {
		diff := int64(p[i]) - int64(p[i-1])
		if diff != 1 && diff != -1 && diff != 7 && diff != -7 {
			t.Fatalf("path not contiguous: %v", p)
		}
	}
	p, err = ShortestPath(g, 3, 3)
	if err != nil || len(p) != 1 {
		t.Fatalf("self path = %v, %v", p, err)
	}
	if _, err = ShortestPath(twoTriangles(), 0, 5); err == nil {
		t.Fatal("unreachable: want error")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := ring(9)
	ecc, conn, err := Eccentricity(g, 0)
	if err != nil || !conn {
		t.Fatalf("ecc err=%v conn=%v", err, conn)
	}
	if ecc != 4 {
		t.Fatalf("ecc = %d, want 4", ecc)
	}
	diam, err := Diameter(g)
	if err != nil {
		t.Fatal(err)
	}
	if diam != 4 {
		t.Fatalf("diameter = %d, want 4", diam)
	}
	if _, err := Diameter(twoTriangles()); err == nil {
		t.Fatal("disconnected diameter: want error")
	}
}

func TestCountEdges(t *testing.T) {
	edges, err := CountEdges(ring(7))
	if err != nil {
		t.Fatal(err)
	}
	if edges != 7 {
		t.Fatalf("edges = %d, want 7", edges)
	}
}

func TestInduced(t *testing.T) {
	g := ring(6)
	// Removing one ring vertex forces the long way around.
	sub := Induced(g, map[uint64]bool{3: true})
	d, err := Distance(sub, 2, 4)
	if err != nil || d != 4 {
		t.Fatalf("detour distance = %d, %v; want 4", d, err)
	}
	// Removing two opposite-side vertices disconnects 2 from 5.
	sub2 := Induced(g, map[uint64]bool{3: true, 0: true})
	if _, err := Distance(sub2, 2, 5); err == nil {
		t.Fatal("disconnected pair: want error")
	}
	// Banned vertices themselves become isolated.
	if _, err := Distance(sub2, 3, 2); err == nil {
		t.Fatal("banned source: want error")
	}
}

func TestCheckSymmetric(t *testing.T) {
	if err := CheckSymmetric(ring(6)); err != nil {
		t.Fatalf("ring: %v", err)
	}
	asym := FuncGraph{N: 3, Degree: 2, Fn: func(v uint64, buf []uint64) []uint64 {
		if v == 0 {
			return append(buf, 1)
		}
		return buf
	}}
	if err := CheckSymmetric(asym); err == nil {
		t.Fatal("asymmetric graph: want error")
	}
	selfLoop := FuncGraph{N: 2, Degree: 1, Fn: func(v uint64, buf []uint64) []uint64 {
		return append(buf, v)
	}}
	if err := CheckSymmetric(selfLoop); err == nil {
		t.Fatal("self loop: want error")
	}
	dup := FuncGraph{N: 2, Degree: 2, Fn: func(v uint64, buf []uint64) []uint64 {
		return append(buf, 1-v, 1-v)
	}}
	if err := CheckSymmetric(dup); err == nil {
		t.Fatal("duplicate neighbor: want error")
	}
}

func TestBFSErrors(t *testing.T) {
	if _, err := BFS(ring(4), 9); err == nil {
		t.Fatal("source out of range: want error")
	}
	huge := FuncGraph{N: MaxDenseOrder + 1, Degree: 1, Fn: func(v uint64, buf []uint64) []uint64 { return buf }}
	if _, err := BFS(huge, 0); err == nil {
		t.Fatal("too large: want error")
	}
}
