package graph

// FuncGraph adapts a neighbor function to the Graph interface. It is handy
// in tests and for ad-hoc graphs (grids, rings, mutated networks).
type FuncGraph struct {
	N      int64
	Degree int
	Fn     func(v uint64, buf []uint64) []uint64
}

// Order implements Graph.
func (g FuncGraph) Order() int64 { return g.N }

// MaxDegree implements Graph.
func (g FuncGraph) MaxDegree() int { return g.Degree }

// Neighbors implements Graph.
func (g FuncGraph) Neighbors(v uint64, buf []uint64) []uint64 { return g.Fn(v, buf) }

// Induced returns the subgraph of g induced by removing the vertices in
// banned. Removed vertices keep their IDs but become isolated; traversals
// simply never reach them. This keeps ID stability, which matters for
// cross-referencing paths computed on the full graph.
func Induced(g Graph, banned map[uint64]bool) Graph {
	return FuncGraph{
		N:      g.Order(),
		Degree: g.MaxDegree(),
		Fn: func(v uint64, buf []uint64) []uint64 {
			if banned[v] {
				return buf
			}
			tmp := g.Neighbors(v, nil)
			for _, w := range tmp {
				if !banned[w] {
					buf = append(buf, w)
				}
			}
			return buf
		},
	}
}

// CheckSymmetric verifies on small graphs that the neighbor relation is
// symmetric and irreflexive; it returns the first violation found.
func CheckSymmetric(g Graph) error {
	n := g.Order()
	if n > 1<<16 {
		return ErrTooLarge
	}
	buf := make([]uint64, 0, g.MaxDegree())
	back := make([]uint64, 0, g.MaxDegree())
	for v := int64(0); v < n; v++ {
		buf = g.Neighbors(uint64(v), buf[:0])
		seen := make(map[uint64]bool, len(buf))
		for _, w := range buf {
			if w == uint64(v) {
				return errSelfLoop(v)
			}
			if seen[w] {
				return errDupNeighbor(v, w)
			}
			seen[w] = true
			back = g.Neighbors(w, back[:0])
			found := false
			for _, x := range back {
				if x == uint64(v) {
					found = true
					break
				}
			}
			if !found {
				return errAsymmetric(v, w)
			}
		}
	}
	return nil
}

type errSelfLoop int64

func (e errSelfLoop) Error() string { return "graph: self loop at vertex" }

type dupErr struct{ v, w uint64 }

func errDupNeighbor(v int64, w uint64) error { return &dupErr{uint64(v), w} }

func (e *dupErr) Error() string { return "graph: duplicate neighbor" }

type asymErr struct{ v, w uint64 }

func errAsymmetric(v int64, w uint64) error { return &asymErr{uint64(v), w} }

func (e *asymErr) Error() string { return "graph: asymmetric adjacency" }
