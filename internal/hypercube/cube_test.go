package hypercube

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestCheckDim(t *testing.T) {
	for _, k := range []int{0, 1, 32, 64} {
		if err := CheckDim(k); err != nil {
			t.Errorf("CheckDim(%d): %v", k, err)
		}
	}
	for _, k := range []int{-1, 65, 1000} {
		if err := CheckDim(k); err == nil {
			t.Errorf("CheckDim(%d): want error", k)
		}
	}
}

func TestCheckVertex(t *testing.T) {
	if err := CheckVertex(3, 7); err != nil {
		t.Errorf("CheckVertex(3,7): %v", err)
	}
	if err := CheckVertex(3, 8); err == nil {
		t.Error("CheckVertex(3,8): want error")
	}
	if err := CheckVertex(64, ^uint64(0)); err != nil {
		t.Errorf("CheckVertex(64,max): %v", err)
	}
}

func TestHammingProperties(t *testing.T) {
	// Metric axioms as quick properties.
	symmetric := func(a, b uint64) bool { return Hamming(a, b) == Hamming(b, a) }
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a uint64) bool { return Hamming(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c uint64) bool { return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c) }
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	got := Neighbors(3, 0b101, nil)
	want := []uint64{0b100, 0b111, 0b001}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDims(t *testing.T) {
	got := Dims(0b101001)
	want := []int{0, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Dims: got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Dims: got %v want %v", got, want)
		}
	}
	if d := Dims(0); len(d) != 0 {
		t.Fatalf("Dims(0) = %v, want empty", d)
	}
}

func TestBitFixPathProperties(t *testing.T) {
	prop := func(a, b uint64) bool {
		p := BitFixPath(a, b)
		if len(p) != Hamming(a, b)+1 {
			return false
		}
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 1; i < len(p); i++ {
			if Hamming(p[i-1], p[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphInterface(t *testing.T) {
	g, err := NewGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != 16 || g.MaxDegree() != 4 || g.Dim() != 4 {
		t.Fatalf("Q_4 metadata wrong: order=%d deg=%d", g.Order(), g.MaxDegree())
	}
	if err := graph.CheckSymmetric(g); err != nil {
		t.Fatalf("Q_4 not symmetric: %v", err)
	}
	edges, err := graph.CountEdges(g)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 4*16/2 {
		t.Fatalf("Q_4 has %d edges, want 32", edges)
	}
	if _, err := NewGraph(30); err == nil {
		t.Fatal("NewGraph(30): want too-large error")
	}
}

func TestCubeDiameterAndDistance(t *testing.T) {
	g, err := NewGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	diam, err := graph.Diameter(g)
	if err != nil {
		t.Fatal(err)
	}
	if diam != 5 {
		t.Fatalf("diameter(Q_5) = %d, want 5", diam)
	}
	// BFS distance equals Hamming distance for random pairs.
	dist, err := graph.BFS(g, 0b10101)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 32; v++ {
		if int(dist[v]) != Hamming(0b10101, v) {
			t.Fatalf("BFS dist to %#x = %d, want Hamming %d", v, dist[v], Hamming(0b10101, v))
		}
	}
}

func TestVerifyPath(t *testing.T) {
	good := []uint64{0, 1, 3, 7}
	if err := VerifyPath(3, 0, 7, good); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
	cases := []struct {
		name string
		path []uint64
	}{
		{"empty", nil},
		{"wrong start", []uint64{1, 3, 7}},
		{"wrong end", []uint64{0, 1, 3}},
		{"jump", []uint64{0, 3, 7}},
		{"repeat", []uint64{0, 1, 0, 1, 3, 7}},
		{"out of range", []uint64{0, 8, 7}},
	}
	for _, c := range cases {
		if err := VerifyPath(3, 0, 7, c.path); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestGrayRoundTrip(t *testing.T) {
	prop := func(i uint64) bool { return GrayRank(Gray(i)) == i }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	seq, err := GraySequence(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 64 {
		t.Fatalf("len = %d", len(seq))
	}
	seen := make(map[uint64]bool)
	for i, v := range seq {
		if seen[v] {
			t.Fatalf("Gray repeats %#x", v)
		}
		seen[v] = true
		next := seq[(i+1)%len(seq)]
		if Hamming(v, next) != 1 {
			t.Fatalf("Gray %#x -> %#x not adjacent", v, next)
		}
	}
	if _, err := GraySequence(60); err == nil {
		t.Fatal("GraySequence(60): want error")
	}
}
