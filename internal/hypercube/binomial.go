package hypercube

import "fmt"

// Binomial broadcast trees: the classical recursive-doubling schedule for
// one-to-all broadcast in Q_k. At round i every informed node forwards
// across dimension k-1-i; after k rounds all 2^k vertices are informed,
// matching the ceil(log2 N) information lower bound exactly — the yardstick
// the hierarchical hypercube's (degree-starved) broadcast is measured
// against in experiment E12.

// BinomialParent returns w's parent in the binomial broadcast tree rooted
// at root: w with the highest bit of w⊕root cleared. The root is its own
// parent.
func BinomialParent(k int, root, w uint64) (uint64, error) {
	if err := CheckVertex(k, root); err != nil {
		return 0, err
	}
	if err := CheckVertex(k, w); err != nil {
		return 0, err
	}
	diff := root ^ w
	if diff == 0 {
		return w, nil
	}
	// Clear the highest set bit of diff.
	high := diff
	high |= high >> 1
	high |= high >> 2
	high |= high >> 4
	high |= high >> 8
	high |= high >> 16
	high |= high >> 32
	high = (high >> 1) + 1
	return w ^ high, nil
}

// BinomialDepth returns the round at which w becomes informed: the number
// of dimensions where w and root differ.
func BinomialDepth(root, w uint64) int { return Hamming(root, w) }

// BinomialRounds returns the one-port broadcast time of Q_k: exactly k.
func BinomialRounds(k int) int { return k }

// BinomialChildren lists w's children in the tree rooted at root: for each
// dimension below the lowest set bit of w⊕root (all dimensions when
// w == root), flipping it moves a step *away* from the root.
func BinomialChildren(k int, root, w uint64) ([]uint64, error) {
	if err := CheckVertex(k, root); err != nil {
		return nil, err
	}
	if err := CheckVertex(k, w); err != nil {
		return nil, err
	}
	// parent(child) clears the HIGHEST differing bit, so a child of w must
	// add a differing bit above all of w's current ones: children flip
	// dimensions strictly above floor(log2(w⊕root)), or any dimension when
	// w is the root.
	diff := root ^ w
	low := 0
	if diff != 0 {
		pos := 0
		for d := diff; d > 1; d >>= 1 {
			pos++
		}
		low = pos + 1
	}
	var children []uint64
	for i := low; i < k; i++ {
		children = append(children, w^(1<<uint(i)))
	}
	return children, nil
}

// VerifyBinomialTree checks the tree structure exhaustively for small k:
// every vertex reaches the root through parents in BinomialDepth steps,
// and parent/children are mutually consistent.
func VerifyBinomialTree(k int, root uint64) error {
	if k > 20 {
		return fmt.Errorf("hypercube: verify supports k <= 20")
	}
	n := uint64(1) << uint(k)
	for w := uint64(0); w < n; w++ {
		cur := w
		steps := 0
		for cur != root {
			p, err := BinomialParent(k, root, cur)
			if err != nil {
				return err
			}
			if Hamming(p, cur) != 1 {
				return fmt.Errorf("hypercube: parent %#x not adjacent to %#x", p, cur)
			}
			cur = p
			steps++
			if steps > k {
				return fmt.Errorf("hypercube: vertex %#x does not reach root", w)
			}
		}
		if steps != BinomialDepth(root, w) {
			return fmt.Errorf("hypercube: depth of %#x is %d, want %d", w, steps, BinomialDepth(root, w))
		}
		children, err := BinomialChildren(k, root, w)
		if err != nil {
			return err
		}
		for _, c := range children {
			p, err := BinomialParent(k, root, c)
			if err != nil {
				return err
			}
			if p != w {
				return fmt.Errorf("hypercube: child %#x of %#x has parent %#x", c, w, p)
			}
		}
	}
	return nil
}
