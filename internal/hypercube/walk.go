package hypercube

import (
	"fmt"
	"math"
)

// MaxExactCities is the largest city count routed exactly by SetWalk's
// Held–Karp dynamic program (2^n · n² table). Beyond it a nearest-neighbor
// tour refined by 2-opt is used.
const MaxExactCities = 13

// SetWalk computes an order in which to visit all cities, starting the walk
// at start and finishing at end, minimizing total Hamming (= hypercube
// shortest-path) length:
//
//	ham(start, c_{o1}) + ham(c_{o1}, c_{o2}) + … + ham(c_{ok}, end)
//
// It returns the visiting order as indices into cities, the walk cost, and
// whether the result is provably optimal (Held–Karp) or heuristic (NN+2-opt,
// used above MaxExactCities cities).
//
// Because Hamming distance is a metric, the minimum walk that visits a set
// of hypercube vertices never benefits from extra intermediate visits, so
// this is exactly the local-walk component of shortest-path routing in a
// hierarchical hypercube.
func SetWalk(start, end uint64, cities []uint64) (order []int, cost int, exact bool) {
	n := len(cities)
	if n == 0 {
		return nil, Hamming(start, end), true
	}
	if n <= MaxExactCities {
		order, cost = heldKarp(start, end, cities)
		return order, cost, true
	}
	order, cost = nearestNeighbor(start, end, cities)
	order, cost = twoOpt(start, end, cities, order, cost)
	return order, cost, false
}

// heldKarp solves the fixed-endpoints path TSP over cities exactly.
func heldKarp(start, end uint64, cities []uint64) ([]int, int) {
	n := len(cities)
	// Pairwise distances, plus distances from start and to end.
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
		for j := range d[i] {
			d[i][j] = int32(Hamming(cities[i], cities[j]))
		}
	}
	fromStart := make([]int32, n)
	toEnd := make([]int32, n)
	for i, c := range cities {
		fromStart[i] = int32(Hamming(start, c))
		toEnd[i] = int32(Hamming(c, end))
	}
	size := 1 << uint(n)
	const inf = int32(math.MaxInt32 / 2)
	dp := make([]int32, size*n)
	par := make([]int8, size*n)
	for i := range dp {
		dp[i] = inf
	}
	for i := 0; i < n; i++ {
		dp[(1<<uint(i))*n+i] = fromStart[i]
		par[(1<<uint(i))*n+i] = -1
	}
	for s := 1; s < size; s++ {
		base := s * n
		for last := 0; last < n; last++ {
			cur := dp[base+last]
			if cur >= inf || s&(1<<uint(last)) == 0 {
				continue
			}
			for next := 0; next < n; next++ {
				if s&(1<<uint(next)) != 0 {
					continue
				}
				ns := s | 1<<uint(next)
				cand := cur + d[last][next]
				if cand < dp[ns*n+next] {
					dp[ns*n+next] = cand
					par[ns*n+next] = int8(last)
				}
			}
		}
	}
	full := size - 1
	best, bestLast := inf, 0
	for last := 0; last < n; last++ {
		if c := dp[full*n+last] + toEnd[last]; c < best {
			best, bestLast = c, last
		}
	}
	// Recover order.
	order := make([]int, n)
	s, last := full, bestLast
	for i := n - 1; i >= 0; i-- {
		order[i] = last
		p := par[s*n+last]
		s &^= 1 << uint(last)
		last = int(p)
	}
	return order, int(best)
}

// walkCost evaluates an order's total cost.
func walkCost(start, end uint64, cities []uint64, order []int) int {
	cost := 0
	cur := start
	for _, i := range order {
		cost += Hamming(cur, cities[i])
		cur = cities[i]
	}
	return cost + Hamming(cur, end)
}

// nearestNeighbor builds an order greedily from start.
func nearestNeighbor(start, end uint64, cities []uint64) ([]int, int) {
	n := len(cities)
	used := make([]bool, n)
	order := make([]int, 0, n)
	cur := start
	for len(order) < n {
		best, bestD := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if h := Hamming(cur, cities[i]); h < bestD {
				best, bestD = i, h
			}
		}
		used[best] = true
		order = append(order, best)
		cur = cities[best]
	}
	return order, walkCost(start, end, cities, order)
}

// twoOpt improves an order by segment reversals until a local optimum.
func twoOpt(start, end uint64, cities []uint64, order []int, cost int) ([]int, int) {
	n := len(order)
	if n < 3 {
		return order, cost
	}
	at := func(i int) uint64 {
		switch {
		case i < 0:
			return start
		case i >= n:
			return end
		default:
			return cities[order[i]]
		}
	}
	improved := true
	for rounds := 0; improved && rounds < 4*n; rounds++ {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse order[i..j]: edges (i-1,i) and (j,j+1) are replaced
				// by (i-1,j) and (i,j+1).
				delta := Hamming(at(i-1), at(j)) + Hamming(at(i), at(j+1)) -
					Hamming(at(i-1), at(i)) - Hamming(at(j), at(j+1))
				if delta < 0 {
					for l, r := i, j; l < r; l, r = l+1, r-1 {
						order[l], order[r] = order[r], order[l]
					}
					cost += delta
					improved = true
				}
			}
		}
	}
	return order, cost
}

// WalkVertices expands a visiting order into the concrete vertex walk
// through Q_k, gluing greedy bit-fixing paths between consecutive stops.
// The result includes start and end (even when they coincide with stops).
func WalkVertices(start, end uint64, cities []uint64, order []int) ([]uint64, error) {
	if len(order) != len(cities) {
		return nil, fmt.Errorf("hypercube: order length %d != cities %d", len(order), len(cities))
	}
	walk := []uint64{start}
	cur := start
	seen := make([]bool, len(cities))
	for _, i := range order {
		if i < 0 || i >= len(cities) {
			return nil, fmt.Errorf("hypercube: order index %d out of range", i)
		}
		if seen[i] {
			return nil, fmt.Errorf("hypercube: order visits city %d twice", i)
		}
		seen[i] = true
		seg := BitFixPath(cur, cities[i])
		walk = append(walk, seg[1:]...)
		cur = cities[i]
	}
	seg := BitFixPath(cur, end)
	walk = append(walk, seg[1:]...)
	return walk, nil
}
