package hypercube

import (
	"fmt"
	"math/bits"
)

// Hamiltonian paths in Q_k (Havel's theorem): a Hamiltonian path between
// vertices a and b exists iff their parities differ (the hypercube is
// bipartite by parity, and a Hamiltonian path alternates sides, so the two
// endpoints of a path covering the even number 2^k of vertices must lie on
// opposite sides). The classical recursive construction splits the cube
// along a dimension where a and b differ, routes a to a parity-compatible
// border vertex in its half, crosses, and finishes in the other half.
//
// This is the linear-array (and, via closing edges, ring) embedding
// primitive for son-cubes: any two processors of opposite parity can be
// joined by a path visiting every processor exactly once.

// Parity returns the bit-parity of a label (0 or 1).
func Parity(v uint64) int { return bits.OnesCount64(v) & 1 }

// MaxHamiltonDim bounds the materialized path length (2^20 vertices).
const MaxHamiltonDim = 20

// HamiltonianPath returns a path from a to b visiting every vertex of Q_k
// exactly once. It errors when k is out of range, a or b is invalid,
// a == b, or their parities coincide (no such path exists).
func HamiltonianPath(k int, a, b uint64) ([]uint64, error) {
	if err := CheckVertex(k, a); err != nil {
		return nil, err
	}
	if err := CheckVertex(k, b); err != nil {
		return nil, err
	}
	if k < 1 || k > MaxHamiltonDim {
		return nil, fmt.Errorf("hypercube: Hamiltonian path wants 1 <= k <= %d, have %d", MaxHamiltonDim, k)
	}
	if a == b {
		return nil, fmt.Errorf("hypercube: a == b (%#x)", a)
	}
	if Parity(a) == Parity(b) {
		return nil, fmt.Errorf("hypercube: no Hamiltonian path between same-parity vertices %#x and %#x", a, b)
	}
	out := make([]uint64, 0, 1<<uint(k))
	dims := make([]int, k)
	for i := range dims {
		dims[i] = i
	}
	hamiltonRec(dims, a, b, &out)
	return out, nil
}

// hamiltonRec appends the Hamiltonian path from a to b of the subcube
// spanned by the free dimensions dims (a and b agree on every other bit,
// which simply rides along). Invariant: a and b have different parity, so
// they differ in an odd number >= 1 of free dimensions; the invariant is
// re-established in both recursive calls.
func hamiltonRec(dims []int, a, b uint64, out *[]uint64) {
	if len(dims) == 1 {
		*out = append(*out, a, b)
		return
	}
	// Split along a dimension d where a and b differ.
	d, di := -1, -1
	for i, dim := range dims {
		if (a^b)>>uint(dim)&1 == 1 {
			d, di = dim, i
			break
		}
	}
	rest := make([]int, 0, len(dims)-1)
	rest = append(rest, dims[:di]...)
	rest = append(rest, dims[di+1:]...)

	// Border vertex c in a's half: flip one free dimension other than d, so
	// parity(c) != parity(a) — the first recursive call is well-posed. Its
	// cross-neighbor c' = c^e_d then has parity(c') != parity(b) for the
	// second call: parity(c) == parity(b) and the d-flip toggles it. The
	// endpoints never collide: c' == b would need a and b to differ in
	// exactly two dimensions (rest[0] and d), i.e. have equal parity —
	// excluded by the invariant.
	c := a ^ (1 << uint(rest[0]))
	hamiltonRec(rest, a, c, out)
	hamiltonRec(rest, c^(1<<uint(d)), b, out)
}

// HamiltonianCycle returns a cycle visiting every vertex of Q_k exactly
// once, as a vertex list whose last element is adjacent to the first (the
// reflected Gray code). k >= 2 (Q_1's "cycle" would reuse its single edge).
func HamiltonianCycle(k int) ([]uint64, error) {
	if k < 2 {
		return nil, fmt.Errorf("hypercube: Hamiltonian cycle needs k >= 2, have %d", k)
	}
	return GraySequence(k)
}
