package hypercube

import (
	"fmt"

	"repro/internal/flow"
)

// MaxFanDim bounds the cube dimension accepted by Fan: the exact min-cost
// flow solver runs on the 2·2^k-vertex split graph, so we keep k small. The
// hierarchical hypercube only ever needs k = m <= 6.
const MaxFanDim = 16

// Fan returns len(targets) vertex paths in Q_k from src to each target such
// that the paths pairwise share only src and no path passes through another
// target. Targets must be distinct, different from src, and at most k of
// them (Q_k is k-connected, so a fan of size <= k always exists by the fan
// lemma; the solver proves it constructively). The returned family has
// minimum total length and is index-aligned with targets.
func Fan(k int, src uint64, targets []uint64) ([][]uint64, error) {
	if err := CheckVertex(k, src); err != nil {
		return nil, err
	}
	if k > MaxFanDim {
		return nil, fmt.Errorf("hypercube: fan dimension %d exceeds %d", k, MaxFanDim)
	}
	if len(targets) > k {
		return nil, fmt.Errorf("hypercube: fan of %d targets exceeds connectivity %d", len(targets), k)
	}
	for _, t := range targets {
		if err := CheckVertex(k, t); err != nil {
			return nil, err
		}
	}
	if len(targets) == 0 {
		return nil, nil
	}
	g, err := NewGraph(k)
	if err != nil {
		return nil, err
	}
	return flow.VertexDisjointFan(g, src, targets)
}
