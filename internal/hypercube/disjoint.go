package hypercube

import (
	"fmt"
	"math/bits"
)

// This file implements the classical rotation/detour family of node-disjoint
// paths between two hypercube vertices a and b. Write D for the set of
// dimensions where a and b differ and fix one cyclic order σ of D.
//
//   - The rotation starting at σ_i flips the dimensions of D in cyclic order
//     σ_i, σ_{i+1}, …, σ_{i-1}. Its intermediate vertices are a ⊕ (XOR of a
//     cyclic run of σ that starts at position i); two runs with different
//     start positions are never equal as sets unless they are the full
//     circle, so the |D| rotations are pairwise internally disjoint.
//   - The detour through j ∉ D flips j, then all of D in the base order
//     σ_0…σ_{d-1}, then j again. All its intermediate vertices differ from a
//     in bit j, while no rotation vertex does, and two detours through
//     different j are separated the same way — so the whole family of
//     rotations plus detours is pairwise internally disjoint.
//
// Each path's first and last dimensions are pairwise distinct across the
// family (rotations take distinct starts/ends inside D, detours take their
// own j ∉ D at both ends). The hierarchical-hypercube construction in
// internal/core leans on exactly this port discipline.

// Rotation returns the dimension sequence of the rotation of order starting
// at index i (order is the cyclic order of the differing dimensions).
func Rotation(order []int, i int) []int {
	d := len(order)
	seq := make([]int, d)
	for k := 0; k < d; k++ {
		seq[k] = order[(i+k)%d]
	}
	return seq
}

// Detour returns the dimension sequence j, order…, j for j outside order.
func Detour(order []int, j int) []int {
	seq := make([]int, 0, len(order)+2)
	seq = append(seq, j)
	seq = append(seq, order...)
	seq = append(seq, j)
	return seq
}

// ApplyDims converts a dimension sequence into the vertex path it traces
// from a (inclusive of both endpoints).
func ApplyDims(a uint64, seq []int) []uint64 {
	path := make([]uint64, len(seq)+1)
	path[0] = a
	cur := a
	for i, d := range seq {
		cur ^= 1 << uint(d)
		path[i+1] = cur
	}
	return path
}

// checkOrder validates that order is a permutation of Dims(mask).
func checkOrder(mask uint64, order []int) error {
	if len(order) != bits.OnesCount64(mask) {
		return fmt.Errorf("hypercube: order has %d dims, mask has %d", len(order), bits.OnesCount64(mask))
	}
	var seen uint64
	for _, d := range order {
		if d < 0 || d >= 64 {
			return fmt.Errorf("hypercube: dimension %d out of range", d)
		}
		bit := uint64(1) << uint(d)
		if mask&bit == 0 {
			return fmt.Errorf("hypercube: dimension %d not in mask %#x", d, mask)
		}
		if seen&bit != 0 {
			return fmt.Errorf("hypercube: dimension %d repeated in order", d)
		}
		seen |= bit
	}
	return nil
}

// DisjointDimSequences returns count pairwise internally node-disjoint paths
// from a to b in Q_k as dimension sequences: all |D| rotations of the given
// cyclic order first (shortest, length |D|), then detours through the
// smallest dimensions outside D (length |D|+2). order may be nil for the
// ascending order of D. count must be between 1 and k.
func DisjointDimSequences(k int, a, b uint64, count int, order []int) ([][]int, error) {
	if err := CheckVertex(k, a); err != nil {
		return nil, err
	}
	if err := CheckVertex(k, b); err != nil {
		return nil, err
	}
	if a == b {
		return nil, fmt.Errorf("hypercube: a == b (%#x)", a)
	}
	if count < 1 || count > k {
		return nil, fmt.Errorf("hypercube: count %d out of range [1,%d]", count, k)
	}
	mask := a ^ b
	if order == nil {
		order = Dims(mask)
	} else if err := checkOrder(mask, order); err != nil {
		return nil, err
	}
	d := len(order)
	seqs := make([][]int, 0, count)
	for i := 0; i < d && len(seqs) < count; i++ {
		seqs = append(seqs, Rotation(order, i))
	}
	for j := 0; j < k && len(seqs) < count; j++ {
		if mask&(1<<uint(j)) == 0 {
			seqs = append(seqs, Detour(order, j))
		}
	}
	if len(seqs) < count {
		return nil, fmt.Errorf("hypercube: only %d disjoint paths available, want %d", len(seqs), count)
	}
	return seqs, nil
}

// DisjointPaths returns count pairwise internally node-disjoint vertex paths
// between a and b in Q_k (count <= k = the connectivity of Q_k, so the
// maximum family has count = k). Path lengths are |D| for the first |D|
// paths and |D|+2 for the rest — at most dist(a,b)+2, which is optimal.
func DisjointPaths(k int, a, b uint64, count int) ([][]uint64, error) {
	seqs, err := DisjointDimSequences(k, a, b, count, nil)
	if err != nil {
		return nil, err
	}
	paths := make([][]uint64, len(seqs))
	for i, s := range seqs {
		paths[i] = ApplyDims(a, s)
	}
	return paths, nil
}

// VerifyDisjoint checks that the given vertex paths all run from a to b in
// Q_k, are individually simple, and share no vertex besides a and b.
func VerifyDisjoint(k int, a, b uint64, paths [][]uint64) error {
	seen := make(map[uint64]int)
	for pi, p := range paths {
		if err := VerifyPath(k, a, b, p); err != nil {
			return fmt.Errorf("path %d: %w", pi, err)
		}
		for _, v := range p[1 : len(p)-1] {
			if prev, ok := seen[v]; ok {
				return fmt.Errorf("hypercube: paths %d and %d share internal vertex %#x", prev, pi, v)
			}
			seen[v] = pi
		}
	}
	return nil
}
