package hypercube

import (
	"math/rand"
	"testing"
)

// verifyHamiltonianPath checks a covers-everything simple path.
func verifyHamiltonianPath(t *testing.T, k int, a, b uint64, p []uint64) {
	t.Helper()
	if len(p) != 1<<uint(k) {
		t.Fatalf("path covers %d of %d vertices", len(p), 1<<uint(k))
	}
	if p[0] != a || p[len(p)-1] != b {
		t.Fatalf("endpoints %#x..%#x, want %#x..%#x", p[0], p[len(p)-1], a, b)
	}
	seen := make(map[uint64]bool, len(p))
	for i, v := range p {
		if err := CheckVertex(k, v); err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("vertex %#x repeated", v)
		}
		seen[v] = true
		if i > 0 && Hamming(p[i-1], v) != 1 {
			t.Fatalf("not adjacent at step %d: %#x -> %#x", i, p[i-1], v)
		}
	}
}

// TestHamiltonianPathExhaustive builds a Hamiltonian path between every
// opposite-parity pair of Q_1..Q_5 (Havel's theorem, constructively).
func TestHamiltonianPathExhaustive(t *testing.T) {
	for k := 1; k <= 5; k++ {
		n := uint64(1) << uint(k)
		for a := uint64(0); a < n; a++ {
			for b := uint64(0); b < n; b++ {
				if Parity(a) == Parity(b) {
					continue
				}
				p, err := HamiltonianPath(k, a, b)
				if err != nil {
					t.Fatalf("k=%d %#x->%#x: %v", k, a, b, err)
				}
				verifyHamiltonianPath(t, k, a, b, p)
			}
		}
	}
}

func TestHamiltonianPathLargeK(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, k := range []int{10, 14} {
		mask := uint64(1<<uint(k) - 1)
		for trial := 0; trial < 10; trial++ {
			a := r.Uint64() & mask
			b := r.Uint64() & mask
			if Parity(a) == Parity(b) {
				b ^= 1
			}
			p, err := HamiltonianPath(k, a, b)
			if err != nil {
				t.Fatal(err)
			}
			verifyHamiltonianPath(t, k, a, b, p)
		}
	}
}

func TestHamiltonianPathErrors(t *testing.T) {
	if _, err := HamiltonianPath(3, 0, 3); err == nil {
		t.Error("same parity accepted")
	}
	if _, err := HamiltonianPath(3, 5, 5); err == nil {
		t.Error("a == b accepted")
	}
	if _, err := HamiltonianPath(3, 9, 0); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := HamiltonianPath(MaxHamiltonDim+1, 0, 1); err == nil {
		t.Error("oversized k accepted")
	}
	if _, err := HamiltonianPath(0, 0, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestParity(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 0, 7: 1, 0xFF: 0}
	for v, want := range cases {
		if got := Parity(v); got != want {
			t.Errorf("Parity(%#x) = %d, want %d", v, got, want)
		}
	}
}

func TestHamiltonianCycle(t *testing.T) {
	cyc, err := HamiltonianCycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cyc) != 32 {
		t.Fatalf("cycle covers %d", len(cyc))
	}
	seen := map[uint64]bool{}
	for i, v := range cyc {
		if seen[v] {
			t.Fatalf("repeat %#x", v)
		}
		seen[v] = true
		next := cyc[(i+1)%len(cyc)]
		if Hamming(v, next) != 1 {
			t.Fatalf("cycle breaks at %d", i)
		}
	}
	if _, err := HamiltonianCycle(1); err == nil {
		t.Fatal("Q_1 cycle accepted")
	}
}
