// Package hypercube implements the binary hypercube Q_k over uint64 vertex
// labels (k <= 64) together with the classical algorithmic toolkit this
// repository's hierarchical-hypercube construction is built from: Gray
// codes, greedy bit-fixing paths, the rotation/detour family of k
// node-disjoint paths, exact fans (one-to-many disjoint paths), and optimal
// set-visiting walks.
//
// Both "halves" of a hierarchical hypercube are hypercubes — the m-cube of
// processors inside a son-cube and the 2^m-cube of son-cube addresses — so
// everything here is exercised at two very different scales by the core
// construction.
package hypercube

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MaxDim is the largest supported cube dimension: labels are uint64 bit
// vectors.
const MaxDim = 64

// CheckDim validates a cube dimension.
func CheckDim(k int) error {
	if k < 0 || k > MaxDim {
		return fmt.Errorf("hypercube: dimension %d out of range [0,%d]", k, MaxDim)
	}
	return nil
}

// CheckVertex validates that v is a k-bit label.
func CheckVertex(k int, v uint64) error {
	if err := CheckDim(k); err != nil {
		return err
	}
	if k < 64 && v>>uint(k) != 0 {
		return fmt.Errorf("hypercube: vertex %#x exceeds %d bits", v, k)
	}
	return nil
}

// Hamming returns the Hamming distance between two labels, which equals the
// shortest-path distance between the corresponding vertices of any Q_k that
// contains both.
func Hamming(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// Neighbors appends the k neighbors of v in Q_k to buf.
func Neighbors(k int, v uint64, buf []uint64) []uint64 {
	for i := 0; i < k; i++ {
		buf = append(buf, v^(1<<uint(i)))
	}
	return buf
}

// Dims returns the positions of the set bits of mask in ascending order.
func Dims(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &= mask - 1
	}
	return out
}

// BitFixPath returns the greedy shortest path from a to b in a hypercube:
// differing bits are fixed from least significant to most significant. The
// returned slice includes both endpoints; for a == b it is the single vertex.
func BitFixPath(a, b uint64) []uint64 {
	path := make([]uint64, 1, Hamming(a, b)+1)
	path[0] = a
	cur := a
	diff := a ^ b
	for diff != 0 {
		i := bits.TrailingZeros64(diff)
		cur ^= 1 << uint(i)
		diff &= diff - 1
		path = append(path, cur)
	}
	return path
}

// Graph adapts Q_k to graph.Graph for dense traversal. Limited to k <= 26
// so that distance arrays stay reasonable.
type Graph struct{ k int }

// NewGraph returns the dense view of Q_k.
func NewGraph(k int) (*Graph, error) {
	if err := CheckDim(k); err != nil {
		return nil, err
	}
	if k > 26 {
		return nil, fmt.Errorf("%w: Q_%d has 2^%d vertices", graph.ErrTooLarge, k, k)
	}
	return &Graph{k: k}, nil
}

// Dim returns k.
func (g *Graph) Dim() int { return g.k }

// Order implements graph.Graph.
func (g *Graph) Order() int64 { return 1 << uint(g.k) }

// MaxDegree implements graph.Graph.
func (g *Graph) MaxDegree() int { return g.k }

// Neighbors implements graph.Graph.
func (g *Graph) Neighbors(v uint64, buf []uint64) []uint64 {
	return Neighbors(g.k, v, buf)
}

// VerifyPath checks that path is a simple path in Q_k from a to b.
func VerifyPath(k int, a, b uint64, path []uint64) error {
	if len(path) == 0 {
		return fmt.Errorf("hypercube: empty path")
	}
	if path[0] != a || path[len(path)-1] != b {
		return fmt.Errorf("hypercube: path endpoints %#x..%#x, want %#x..%#x",
			path[0], path[len(path)-1], a, b)
	}
	seen := make(map[uint64]bool, len(path))
	for i, v := range path {
		if err := CheckVertex(k, v); err != nil {
			return err
		}
		if seen[v] {
			return fmt.Errorf("hypercube: vertex %#x repeated in path", v)
		}
		seen[v] = true
		if i > 0 && Hamming(path[i-1], v) != 1 {
			return fmt.Errorf("hypercube: %#x and %#x not adjacent at step %d", path[i-1], v, i)
		}
	}
	return nil
}
