package hypercube

import (
	"math/rand"
	"testing"
)

// TestBinomialTreeExhaustive verifies the full tree structure from every
// root of Q_1..Q_6.
func TestBinomialTreeExhaustive(t *testing.T) {
	for k := 1; k <= 6; k++ {
		n := uint64(1) << uint(k)
		for root := uint64(0); root < n; root++ {
			if err := VerifyBinomialTree(k, root); err != nil {
				t.Fatalf("k=%d root=%#x: %v", k, root, err)
			}
		}
	}
}

func TestBinomialParentBasics(t *testing.T) {
	// Root is its own parent.
	p, err := BinomialParent(4, 0b1010, 0b1010)
	if err != nil || p != 0b1010 {
		t.Fatalf("root parent = %#x, %v", p, err)
	}
	// Highest differing bit is cleared (toward the root).
	p, err = BinomialParent(4, 0b0000, 0b1010)
	if err != nil || p != 0b0010 {
		t.Fatalf("parent(1010) = %#x, want 0010", p)
	}
	if _, err := BinomialParent(3, 9, 0); err == nil {
		t.Fatal("invalid root accepted")
	}
	if _, err := BinomialParent(3, 0, 9); err == nil {
		t.Fatal("invalid vertex accepted")
	}
}

func TestBinomialDepthSumsToTreeSize(t *testing.T) {
	// Sum over w of C(k, depth) layers: level d holds C(k, d) vertices.
	const k = 5
	counts := make([]int, k+1)
	for w := uint64(0); w < 1<<k; w++ {
		counts[BinomialDepth(0b10101, w)]++
	}
	want := []int{1, 5, 10, 10, 5, 1}
	for d, c := range counts {
		if c != want[d] {
			t.Fatalf("level %d holds %d, want %d", d, c, want[d])
		}
	}
}

func TestBinomialRounds(t *testing.T) {
	for k := 1; k <= 10; k++ {
		if BinomialRounds(k) != k {
			t.Fatalf("rounds(%d) = %d", k, BinomialRounds(k))
		}
	}
}

func TestBinomialChildrenRandomConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const k = 16
	for trial := 0; trial < 200; trial++ {
		root := r.Uint64() & 0xFFFF
		w := r.Uint64() & 0xFFFF
		children, err := BinomialChildren(k, root, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range children {
			p, err := BinomialParent(k, root, c)
			if err != nil || p != w {
				t.Fatalf("child %#x of %#x has parent %#x (%v)", c, w, p, err)
			}
			if BinomialDepth(root, c) != BinomialDepth(root, w)+1 {
				t.Fatalf("child depth not parent+1")
			}
		}
	}
	if _, err := BinomialChildren(3, 0, 9); err == nil {
		t.Fatal("invalid vertex accepted")
	}
}
