package hypercube

import (
	"math/rand"
	"testing"
)

// verifyFan checks the strong fan property: valid simple paths from src to
// each target, pairwise sharing only src, no path crossing another target.
func verifyFan(t *testing.T, k int, src uint64, targets []uint64, fan [][]uint64) {
	t.Helper()
	if len(fan) != len(targets) {
		t.Fatalf("fan has %d paths, want %d", len(fan), len(targets))
	}
	targetSet := map[uint64]bool{}
	for _, tg := range targets {
		targetSet[tg] = true
	}
	seen := map[uint64]int{}
	for i, p := range fan {
		if err := VerifyPath(k, src, targets[i], p); err != nil {
			t.Fatalf("fan path %d: %v", i, err)
		}
		for _, v := range p[1:] {
			if v != targets[i] && targetSet[v] {
				t.Fatalf("fan path %d passes through foreign target %#x", i, v)
			}
		}
		for _, v := range p[1:] {
			if prev, ok := seen[v]; ok {
				t.Fatalf("fan paths %d and %d share %#x", prev, i, v)
			}
			seen[v] = i
		}
	}
}

// TestFanExhaustiveQ3 tries every source and every full-size target set in
// Q_3 (8 vertices, C(7,3)=35 target sets per source).
func TestFanExhaustiveQ3(t *testing.T) {
	const k = 3
	for src := uint64(0); src < 8; src++ {
		var others []uint64
		for v := uint64(0); v < 8; v++ {
			if v != src {
				others = append(others, v)
			}
		}
		for i := 0; i < len(others); i++ {
			for j := i + 1; j < len(others); j++ {
				for l := j + 1; l < len(others); l++ {
					targets := []uint64{others[i], others[j], others[l]}
					fan, err := Fan(k, src, targets)
					if err != nil {
						t.Fatalf("Fan(src=%#x, %v): %v", src, targets, err)
					}
					verifyFan(t, k, src, targets, fan)
				}
			}
		}
	}
}

// TestFanRandom exercises larger cubes with random target sets.
func TestFanRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, k := range []int{4, 5, 6} {
		for trial := 0; trial < 100; trial++ {
			src := r.Uint64() & (1<<uint(k) - 1)
			size := 1 + r.Intn(k)
			seen := map[uint64]bool{src: true}
			targets := make([]uint64, 0, size)
			for len(targets) < size {
				v := r.Uint64() & (1<<uint(k) - 1)
				if !seen[v] {
					seen[v] = true
					targets = append(targets, v)
				}
			}
			fan, err := Fan(k, src, targets)
			if err != nil {
				t.Fatalf("k=%d Fan: %v", k, err)
			}
			verifyFan(t, k, src, targets, fan)
		}
	}
}

// TestFanNeighborsOnly: when the targets are exactly the k neighbors of src,
// the fan must be the k single edges.
func TestFanNeighborsOnly(t *testing.T) {
	const k = 4
	src := uint64(0b0110)
	targets := Neighbors(k, src, nil)
	fan, err := Fan(k, src, targets)
	if err != nil {
		t.Fatal(err)
	}
	verifyFan(t, k, src, targets, fan)
	for i, p := range fan {
		if len(p) != 2 {
			t.Fatalf("path %d to neighbor has length %d, want 1 edge", i, len(p)-1)
		}
	}
}

func TestFanErrors(t *testing.T) {
	if _, err := Fan(3, 0, []uint64{0}); err == nil {
		t.Error("target == src: want error")
	}
	if _, err := Fan(3, 0, []uint64{1, 1}); err == nil {
		t.Error("duplicate target: want error")
	}
	if _, err := Fan(3, 0, []uint64{1, 2, 4, 7}); err == nil {
		t.Error("more targets than connectivity: want error")
	}
	if _, err := Fan(3, 0, []uint64{9}); err == nil {
		t.Error("target out of range: want error")
	}
	if got, err := Fan(3, 0, nil); err != nil || got != nil {
		t.Errorf("empty fan: got %v, %v", got, err)
	}
	if _, err := Fan(MaxFanDim+1, 0, []uint64{1}); err == nil {
		t.Error("dimension too large: want error")
	}
}
