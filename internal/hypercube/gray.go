package hypercube

// Gray returns the i-th element of the reflected binary Gray code. Successive
// values differ in exactly one bit, so Gray(0..2^k-1) is a Hamiltonian path
// of Q_k (and a Hamiltonian cycle, since Gray(2^k-1) and Gray(0) also differ
// in one bit).
func Gray(i uint64) uint64 { return i ^ (i >> 1) }

// GrayRank inverts Gray: GrayRank(Gray(i)) == i.
func GrayRank(g uint64) uint64 {
	var i uint64
	for ; g != 0; g >>= 1 {
		i ^= g
	}
	return i
}

// GraySequence returns the full k-bit Gray sequence, a Hamiltonian cycle
// of Q_k listed as 2^k vertices.
func GraySequence(k int) ([]uint64, error) {
	if err := CheckDim(k); err != nil {
		return nil, err
	}
	if k > 26 {
		return nil, errGrayTooBig(k)
	}
	out := make([]uint64, 1<<uint(k))
	for i := range out {
		out[i] = Gray(uint64(i))
	}
	return out, nil
}

type errGrayTooBig int

func (e errGrayTooBig) Error() string { return "hypercube: Gray sequence too large to materialize" }
