package hypercube_test

import (
	"fmt"
	"log"

	"repro/internal/hypercube"
)

// ExampleDisjointPaths builds the classical maximum family of node-disjoint
// paths between two hypercube vertices.
func ExampleDisjointPaths() {
	paths, err := hypercube.DisjointPaths(4, 0b0000, 0b0111, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paths:", len(paths))
	fmt.Println("disjoint:", hypercube.VerifyDisjoint(4, 0b0000, 0b0111, paths) == nil)
	// Rotations have length dist = 3; detours dist+2 = 5.
	for _, p := range paths {
		fmt.Print(len(p)-1, " ")
	}
	fmt.Println()
	// Output:
	// paths: 4
	// disjoint: true
	// 3 3 3 5
}

// ExampleHamiltonianPath visits every vertex of Q_4 exactly once between
// two opposite-parity endpoints (Havel's theorem, constructively).
func ExampleHamiltonianPath() {
	p, err := hypercube.HamiltonianPath(4, 0b0000, 0b1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vertices:", len(p))
	fmt.Println("start:", p[0], "end:", p[len(p)-1])
	// Output:
	// vertices: 16
	// start: 0 end: 8
}

// ExampleSetWalk solves the visiting-order problem at the heart of HHC
// routing: the shortest walk from start to end through all cities.
func ExampleSetWalk() {
	order, cost, exact := hypercube.SetWalk(0b000, 0b111, []uint64{0b100, 0b001})
	fmt.Println("order:", order, "cost:", cost, "exact:", exact)
	// Output:
	// order: [1 0] cost: 5 exact: true
}
