package hypercube

import (
	"math/rand"
	"testing"
)

// bruteWalk computes the optimal visiting cost by trying every permutation
// (reference implementation for small city counts).
func bruteWalk(start, end uint64, cities []uint64) int {
	n := len(cities)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 1 << 30
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := walkCost(start, end, cities, perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// TestSetWalkMatchesBruteForce compares Held–Karp against exhaustive
// permutation search for random instances with up to 7 cities.
func TestSetWalkMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(7)
		cities := make([]uint64, 0, n)
		seen := map[uint64]bool{}
		for len(cities) < n {
			c := r.Uint64() & 0xFF
			if !seen[c] {
				seen[c] = true
				cities = append(cities, c)
			}
		}
		start, end := r.Uint64()&0xFF, r.Uint64()&0xFF
		order, cost, exact := SetWalk(start, end, cities)
		if !exact {
			t.Fatalf("n=%d should be exact", n)
		}
		if got := walkCost(start, end, cities, order); got != cost {
			t.Fatalf("reported cost %d != recomputed %d", cost, got)
		}
		if want := bruteWalk(start, end, cities); cost != want {
			t.Fatalf("SetWalk cost %d, brute force %d (start=%#x end=%#x cities=%v)",
				cost, want, start, end, cities)
		}
	}
}

func TestSetWalkEmpty(t *testing.T) {
	order, cost, exact := SetWalk(0b1010, 0b0110, nil)
	if len(order) != 0 || !exact {
		t.Fatalf("empty walk: order=%v exact=%v", order, exact)
	}
	if cost != 2 {
		t.Fatalf("cost = %d, want Hamming 2", cost)
	}
}

// TestSetWalkHeuristicSane checks that the heuristic regime (many cities)
// returns a valid order whose reported cost matches the order, and is never
// worse than the trivial Gray-cycle bound.
func TestSetWalkHeuristicSane(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := MaxExactCities + 1 + r.Intn(10)
		seen := map[uint64]bool{}
		cities := make([]uint64, 0, n)
		for len(cities) < n {
			c := r.Uint64() & 0x1F // 5-bit labels
			if !seen[c] {
				seen[c] = true
				cities = append(cities, c)
			}
			if len(seen) == 32 {
				break
			}
		}
		start, end := r.Uint64()&0x1F, r.Uint64()&0x1F
		order, cost, _ := SetWalk(start, end, cities)
		if len(order) != len(cities) {
			t.Fatalf("order visits %d of %d cities", len(order), len(cities))
		}
		if got := walkCost(start, end, cities, order); got != cost {
			t.Fatalf("reported %d != recomputed %d", cost, got)
		}
		// A full 5-bit Gray cycle visits all 32 labels in 32 steps; with the
		// final correction to end the walk can always be kept below
		// 2^5 + 5 + slack. The heuristic must never blow past that.
		if cost > 64 {
			t.Fatalf("heuristic cost %d implausibly high", cost)
		}
	}
}

// TestWalkVertices expands orders into valid walks.
func TestWalkVertices(t *testing.T) {
	cities := []uint64{0b100, 0b001}
	order, _, _ := SetWalk(0, 0b111, cities)
	walk, err := WalkVertices(0, 0b111, cities, order)
	if err != nil {
		t.Fatal(err)
	}
	if walk[0] != 0 || walk[len(walk)-1] != 0b111 {
		t.Fatalf("walk endpoints wrong: %v", walk)
	}
	visited := map[uint64]bool{}
	for i, w := range walk {
		visited[w] = true
		if i > 0 && Hamming(walk[i-1], w) != 1 {
			t.Fatalf("walk not contiguous at %d: %v", i, walk)
		}
	}
	for _, c := range cities {
		if !visited[c] {
			t.Fatalf("walk misses city %#x", c)
		}
	}
	// Error paths.
	if _, err := WalkVertices(0, 1, cities, []int{0}); err == nil {
		t.Fatal("short order: want error")
	}
	if _, err := WalkVertices(0, 1, cities, []int{0, 0}); err == nil {
		t.Fatal("repeated city: want error")
	}
	if _, err := WalkVertices(0, 1, cities, []int{0, 5}); err == nil {
		t.Fatal("out-of-range index: want error")
	}
}
