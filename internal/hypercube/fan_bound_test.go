package hypercube

import (
	"testing"
)

// TestFanLengthBoundExhaustive measures the worst individual fan-path
// length over EVERY (source, full-width target set) instance of Q_2..Q_4:
// 21,840 fans at m=4. The observed maximum is recorded here as a regression
// bound — it is what makes the loose 2^m−1 fan term in core.MaxLenBound so
// conservative in practice (measured: ≤ m+2).
func TestFanLengthBoundExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive fan sweep")
	}
	for k := 2; k <= 4; k++ {
		n := 1 << uint(k)
		worst := 0
		var sweep func(start int, chosen []uint64, src uint64)
		sweep = func(start int, chosen []uint64, src uint64) {
			if len(chosen) == k {
				fan, err := Fan(k, src, chosen)
				if err != nil {
					t.Fatalf("k=%d src=%#x targets=%v: %v", k, src, chosen, err)
				}
				for _, p := range fan {
					if l := len(p) - 1; l > worst {
						worst = l
					}
				}
				return
			}
			for v := start; v < n; v++ {
				if uint64(v) == src {
					continue
				}
				sweep(v+1, append(chosen, uint64(v)), src)
			}
		}
		for src := 0; src < n; src++ {
			sweep(0, nil, uint64(src))
		}
		if worst > k+2 {
			t.Fatalf("k=%d: worst fan path length %d exceeds the empirical bound k+2=%d",
				k, worst, k+2)
		}
		t.Logf("k=%d: worst fan path length %d (bound used in MaxLenBound: %d)", k, worst, 1<<uint(k)-1)
	}
}
