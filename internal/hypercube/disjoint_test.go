package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRotationAndDetour(t *testing.T) {
	order := []int{2, 5, 7}
	rot := Rotation(order, 1)
	want := []int{5, 7, 2}
	for i := range want {
		if rot[i] != want[i] {
			t.Fatalf("Rotation = %v, want %v", rot, want)
		}
	}
	det := Detour(order, 4)
	wantDet := []int{4, 2, 5, 7, 4}
	for i := range wantDet {
		if det[i] != wantDet[i] {
			t.Fatalf("Detour = %v, want %v", det, wantDet)
		}
	}
}

func TestApplyDims(t *testing.T) {
	p := ApplyDims(0b000, []int{0, 2, 0})
	want := []uint64{0b000, 0b001, 0b101, 0b100}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("ApplyDims = %v, want %v", p, want)
		}
	}
}

// TestDisjointPathsExhaustive checks the rotation/detour family on every
// vertex pair of Q_2..Q_5 at full width k, including the optimal length
// bound dist+2.
func TestDisjointPathsExhaustive(t *testing.T) {
	for k := 2; k <= 5; k++ {
		n := uint64(1) << uint(k)
		for a := uint64(0); a < n; a++ {
			for b := uint64(0); b < n; b++ {
				if a == b {
					continue
				}
				paths, err := DisjointPaths(k, a, b, k)
				if err != nil {
					t.Fatalf("k=%d DisjointPaths(%#x,%#x): %v", k, a, b, err)
				}
				if len(paths) != k {
					t.Fatalf("k=%d: got %d paths", k, len(paths))
				}
				if err := VerifyDisjoint(k, a, b, paths); err != nil {
					t.Fatalf("k=%d %#x->%#x: %v", k, a, b, err)
				}
				for _, p := range paths {
					if len(p)-1 > Hamming(a, b)+2 {
						t.Fatalf("k=%d %#x->%#x: path length %d > dist+2", k, a, b, len(p)-1)
					}
				}
			}
		}
	}
}

// TestDisjointPathsLargeK spot-checks wide cubes (up to Q_64) where labels
// exercise the full uint64 range.
func TestDisjointPathsLargeK(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, k := range []int{16, 32, 64} {
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		for i := 0; i < 50; i++ {
			a, b := r.Uint64()&mask, r.Uint64()&mask
			if a == b {
				continue
			}
			count := 8
			paths, err := DisjointPaths(k, a, b, count)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if len(paths) != count {
				t.Fatalf("k=%d: got %d paths, want %d", k, len(paths), count)
			}
			if err := VerifyDisjoint(k, a, b, paths); err != nil {
				t.Fatalf("k=%d %#x->%#x: %v", k, a, b, err)
			}
		}
	}
}

// TestDisjointDimSequencesCustomOrder verifies that any permutation of the
// differing dimensions works as a cyclic order.
func TestDisjointDimSequencesCustomOrder(t *testing.T) {
	a, b := uint64(0b0000), uint64(0b1011)
	orders := [][]int{{0, 1, 3}, {3, 1, 0}, {1, 3, 0}}
	for _, ord := range orders {
		seqs, err := DisjointDimSequences(4, a, b, 4, ord)
		if err != nil {
			t.Fatalf("order %v: %v", ord, err)
		}
		paths := make([][]uint64, len(seqs))
		for i, s := range seqs {
			paths[i] = ApplyDims(a, s)
		}
		if err := VerifyDisjoint(4, a, b, paths); err != nil {
			t.Fatalf("order %v: %v", ord, err)
		}
	}
	// Invalid orders must be rejected.
	bad := [][]int{{0, 1}, {0, 1, 2}, {0, 1, 1}, {0, 1, 64}}
	for _, ord := range bad {
		if _, err := DisjointDimSequences(4, a, b, 4, ord); err == nil {
			t.Fatalf("order %v: want error", ord)
		}
	}
}

func TestDisjointPathsErrors(t *testing.T) {
	if _, err := DisjointPaths(3, 1, 1, 3); err == nil {
		t.Error("a==b: want error")
	}
	if _, err := DisjointPaths(3, 1, 2, 0); err == nil {
		t.Error("count 0: want error")
	}
	if _, err := DisjointPaths(3, 1, 2, 4); err == nil {
		t.Error("count > k: want error")
	}
	if _, err := DisjointPaths(3, 9, 2, 2); err == nil {
		t.Error("vertex out of range: want error")
	}
}

// TestVerifyDisjointDetectsSharing is a failure-injection test: families
// with a shared internal vertex must be rejected.
func TestVerifyDisjointDetectsSharing(t *testing.T) {
	a, b := uint64(0b00), uint64(0b11)
	p1 := []uint64{0b00, 0b01, 0b11}
	p2 := []uint64{0b00, 0b01, 0b11} // same internals
	if err := VerifyDisjoint(2, a, b, [][]uint64{p1, p2}); err == nil {
		t.Fatal("want sharing error")
	}
}

// TestRotationDisjointProperty re-proves the classical disjointness claim by
// randomized property testing in Q_16.
func TestRotationDisjointProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Uint64() & 0xFFFF
		b := r.Uint64() & 0xFFFF
		if a == b {
			return true
		}
		paths, err := DisjointPaths(16, a, b, 16)
		if err != nil {
			return false
		}
		return VerifyDisjoint(16, a, b, paths) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
