package alloc_test

import (
	"fmt"
	"log"

	"repro/internal/alloc"
)

// Example shows the buddy life cycle: split on allocation, merge on free.
func Example() {
	a, err := alloc.New(4) // 16 son-cubes
	if err != nil {
		log.Fatal(err)
	}
	quad, err := a.Alloc(2) // 4 cubes
	if err != nil {
		log.Fatal(err)
	}
	pair, err := a.Alloc(1) // 2 cubes
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("quad at:", quad, "cubes:", alloc.Cubes(quad, 2))
	fmt.Println("pair at:", pair)
	fmt.Println("free:", a.FreeCubes(), "largest order:", a.LargestFree())
	if err := a.Free(quad); err != nil {
		log.Fatal(err)
	}
	if err := a.Free(pair); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after frees, largest order:", a.LargestFree())
	// Output:
	// quad at: 0 cubes: [0 1 2 3]
	// pair at: 4
	// free: 10 largest order: 3
	// after frees, largest order: 4
}
