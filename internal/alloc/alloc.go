// Package alloc implements buddy-style subcube allocation over the
// son-cubes of a hierarchical hypercube: the processor-allocation layer of
// a space-shared machine. A job requesting 2^r son-cubes receives an
// r-dimensional subcube of the super-cube Q_t (all 2^m-bit addresses with
// t−r high bits fixed), so the partition it gets is itself a smaller
// hierarchical machine: communication inside the job (routing, containers,
// rings — everything in this repository) never leaves the allocation.
//
// Aligned power-of-two address ranges are exactly such subcubes, so the
// classical binary buddy discipline applies verbatim: blocks split in
// halves that differ in one address bit, and a freed block re-merges with
// its buddy (base XOR size) whenever both halves are free.
package alloc

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSpace is returned when no sufficiently large subcube is free.
var ErrNoSpace = errors.New("alloc: no free subcube of the requested dimension")

// Allocator manages the 2^t son-cubes of a hierarchical hypercube with
// super-cube dimension t.
type Allocator struct {
	t         int
	free      [][]uint64     // free[r] = sorted bases of free r-dimensional blocks
	allocated map[uint64]int // base -> order of live allocations
}

// New returns an empty allocator for super-cube dimension t (2 <= t <= 32
// covers every supported HHC and keeps bookkeeping cheap).
func New(t int) (*Allocator, error) {
	if t < 1 || t > 32 {
		return nil, fmt.Errorf("alloc: super-cube dimension %d out of range [1,32]", t)
	}
	a := &Allocator{
		t:         t,
		free:      make([][]uint64, t+1),
		allocated: make(map[uint64]int),
	}
	a.free[t] = []uint64{0} // one block: the whole machine
	return a, nil
}

// T returns the super-cube dimension.
func (a *Allocator) T() int { return a.t }

// Alloc reserves an r-dimensional subcube (2^r son-cubes) and returns its
// base address (low r bits zero). Smallest sufficient free block is split
// buddy-style until it has the right size.
func (a *Allocator) Alloc(r int) (uint64, error) {
	if r < 0 || r > a.t {
		return 0, fmt.Errorf("alloc: order %d out of range [0,%d]", r, a.t)
	}
	// Find the smallest order >= r with a free block.
	order := -1
	for o := r; o <= a.t; o++ {
		if len(a.free[o]) > 0 {
			order = o
			break
		}
	}
	if order < 0 {
		return 0, ErrNoSpace
	}
	// Take the lowest base (deterministic) and split down to order r.
	base := a.free[order][0]
	a.free[order] = a.free[order][1:]
	for o := order; o > r; o-- {
		buddy := base | 1<<uint(o-1)
		a.insertFree(o-1, buddy)
	}
	a.allocated[base] = r
	return base, nil
}

// Free releases a previously allocated subcube by base address, merging
// with free buddies as far as possible.
func (a *Allocator) Free(base uint64) error {
	r, ok := a.allocated[base]
	if !ok {
		return fmt.Errorf("alloc: base %#x is not an allocation", base)
	}
	delete(a.allocated, base)
	for r < a.t {
		buddy := base ^ 1<<uint(r)
		if !a.removeFree(r, buddy) {
			break
		}
		if buddy < base {
			base = buddy
		}
		r++
	}
	a.insertFree(r, base)
	return nil
}

// insertFree adds a base to the sorted free list of the given order.
func (a *Allocator) insertFree(order int, base uint64) {
	lst := a.free[order]
	i := sort.Search(len(lst), func(k int) bool { return lst[k] >= base })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = base
	a.free[order] = lst
}

// removeFree removes a base from a free list, reporting whether it was there.
func (a *Allocator) removeFree(order int, base uint64) bool {
	lst := a.free[order]
	i := sort.Search(len(lst), func(k int) bool { return lst[k] >= base })
	if i == len(lst) || lst[i] != base {
		return false
	}
	a.free[order] = append(lst[:i], lst[i+1:]...)
	return true
}

// FreeCubes returns how many son-cubes are currently free.
func (a *Allocator) FreeCubes() uint64 {
	var total uint64
	for o, lst := range a.free {
		total += uint64(len(lst)) << uint(o)
	}
	return total
}

// LargestFree returns the dimension of the largest allocatable subcube, or
// -1 when nothing is free.
func (a *Allocator) LargestFree() int {
	for o := a.t; o >= 0; o-- {
		if len(a.free[o]) > 0 {
			return o
		}
	}
	return -1
}

// Live returns the number of outstanding allocations.
func (a *Allocator) Live() int { return len(a.allocated) }

// Fragmentation returns 1 − (largest free block)/(total free), the classic
// external-fragmentation measure: 0 when the free space is one block, and
// approaching 1 when it is shattered. Returns 0 when nothing is free.
func (a *Allocator) Fragmentation() float64 {
	total := a.FreeCubes()
	if total == 0 {
		return 0
	}
	largest := a.LargestFree()
	return 1 - float64(uint64(1)<<uint(largest))/float64(total)
}

// Cubes lists the son-cube addresses of an allocation (base, r): the base
// with every combination of its low r bits.
func Cubes(base uint64, r int) []uint64 {
	out := make([]uint64, 1<<uint(r))
	for i := range out {
		out[i] = base | uint64(i)
	}
	return out
}
