package alloc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hypercube"
)

func mustNew(t *testing.T, dim int) *Allocator {
	t.Helper()
	a, err := New(dim)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewBounds(t *testing.T) {
	for _, d := range []int{0, 33, -1} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%d): want error", d)
		}
	}
	a := mustNew(t, 4)
	if a.T() != 4 || a.FreeCubes() != 16 || a.LargestFree() != 4 || a.Live() != 0 {
		t.Fatalf("fresh allocator state wrong: free=%d largest=%d", a.FreeCubes(), a.LargestFree())
	}
	if a.Fragmentation() != 0 {
		t.Fatal("fresh allocator fragmented")
	}
}

func TestAllocSplitsAndAligns(t *testing.T) {
	a := mustNew(t, 4)
	base, err := a.Alloc(2) // 4 son-cubes
	if err != nil {
		t.Fatal(err)
	}
	if base%4 != 0 {
		t.Fatalf("base %#x not aligned to order 2", base)
	}
	if a.FreeCubes() != 12 || a.Live() != 1 {
		t.Fatalf("after alloc: free=%d live=%d", a.FreeCubes(), a.Live())
	}
	// The allocation is a genuine subcube: all pairwise Hamming distances
	// confined to the low 2 bits.
	for _, c := range Cubes(base, 2) {
		if c&^uint64(3) != base {
			t.Fatalf("cube %#x outside subcube at %#x", c, base)
		}
	}
}

func TestAllocNoOverlapExhaustion(t *testing.T) {
	a := mustNew(t, 3)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		base, err := a.Alloc(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		for _, c := range Cubes(base, 0) {
			if seen[c] {
				t.Fatalf("cube %#x double-allocated", c)
			}
			seen[c] = true
		}
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("full machine should return ErrNoSpace, got %v", err)
	}
	if a.FreeCubes() != 0 || a.LargestFree() != -1 {
		t.Fatal("full machine misreports free space")
	}
}

func TestFreeMergesBuddies(t *testing.T) {
	a := mustNew(t, 4)
	bases := make([]uint64, 0, 16)
	for i := 0; i < 16; i++ {
		b, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
	}
	// Free everything in a shuffled order: the machine must coalesce back
	// to one 4-dimensional block.
	r := rand.New(rand.NewSource(3))
	r.Shuffle(len(bases), func(i, j int) { bases[i], bases[j] = bases[j], bases[i] })
	for _, b := range bases {
		if err := a.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	if a.LargestFree() != 4 || a.FreeCubes() != 16 || a.Fragmentation() != 0 {
		t.Fatalf("not fully merged: largest=%d free=%d frag=%.2f",
			a.LargestFree(), a.FreeCubes(), a.Fragmentation())
	}
}

func TestFreeErrors(t *testing.T) {
	a := mustNew(t, 3)
	if err := a.Free(0); err == nil {
		t.Error("freeing unallocated base accepted")
	}
	base, _ := a.Alloc(1)
	if err := a.Free(base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(base); err == nil {
		t.Error("double free accepted")
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := a.Alloc(4); err == nil {
		t.Error("oversized order accepted")
	}
}

// TestRandomizedAgainstBitmapOracle drives random alloc/free traffic and
// cross-checks every state against a brute-force bitmap of cube ownership.
func TestRandomizedAgainstBitmapOracle(t *testing.T) {
	const dim = 6
	a := mustNew(t, dim)
	owner := make([]int, 1<<dim) // 0 free, else allocation tag
	live := map[uint64]struct {
		order int
		tag   int
	}{}
	r := rand.New(rand.NewSource(77))
	tag := 0
	for step := 0; step < 5000; step++ {
		if r.Intn(2) == 0 {
			order := r.Intn(4)
			base, err := a.Alloc(order)
			if errors.Is(err, ErrNoSpace) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			tag++
			for _, c := range Cubes(base, order) {
				if owner[c] != 0 {
					t.Fatalf("step %d: cube %#x already owned by %d", step, c, owner[c])
				}
				owner[c] = tag
			}
			live[base] = struct {
				order int
				tag   int
			}{order, tag}
		} else if len(live) > 0 {
			// Free a random live allocation.
			var base uint64
			k := r.Intn(len(live))
			for b := range live {
				if k == 0 {
					base = b
					break
				}
				k--
			}
			info := live[base]
			delete(live, base)
			if err := a.Free(base); err != nil {
				t.Fatal(err)
			}
			for _, c := range Cubes(base, info.order) {
				if owner[c] != info.tag {
					t.Fatalf("step %d: cube %#x owned by %d, want %d", step, c, owner[c], info.tag)
				}
				owner[c] = 0
			}
		}
		// Invariant: the allocator's free count equals the bitmap's.
		freeCount := uint64(0)
		for _, o := range owner {
			if o == 0 {
				freeCount++
			}
		}
		if a.FreeCubes() != freeCount {
			t.Fatalf("step %d: allocator says %d free, bitmap %d", step, a.FreeCubes(), freeCount)
		}
	}
}

// TestAllocationsAreClosedSubnetworks: crossing any of the low r super-cube
// dimensions from a cube of an allocation stays inside the allocation — the
// partition is a self-contained hierarchical machine.
func TestAllocationsAreClosedSubnetworks(t *testing.T) {
	a := mustNew(t, 5)
	base, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	cubes := Cubes(base, 3)
	inside := map[uint64]bool{}
	for _, c := range cubes {
		inside[c] = true
	}
	for _, c := range cubes {
		for d := 0; d < 3; d++ {
			if !inside[c^1<<uint(d)] {
				t.Fatalf("crossing dim %d leaves the allocation", d)
			}
		}
		// And crossing a high dimension always leaves it.
		if inside[c^1<<4] {
			t.Fatal("high dimension did not leave the allocation")
		}
	}
	// Pairwise distances confined to the low 3 bits.
	for _, c1 := range cubes {
		for _, c2 := range cubes {
			if hypercube.Hamming(c1, c2) > 3 {
				t.Fatalf("cubes %#x and %#x too far apart", c1, c2)
			}
		}
	}
}

func TestFragmentationMetric(t *testing.T) {
	a := mustNew(t, 3)
	// Allocate all eight singles, free alternating ones: free space 4, all
	// shattered into order-0 blocks -> fragmentation 1 - 1/4 = 0.75.
	bases := make([]uint64, 8)
	for i := range bases {
		b, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		bases[i] = b
	}
	for i := 0; i < 8; i += 2 {
		if err := a.Free(bases[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Fragmentation(); got != 0.75 {
		t.Fatalf("fragmentation %.3f, want 0.75", got)
	}
	// A request for a pair must fail even though 4 cubes are free.
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("fragmented allocator served an order-1 request: %v", err)
	}
}
