package hhc_test

import (
	"fmt"
	"log"

	"repro/internal/hhc"
)

// ExampleNew shows the basic topology facts.
func ExampleNew() {
	g, err := hhc.New(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("address bits:", g.N())
	fmt.Println("degree:", g.Degree())
	n, _ := g.NumNodes()
	fmt.Println("nodes:", n)
	// Output:
	// address bits: 11
	// degree: 4
	// nodes: 2048
}

// ExampleGraph_Route computes a provably shortest path.
func ExampleGraph_Route() {
	g, err := hhc.New(2)
	if err != nil {
		log.Fatal(err)
	}
	u := hhc.Node{X: 0b0000, Y: 0}
	v := hhc.Node{X: 0b0011, Y: 1}
	p, info, err := g.RouteEx(u, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hops:", len(p)-1)
	fmt.Println("external:", info.ExternalHops)
	fmt.Println("exact:", info.Exact)
	// Output:
	// hops: 3
	// external: 2
	// exact: true
}

// ExampleGraph_Neighbors lists a node's adjacency.
func ExampleGraph_Neighbors() {
	g, err := hhc.New(2)
	if err != nil {
		log.Fatal(err)
	}
	u := hhc.Node{X: 0b0101, Y: 2}
	for _, w := range g.Neighbors(u, nil) {
		fmt.Println(g.FormatNode(w))
	}
	// Output:
	// 0x5:3
	// 0x5:0
	// 0x1:2
}

// ExampleGraph_EmbedRing builds a 32-node ring through 8 son-cubes.
func ExampleGraph_EmbedRing() {
	g, err := hhc.New(2)
	if err != nil {
		log.Fatal(err)
	}
	dims, err := g.RingDims(3)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := g.EmbedRing(0, dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ring length:", len(ring))
	fmt.Println("valid:", g.VerifyRing(ring) == nil)
	// Output:
	// ring length: 32
	// valid: true
}
