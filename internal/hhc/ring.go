package hhc

import (
	"fmt"

	"repro/internal/hypercube"
)

// Ring embedding: many parallel workloads (pipelines, token protocols,
// systolic rings) want a long cycle of distinct nodes. In a hierarchical
// hypercube a cycle that fully consumes each son-cube it visits can be
// built from three classical ingredients:
//
//  1. a closed walk over son-cubes (dimensions d_0 … d_{c-1} whose XOR is
//     zero and whose prefix cubes are distinct),
//  2. the fact that the walk enters cube i at processor bin(d_{i-1}) and
//     leaves at bin(d_i), and
//  3. Havel's theorem: an m-cube has a Hamiltonian path between two
//     processors iff their parities differ.
//
// So any closed super-walk whose consecutive crossing dimensions alternate
// label parity yields a simple cycle of exactly c·2^m nodes. RingDims picks
// such a walk through 2^r son-cubes (a ruler/Gray sequence whose even
// positions reuse one even-parity dimension), giving rings of length
// 2^(r+m) for any 1 <= r <= #odd-parity labels + … — large enough to cover
// 2^(t/2+1+m) nodes.

// EmbedRing returns a simple cycle through all nodes of the son-cubes the
// closed super-walk visits, starting in cube x0. The result lists the
// cycle's nodes in order; the last is adjacent to the first.
func (g *Graph) EmbedRing(x0 uint64, dims []int) ([]Node, error) {
	c := len(dims)
	if c < 4 {
		return nil, fmt.Errorf("hhc: ring needs at least 4 crossings, have %d", c)
	}
	if g.t < 64 && x0>>uint(g.t) != 0 {
		return nil, fmt.Errorf("hhc: start cube %#x out of range", x0)
	}
	// Validate the walk: in-range dims, closed, distinct intermediate
	// cubes, alternating entry/exit parities.
	var xor uint64
	cubes := make([]uint64, c)
	x := x0
	seen := map[uint64]bool{}
	for i, d := range dims {
		if d < 0 || d >= g.t {
			return nil, fmt.Errorf("hhc: dimension %d out of range [0,%d)", d, g.t)
		}
		if seen[x] {
			return nil, fmt.Errorf("hhc: super-walk revisits cube %#x", x)
		}
		seen[x] = true
		cubes[i] = x
		xor ^= 1 << uint(d)
		x ^= 1 << uint(d)
	}
	if xor != 0 {
		return nil, fmt.Errorf("hhc: super-walk is not closed")
	}
	for i := 0; i < c; i++ {
		prev := dims[(i-1+c)%c]
		if hypercube.Parity(uint64(prev)) == hypercube.Parity(uint64(dims[i])) {
			return nil, fmt.Errorf("hhc: crossings %d and %d have equal parity — no Hamiltonian path through cube %d", prev, dims[i], i)
		}
	}
	ring := make([]Node, 0, c<<uint(g.m))
	for i := 0; i < c; i++ {
		in := uint64(dims[(i-1+c)%c])
		out := uint64(dims[i])
		seg, err := hypercube.HamiltonianPath(g.m, in, out)
		if err != nil {
			return nil, fmt.Errorf("hhc: cube %d: %w", i, err)
		}
		for _, y := range seg {
			ring = append(ring, Node{X: cubes[i], Y: uint8(y)})
		}
	}
	return ring, nil
}

// RingDims returns a closed super-walk through 2^r distinct son-cubes
// whose crossings alternate parity: a ruler sequence over r dimensions
// where the repeated low dimension has an even-parity label and the others
// odd-parity labels. Requires 2 <= r <= (number of odd-parity labels) + 1.
func (g *Graph) RingDims(r int) ([]int, error) {
	if r < 2 {
		return nil, fmt.Errorf("hhc: ring exponent %d < 2", r)
	}
	// dims[0] must be even parity; the rest odd parity and distinct.
	chosen := make([]int, 0, r)
	for d := 0; d < g.t && len(chosen) < 1; d++ {
		if hypercube.Parity(uint64(d)) == 0 {
			chosen = append(chosen, d)
		}
	}
	for d := 0; d < g.t && len(chosen) < r; d++ {
		if hypercube.Parity(uint64(d)) == 1 {
			chosen = append(chosen, d)
		}
	}
	if len(chosen) < r {
		return nil, fmt.Errorf("hhc: ring exponent %d too large for m=%d (max %d)",
			r, g.m, 1+countOddLabels(g.t))
	}
	// Ruler (binary-carry) sequence of length 2^r: position k crosses
	// chosen[ctz(k+1)] and the final, cycle-closing crossing is the top
	// dimension chosen[r-1] (the standard Gray-cycle flip order). Every
	// other crossing is chosen[0].
	walk := make([]int, 1<<uint(r))
	for k := range walk {
		idx := trailingZeros(k + 1)
		if idx > r-1 {
			idx = r - 1 // k = 2^r - 1: the closing flip
		}
		walk[k] = chosen[idx]
	}
	return walk, nil
}

// trailingZeros counts the trailing zero bits of v > 0.
func trailingZeros(v int) int {
	i := 0
	for v&1 == 0 {
		v >>= 1
		i++
	}
	return i
}

func countOddLabels(t int) int {
	n := 0
	for d := 0; d < t; d++ {
		if hypercube.Parity(uint64(d)) == 1 {
			n++
		}
	}
	return n
}

// MaxRingExponent returns the largest r accepted by RingDims: rings of
// length up to 2^(r+m) nodes.
func (g *Graph) MaxRingExponent() int { return 1 + countOddLabels(g.t) }

// VerifyRing checks that ring is a simple cycle in the network: all nodes
// valid and distinct, consecutive nodes adjacent, last adjacent to first.
func (g *Graph) VerifyRing(ring []Node) error {
	if len(ring) < 4 {
		return fmt.Errorf("hhc: ring of %d nodes", len(ring))
	}
	seen := make(map[Node]bool, len(ring))
	for i, w := range ring {
		if err := g.check(w); err != nil {
			return err
		}
		if seen[w] {
			return fmt.Errorf("hhc: ring repeats %s", g.FormatNode(w))
		}
		seen[w] = true
		next := ring[(i+1)%len(ring)]
		if !g.Adjacent(w, next) {
			return fmt.Errorf("hhc: ring breaks between %s and %s", g.FormatNode(w), g.FormatNode(next))
		}
	}
	return nil
}
