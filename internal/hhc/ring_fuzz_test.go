package hhc

import (
	"testing"
)

// FuzzEmbedRing: arbitrary dimension sequences must either be rejected with
// an error or produce a verified simple cycle — never a bad ring, never a
// panic.
func FuzzEmbedRing(f *testing.F) {
	f.Add(uint8(3), uint64(0), []byte{0, 1, 0, 1})
	f.Add(uint8(2), uint64(5), []byte{0, 1, 0, 2, 0, 1, 0, 2})
	f.Add(uint8(3), uint64(0), []byte{})
	f.Add(uint8(4), uint64(9), []byte{3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, mRaw uint8, x0 uint64, dimBytes []byte) {
		m := int(mRaw%4) + 1
		g, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(dimBytes) > 64 {
			dimBytes = dimBytes[:64]
		}
		dims := make([]int, len(dimBytes))
		for i, b := range dimBytes {
			dims[i] = int(b) % (g.T() + 2) // allow some out-of-range values
		}
		mask := ^uint64(0)
		if g.T() < 64 {
			mask = 1<<uint(g.T()) - 1
		}
		ring, err := g.EmbedRing(x0&mask, dims)
		if err != nil {
			return // rejection is the common, correct outcome
		}
		if err := g.VerifyRing(ring); err != nil {
			t.Fatalf("EmbedRing accepted dims %v but produced invalid ring: %v", dims, err)
		}
		if len(ring) != len(dims)<<uint(m) {
			t.Fatalf("ring has %d nodes, want %d", len(ring), len(dims)<<uint(m))
		}
	})
}
