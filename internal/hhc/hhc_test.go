package hhc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustNew(t *testing.T, m int) *Graph {
	t.Helper()
	g, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBounds(t *testing.T) {
	for _, m := range []int{0, 7, -3} {
		if _, err := New(m); err == nil {
			t.Errorf("New(%d): want error", m)
		}
	}
	for m := MinM; m <= MaxM; m++ {
		g := mustNew(t, m)
		if g.M() != m || g.T() != 1<<uint(m) || g.N() != 1<<uint(m)+m {
			t.Errorf("m=%d: metadata M=%d T=%d N=%d", m, g.M(), g.T(), g.N())
		}
		if g.Degree() != m+1 {
			t.Errorf("m=%d: degree %d", m, g.Degree())
		}
	}
}

func TestNumNodes(t *testing.T) {
	g := mustNew(t, 2)
	if n, ok := g.NumNodes(); !ok || n != 64 {
		t.Fatalf("m=2: NumNodes = %d, %v; want 64", n, ok)
	}
	g = mustNew(t, 6) // n = 70 > 63
	if _, ok := g.NumNodes(); ok {
		t.Fatal("m=6: NumNodes should not fit uint64")
	}
	if g.IDsOK() {
		t.Fatal("m=6: IDs should not be usable")
	}
}

func TestContains(t *testing.T) {
	g := mustNew(t, 2) // t = 4: X has 4 bits, Y < 4
	cases := []struct {
		u  Node
		ok bool
	}{
		{Node{X: 0, Y: 0}, true},
		{Node{X: 15, Y: 3}, true},
		{Node{X: 16, Y: 0}, false},
		{Node{X: 0, Y: 4}, false},
	}
	for _, c := range cases {
		if got := g.Contains(c.u); got != c.ok {
			t.Errorf("Contains(%v) = %v, want %v", c.u, got, c.ok)
		}
	}
}

func TestNeighborsStructure(t *testing.T) {
	g := mustNew(t, 3)
	u := Node{X: 0b10110101, Y: 0b101}
	nbrs := g.Neighbors(u, nil)
	if len(nbrs) != 4 {
		t.Fatalf("degree %d, want 4", len(nbrs))
	}
	// Local neighbors share X and differ in one Y bit.
	for i := 0; i < 3; i++ {
		w := nbrs[i]
		if w.X != u.X {
			t.Errorf("local neighbor %v changed X", w)
		}
		d := w.Y ^ u.Y
		if d == 0 || d&(d-1) != 0 {
			t.Errorf("local neighbor %v differs in %d Y bits", w, d)
		}
	}
	// External neighbor flips X bit number dec(Y), keeps Y.
	ext := nbrs[3]
	if ext.Y != u.Y || ext.X != u.X^(1<<u.Y) {
		t.Errorf("external neighbor wrong: %v", ext)
	}
	// Involution: the external edge is its own inverse.
	if g.ExternalNeighbor(g.ExternalNeighbor(u)) != u {
		t.Error("external edge not an involution")
	}
}

func TestAdjacentMatchesNeighbors(t *testing.T) {
	g := mustNew(t, 2)
	n, _ := g.NumNodes()
	for i := uint64(0); i < n; i++ {
		u := g.NodeFromID(i)
		nbrSet := map[Node]bool{}
		for _, w := range g.Neighbors(u, nil) {
			nbrSet[w] = true
		}
		for j := uint64(0); j < n; j++ {
			v := g.NodeFromID(j)
			if got := g.Adjacent(u, v); got != nbrSet[v] {
				t.Fatalf("Adjacent(%v,%v) = %v, neighbors say %v", u, v, got, nbrSet[v])
			}
		}
	}
}

func TestIDRoundTrip(t *testing.T) {
	for m := MinM; m <= 5; m++ {
		g := mustNew(t, m)
		prop := func(x uint64, y uint8) bool {
			u := Node{X: x & (1<<uint(g.T()) - 1), Y: y & uint8(g.T()-1)}
			return g.NodeFromID(g.ID(u)) == u
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestDenseViewIsValidGraph(t *testing.T) {
	g := mustNew(t, 2)
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if dg.Order() != 64 || dg.MaxDegree() != 3 {
		t.Fatalf("dense metadata: order=%d deg=%d", dg.Order(), dg.MaxDegree())
	}
	if err := graph.CheckSymmetric(dg); err != nil {
		t.Fatalf("HHC_6 adjacency not symmetric: %v", err)
	}
	// Regular of degree m+1: edges = N(m+1)/2.
	edges, err := graph.CountEdges(dg)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 64*3/2 {
		t.Fatalf("edges = %d, want 96", edges)
	}
	conn, err := graph.IsConnected(dg)
	if err != nil || !conn {
		t.Fatalf("HHC_6 connected = %v, %v", conn, err)
	}
	g5 := mustNew(t, 5)
	if _, err := g5.Dense(); err == nil {
		t.Fatal("m=5 dense: want too-large error")
	}
}

// TestRouteExhaustivelyShortest verifies Route returns a valid path whose
// length equals the BFS shortest-path distance for EVERY ordered pair of
// HHC_6 (m=2), and for random pairs of HHC_11 (m=3). This pins down the
// distance decomposition dist = |D| + minwalk.
func TestRouteExhaustivelyShortest(t *testing.T) {
	g := mustNew(t, 2)
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	n, _ := g.NumNodes()
	for i := uint64(0); i < n; i++ {
		dist, err := graph.BFS(dg, i)
		if err != nil {
			t.Fatal(err)
		}
		u := g.NodeFromID(i)
		for j := uint64(0); j < n; j++ {
			v := g.NodeFromID(j)
			p, info, err := g.RouteEx(u, v)
			if err != nil {
				t.Fatalf("Route(%v,%v): %v", u, v, err)
			}
			if err := g.VerifyPath(u, v, p); err != nil {
				t.Fatalf("Route(%v,%v) invalid: %v", u, v, err)
			}
			if !info.Exact {
				t.Fatalf("m=2 route should be exact")
			}
			if got, want := len(p)-1, int(dist[j]); got != want {
				t.Fatalf("Route(%v,%v) length %d, BFS %d", u, v, got, want)
			}
		}
	}
}

func TestRouteShortestM3Sampled(t *testing.T) {
	g := mustNew(t, 3)
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		u := g.RandomNode(r)
		dist, err := graph.BFS(dg, g.ID(u))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 60; k++ {
			v := g.RandomNode(r)
			p, info, err := g.RouteEx(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.VerifyPath(u, v, p); err != nil {
				t.Fatal(err)
			}
			if !info.Exact {
				t.Fatalf("m=3 (|D| <= 8) should be exact")
			}
			if got, want := len(p)-1, int(dist[g.ID(v)]); got != want {
				t.Fatalf("Route(%v,%v) length %d, BFS %d", u, v, got, want)
			}
		}
	}
}

func TestDistanceAgreesWithRoute(t *testing.T) {
	g := mustNew(t, 3)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		p, err := g.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := g.Distance(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if d != len(p)-1 {
			t.Fatalf("Distance %d != route length %d", d, len(p)-1)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	g := mustNew(t, 2)
	u := Node{X: 9, Y: 2}
	p, err := g.Route(u, u)
	if err != nil || len(p) != 1 || p[0] != u {
		t.Fatalf("self route = %v, %v", p, err)
	}
}

func TestRouteRejectsInvalid(t *testing.T) {
	g := mustNew(t, 2)
	if _, err := g.Route(Node{X: 99, Y: 0}, Node{}); err == nil {
		t.Fatal("invalid source: want error")
	}
	if _, err := g.Route(Node{}, Node{X: 0, Y: 9}); err == nil {
		t.Fatal("invalid destination: want error")
	}
	if _, _, err := g.Distance(Node{X: 99, Y: 0}, Node{}); err == nil {
		t.Fatal("invalid distance query: want error")
	}
}

func TestVerifyPathRejections(t *testing.T) {
	g := mustNew(t, 2)
	u, v := Node{X: 0, Y: 0}, Node{X: 0, Y: 1}
	if err := g.VerifyPath(u, v, []Node{u, v}); err != nil {
		t.Fatalf("direct edge rejected: %v", err)
	}
	bad := []struct {
		name string
		path []Node
	}{
		{"empty", nil},
		{"wrong endpoints", []Node{v, u}},
		{"not adjacent", []Node{u, Node{X: 3, Y: 3}, v}},
		{"repeat", []Node{u, v, u, v}},
		{"invalid node", []Node{u, Node{X: 0, Y: 9}, v}},
	}
	for _, c := range bad {
		if err := g.VerifyPath(u, v, c.path); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestPathIDsRoundTrip(t *testing.T) {
	g := mustNew(t, 3)
	r := rand.New(rand.NewSource(1))
	u, v := g.RandomNode(r), g.RandomNode(r)
	p, err := g.Route(u, v)
	if err != nil {
		t.Fatal(err)
	}
	back := g.PathFromIDs(g.PathIDs(p))
	if len(back) != len(p) {
		t.Fatal("length mismatch")
	}
	for i := range p {
		if back[i] != p[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestDiameterUpperBoundHolds(t *testing.T) {
	// Exact diameters for m = 1, 2 via all-source BFS; bound must hold.
	for _, m := range []int{1, 2} {
		g := mustNew(t, m)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		diam, err := graph.Diameter(dg)
		if err != nil {
			t.Fatal(err)
		}
		if diam > g.DiameterUpperBound() {
			t.Fatalf("m=%d: diameter %d exceeds bound %d", m, diam, g.DiameterUpperBound())
		}
		if diam <= 0 {
			t.Fatalf("m=%d: diameter %d", m, diam)
		}
	}
}

func TestRandomNodeValid(t *testing.T) {
	for m := MinM; m <= MaxM; m++ {
		g := mustNew(t, m)
		r := rand.New(rand.NewSource(int64(m)))
		for i := 0; i < 200; i++ {
			if u := g.RandomNode(r); !g.Contains(u) {
				t.Fatalf("m=%d: RandomNode produced invalid %v", m, u)
			}
		}
	}
}
