package hhc

import (
	"math/rand"
	"testing"
)

// TestAutomorphismPreservesAdjacencyExhaustive: for every (a, b) and every
// edge of HHC_6, the image must again be an edge — proving (by machine
// check) that the translation family really is a group of automorphisms.
func TestAutomorphismPreservesAdjacencyExhaustive(t *testing.T) {
	g := mustNew(t, 2)
	n, _ := g.NumNodes()
	for a := uint64(0); a < 1<<uint(g.T()); a++ {
		for b := uint8(0); int(b) < g.T(); b++ {
			f, err := g.NewAutomorphism(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(0); id < n; id++ {
				u := g.NodeFromID(id)
				fu := f.Apply(u)
				if !g.Contains(fu) {
					t.Fatalf("(a=%#x,b=%d): image %v invalid", a, b, fu)
				}
				for _, w := range g.Neighbors(u, nil) {
					if !g.Adjacent(fu, f.Apply(w)) {
						t.Fatalf("(a=%#x,b=%d): edge %v-%v mapped to non-edge %v-%v",
							a, b, u, w, fu, f.Apply(w))
					}
				}
			}
		}
	}
}

// TestAutomorphismIsBijection: images are pairwise distinct.
func TestAutomorphismIsBijection(t *testing.T) {
	g := mustNew(t, 3)
	f, err := g.NewAutomorphism(0xA5, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := g.NumNodes()
	seen := make(map[Node]bool, n)
	for id := uint64(0); id < n; id++ {
		img := f.Apply(g.NodeFromID(id))
		if seen[img] {
			t.Fatalf("image %v hit twice", img)
		}
		seen[img] = true
	}
}

// TestMappingToIsTransitive: for random pairs, MappingTo's automorphism
// carries u exactly onto v — vertex-transitivity, constructively.
func TestMappingToIsTransitive(t *testing.T) {
	for _, m := range []int{2, 3, 5, 6} {
		g := mustNew(t, m)
		r := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 200; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			f, err := g.MappingTo(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Apply(u); got != v {
				t.Fatalf("m=%d: %v mapped to %v, want %v", m, u, got, v)
			}
			// Spot-check edge preservation around u.
			for _, w := range g.Neighbors(u, nil) {
				if !g.Adjacent(f.Apply(u), f.Apply(w)) {
					t.Fatalf("m=%d: edge %v-%v broken by mapping", m, u, w)
				}
			}
		}
	}
}

// TestAutomorphismPreservesDistance: distances are invariant under the
// group action (checked against the exact router).
func TestAutomorphismPreservesDistance(t *testing.T) {
	g := mustNew(t, 3)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		f, err := g.NewAutomorphism(uint64(r.Intn(256)), uint8(r.Intn(8)))
		if err != nil {
			t.Fatal(err)
		}
		d1, _, err := g.Distance(u, v)
		if err != nil {
			t.Fatal(err)
		}
		d2, _, err := g.Distance(f.Apply(u), f.Apply(v))
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("distance %d -> %d under automorphism", d1, d2)
		}
	}
}

// TestAutomorphismInverse: Inverse undoes Apply for every (a, b) on m=2
// exhaustively and for random parameters at larger m.
func TestAutomorphismInverse(t *testing.T) {
	g := mustNew(t, 2)
	n, _ := g.NumNodes()
	for a := uint64(0); a < 1<<uint(g.T()); a++ {
		for b := uint8(0); int(b) < g.T(); b++ {
			f, err := g.NewAutomorphism(a, b)
			if err != nil {
				t.Fatal(err)
			}
			inv := f.Inverse()
			for id := uint64(0); id < n; id++ {
				u := g.NodeFromID(id)
				if got := inv.Apply(f.Apply(u)); got != u {
					t.Fatalf("(a=%#x,b=%d): inverse(apply(%v)) = %v", a, b, u, got)
				}
				if got := f.Apply(inv.Apply(u)); got != u {
					t.Fatalf("(a=%#x,b=%d): apply(inverse(%v)) = %v", a, b, u, got)
				}
			}
		}
	}
	for _, m := range []int{3, 5, 6} {
		gm := mustNew(t, m)
		r := rand.New(rand.NewSource(int64(100 + m)))
		for trial := 0; trial < 200; trial++ {
			u, v := gm.RandomNode(r), gm.RandomNode(r)
			f, err := gm.MappingTo(u, v)
			if err != nil {
				t.Fatal(err)
			}
			w := gm.RandomNode(r)
			if got := f.Inverse().Apply(f.Apply(w)); got != w {
				t.Fatalf("m=%d: inverse broken at %v", m, w)
			}
		}
	}
}

// TestApplyPathFreshSlice: ApplyPath leaves the input intact and returns an
// independent slice.
func TestApplyPathFreshSlice(t *testing.T) {
	g := mustNew(t, 3)
	f, err := g.NewAutomorphism(0x5A, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := []Node{{X: 1, Y: 0}, {X: 1, Y: 1}, {X: 3, Y: 1}}
	orig := append([]Node(nil), in...)
	out := f.ApplyPath(in)
	if len(out) != len(in) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("input mutated")
		}
		if out[i] != f.Apply(in[i]) {
			t.Fatalf("element %d not mapped", i)
		}
	}
	out[0] = Node{X: 99, Y: 0}
	if in[0] != orig[0] {
		t.Fatal("output aliases input")
	}
}

func TestAutomorphismErrors(t *testing.T) {
	g := mustNew(t, 2)
	if _, err := g.NewAutomorphism(1<<60, 0); err == nil {
		t.Error("oversized translation accepted")
	}
	if _, err := g.NewAutomorphism(0, 9); err == nil {
		t.Error("oversized shuffle accepted")
	}
	if _, err := g.MappingTo(Node{X: 99, Y: 0}, Node{}); err == nil {
		t.Error("invalid source accepted")
	}
	if _, err := g.MappingTo(Node{}, Node{X: 0, Y: 9}); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestShuffleBitsInvolution(t *testing.T) {
	// σ_b is an involution: applying twice restores the input.
	for b := uint8(0); b < 8; b++ {
		for _, x := range []uint64{0, 0xFF, 0xA5, 0x3C} {
			if shuffleBits(shuffleBits(x, b, 8), b, 8) != x {
				t.Fatalf("σ_%d not an involution on %#x", b, x)
			}
		}
	}
}
