// Package hhc implements the hierarchical hypercube interconnection network
// HHC_n (Malluhi & Bayoumi, 1994) for n = 2^m + m: the 2^m-dimensional
// hypercube in which every vertex is expanded into an m-cube of processors
// and each of the 2^m cube dimensions is delegated to the processor whose
// local address equals that dimension's index.
//
// A node (x, y) has m "local" neighbors (x, y⊕e_i) inside its son-cube S_x
// and one "external" neighbor (x⊕e_dec(y), y). Degree and node-connectivity
// are both m+1; the network has 2^n nodes but an address of only n bits, so
// all algorithms in this repository work directly on addresses and never
// materialize the network (except for optional small-m ground-truth views).
package hhc

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// MinM and MaxM bound the supported cube parameter m. MaxM = 6 gives
// n = 70: addresses no longer fit a single uint64 ID, but all construction
// and routing algorithms still work on (x, y) pairs.
const (
	MinM = 1
	MaxM = 6
)

// Node is a network node: X is the 2^m-bit son-cube address, Y the m-bit
// processor address within the son-cube.
type Node struct {
	X uint64
	Y uint8
}

// String formats a node as (x=…,y=…).
func (u Node) String() string { return fmt.Sprintf("(x=%#x,y=%d)", u.X, u.Y) }

// Graph is a hierarchical hypercube topology handle. The zero value is not
// usable; call New.
type Graph struct {
	m int // son-cube dimension
	t int // 2^m, the super-cube dimension
	n int // t + m, the address length; the network has 2^n nodes
}

// New returns the HHC topology with son-cube dimension m (1 <= m <= 6),
// i.e. the network HHC_n with n = 2^m + m.
func New(m int) (*Graph, error) {
	if m < MinM || m > MaxM {
		return nil, fmt.Errorf("hhc: m = %d out of supported range [%d,%d]", m, MinM, MaxM)
	}
	t := 1 << uint(m)
	return &Graph{m: m, t: t, n: t + m}, nil
}

// M returns the son-cube dimension m.
func (g *Graph) M() int { return g.m }

// T returns 2^m, the dimension of the super-cube of son-cube addresses.
func (g *Graph) T() int { return g.t }

// N returns the address length n = 2^m + m; the network has 2^n nodes.
func (g *Graph) N() int { return g.n }

// Degree returns the uniform node degree m+1, which equals the network's
// node-connectivity and hence the maximum possible number of node-disjoint
// paths between any two nodes.
func (g *Graph) Degree() int { return g.m + 1 }

// NumNodes returns 2^n when it fits a uint64 (n <= 63); ok reports whether
// it does.
func (g *Graph) NumNodes() (count uint64, ok bool) {
	if g.n > 63 {
		return 0, false
	}
	return 1 << uint(g.n), true
}

// Contains reports whether u is a valid node address for this topology.
func (g *Graph) Contains(u Node) bool {
	if int(u.Y) >= g.t {
		return false
	}
	if g.t < 64 && u.X>>uint(g.t) != 0 {
		return false
	}
	return true
}

// check returns an error for invalid nodes.
func (g *Graph) check(u Node) error {
	if !g.Contains(u) {
		return fmt.Errorf("hhc: node %s invalid for m=%d", g.FormatNode(u), g.m)
	}
	return nil
}

// LocalNeighbor returns u's neighbor across local dimension i (0 <= i < m),
// inside the same son-cube.
func (g *Graph) LocalNeighbor(u Node, i int) Node {
	return Node{X: u.X, Y: u.Y ^ (1 << uint(i))}
}

// ExternalNeighbor returns u's unique external neighbor, across the
// super-cube dimension indexed by u's own processor address.
func (g *Graph) ExternalNeighbor(u Node) Node {
	return Node{X: u.X ^ (1 << uint(u.Y)), Y: u.Y}
}

// Neighbors appends u's m+1 neighbors (m local, then the external one).
func (g *Graph) Neighbors(u Node, buf []Node) []Node {
	for i := 0; i < g.m; i++ {
		buf = append(buf, g.LocalNeighbor(u, i))
	}
	return append(buf, g.ExternalNeighbor(u))
}

// Adjacent reports whether u and v are joined by an edge.
func (g *Graph) Adjacent(u, v Node) bool {
	if u.X == v.X {
		d := u.Y ^ v.Y
		return d != 0 && d&(d-1) == 0 // one local bit differs
	}
	if u.Y != v.Y {
		return false
	}
	d := u.X ^ v.X
	return d == 1<<uint(u.Y) // the external dimension delegated to both
}

// ID packs a node into the canonical n-bit identifier x·2^m + y. Only valid
// for n <= 64 (every supported m; at m = 6 the full 70-bit space does not
// fit, so ID must not be used there — see IDsOK).
func (g *Graph) ID(u Node) uint64 { return u.X<<uint(g.m) | uint64(u.Y) }

// IDsOK reports whether node IDs fit uint64 for this topology.
func (g *Graph) IDsOK() bool { return g.n <= 64 }

// NodeFromID unpacks an identifier produced by ID.
func (g *Graph) NodeFromID(id uint64) Node {
	return Node{X: id >> uint(g.m), Y: uint8(id & uint64(g.t-1))}
}

// RandomNode draws a uniform node using r.
func (g *Graph) RandomNode(r *rand.Rand) Node {
	var x uint64
	if g.t == 64 {
		x = r.Uint64()
	} else {
		x = r.Uint64() & ((1 << uint(g.t)) - 1)
	}
	return Node{X: x, Y: uint8(r.Intn(g.t))}
}

// VerifyPath checks that path is a simple u→v path in the network.
func (g *Graph) VerifyPath(u, v Node, path []Node) error {
	if len(path) == 0 {
		return fmt.Errorf("hhc: empty path")
	}
	if path[0] != u || path[len(path)-1] != v {
		return fmt.Errorf("hhc: path runs %s..%s, want %s..%s",
			g.FormatNode(path[0]), g.FormatNode(path[len(path)-1]), g.FormatNode(u), g.FormatNode(v))
	}
	seen := make(map[Node]bool, len(path))
	for i, w := range path {
		if err := g.check(w); err != nil {
			return fmt.Errorf("hhc: step %d: %w", i, err)
		}
		if seen[w] {
			return fmt.Errorf("hhc: vertex %s repeated in path", g.FormatNode(w))
		}
		seen[w] = true
		if i > 0 && !g.Adjacent(path[i-1], w) {
			return fmt.Errorf("hhc: %s and %s not adjacent at step %d", g.FormatNode(path[i-1]), g.FormatNode(w), i)
		}
	}
	return nil
}

// MaxDenseM is the largest m for which Dense materializes ID-indexed views
// (m = 4 gives n = 20, about one million nodes).
const MaxDenseM = 4

// Dense returns a graph.Graph view over IDs 0..2^n-1, for exact ground-truth
// computations (BFS distances, diameter, connectivity). Only m <= MaxDenseM.
func (g *Graph) Dense() (graph.Graph, error) {
	if g.m > MaxDenseM {
		return nil, fmt.Errorf("%w: HHC with m=%d has 2^%d nodes", graph.ErrTooLarge, g.m, g.n)
	}
	return denseView{g}, nil
}

type denseView struct{ g *Graph }

func (d denseView) Order() int64   { return 1 << uint(d.g.n) }
func (d denseView) MaxDegree() int { return d.g.m + 1 }

func (d denseView) Neighbors(v uint64, buf []uint64) []uint64 {
	u := d.g.NodeFromID(v)
	for i := 0; i < d.g.m; i++ {
		buf = append(buf, d.g.ID(d.g.LocalNeighbor(u, i)))
	}
	return append(buf, d.g.ID(d.g.ExternalNeighbor(u)))
}

// PathIDs converts a node path into ID form (n <= 64).
func (g *Graph) PathIDs(path []Node) []uint64 {
	out := make([]uint64, len(path))
	for i, u := range path {
		out[i] = g.ID(u)
	}
	return out
}

// PathFromIDs converts an ID path back into node form.
func (g *Graph) PathFromIDs(ids []uint64) []Node {
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = g.NodeFromID(id)
	}
	return out
}
