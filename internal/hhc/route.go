package hhc

import (
	"fmt"

	"repro/internal/hypercube"
)

// Routing in a hierarchical hypercube decomposes cleanly: to travel from
// u = (a, α) to v = (b, β) a path must cross super-cube dimension j (for
// every j where a and b differ) by standing at processor y = j and taking
// that node's external edge, and otherwise moves inside son-cubes. A
// shortest path therefore consists of |D| external hops (D = a⊕b; flipping
// any dimension an extra even number of times only adds hops, and Hamming
// distance being a metric means extra intermediate stops never shorten the
// local walks) plus a minimum-length walk in Q_m that starts at α, visits
// the processor addresses {j : j ∈ D} in some order, and ends at β — an
// instance of the fixed-endpoints path-TSP solved by hypercube.SetWalk.
//
// dist(u, v) = |D| + minwalk(α, {bin(j) : j ∈ D}, β)
//
// SetWalk is exact (Held–Karp) up to MaxExactCities differing dimensions and
// a 2-opt heuristic beyond, so Route is provably shortest for every pair at
// m <= 3 and for all pairs with |D| <= 13 at larger m.

// RouteInfo reports how a route was computed.
type RouteInfo struct {
	ExternalHops int  // |D|
	LocalHops    int  // total son-cube walk length
	Exact        bool // true if the local walk is provably optimal
}

// Route returns a (near-)shortest path from u to v. See RouteEx for details
// on optimality.
func (g *Graph) Route(u, v Node) ([]Node, error) {
	p, _, err := g.RouteEx(u, v)
	return p, err
}

// RouteEx returns the path together with routing metadata.
func (g *Graph) RouteEx(u, v Node) ([]Node, RouteInfo, error) {
	if err := g.check(u); err != nil {
		return nil, RouteInfo{}, err
	}
	if err := g.check(v); err != nil {
		return nil, RouteInfo{}, err
	}
	d := u.X ^ v.X
	dims := hypercube.Dims(d)
	cities := make([]uint64, len(dims))
	for i, dim := range dims {
		cities[i] = uint64(dim)
	}
	order, cost, exact := hypercube.SetWalk(uint64(u.Y), uint64(v.Y), cities)
	path := make([]Node, 1, len(dims)+cost+1)
	path[0] = u
	x, y := u.X, uint64(u.Y)
	for _, idx := range order {
		c := cities[idx]
		for _, w := range hypercube.BitFixPath(y, c)[1:] {
			path = append(path, Node{X: x, Y: uint8(w)})
		}
		y = c
		x ^= 1 << uint(dims[idx])
		path = append(path, Node{X: x, Y: uint8(y)})
	}
	for _, w := range hypercube.BitFixPath(y, uint64(v.Y))[1:] {
		path = append(path, Node{X: x, Y: uint8(w)})
	}
	info := RouteInfo{ExternalHops: len(dims), LocalHops: cost, Exact: exact}
	if got := path[len(path)-1]; got != v {
		return nil, info, fmt.Errorf("hhc: internal routing error, reached %s not %s", g.FormatNode(got), g.FormatNode(v))
	}
	return path, info, nil
}

// Distance returns the length of the path Route would produce, plus whether
// that length is provably the exact shortest-path distance.
func (g *Graph) Distance(u, v Node) (int, bool, error) {
	if err := g.check(u); err != nil {
		return 0, false, err
	}
	if err := g.check(v); err != nil {
		return 0, false, err
	}
	d := u.X ^ v.X
	dims := hypercube.Dims(d)
	cities := make([]uint64, len(dims))
	for i, dim := range dims {
		cities[i] = uint64(dim)
	}
	_, cost, exact := hypercube.SetWalk(uint64(u.Y), uint64(v.Y), cities)
	return len(dims) + cost, exact, nil
}

// DiameterUpperBound returns the classical upper bound on the diameter of
// HHC_n: the external hops are at most 2^m and the local walk is covered by
// one trip around a Gray-code Hamiltonian cycle of Q_m plus a final m-step
// correction, giving 2^(m+1) + m.
func (g *Graph) DiameterUpperBound() int { return 2*g.t + g.m }
