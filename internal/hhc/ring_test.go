package hhc

import (
	"testing"
)

// TestEmbedRingAllExponents builds and verifies every supported ring size
// for m = 2, 3, 4 from several start cubes.
func TestEmbedRingAllExponents(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		g := mustNew(t, m)
		for r := 2; r <= g.MaxRingExponent(); r++ {
			dims, err := g.RingDims(r)
			if err != nil {
				t.Fatalf("m=%d RingDims(%d): %v", m, r, err)
			}
			if len(dims) != 1<<uint(r) {
				t.Fatalf("m=%d r=%d: %d crossings", m, r, len(dims))
			}
			for _, x0 := range []uint64{0, 1, (1 << uint(g.T())) - 1} {
				ring, err := g.EmbedRing(x0, dims)
				if err != nil {
					t.Fatalf("m=%d r=%d x0=%#x: %v", m, r, x0, err)
				}
				want := (1 << uint(r)) << uint(m)
				if len(ring) != want {
					t.Fatalf("m=%d r=%d: ring covers %d nodes, want %d", m, r, len(ring), want)
				}
				if err := g.VerifyRing(ring); err != nil {
					t.Fatalf("m=%d r=%d: %v", m, r, err)
				}
			}
		}
	}
}

// TestEmbedRingCoversWholeCubes: every visited son-cube contributes all 2^m
// of its processors.
func TestEmbedRingCoversWholeCubes(t *testing.T) {
	g := mustNew(t, 3)
	dims, err := g.RingDims(3)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := g.EmbedRing(0x5, dims)
	if err != nil {
		t.Fatal(err)
	}
	perCube := map[uint64]map[uint8]bool{}
	for _, w := range ring {
		if perCube[w.X] == nil {
			perCube[w.X] = map[uint8]bool{}
		}
		perCube[w.X][w.Y] = true
	}
	if len(perCube) != 8 {
		t.Fatalf("ring visits %d cubes, want 8", len(perCube))
	}
	for x, ys := range perCube {
		if len(ys) != g.T() {
			t.Fatalf("cube %#x covered %d/%d", x, len(ys), g.T())
		}
	}
}

func TestEmbedRingRejections(t *testing.T) {
	g := mustNew(t, 3)
	cases := []struct {
		name string
		x0   uint64
		dims []int
	}{
		{"too short", 0, []int{1, 1}},
		{"not closed", 0, []int{0, 1, 0, 2}},
		{"dim out of range", 0, []int{0, 99, 0, 99}},
		// Labels 0 (parity 0) and 3 (parity 0): no Hamiltonian path between
		// same-parity entry/exit processors.
		{"equal parities", 0, []int{0, 3, 0, 3}},
		{"start cube out of range", 1 << 60, []int{0, 1, 0, 1}},
	}
	for _, c := range cases {
		if _, err := g.EmbedRing(c.x0, c.dims); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Revisiting a cube: 0,1,0,1 visits a, a^1, a, ... -> revisit.
	if _, err := g.EmbedRing(0, []int{0, 0, 1, 2, 1, 2}); err == nil {
		t.Error("revisit not detected")
	}
}

func TestRingDimsBounds(t *testing.T) {
	g := mustNew(t, 2)
	if _, err := g.RingDims(1); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := g.RingDims(g.MaxRingExponent() + 1); err == nil {
		t.Error("oversized r accepted")
	}
	// m=2: t=4, odd labels {1, 2}: max exponent 3 -> ring of 2^5 = 32 nodes,
	// half the 64-node network.
	if g.MaxRingExponent() != 3 {
		t.Fatalf("m=2 max exponent = %d, want 3", g.MaxRingExponent())
	}
}

func TestVerifyRingRejections(t *testing.T) {
	g := mustNew(t, 2)
	dims, _ := g.RingDims(2)
	ring, err := g.EmbedRing(0, dims)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyRing(ring[:3]); err == nil {
		t.Error("short ring accepted")
	}
	broken := append([]Node(nil), ring...)
	broken[2], broken[5] = broken[5], broken[2]
	if err := g.VerifyRing(broken); err == nil {
		t.Error("shuffled ring accepted")
	}
	dup := append([]Node(nil), ring...)
	dup[1] = dup[3]
	if err := g.VerifyRing(dup); err == nil {
		t.Error("duplicated node accepted")
	}
}
