package hhc

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseNode parses the textual node form "x:y" (e.g. "0x2a:3" or "42:3");
// x accepts decimal, 0x-hex, or 0b-binary, y is decimal. The parsed node is
// validated against the topology.
func (g *Graph) ParseNode(s string) (Node, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return Node{}, fmt.Errorf("hhc: node %q: want x:y", s)
	}
	x, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
	if err != nil {
		return Node{}, fmt.Errorf("hhc: node %q: bad cube address: %v", s, err)
	}
	y, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 8)
	if err != nil {
		return Node{}, fmt.Errorf("hhc: node %q: bad processor address: %v", s, err)
	}
	u := Node{X: x, Y: uint8(y)}
	if !g.Contains(u) {
		return Node{}, fmt.Errorf("hhc: node %q out of range for m=%d (x < 2^%d, y < %d)", s, g.m, g.t, g.t)
	}
	return u, nil
}

// FormatNode renders a node in the same "x:y" form ParseNode accepts.
func (g *Graph) FormatNode(u Node) string {
	return fmt.Sprintf("%#x:%d", u.X, u.Y)
}
