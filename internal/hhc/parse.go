package hhc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ParseNode parses the textual node form "x:y" (e.g. "0x2a:3" or "42:3");
// x accepts decimal, 0x-hex, or 0b-binary, y is decimal. The parsed node is
// validated against the topology: syntactically valid addresses whose
// coordinates exceed the topology limits — including values too large for
// the machine integer types — all report the same "out of range" error
// naming the actual bounds x < 2^t, y < t (t = 2^m).
func (g *Graph) ParseNode(s string) (Node, error) {
	x, y, err := parseCoords(s)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return Node{}, g.rangeError(s)
		}
		return Node{}, err
	}
	if y >= uint64(g.t) {
		return Node{}, g.rangeError(s)
	}
	u := Node{X: x, Y: uint8(y)}
	if !g.Contains(u) {
		return Node{}, g.rangeError(s)
	}
	return u, nil
}

// parseCoords splits and parses the "x:y" form without topology
// validation; y is parsed at full width so oversized processor addresses
// surface as strconv.ErrRange for the caller to map onto its own bounds.
func parseCoords(s string) (x, y uint64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("hhc: node %q: want x:y", s)
	}
	x, err = strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return 0, 0, fmt.Errorf("hhc: node %q: %w", s, strconv.ErrRange)
		}
		return 0, 0, fmt.Errorf("hhc: node %q: bad cube address: %w", s, err)
	}
	y, err = strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return 0, 0, fmt.Errorf("hhc: node %q: %w", s, strconv.ErrRange)
		}
		return 0, 0, fmt.Errorf("hhc: node %q: bad processor address: %w", s, err)
	}
	return x, y, nil
}

// ParseNodeWire parses the wire "x:y" form without topology validation:
// protocol clients do not know the served m, so they parse loosely and let
// the serving side check the address against its own graph. A y too large
// for any supported topology (>= 2^MaxM) is still rejected here because it
// cannot be represented in a Node.
func ParseNodeWire(s string) (Node, error) {
	x, y, err := parseCoords(s)
	if err != nil {
		return Node{}, err
	}
	if y >= 1<<uint(MaxM) {
		return Node{}, fmt.Errorf("hhc: node %q: processor address %d exceeds every supported topology (y < %d)",
			s, y, 1<<uint(MaxM))
	}
	return Node{X: x, Y: uint8(y)}, nil
}

// FormatNodeWire renders a node in the wire "x:y" form without needing a
// topology in scope (Graph.FormatNode is the method form used where one
// is).
func FormatNodeWire(u Node) string {
	return fmt.Sprintf("%#x:%d", u.X, u.Y)
}

// rangeError is the single out-of-range diagnostic for every coordinate
// limit violation: x must fit t = 2^m bits and y must name one of the t
// processors of a son-cube.
func (g *Graph) rangeError(s string) error {
	return fmt.Errorf("hhc: node %q out of range for m=%d (need x < 2^%d, y < %d)", s, g.m, g.t, g.t)
}

// FormatNode renders a node in the same "x:y" form ParseNode accepts.
func (g *Graph) FormatNode(u Node) string {
	return FormatNodeWire(u)
}
