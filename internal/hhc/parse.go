package hhc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ParseNode parses the textual node form "x:y" (e.g. "0x2a:3" or "42:3");
// x accepts decimal, 0x-hex, or 0b-binary, y is decimal. The parsed node is
// validated against the topology: syntactically valid addresses whose
// coordinates exceed the topology limits — including values too large for
// the machine integer types — all report the same "out of range" error
// naming the actual bounds x < 2^t, y < t (t = 2^m).
func (g *Graph) ParseNode(s string) (Node, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return Node{}, fmt.Errorf("hhc: node %q: want x:y", s)
	}
	x, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return Node{}, g.rangeError(s)
		}
		return Node{}, fmt.Errorf("hhc: node %q: bad cube address: %w", s, err)
	}
	// Parse y at full width so an oversized processor address (say "0:300")
	// is reported as a topology range violation, not a strconv overflow.
	y, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 0, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return Node{}, g.rangeError(s)
		}
		return Node{}, fmt.Errorf("hhc: node %q: bad processor address: %w", s, err)
	}
	if y >= uint64(g.t) {
		return Node{}, g.rangeError(s)
	}
	u := Node{X: x, Y: uint8(y)}
	if !g.Contains(u) {
		return Node{}, g.rangeError(s)
	}
	return u, nil
}

// rangeError is the single out-of-range diagnostic for every coordinate
// limit violation: x must fit t = 2^m bits and y must name one of the t
// processors of a son-cube.
func (g *Graph) rangeError(s string) error {
	return fmt.Errorf("hhc: node %q out of range for m=%d (need x < 2^%d, y < %d)", s, g.m, g.t, g.t)
}

// FormatNode renders a node in the same "x:y" form ParseNode accepts.
func (g *Graph) FormatNode(u Node) string {
	return fmt.Sprintf("%#x:%d", u.X, u.Y)
}
