package hhc

import (
	"testing"

	"repro/internal/graph"
)

func TestDistanceDistributionInvariants(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		g := mustNew(t, m)
		hist, err := g.DistanceDistribution()
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, c := range hist {
			total += c
		}
		n, _ := g.NumNodes()
		if total != int64(n) {
			t.Fatalf("m=%d: histogram sums to %d, want %d", m, total, n)
		}
		if hist[0] != 1 {
			t.Fatalf("m=%d: %d nodes at distance 0", m, hist[0])
		}
		if hist[1] != int64(g.Degree()) {
			t.Fatalf("m=%d: %d nodes at distance 1, want degree %d", m, hist[1], g.Degree())
		}
		// The histogram's top index is the eccentricity of node 0; by
		// vertex-transitivity that IS the diameter. Cross-check for m <= 2.
		if m <= 2 {
			dg, err := g.Dense()
			if err != nil {
				t.Fatal(err)
			}
			diam, err := graph.Diameter(dg)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist)-1 != diam {
				t.Fatalf("m=%d: histogram top %d != diameter %d", m, len(hist)-1, diam)
			}
		}
	}
}

// TestDistributionMatchesTransitivity: BFS histograms from several sources
// must coincide — the measurable face of vertex-transitivity.
func TestDistributionMatchesTransitivity(t *testing.T) {
	g := mustNew(t, 2)
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.DistanceDistribution()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []uint64{5, 17, 63} {
		dist, err := graph.BFS(dg, src)
		if err != nil {
			t.Fatal(err)
		}
		hist := make([]int64, len(ref))
		for _, d := range dist {
			hist[d]++
		}
		for i := range ref {
			if hist[i] != ref[i] {
				t.Fatalf("source %d: histogram differs at distance %d", src, i)
			}
		}
	}
}

func TestMeanDistance(t *testing.T) {
	g := mustNew(t, 2)
	mean, err := g.MeanDistance()
	if err != nil {
		t.Fatal(err)
	}
	// HHC_6: diameter 8, so the mean lies strictly between 1 and 8.
	if mean <= 1 || mean >= 8 {
		t.Fatalf("mean distance %.2f implausible", mean)
	}
	// Too large to enumerate: must error.
	g5 := mustNew(t, 5)
	if _, err := g5.MeanDistance(); err == nil {
		t.Fatal("m=5 accepted")
	}
}
