package hhc

import (
	"strings"
	"testing"
)

// TestParseNodeValid: accepted spellings across bases and whitespace.
func TestParseNodeValid(t *testing.T) {
	g, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want Node
	}{
		{"0x2a:3", Node{X: 0x2a, Y: 3}},
		{"42:0", Node{X: 42, Y: 0}},
		{"0b101:1", Node{X: 5, Y: 1}},
		{"0xff:7", Node{X: 0xff, Y: 7}},
		{" 0x10 : 2 ", Node{X: 0x10, Y: 2}},
		{"0:0", Node{X: 0, Y: 0}},
	}
	for _, c := range cases {
		got, err := g.ParseNode(c.in)
		if err != nil {
			t.Errorf("ParseNode(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseNode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseNodeErrors: every failure mode. Range violations — whether they
// overflow the machine integer or merely the topology — must share the one
// "out of range" diagnostic that names the real bounds; syntax errors keep
// their own messages.
func TestParseNodeErrors(t *testing.T) {
	g, err := New(3) // t = 8: x < 256, y < 8
	if err != nil {
		t.Fatal(err)
	}
	rangeCases := []string{
		"0:300",                    // y overflows uint8 — the reported bug
		"0:8",                      // y valid for uint8 but not the topology
		"0:18446744073709551616",   // y overflows uint64
		"256:0",                    // x valid for uint64 but not the topology
		"0x1ffffffffffffffffff:0",  // x overflows uint64
		"18446744073709551616:0",   // x overflows uint64, decimal
		"0xffffffffffffffff:65536", // both out of range
	}
	for _, in := range rangeCases {
		_, err := g.ParseNode(in)
		if err == nil {
			t.Errorf("ParseNode(%q): want error", in)
			continue
		}
		if !strings.Contains(err.Error(), "out of range for m=3") {
			t.Errorf("ParseNode(%q): want unified out-of-range error, got %v", in, err)
		}
		if !strings.Contains(err.Error(), "x < 2^8, y < 8") {
			t.Errorf("ParseNode(%q): bounds not spelled out: %v", in, err)
		}
	}
	syntaxCases := []string{
		"", ":", ":::", "12", "x:y", "0x:3", "-1:2", "0:-1", "1.5:2", "0x2a:0x", "a b:1",
	}
	for _, in := range syntaxCases {
		_, err := g.ParseNode(in)
		if err == nil {
			t.Errorf("ParseNode(%q): want error", in)
			continue
		}
		if strings.Contains(err.Error(), "out of range") {
			t.Errorf("ParseNode(%q): syntax error misreported as range: %v", in, err)
		}
	}
}

// TestParseNodeBoundsMatchContains: the printed bounds (x < 2^t, y < t) are
// exactly the Contains limits, for every supported m where x fits uint64.
func TestParseNodeBoundsMatchContains(t *testing.T) {
	for m := MinM; m <= 5; m++ {
		g, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		tt := g.T()
		// Largest valid node parses; one past each bound does not.
		if _, err := g.ParseNode(g.FormatNode(Node{X: 1<<uint(tt) - 1, Y: uint8(tt - 1)})); err != nil {
			t.Errorf("m=%d: max valid node rejected: %v", m, err)
		}
		if _, err := g.ParseNode(g.FormatNode(Node{X: 1 << uint(tt), Y: 0})); err == nil && tt < 64 {
			t.Errorf("m=%d: x = 2^t accepted", m)
		}
		if _, err := g.ParseNode(g.FormatNode(Node{X: 0, Y: uint8(tt)})); err == nil {
			t.Errorf("m=%d: y = t accepted", m)
		}
	}
}

// TestFormatParseRoundTrip: FormatNode→ParseNode is the identity over every
// valid node for small m.
func TestFormatParseRoundTrip(t *testing.T) {
	for m := 1; m <= 2; m++ {
		g, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		tt := g.T()
		for x := uint64(0); x < 1<<uint(tt); x++ {
			for y := 0; y < tt; y++ {
				u := Node{X: x, Y: uint8(y)}
				back, err := g.ParseNode(g.FormatNode(u))
				if err != nil {
					t.Fatalf("m=%d: round trip of %v failed: %v", m, u, err)
				}
				if back != u {
					t.Fatalf("m=%d: round trip %v -> %q -> %v", m, u, g.FormatNode(u), back)
				}
			}
		}
	}
}
