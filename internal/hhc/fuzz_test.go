package hhc

import (
	"testing"
)

// FuzzParseNode: the parser must never panic and every successful parse
// must round-trip through FormatNode.
func FuzzParseNode(f *testing.F) {
	f.Add("0x2a:3")
	f.Add("42:0")
	f.Add("0b101:1")
	f.Add(":::")
	f.Add("")
	f.Add("-1:2")
	f.Add("0xffffffffffffffff:255")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := New(3)
		if err != nil {
			t.Fatal(err)
		}
		u, err := g.ParseNode(s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !g.Contains(u) {
			t.Fatalf("parser accepted out-of-range node %v from %q", u, s)
		}
		back, err := g.ParseNode(g.FormatNode(u))
		if err != nil || back != u {
			t.Fatalf("round trip failed: %v -> %q -> %v (%v)", u, g.FormatNode(u), back, err)
		}
	})
}

// FuzzDimOrderTermination: the distributed router must reach any valid
// destination within its bound from any valid source.
func FuzzDimOrderTermination(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint8(0), uint64(3), uint8(1))
	f.Add(uint8(4), uint64(0xABCD), uint8(12), uint64(0x1234), uint8(3))
	f.Fuzz(func(t *testing.T, mRaw uint8, x1 uint64, y1 uint8, x2 uint64, y2 uint8) {
		m := int(mRaw%6) + 1
		g, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if g.T() < 64 {
			mask = 1<<uint(g.T()) - 1
		}
		u := Node{X: x1 & mask, Y: y1 & uint8(g.T()-1)}
		v := Node{X: x2 & mask, Y: y2 & uint8(g.T()-1)}
		p, err := g.RouteDimOrder(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyPath(u, v, p); err != nil {
			t.Fatal(err)
		}
	})
}
