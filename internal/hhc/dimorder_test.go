package hhc

import (
	"math/rand"
	"testing"
)

// TestDimOrderReachesEveryPairM2 follows the distributed next-hop function
// from every source to every destination of HHC_6 and checks arrival,
// validity, and the length bound.
func TestDimOrderReachesEveryPairM2(t *testing.T) {
	g := mustNew(t, 2)
	n, _ := g.NumNodes()
	for i := uint64(0); i < n; i++ {
		u := g.NodeFromID(i)
		for j := uint64(0); j < n; j++ {
			v := g.NodeFromID(j)
			p, err := g.RouteDimOrder(u, v)
			if err != nil {
				t.Fatalf("RouteDimOrder(%v,%v): %v", u, v, err)
			}
			if err := g.VerifyPath(u, v, p); err != nil {
				t.Fatalf("dim-order path invalid %v->%v: %v", u, v, err)
			}
			if len(p)-1 > g.DimOrderLengthBound() {
				t.Fatalf("dim-order path %v->%v length %d exceeds bound %d",
					u, v, len(p)-1, g.DimOrderLengthBound())
			}
		}
	}
}

// TestDimOrderSampledLargeM exercises the distributed rule on networks up
// to 2^70 nodes.
func TestDimOrderSampledLargeM(t *testing.T) {
	for _, m := range []int{3, 4, 5, 6} {
		g := mustNew(t, m)
		r := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 300; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			p, err := g.RouteDimOrder(u, v)
			if err != nil {
				t.Fatalf("m=%d RouteDimOrder(%v,%v): %v", m, u, v, err)
			}
			if err := g.VerifyPath(u, v, p); err != nil {
				t.Fatalf("m=%d invalid: %v", m, err)
			}
			if len(p)-1 > g.DimOrderLengthBound() {
				t.Fatalf("m=%d length %d exceeds bound %d", m, len(p)-1, g.DimOrderLengthBound())
			}
		}
	}
}

// TestDimOrderNeverShorterThanShortest: sanity relation between the two
// routers. Dimension order is at best equal to the optimal route.
func TestDimOrderNeverShorterThanShortest(t *testing.T) {
	g := mustNew(t, 3)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 400; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		opt, err := g.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		dim, err := g.RouteDimOrder(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(dim) < len(opt) {
			t.Fatalf("dim-order route (%d) beat the provably shortest route (%d) for %v->%v",
				len(dim)-1, len(opt)-1, u, v)
		}
	}
}

func TestNextHopProperties(t *testing.T) {
	g := mustNew(t, 3)
	u := Node{X: 0b1010, Y: 3}
	// Self next hop is self.
	nh, err := g.NextHopDimOrder(u, u)
	if err != nil || nh != u {
		t.Fatalf("self next hop %v, %v", nh, err)
	}
	// Next hop is always adjacent.
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a, b := g.RandomNode(r), g.RandomNode(r)
		if a == b {
			continue
		}
		nh, err := g.NextHopDimOrder(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Adjacent(a, nh) {
			t.Fatalf("next hop %v not adjacent to %v", nh, a)
		}
	}
	// Invalid inputs rejected.
	if _, err := g.NextHopDimOrder(Node{X: 0, Y: 9}, u); err == nil {
		t.Fatal("invalid cur accepted")
	}
	if _, err := g.NextHopDimOrder(u, Node{X: 1 << 60, Y: 0}); err == nil {
		t.Fatal("invalid dst accepted")
	}
	if _, err := g.RouteDimOrder(Node{X: 0, Y: 9}, u); err == nil {
		t.Fatal("invalid route source accepted")
	}
}
