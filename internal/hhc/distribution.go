package hhc

import (
	"fmt"
)

// DistanceDistribution returns hist where hist[d] counts the nodes at
// shortest-path distance exactly d from any fixed node — a topology
// invariant: the network is vertex-transitive (see Automorphism), so the
// histogram does not depend on the reference node. Index len(hist)-1 is the
// diameter and the histogram sums to 2^n. Enumerable instances only
// (m <= MaxDenseM); computed by BFS from node 0.
func (g *Graph) DistanceDistribution() ([]int64, error) {
	dg, err := g.Dense()
	if err != nil {
		return nil, err
	}
	dist, err := bfsFromZero(dg.Order(), dg.MaxDegree(), dg.Neighbors)
	if err != nil {
		return nil, err
	}
	maxD := 0
	for _, d := range dist {
		if int(d) > maxD {
			maxD = int(d)
		}
	}
	hist := make([]int64, maxD+1)
	for _, d := range dist {
		if d < 0 {
			return nil, fmt.Errorf("hhc: network unexpectedly disconnected")
		}
		hist[d]++
	}
	return hist, nil
}

// MeanDistance returns the average shortest-path distance between distinct
// nodes — the unloaded average-latency predictor the cross-network DES
// correlates with. Enumerable instances only.
func (g *Graph) MeanDistance() (float64, error) {
	hist, err := g.DistanceDistribution()
	if err != nil {
		return 0, err
	}
	var sum, count int64
	for d, c := range hist {
		if d == 0 {
			continue
		}
		sum += int64(d) * c
		count += c
	}
	if count == 0 {
		return 0, nil
	}
	return float64(sum) / float64(count), nil
}

// bfsFromZero is a minimal local BFS (avoiding an import cycle with the
// graph package is unnecessary — this simply keeps the hot loop tight).
func bfsFromZero(order int64, degree int, neighbors func(uint64, []uint64) []uint64) ([]int32, error) {
	dist := make([]int32, order)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := make([]uint64, 1, 1024)
	buf := make([]uint64, 0, degree)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		buf = neighbors(v, buf[:0])
		for _, w := range buf {
			if dist[w] == -1 {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}
