package hhc

import "fmt"

// Automorphisms. The hierarchical hypercube is vertex-transitive, which is
// what licenses estimating global metrics (diameter, eccentricity
// distributions) from a few sources. The witness family used here:
//
//   - X-translations: (x, y) ↦ (x ⊕ a, y) for any a — the external edge of
//     a node flips the x-bit named by its own y, which is untouched.
//   - Y-translations with compensating position shuffles:
//     (x, y) ↦ (σ_b(x), y ⊕ b), where σ_b permutes the bit positions of x
//     by i ↦ i ⊕ b. A local edge stays local; the external edge at (x, y)
//     flips x-position dec(y), whose image is position dec(y)⊕b =
//     dec(y ⊕ b) — exactly the dimension the image node serves.
//
// Composing the two maps any node onto any other, so the group acts
// transitively on the 2^n nodes.

// Automorphism is a symmetry of the network from the translation family.
type Automorphism struct {
	g *Graph
	a uint64 // X XOR-translation
	b uint8  // Y translation / position shuffle
}

// NewAutomorphism builds the automorphism with parameters (a, b).
func (g *Graph) NewAutomorphism(a uint64, b uint8) (Automorphism, error) {
	if g.t < 64 && a>>uint(g.t) != 0 {
		return Automorphism{}, fmt.Errorf("hhc: translation %#x exceeds %d bits", a, g.t)
	}
	if int(b) >= g.t {
		return Automorphism{}, fmt.Errorf("hhc: shuffle parameter %d out of range [0,%d)", b, g.t)
	}
	return Automorphism{g: g, a: a, b: b}, nil
}

// Apply maps a node through the automorphism.
func (f Automorphism) Apply(u Node) Node {
	x := shuffleBits(u.X, f.b, f.g.t) ^ f.a
	return Node{X: x, Y: u.Y ^ f.b}
}

// Inverse returns the automorphism undoing f. The position shuffle σ_b is
// an involution (i ↦ i⊕b twice is the identity) and XOR-linear, so the
// inverse of x ↦ σ_b(x) ⊕ a is x ↦ σ_b(x ⊕ a) = σ_b(x) ⊕ σ_b(a): the same
// b with the translation parameter shuffled.
func (f Automorphism) Inverse() Automorphism {
	return Automorphism{g: f.g, a: shuffleBits(f.a, f.b, f.g.t), b: f.b}
}

// ApplyPath maps every node of a path through the automorphism into a fresh
// slice; the input is not modified.
func (f Automorphism) ApplyPath(path []Node) []Node {
	out := make([]Node, len(path))
	for i, u := range path {
		out[i] = f.Apply(u)
	}
	return out
}

// shuffleBits permutes the t bit positions of x by i -> i XOR b.
func shuffleBits(x uint64, b uint8, t int) uint64 {
	if b == 0 {
		return x
	}
	var out uint64
	for i := 0; i < t; i++ {
		out |= (x >> uint(i) & 1) << (uint(i) ^ uint(b))
	}
	return out
}

// MappingTo returns an automorphism carrying u onto v (always exists:
// vertex-transitivity).
func (g *Graph) MappingTo(u, v Node) (Automorphism, error) {
	if err := g.check(u); err != nil {
		return Automorphism{}, err
	}
	if err := g.check(v); err != nil {
		return Automorphism{}, err
	}
	b := u.Y ^ v.Y
	// First shuffle positions, then translate so the image of u.X lands on
	// v.X: a = σ_b(u.X) ⊕ v.X.
	a := shuffleBits(u.X, b, g.t) ^ v.X
	return Automorphism{g: g, a: a, b: b}, nil
}
