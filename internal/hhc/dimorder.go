package hhc

import (
	"fmt"
	"math/bits"
)

// Dimension-ordered routing: a stateless, distributed complement to the
// centralized (and provably shortest) Route. Every node can compute the
// next hop toward a destination in O(1) from the two addresses alone — no
// tables, no global knowledge — which is what a hardware router would
// implement. The rule fixes the differing super-dimensions in ascending
// order, walking the local son-cube greedily to each required processor:
//
//	progress measure (|a⊕b| remaining, Hamming(y, next required processor))
//
// strictly decreases lexicographically at every hop, so the route always
// terminates; its length is at most |D|·(m+1) + m.

// NextHopDimOrder returns the next node on the dimension-ordered route from
// cur to dst, or cur itself when cur == dst.
func (g *Graph) NextHopDimOrder(cur, dst Node) (Node, error) {
	if err := g.check(cur); err != nil {
		return Node{}, err
	}
	if err := g.check(dst); err != nil {
		return Node{}, err
	}
	if cur == dst {
		return cur, nil
	}
	d := cur.X ^ dst.X
	if d == 0 {
		// Fix the lowest differing local bit.
		i := bits.TrailingZeros8(cur.Y ^ dst.Y)
		return g.LocalNeighbor(cur, i), nil
	}
	j := uint8(bits.TrailingZeros64(d))
	if cur.Y == j {
		return g.ExternalNeighbor(cur), nil
	}
	// Walk toward processor j inside the son-cube.
	i := bits.TrailingZeros8(cur.Y ^ j)
	return g.LocalNeighbor(cur, i), nil
}

// RouteDimOrder assembles the full dimension-ordered route. It is longer
// than Route (no visiting-order optimization) but computable hop by hop by
// the nodes themselves.
func (g *Graph) RouteDimOrder(u, v Node) ([]Node, error) {
	if err := g.check(u); err != nil {
		return nil, err
	}
	if err := g.check(v); err != nil {
		return nil, err
	}
	path := []Node{u}
	cur := u
	limit := g.DimOrderLengthBound() + 1
	for cur != v {
		next, err := g.NextHopDimOrder(cur, v)
		if err != nil {
			return nil, err
		}
		if next == cur {
			break
		}
		path = append(path, next)
		cur = next
		if len(path) > limit {
			return nil, fmt.Errorf("hhc: dimension-ordered route exceeded bound %d", limit)
		}
	}
	return path, nil
}

// DimOrderLengthBound returns the worst-case dimension-ordered route
// length: each of up to 2^m differing super-dimensions costs at most m
// local hops plus the external hop, plus a final local correction of m.
func (g *Graph) DimOrderLengthBound() int { return g.t*(g.m+1) + g.m }
