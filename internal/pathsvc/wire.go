// Package pathsvc puts the container construction on the wire: a
// length-prefixed JSON-over-TCP protocol serving disjoint-path queries
// (single, batch, and fault-avoiding variants) backed by internal/core and
// internal/cache, plus the server-side production engineering the paper's
// poly(n) bound makes possible — bounded admission queues, per-request
// deadlines, in-flight coalescing of identical queries, and load shedding
// that degrades container width before it drops requests.
//
// # Wire format
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many bytes of JSON. Requests and responses are versioned
// (Request.Ver / Response.Ver, currently ProtocolVersion = 1); a server
// rejects versions it does not speak with CodeBadRequest rather than
// guessing. Node addresses travel in the textual "x:y" form of
// hhc.ParseNode / hhc.FormatNode, so the protocol needs no binary
// compatibility story for topology types.
package pathsvc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// ProtocolVersion is the JSON wire version (v1). Requests must carry it;
// responses echo it.
const ProtocolVersion = 1

// MaxProtocolVersion is the newest wire version this package speaks. The
// server advertises it in the ver_max field of OpInfo responses so clients
// can negotiate up to the binary v2 codec (see wire2.go); old servers omit
// the field and clients stay on v1.
const MaxProtocolVersion = ProtocolV2

// DefaultMaxFrame bounds the payload size of a single frame (1 MiB). The
// decoder validates the length prefix against the limit before allocating,
// so a hostile 4 GiB prefix costs nothing.
const DefaultMaxFrame = 1 << 20

// Ops understood by the server.
const (
	// OpPaths asks for the (m+1)-wide node-disjoint container between U
	// and V (possibly truncated: see Request.MaxPaths and Response.Degraded).
	OpPaths = "paths"
	// OpBatch asks for containers for every pair in Pairs.
	OpBatch = "batch"
	// OpRoute asks for one shortest container path avoiding Faults.
	OpRoute = "route"
	// OpInfo reports the served topology (m, container width).
	OpInfo = "info"
	// OpPing is a liveness no-op.
	OpPing = "ping"
)

// Response codes. CodeOK is the empty string so successful responses omit
// the field entirely.
const (
	CodeOK         = ""
	CodeBadRequest = "bad_request" // malformed op, address, or parameters
	CodeOverload   = "overload"    // admission queue full; retry after RetryAfterMS
	CodeDeadline   = "deadline"    // the per-request deadline expired in queue or in flight
	CodeShutdown   = "shutdown"    // server is draining; the connection will close
	CodeUnroutable = "unroutable"  // every container path crosses a declared fault
	CodeInternal   = "internal"    // construction failed (should not happen on valid input)
)

// Request is one client query.
type Request struct {
	// Ver is the protocol version; must be ProtocolVersion.
	Ver int `json:"ver"`
	// ID is an opaque client-chosen correlation id echoed in the response.
	ID uint64 `json:"id"`
	// RID is an optional client-supplied request id for cross-system trace
	// correlation. It is echoed in Response.RID and stamped on the server's
	// request trace; when omitted (older clients), the server assigns one if
	// request tracing is enabled. Same-version servers ignore unknown
	// fields, so either side may omit it freely.
	RID string `json:"rid,omitempty"`
	// Op selects the query kind (OpPaths, OpBatch, OpRoute, OpInfo, OpPing).
	Op string `json:"op"`
	// U and V are the endpoints in "x:y" form (OpPaths, OpRoute).
	U string `json:"u,omitempty"`
	V string `json:"v,omitempty"`
	// Pairs are the [source, destination] endpoint pairs of OpBatch.
	Pairs [][2]string `json:"pairs,omitempty"`
	// Faults lists nodes OpRoute must avoid.
	Faults []string `json:"faults,omitempty"`
	// MaxPaths, when > 0, truncates the returned container to the first
	// MaxPaths paths (the client only wants that much redundancy).
	MaxPaths int `json:"max_paths,omitempty"`
	// Fwd marks a query relayed peer-to-peer inside a cluster (the hop
	// guard). A server never forwards a request that already carries it:
	// the receiving peer answers locally even when membership views
	// disagree about ownership, so a query crosses at most one extra hop.
	Fwd bool `json:"fwd,omitempty"`
	// Origin names the forwarding peer on an Fwd request (the requester's
	// advertised -self address): the owner tags its request trace with it,
	// so cross-peer trees stitch by rid + origin. Empty on direct traffic.
	Origin string `json:"origin,omitempty"`
	// TimeoutMS, when > 0, caps this request's end-to-end time (queue wait
	// included); otherwise the server default applies.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItem is one per-pair outcome inside an OpBatch response.
type BatchItem struct {
	U     string     `json:"u"`
	V     string     `json:"v"`
	Paths [][]string `json:"paths,omitempty"`
	Err   string     `json:"err,omitempty"`
}

// Response is the server's answer to one Request.
type Response struct {
	Ver int    `json:"ver"`
	ID  uint64 `json:"id"`
	Op  string `json:"op"`
	// RID echoes Request.RID, or carries the server-assigned request id
	// when the client sent none and request tracing is on. Empty when the
	// server has tracing disabled and the client supplied nothing.
	RID string `json:"rid,omitempty"`
	// Server-side timing, filled for requests that went through the work
	// queue: time spent waiting for a worker, construction time, and
	// whether the answer piggybacked on an identical in-flight query
	// (coalesced answers share ExecNS and report QueueNS = 0). Older
	// clients ignore these fields; older servers omit them.
	QueueNS   int64 `json:"queue_ns,omitempty"`
	ExecNS    int64 `json:"exec_ns,omitempty"`
	Coalesced bool  `json:"coalesced,omitempty"`
	// Code is CodeOK ("", omitted) on success, else one of the Code
	// constants; Err carries the human-readable detail.
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
	// RetryAfterMS accompanies CodeOverload: the client should back off at
	// least this long before retrying.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Paths is the container (OpPaths) or the single surviving path as
	// Paths[0] (OpRoute), nodes in "x:y" form.
	Paths [][]string `json:"paths,omitempty"`
	// Results are the per-pair outcomes of OpBatch.
	Results []BatchItem `json:"results,omitempty"`
	// Degraded reports that load shedding truncated the container below
	// the full m+1 width; Width is what was returned, Full the maximum.
	Degraded bool `json:"degraded,omitempty"`
	Width    int  `json:"width,omitempty"`
	Full     int  `json:"full,omitempty"`
	// M is the served topology's son-cube dimension (OpInfo).
	M int `json:"m,omitempty"`
	// VerMax is the newest protocol version the server speaks, reported on
	// OpInfo responses (omitted by servers predating version negotiation,
	// which a client must read as "v1 only").
	VerMax int `json:"ver_max,omitempty"`
}

// Framing errors. ErrFrameTooLarge is returned before any payload
// allocation happens, so oversized prefixes cannot be used to exhaust
// memory.
var (
	ErrFrameTooLarge = errors.New("pathsvc: frame exceeds size limit")
	ErrEmptyFrame    = errors.New("pathsvc: zero-length frame")
)

// WriteFrame marshals v and writes it as one length-prefixed frame. max
// bounds the encoded payload (<= 0 selects DefaultMaxFrame). The prefix
// and payload go out in a single writev-style net.Buffers write, so a
// frame never splits into two syscalls (or two TCP segments) at this
// layer.
func WriteFrame(w io.Writer, v any, max int) error {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("pathsvc: encode frame: %w", err)
	}
	if len(payload) > max {
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), max)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	bufs := net.Buffers{prefix[:], payload}
	_, err = bufs.WriteTo(w)
	return err
}

// ReadFrame reads one length-prefixed payload from r into a fresh buffer.
// See ReadFrameInto for the semantics; hot paths reuse a buffer instead.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	return ReadFrameInto(r, nil, max)
}

// ReadFrameInto reads one length-prefixed payload from r, reusing buf's
// backing array when it is large enough (the returned slice aliases it).
// max bounds the accepted payload size (<= 0 selects DefaultMaxFrame); the
// length prefix is validated against it before any allocation. The
// comparison happens in uint64 space: a max above math.MaxUint32 accepts
// every representable frame rather than being truncated to 32 bits (the
// old uint32(max) cast could both accept frames the caller meant to reject
// and reject frames the caller meant to accept). io.EOF is returned
// unwrapped when the stream ends cleanly between frames.
func ReadFrameInto(r io.Reader, buf []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pathsvc: truncated frame prefix: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if uint64(n) > uint64(max) {
		return nil, fmt.Errorf("%w: prefix claims %d > %d bytes", ErrFrameTooLarge, n, max)
	}
	var payload []byte
	if uint64(cap(buf)) >= uint64(n) {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("pathsvc: truncated frame payload: %w", err)
	}
	return payload, nil
}

// DecodeRequest parses one request payload and checks the protocol
// version. Unknown fields are ignored (minor-version tolerance); a wrong
// or missing Ver is an error so version skew fails loudly.
func DecodeRequest(payload []byte) (Request, error) {
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return Request{}, fmt.Errorf("pathsvc: decode request: %w", err)
	}
	if req.Ver != ProtocolVersion {
		return req, fmt.Errorf("pathsvc: unsupported protocol version %d (speak %d)", req.Ver, ProtocolVersion)
	}
	return req, nil
}

// DecodeResponse parses one response payload.
func DecodeResponse(payload []byte) (Response, error) {
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return Response{}, fmt.Errorf("pathsvc: decode response: %w", err)
	}
	if resp.Ver != ProtocolVersion {
		return resp, fmt.Errorf("pathsvc: unsupported protocol version %d (speak %d)", resp.Ver, ProtocolVersion)
	}
	return resp, nil
}
