package pathsvc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Ver: ProtocolVersion, ID: 42, Op: OpPaths, U: "0x0:0", V: "0xff:7", MaxPaths: 2}
	if err := WriteFrame(&buf, req, DefaultMaxFrame); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != ProtocolVersion || got.ID != 42 || got.Op != OpPaths ||
		got.U != "0x0:0" || got.V != "0xff:7" || got.MaxPaths != 2 {
		t.Fatalf("round trip mangled request: %+v", got)
	}
	// A drained stream reports a bare EOF, not a truncation error.
	if _, err := ReadFrame(&buf, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	// The prefix claims 256 MiB; ReadFrame must refuse before allocating
	// or reading a single payload byte.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<28)
	r := &countingReader{r: bytes.NewReader(append(hdr[:], make([]byte, 64)...))}
	_, err := ReadFrame(r, DefaultMaxFrame)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if r.n > 4 {
		t.Fatalf("read %d bytes past the rejected prefix", r.n-4)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	// Truncated prefix.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), DefaultMaxFrame); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated prefix: got %v, want wrapped ErrUnexpectedEOF", err)
	}
	// Truncated payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	_, err := ReadFrame(bytes.NewReader(append(hdr[:], 'x', 'y')), DefaultMaxFrame)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: got %v, want wrapped ErrUnexpectedEOF", err)
	}
	// Zero-length frame.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), DefaultMaxFrame); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero-length frame: got %v, want ErrEmptyFrame", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := Request{Ver: ProtocolVersion, Op: OpPaths, U: string(make([]byte, 128))}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big, 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected frame still wrote %d bytes", buf.Len())
	}
}

// TestWireCompatOldClient pins the rid/server-timing compatibility rule:
// a request without rid (older client) decodes and is simply untraced, and
// a response without the timing fields (older server) decodes with zero
// values. Both directions tolerate the other side's unknown fields.
func TestWireCompatOldClient(t *testing.T) {
	req, err := DecodeRequest([]byte(`{"ver":1,"id":7,"op":"paths","u":"0x0:0","v":"0x1:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.RID != "" {
		t.Errorf("absent rid decoded as %q", req.RID)
	}
	resp, err := DecodeResponse([]byte(`{"ver":1,"id":7,"op":"paths","paths":[["0x0:0","0x1:1"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RID != "" || resp.QueueNS != 0 || resp.ExecNS != 0 || resp.Coalesced {
		t.Errorf("absent timing fields decoded nonzero: %+v", resp)
	}
	// A new-server response parses under an old client's decoder, which is
	// exactly this decoder ignoring fields it has never heard of.
	if _, err := DecodeResponse([]byte(`{"ver":1,"id":7,"op":"paths","rid":"r9","queue_ns":5,"exec_ns":9,"coalesced":true,"some_future_field":1}`)); err != nil {
		t.Fatal(err)
	}
	// A zero RID/timing response omits the fields entirely on the wire.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Response{Ver: ProtocolVersion, ID: 1, Op: OpPing}, DefaultMaxFrame); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); bytes.Contains(buf.Bytes(), []byte("rid")) || bytes.Contains(buf.Bytes(), []byte("queue_ns")) {
		t.Errorf("zero-valued tracing fields leaked onto the wire: %s", s)
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	if _, err := DecodeRequest([]byte(`{"ver":99,"op":"paths"}`)); err == nil {
		t.Fatal("future request version accepted")
	}
	if _, err := DecodeResponse([]byte(`{"ver":0}`)); err == nil {
		t.Fatal("zero response version accepted")
	}
}

// FuzzWireDecode feeds arbitrary bytes through the frame reader and both
// decoders: truncated frames, oversized length prefixes, and malformed
// JSON must return errors — never panic, and never allocate past the
// frame limit.
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: a valid request frame, a valid response frame, an
	// oversized prefix, a zero-length frame, truncations, and junk.
	var valid bytes.Buffer
	_ = WriteFrame(&valid, Request{Ver: ProtocolVersion, ID: 1, Op: OpPaths, U: "0x0:0", V: "0x1:1"}, DefaultMaxFrame)
	f.Add(valid.Bytes())
	var resp bytes.Buffer
	_ = WriteFrame(&resp, Response{Ver: ProtocolVersion, ID: 1, Op: OpPaths, Paths: [][]string{{"0x0:0"}}}, DefaultMaxFrame)
	f.Add(resp.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(valid.Bytes()[:5])
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte("not a frame at all"))

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), maxFrame)
		if err != nil {
			if payload != nil {
				t.Fatalf("ReadFrame returned payload alongside error %v", err)
			}
			return
		}
		if len(payload) == 0 || len(payload) > maxFrame {
			t.Fatalf("ReadFrame returned %d bytes outside (0, %d]", len(payload), maxFrame)
		}
		// Whatever the framing accepted, the decoders must not panic and
		// must either parse or error — on both request and response shapes.
		if req, err := DecodeRequest(payload); err == nil && req.Ver != ProtocolVersion {
			t.Fatalf("DecodeRequest accepted version %d", req.Ver)
		}
		if resp, err := DecodeResponse(payload); err == nil && resp.Ver != ProtocolVersion {
			t.Fatalf("DecodeResponse accepted version %d", resp.Ver)
		}
	})
}

// countingReader counts bytes actually consumed from the wrapped reader.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
