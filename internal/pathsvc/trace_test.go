package pathsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestServerTimingFields(t *testing.T) {
	rt := obs.NewRequestTracer(8)
	_, addr := startServer(t, Config{M: 3, Requests: rt})
	c := dial(t, addr)

	resp, err := c.Paths("0x0:0", "0xff:7", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RID == "" {
		t.Error("server assigned no request id with tracing on")
	}
	if resp.ExecNS <= 0 {
		t.Errorf("exec_ns = %d, want > 0", resp.ExecNS)
	}
	if resp.QueueNS < 0 {
		t.Errorf("queue_ns = %d, want >= 0", resp.QueueNS)
	}
	if resp.Coalesced {
		t.Error("lone request reported coalesced")
	}

	// A client-supplied rid is adopted by the trace and echoed back.
	resp, err = c.Do(Request{Op: OpPaths, U: "0x0:0", V: "0x1:0", RID: "cli-42"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RID != "cli-42" {
		t.Errorf("rid = %q, want the client-supplied cli-42", resp.RID)
	}
	found := false
	for _, tr := range rt.Snapshot().Recent {
		if tr.ID == "cli-42" {
			found = true
		}
	}
	if !found {
		t.Error("client-supplied rid absent from the flight recorder")
	}
}

func TestRIDPassThroughWithoutTracer(t *testing.T) {
	_, addr := startServer(t, Config{M: 3})
	c := dial(t, addr)
	resp, err := c.Do(Request{Op: OpPing, RID: "passthru"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RID != "passthru" {
		t.Errorf("rid = %q, want pass-through with tracing off", resp.RID)
	}
}

// TestCoalescedTiming: waiters piggybacked on an in-flight query report
// coalesced with zero queue time and the leader's shared exec time.
func TestCoalescedTiming(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }

	const dup = 3
	u, v := "0x5:1", "0xa:6"
	results := make(chan *Response, 1+dup)
	for i := 0; i < 1+dup; i++ {
		c := dial(t, addr)
		go func() {
			resp, err := c.Paths(u, v, 0, time.Minute)
			if err != nil {
				t.Errorf("paths: %v", err)
			}
			results <- resp
		}()
	}
	waitFor(t, "duplicates coalesced", func() bool {
		return srv.Counters().Coalesced == dup
	})
	close(release)

	var coalesced int
	for i := 0; i < 1+dup; i++ {
		resp := <-results
		if resp == nil {
			t.Fatal("missing response")
		}
		if resp.Coalesced {
			coalesced++
			if resp.QueueNS != 0 {
				t.Errorf("coalesced response has queue_ns = %d, want 0", resp.QueueNS)
			}
		}
		if resp.ExecNS <= 0 {
			t.Errorf("exec_ns = %d, want the shared construction time", resp.ExecNS)
		}
	}
	if coalesced != dup {
		t.Errorf("%d responses flagged coalesced, want %d", coalesced, dup)
	}
}

// TestRequestTraceRecorded: a served request leaves a span tree covering
// admission, queue wait, execution, and encode in the flight recorder.
func TestRequestTraceRecorded(t *testing.T) {
	rt := obs.NewRequestTracer(8)
	_, addr := startServer(t, Config{M: 3, Requests: rt})
	c := dial(t, addr)
	if _, err := c.Paths("0x0:0", "0xff:7", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(Request{Op: "bogus"}); err == nil {
		t.Fatal("bogus op succeeded")
	}

	snap := rt.Snapshot()
	if snap.Total != 2 || snap.Errored != 1 {
		t.Fatalf("recorder totals = %d/%d, want 2 requests, 1 errored", snap.Total, snap.Errored)
	}
	var paths *obs.RequestTrace
	for _, tr := range snap.Recent {
		if tr.Op == OpPaths {
			paths = tr
		}
	}
	if paths == nil {
		t.Fatal("no paths trace retained")
	}
	got := map[string]bool{}
	for _, sp := range paths.Spans {
		got[sp.Name] = true
		if sp.Dur < 0 {
			t.Errorf("span %q has negative duration", sp.Name)
		}
	}
	for _, want := range []string{"admission", "queue", "exec", "encode"} {
		if !got[want] {
			t.Errorf("trace lacks %q span (have %v)", want, paths.Spans)
		}
	}
	attrs := map[string]string{}
	for _, a := range paths.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["u"] != "0x0:0" || attrs["v"] != "0xff:7" || attrs["width"] != "4" || attrs["peer"] == "" {
		t.Errorf("trace attrs = %v", attrs)
	}
	if len(snap.Errors) != 1 || snap.Errors[0].Code != CodeBadRequest {
		t.Errorf("errored bucket = %v", snap.Errors)
	}
}

// TestSlowThresholdForceRetains: requests over the -slow threshold land in
// the recorder's slow bucket even when they would not rank among the K
// slowest of a busy server.
func TestSlowThresholdForceRetains(t *testing.T) {
	rt := obs.NewRequestTracer(8)
	rt.SetSlowThreshold(time.Nanosecond) // everything is slow
	_, addr := startServer(t, Config{M: 3, Requests: rt})
	c := dial(t, addr)
	if _, err := c.Paths("0x0:0", "0xff:7", 0, 0); err != nil {
		t.Fatal(err)
	}
	snap := rt.Snapshot()
	if len(snap.Slow) != 1 || !snap.Slow[0].Slow {
		t.Errorf("slow bucket = %v, want the one over-threshold request", snap.Slow)
	}
}

func TestStructuredConnAndFailureLogs(t *testing.T) {
	var buf syncBuffer
	lg := obs.NewLogger(&buf, obs.LevelInfo)
	_, addr := startServer(t, Config{M: 3, Logger: lg})
	c := dial(t, addr)
	if _, err := c.Do(Request{Op: "bogus", RID: "bad-1"}); err == nil {
		t.Fatal("bogus op succeeded")
	}
	c.Close()
	waitFor(t, "conn close logged", func() bool {
		return strings.Contains(buf.String(), "conn close")
	})

	var open, failed bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]string
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		switch rec["msg"] {
		case "conn open":
			open = rec["remote"] != ""
		case "request failed":
			failed = rec["code"] == CodeBadRequest && rec["op"] == "bogus" && rec["rid"] == "bad-1"
		}
	}
	if !open || !failed {
		t.Errorf("missing conn-open or request-failed line:\n%s", buf.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the logger serializes its
// own writes, but tests read while server goroutines still log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservedServingHammer drives load, span streaming, flight-recorder
// scrapes, and metric renders concurrently. Its value is under
// `go test -race`: any unsynchronized access between the serving path and
// the observability readers shows up as a data race.
func TestObservedServingHammer(t *testing.T) {
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	flat := obs.NewTracer(128)
	flat.StreamTo(io.Discard)
	defer flat.StreamTo(nil)
	rt := obs.NewRequestTracer(16)
	rt.SetSlowThreshold(time.Microsecond)
	rt.Mirror(flat)
	lg := obs.NewLogger(io.Discard, obs.LevelInfo)
	_, addr := startServer(t, Config{
		M: 3, Workers: 2, QueueDepth: 16,
		Reg: reg, Logger: lg, Requests: rt,
	})
	debug := httptest.NewServer(rt.Handler())
	defer debug.Close()

	const clients = 4
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial(t, addr)
			for i := 0; i < iters; i++ {
				u := fmt.Sprintf("0x%x:%d", (w*13+i)%256, i%8)
				v := fmt.Sprintf("0x%x:%d", (w*29+i*7)%256, (i+3)%8)
				if u == v {
					continue
				}
				if _, err := c.Do(Request{Op: OpPaths, U: u, V: v}); err != nil {
					t.Errorf("paths %s %s: %v", u, v, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		resp, err := debug.Client().Get(debug.URL + "?format=json")
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.RequestsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		rt.Snapshot()
	}
	if total, _ := rt.Totals(); total == 0 {
		t.Error("hammer recorded no requests")
	}
}
