package pathsvc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/hhc"
)

// fakePeer runs fn as the far side of a net.Pipe connection, standing in
// for servers with behaviors a healthy Server never exhibits (stalls,
// garbage frames, pre-negotiation responses).
func fakePeer(t *testing.T, fn func(ss net.Conn)) net.Conn {
	t.Helper()
	cs, ss := net.Pipe()
	go fn(ss)
	t.Cleanup(func() {
		_ = cs.Close()
		_ = ss.Close()
	})
	return cs
}

// echoV1 answers every decodable v1 frame with an OK response, stalling on
// ops present in the stall set until their channel closes.
func echoV1(stall map[string]chan struct{}) func(ss net.Conn) {
	return func(ss net.Conn) {
		br := bufio.NewReader(ss)
		for {
			payload, err := ReadFrame(br, 0)
			if err != nil {
				return
			}
			req, derr := DecodeRequest(payload)
			if derr != nil {
				return
			}
			if ch, ok := stall[req.Op]; ok {
				<-ch
			}
			if WriteFrame(ss, &Response{Ver: ProtocolVersion, ID: req.ID, Op: req.Op}, 0) != nil {
				return
			}
		}
	}
}

// TestClientTimeoutTyped: a stalled response surfaces as ErrClientTimeout
// within the request budget, the connection is NOT poisoned, and the late
// response is dropped by id instead of desyncing the stream.
func TestClientTimeoutTyped(t *testing.T) {
	release := make(chan struct{})
	conn := fakePeer(t, echoV1(map[string]chan struct{}{OpPaths: release}))
	c, err := NewClientWith(conn, DialOptions{Proto: ProtocolVersion, TimeoutSlack: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Paths("0x1:0", "0x2:1", 0, 20*time.Millisecond)
	if !errors.Is(err, ErrClientTimeout) {
		t.Fatalf("got %v, want ErrClientTimeout", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", waited)
	}
	if errors.Is(err, ErrClientBroken) {
		t.Fatal("a per-request timeout must not poison the client")
	}
	// Let the stalled response flow: it must be dropped, and the client
	// must keep working on the same connection.
	close(release)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after dropped late response: %v", err)
	}
}

// TestClientPoisonedByGarbageFrame: an unparseable response is a protocol
// error; the client poisons itself and later calls fail fast.
func TestClientPoisonedByGarbageFrame(t *testing.T) {
	conn := fakePeer(t, func(ss net.Conn) {
		br := bufio.NewReader(ss)
		if _, err := ReadFrame(br, 0); err != nil {
			return
		}
		_, _ = ss.Write([]byte{0, 0, 0, 3, 'x', 'y', 'z'})
	})
	c, err := NewClientWith(conn, DialOptions{Proto: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("first call after garbage: %v, want ErrClientBroken", err)
	}
	// Fail-fast: no wire activity, immediate sentinel.
	start := time.Now()
	if _, err := c.Info(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("second call: %v, want ErrClientBroken", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("poisoned call did not fail fast")
	}
}

// TestClientPoisonOnUnissuedID: a response whose id was never issued means
// the stream is desynced (or the peer is confused); poison.
func TestClientPoisonOnUnissuedID(t *testing.T) {
	conn := fakePeer(t, func(ss net.Conn) {
		br := bufio.NewReader(ss)
		payload, err := ReadFrame(br, 0)
		if err != nil {
			return
		}
		req, _ := DecodeRequest(payload)
		_ = WriteFrame(ss, &Response{Ver: ProtocolVersion, ID: req.ID + 41, Op: req.Op}, 0)
	})
	c, err := NewClientWith(conn, DialOptions{Proto: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Info(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("got %v, want ErrClientBroken", err)
	}
}

// TestForcedV2AgainstV1OnlyServer: an old server JSON-rejects a binary
// frame with id 0; the forced-v2 client must poison with a descriptive
// error instead of hanging or misparsing.
func TestForcedV2AgainstV1OnlyServer(t *testing.T) {
	conn := fakePeer(t, func(ss net.Conn) {
		br := bufio.NewReader(ss)
		for {
			payload, err := ReadFrame(br, 0)
			if err != nil {
				return
			}
			if _, derr := DecodeRequest(payload); derr != nil {
				// Old servers answer undecodable payloads exactly like this.
				if WriteFrame(ss, &Response{Ver: ProtocolVersion, ID: 0,
					Code: CodeBadRequest, Err: derr.Error()}, 0) != nil {
					return
				}
			}
		}
	})
	c, err := NewClientWith(conn, DialOptions{Proto: ProtocolV2, TimeoutSlack: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var resp ResponseV2
	err = c.DoV2(&RequestV2{Op: OpCodePing, TimeoutNS: int64(100 * time.Millisecond)}, &resp)
	if !errors.Is(err, ErrClientBroken) {
		t.Fatalf("got %v, want ErrClientBroken", err)
	}
}

// TestSubMillisecondTimeoutRoundsUp pins the v1 wire-granularity fix: a
// set-but-small timeout must round up to 1ms, never truncate to "server
// default".
func TestSubMillisecondTimeoutRoundsUp(t *testing.T) {
	got := make(chan int64, 4)
	conn := fakePeer(t, func(ss net.Conn) {
		br := bufio.NewReader(ss)
		for {
			payload, err := ReadFrame(br, 0)
			if err != nil {
				return
			}
			req, _ := DecodeRequest(payload)
			got <- req.TimeoutMS
			if WriteFrame(ss, &Response{Ver: ProtocolVersion, ID: req.ID, Op: req.Op}, 0) != nil {
				return
			}
		}
	})
	c, err := NewClientWith(conn, DialOptions{Proto: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Paths("0x1:0", "0x2:1", 0, 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ms := <-got; ms != 1 {
		t.Fatalf("100µs encoded as timeout_ms=%d, want 1", ms)
	}
	if _, err := c.Route("0x1:0", "0x2:1", nil, 2500*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if ms := <-got; ms != 3 {
		t.Fatalf("2.5ms encoded as timeout_ms=%d, want 3 (round up)", ms)
	}
	if _, err := c.Batch([][2]string{{"0x1:0", "0x2:1"}}, 0); err != nil {
		t.Fatal(err)
	}
	if ms := <-got; ms != 0 {
		t.Fatalf("no timeout encoded as timeout_ms=%d, want 0", ms)
	}
}

func TestWireTimeoutMS(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want int64
	}{
		{0, 0}, {-time.Second, 0}, {time.Nanosecond, 1}, {100 * time.Microsecond, 1},
		{time.Millisecond, 1}, {time.Millisecond + 1, 2}, {1500 * time.Microsecond, 2},
		{time.Second, 1000},
	}
	for _, tc := range cases {
		if got := wireTimeoutMS(tc.in); got != tc.want {
			t.Errorf("wireTimeoutMS(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestClientNegotiation: auto mode upgrades to v2 against a current
// server, stays v1 against a server that omits ver_max, and pinning works.
func TestClientNegotiation(t *testing.T) {
	_, addr := startServer(t, Config{M: 3})

	auto, err := DialWith(addr, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	if auto.Proto() != ProtocolV2 {
		t.Fatalf("auto-negotiated proto %d, want %d", auto.Proto(), ProtocolV2)
	}
	var resp ResponseV2
	if err := auto.PathsV2(hhc.Node{X: 1}, hhc.Node{X: 0xfe, Y: 6}, 0, 0, &resp); err != nil {
		t.Fatalf("v2 paths after negotiation: %v", err)
	}

	pinned, err := DialWith(addr, DialOptions{Proto: ProtocolVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	if pinned.Proto() != ProtocolVersion {
		t.Fatalf("pinned proto %d, want 1", pinned.Proto())
	}
	if err := pinned.DoV2(&RequestV2{Op: OpCodePing}, &resp); err == nil {
		t.Fatal("DoV2 on a v1 connection must refuse")
	}

	// An old server: speaks v1, omits ver_max from Info.
	oldConn := fakePeer(t, func(ss net.Conn) {
		br := bufio.NewReader(ss)
		for {
			payload, err := ReadFrame(br, 0)
			if err != nil {
				return
			}
			req, _ := DecodeRequest(payload)
			if WriteFrame(ss, &Response{Ver: ProtocolVersion, ID: req.ID, Op: req.Op, M: 3}, 0) != nil {
				return
			}
		}
	})
	old, err := NewClientWith(oldConn, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if old.Proto() != ProtocolVersion {
		t.Fatalf("proto against old server = %d, want 1", old.Proto())
	}
}

// TestWireCompatMatrix runs the full op set through every protocol
// pairing on one server: v1 client, v2 client, and both encodings
// interleaved on a single negotiated connection.
func TestWireCompatMatrix(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3})
	g, _ := hhc.New(3)
	u, v := hhc.Node{X: 0x0, Y: 0}, hhc.Node{X: 0xff, Y: 7}
	us, vs := g.FormatNode(u), g.FormatNode(v)

	checkV1 := func(t *testing.T, c *Client) {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping: %v", err)
		}
		info, err := c.Info()
		if err != nil || info.M != 3 {
			t.Fatalf("info: %+v, %v", info, err)
		}
		if info.VerMax != MaxProtocolVersion {
			t.Fatalf("info.VerMax = %d, want %d", info.VerMax, MaxProtocolVersion)
		}
		resp, err := c.Paths(us, vs, 0, 0)
		if err != nil || len(resp.Paths) != 4 {
			t.Fatalf("paths: %v (%d paths)", err, len(resp.Paths))
		}
		verifyContainer(t, g, us, vs, resp.Paths)
	}
	checkV2 := func(t *testing.T, c *Client) {
		var resp ResponseV2
		if err := c.DoV2(&RequestV2{Op: OpCodePing}, &resp); err != nil {
			t.Fatalf("v2 ping: %v", err)
		}
		if err := c.DoV2(&RequestV2{Op: OpCodeInfo}, &resp); err != nil || resp.M != 3 {
			t.Fatalf("v2 info: m=%d, %v", resp.M, err)
		}
		if err := c.PathsV2(u, v, 0, 0, &resp); err != nil {
			t.Fatalf("v2 paths: %v", err)
		}
		if len(resp.Paths) != 4 || resp.Width != 4 || resp.Full != 4 || resp.Degraded {
			t.Fatalf("v2 paths width=%d full=%d degraded=%v len=%d",
				resp.Width, resp.Full, resp.Degraded, len(resp.Paths))
		}
		for i, p := range resp.Paths {
			if err := g.VerifyPath(u, v, p); err != nil {
				t.Fatalf("v2 path %d invalid: %v", i, err)
			}
		}
		// Truncation without degradation.
		if err := c.PathsV2(u, v, 2, 0, &resp); err != nil || len(resp.Paths) != 2 || resp.Degraded {
			t.Fatalf("v2 maxpaths=2: %d paths degraded=%v, %v", len(resp.Paths), resp.Degraded, err)
		}
		// Route avoiding a fault.
		fault := resp.Paths[0][1]
		if err := c.DoV2(&RequestV2{Op: OpCodeRoute, U: u, V: v,
			Faults: []hhc.Node{fault}}, &resp); err != nil {
			t.Fatalf("v2 route: %v", err)
		}
		if len(resp.Paths) != 1 {
			t.Fatalf("v2 route returned %d paths, want 1", len(resp.Paths))
		}
		for _, n := range resp.Paths[0] {
			if n == fault {
				t.Fatal("v2 route crossed the declared fault")
			}
		}
		// Batch: one good pair, one out-of-range pair.
		if err := c.DoV2(&RequestV2{Op: OpCodeBatch, Pairs: []NodePair{
			{U: u, V: v},
			{U: hhc.Node{X: 1 << 40, Y: 0}, V: v},
		}}, &resp); err != nil {
			t.Fatalf("v2 batch: %v", err)
		}
		if len(resp.Results) != 2 {
			t.Fatalf("v2 batch returned %d results, want 2", len(resp.Results))
		}
		if resp.Results[0].Err != "" || len(resp.Results[0].Paths) != 4 {
			t.Fatalf("v2 batch good pair: err=%q paths=%d", resp.Results[0].Err, len(resp.Results[0].Paths))
		}
		if resp.Results[1].Err == "" {
			t.Fatal("v2 batch out-of-range pair reported no error")
		}
		// RID echo.
		if err := c.DoV2(&RequestV2{Op: OpCodePing, RID: "rid-42"}, &resp); err != nil || resp.RID != "rid-42" {
			t.Fatalf("v2 rid echo: %q, %v", resp.RID, err)
		}
		// Typed bad request for an out-of-range endpoint.
		err := c.PathsV2(hhc.Node{X: 1 << 40, Y: 0}, v, 0, 0, &resp)
		var se *ServerError
		if !errors.As(err, &se) || se.Code != CodeBadRequest {
			t.Fatalf("v2 out-of-range endpoint: %v, want bad_request ServerError", err)
		}
	}

	t.Run("v1-client", func(t *testing.T) {
		c := dial(t, addr)
		checkV1(t, c)
	})
	t.Run("v2-client", func(t *testing.T) {
		c, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		checkV2(t, c)
	})
	t.Run("mixed-one-connection", func(t *testing.T) {
		c, err := DialWith(addr, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		// Both encodings interleave on a single connection: the server
		// answers each frame in the version it arrived in.
		checkV1(t, c)
		checkV2(t, c)
		checkV1(t, c)
	})
	_ = srv
}

// TestMixedProtocolCoalesce: a v1 leader and a v2 waiter on the same
// endpoints share one construction, and each receives its answer in its
// own encoding.
func TestMixedProtocolCoalesce(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }

	u, v := hhc.Node{X: 0x5, Y: 1}, hhc.Node{X: 0xa, Y: 6}
	g, _ := hhc.New(3)
	us, vs := g.FormatNode(u), g.FormatNode(v)

	errs := make(chan error, 2)
	var v1resp *Response
	var v2resp ResponseV2
	go func() {
		c, err := Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		v1resp, err = c.Paths(us, vs, 0, time.Minute)
		errs <- err
	}()
	go func() {
		c, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		errs <- c.PathsV2(u, v, 0, time.Minute, &v2resp)
	}()
	waitFor(t, "one construction, one coalesced waiter", func() bool {
		cs := srv.Counters()
		return cs.Admitted == 1 && cs.Coalesced == 1
	})
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("mixed coalesce request: %v", err)
		}
	}
	if len(v1resp.Paths) != 4 || len(v2resp.Paths) != 4 {
		t.Fatalf("v1 got %d paths, v2 got %d, want 4 and 4", len(v1resp.Paths), len(v2resp.Paths))
	}
	if cs := srv.CacheSnapshot(); cs.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1 shared construction", cs.Misses)
	}
}

// TestPipelinedHammer drives one shared connection from many goroutines
// with both encodings in flight at once (run under -race in CI).
func TestPipelinedHammer(t *testing.T) {
	_, addr := startServer(t, Config{M: 3, QueueDepth: 512})
	c, err := DialWith(addr, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, _ := hhc.New(3)

	const goroutines = 16
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var resp ResponseV2
			for j := 0; j < perG; j++ {
				u := hhc.Node{X: uint64((seed*31 + j) % 256), Y: uint8(seed % 8)}
				v := hhc.Node{X: uint64((seed*17 + j*13 + 1) % 256), Y: uint8((seed + 5) % 8)}
				if u == v {
					v.X = (v.X + 1) % 256
				}
				switch j % 3 {
				case 0:
					if err := c.PathsV2(u, v, 0, 0, &resp); err != nil {
						errs <- fmt.Errorf("goroutine %d v2 paths: %w", seed, err)
						return
					}
					if len(resp.Paths) != 4 {
						errs <- fmt.Errorf("goroutine %d: %d paths, want 4", seed, len(resp.Paths))
						return
					}
				case 1:
					r, err := c.Paths(g.FormatNode(u), g.FormatNode(v), 0, 0)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d v1 paths: %w", seed, err)
						return
					}
					if len(r.Paths) != 4 {
						errs <- fmt.Errorf("goroutine %d: v1 %d paths, want 4", seed, len(r.Paths))
						return
					}
				default:
					if err := c.Ping(); err != nil {
						errs <- fmt.Errorf("goroutine %d ping: %w", seed, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPipelinedStallingServer: every in-flight request against a fully
// stalled worker pool times out typed — none block forever, the client is
// not poisoned, and it recovers once the server unsticks.
func TestPipelinedStallingServer(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 2, QueueDepth: 64})
	release := make(chan struct{})
	var once sync.Once
	srv.stallForTest = func() {
		once.Do(func() {})
		<-release
	}
	c, err := DialWith(addr, DialOptions{TimeoutSlack: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const inflight = 8
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp ResponseV2
			u := hhc.Node{X: uint64(i), Y: 0}
			v := hhc.Node{X: uint64(0xf0 ^ i), Y: 5}
			errs <- c.PathsV2(u, v, 0, 30*time.Millisecond, &resp)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Either the client-side budget or the server's own deadline may
		// fire first; both are typed, neither may hang or poison.
		if !errors.Is(err, ErrClientTimeout) && !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("stalled request: %v, want ErrClientTimeout or ErrDeadlineExceeded", err)
		}
	}
	close(release)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after stall released: %v", err)
	}
}

// TestReconnRedialsAfterPoison: the reconnecting helper hands out a fresh
// client after the previous one broke.
func TestReconnRedialsAfterPoison(t *testing.T) {
	_, addr := startServer(t, Config{M: 3})
	r := NewReconn(addr, DialOptions{})
	defer r.Close()

	c1, err := r.Client()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()
	if err := c1.Ping(); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("ping on closed client: %v, want ErrClientBroken", err)
	}
	r.Invalidate(c1)
	c2, err := r.Client()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("Reconn handed back the poisoned client")
	}
	if err := c2.Ping(); err != nil {
		t.Fatalf("ping on redialed client: %v", err)
	}
}

// TestDeadlineExceededTypedV2: the v2 nanosecond timeout is honored
// server-side and surfaces as the same typed sentinel as v1.
func TestDeadlineExceededTypedV2(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8})
	block := make(chan struct{})
	var once sync.Once
	srv.stallForTest = func() { once.Do(func() { <-block }) }

	occupier, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	occDone := make(chan struct{})
	go func() {
		defer close(occDone)
		var resp ResponseV2
		_ = occupier.PathsV2(hhc.Node{X: 1}, hhc.Node{X: 2, Y: 3}, 0, time.Minute, &resp)
	}()
	waitFor(t, "worker occupied", func() bool { return srv.activeWorkers.Load() == 1 })

	go func() {
		time.Sleep(50 * time.Millisecond)
		close(block)
	}()
	c, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp ResponseV2
	err = c.PathsV2(hhc.Node{X: 3}, hhc.Node{X: 4, Y: 4}, 0, 10*time.Millisecond, &resp)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	<-occDone
}
