package pathsvc

import (
	"time"

	"repro/internal/obs"
)

// svcMetrics is the server's obs wiring, quarantined here per the obscost
// convention. The stats.Counters on Server stay the single source of truth
// (always on, atomic); the registry reads them through callbacks at
// snapshot time. Only the latency histograms are obs-native, and their
// observation sites route through the nil-safe methods below.
type svcMetrics struct {
	requestSeconds   *obs.Histogram
	queueWaitSeconds *obs.Histogram
}

// newSvcMetrics registers the pathsvc_* metric set in reg and returns the
// histogram handles the serving path feeds.
func newSvcMetrics(reg *obs.Registry, s *Server) *svcMetrics {
	reg.CounterFunc("pathsvc_conns_total",
		"Client connections accepted.", s.counters.Conns.Load)
	reg.CounterFunc("pathsvc_requests_total",
		"Requests decoded from the wire (any op).", s.counters.Requests.Load)
	reg.CounterFunc("pathsvc_admitted_total",
		"Requests that entered the work queue.", s.counters.Admitted.Load)
	reg.CounterFunc("pathsvc_shed_total",
		"Requests rejected at admission because the queue was full.", s.counters.Shed.Load)
	reg.CounterFunc("pathsvc_coalesced_total",
		"Requests answered by piggybacking on an identical in-flight query.", s.counters.Coalesced.Load)
	reg.CounterFunc("pathsvc_degraded_total",
		"Responses truncated below full container width by queue pressure.", s.counters.Degraded.Load)
	reg.CounterFunc("pathsvc_deadline_exceeded_total",
		"Requests that missed their deadline in queue or in flight.", s.counters.Deadline.Load)
	reg.CounterFunc("pathsvc_failed_total",
		"Requests answered with bad_request, unroutable, or internal.", s.counters.Failed.Load)
	reg.CounterFunc("pathsvc_completed_total",
		"Requests answered successfully.", s.counters.Completed.Load)
	reg.GaugeFunc("pathsvc_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("pathsvc_queue_capacity",
		"Admission queue bound.",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("pathsvc_active_workers",
		"Workers currently executing a request.",
		func() float64 { return float64(s.activeWorkers.Load()) })
	reg.GaugeFunc("pathsvc_open_conns",
		"Currently open client connections.",
		func() float64 { return float64(s.openConns()) })
	return &svcMetrics{
		requestSeconds: reg.Histogram("pathsvc_request_seconds",
			"End-to-end request latency: decode to response written.",
			obs.DefLatencyBuckets),
		queueWaitSeconds: reg.Histogram("pathsvc_queue_wait_seconds",
			"Time admitted requests spent waiting for a worker.",
			obs.DefLatencyBuckets),
	}
}

// observeRequest records one end-to-end latency sample. Nil-safe.
func (m *svcMetrics) observeRequest(d time.Duration) {
	if m != nil {
		m.requestSeconds.ObserveDuration(d)
	}
}

// observeQueueWait records one queue-wait sample. Nil-safe.
func (m *svcMetrics) observeQueueWait(d time.Duration) {
	if m != nil {
		m.queueWaitSeconds.ObserveDuration(d)
	}
}
