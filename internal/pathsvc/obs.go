package pathsvc

import (
	"time"

	"repro/internal/obs"
)

// svcMetrics is the server's obs wiring, quarantined here per the obscost
// convention. The stats.Counters on Server stay the single source of truth
// (always on, atomic); the registry reads them through callbacks at
// snapshot time. Only the latency histograms are obs-native, and their
// observation sites route through the nil-safe methods below.
type svcMetrics struct {
	requestSeconds   *obs.Histogram
	queueWaitSeconds *obs.Histogram

	// Rotating windows behind the cumulative histograms: the same samples,
	// but scoped to the last windowQuantileSpan seconds so /metrics can
	// report live quantiles that recover after a load spike instead of
	// averaging over the process lifetime.
	requestWindow   *obs.WindowHistogram
	queueWaitWindow *obs.WindowHistogram
	execWindow      *obs.WindowHistogram
}

// windowQuantileSpan is how many one-second windows the live quantile
// gauges merge over. Ten seconds is long enough to smooth scrape jitter
// and short enough that a burst stops dominating the readout quickly.
const windowQuantileSpan = 10

// newSvcMetrics registers the pathsvc_* metric set in reg and returns the
// histogram handles the serving path feeds.
func newSvcMetrics(reg *obs.Registry, s *Server) *svcMetrics {
	reg.CounterFunc("pathsvc_conns_total",
		"Client connections accepted.", s.counters.Conns.Load)
	reg.CounterFunc("pathsvc_requests_total",
		"Requests decoded from the wire (any op).", s.counters.Requests.Load)
	reg.CounterFunc("pathsvc_admitted_total",
		"Requests that entered the work queue.", s.counters.Admitted.Load)
	reg.CounterFunc("pathsvc_shed_total",
		"Requests rejected at admission because the queue was full.", s.counters.Shed.Load)
	reg.CounterFunc("pathsvc_coalesced_total",
		"Requests answered by piggybacking on an identical in-flight query.", s.counters.Coalesced.Load)
	reg.CounterFunc("pathsvc_degraded_total",
		"Responses truncated below full container width by queue pressure.", s.counters.Degraded.Load)
	reg.CounterFunc("pathsvc_deadline_exceeded_total",
		"Requests that missed their deadline in queue or in flight.", s.counters.Deadline.Load)
	reg.CounterFunc("pathsvc_failed_total",
		"Requests answered with bad_request, unroutable, or internal.", s.counters.Failed.Load)
	reg.CounterFunc("pathsvc_completed_total",
		"Requests answered successfully.", s.counters.Completed.Load)
	reg.GaugeFunc("pathsvc_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("pathsvc_queue_capacity",
		"Admission queue bound.",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("pathsvc_active_workers",
		"Workers currently executing a request.",
		func() float64 { return float64(s.activeWorkers.Load()) })
	reg.GaugeFunc("pathsvc_open_conns",
		"Currently open client connections.",
		func() float64 { return float64(s.openConns()) })
	m := &svcMetrics{
		requestSeconds: reg.Histogram("pathsvc_request_seconds",
			"End-to-end request latency: decode to response written.",
			obs.DefLatencyBuckets),
		queueWaitSeconds: reg.Histogram("pathsvc_queue_wait_seconds",
			"Time admitted requests spent waiting for a worker.",
			obs.DefLatencyBuckets),
		requestWindow: obs.NewWindowHistogram(
			obs.DefaultWindowWidth, obs.DefaultWindowCount, obs.DefLatencyBuckets),
		queueWaitWindow: obs.NewWindowHistogram(
			obs.DefaultWindowWidth, obs.DefaultWindowCount, obs.DefLatencyBuckets),
		execWindow: obs.NewWindowHistogram(
			obs.DefaultWindowWidth, obs.DefaultWindowCount, obs.DefLatencyBuckets),
	}
	// Exemplars tie fat latency buckets to retrievable rids in
	// /debug/requests. Only rid-carrying observations record one, so the
	// untraced hot path keeps its fixed allocation budget.
	m.requestWindow.EnableExemplars(obs.DefaultExemplarK)
	m.execWindow.EnableExemplars(obs.DefaultExemplarK)
	windowed := func(name, help string, w *obs.WindowHistogram) {
		for _, q := range []struct {
			label string
			p     float64
		}{{"p50", 50}, {"p95", 95}, {"p99", 99}} {
			p := q.p
			reg.GaugeFunc(name+`{q="`+q.label+`"}`, help,
				func() float64 { return w.Quantile(windowQuantileSpan, p) })
		}
	}
	windowed("pathsvc_request_seconds_window",
		"End-to-end latency quantile over the last 10s (0 when idle).", m.requestWindow)
	windowed("pathsvc_queue_wait_seconds_window",
		"Queue-wait quantile over the last 10s (0 when idle).", m.queueWaitWindow)
	windowed("pathsvc_exec_seconds_window",
		"Construction/execution quantile over the last 10s (0 when idle).", m.execWindow)
	if s.cfg.Router != nil {
		reg.CounterFunc("cluster_forwarded_total",
			"Non-owned queries answered through their owning peer.", s.counters.Forwarded.Load)
		reg.CounterFunc("cluster_forward_errors_total",
			"Peer forwards that failed (peer down, overloaded, or stream broken).", s.counters.ForwardErrors.Load)
		reg.CounterFunc("cluster_forwarded_in_total",
			"Queries that arrived already forwarded by a peer (hop-guard bit set).", s.counters.ForwardedIn.Load)
		reg.CounterFunc("cluster_degraded_local_total",
			"Non-owned queries answered locally after a failed or shed forward.", s.counters.DegradedLocal.Load)
		reg.CounterFunc("cluster_batch_local_total",
			"Batches answered locally despite containing non-owned pairs (batch forwarding gap).", s.counters.BatchLocal.Load)
	}
	if s.cfg.Peer != "" {
		// Peer-labeled aliases of the core ledger: same callbacks, one extra
		// name each, so a multi-peer scrape can aggregate and slice by
		// instance while single-node deployments keep the unlabeled series.
		peer := `{peer="` + s.cfg.Peer + `"}`
		reg.CounterFunc("pathsvc_requests_total"+peer,
			"Requests decoded from the wire on this cluster peer.", s.counters.Requests.Load)
		reg.CounterFunc("pathsvc_completed_total"+peer,
			"Requests answered successfully on this cluster peer.", s.counters.Completed.Load)
		reg.CounterFunc("pathsvc_failed_total"+peer,
			"Requests answered with an error verdict on this cluster peer.", s.counters.Failed.Load)
		reg.CounterFunc("cluster_forwarded_total"+peer,
			"Non-owned queries this peer answered through their owner.", s.counters.Forwarded.Load)
		reg.CounterFunc("cluster_forwarded_in_total"+peer,
			"Already-forwarded queries this peer answered locally.", s.counters.ForwardedIn.Load)
	}
	return m
}

// observeRequest records one end-to-end latency sample, retained as a
// bucket exemplar when the request carried a rid. Nil-safe.
func (m *svcMetrics) observeRequest(d time.Duration, rid string) {
	if m != nil {
		m.requestSeconds.ObserveDuration(d)
		m.requestWindow.ObserveDurationEx(d, rid)
	}
}

// observeQueueWait records one queue-wait sample. Nil-safe.
func (m *svcMetrics) observeQueueWait(d time.Duration) {
	if m != nil {
		m.queueWaitSeconds.ObserveDuration(d)
		m.queueWaitWindow.ObserveDuration(d)
	}
}

// observeExec records one construction/execution latency sample (shared by
// every coalesced recipient, so recorded once per leader), retained as a
// bucket exemplar when the request carried a rid. Nil-safe.
func (m *svcMetrics) observeExec(d time.Duration, rid string) {
	if m != nil {
		m.execWindow.ObserveDurationEx(d, rid)
	}
}

// RequestExemplars reports the request-latency window's retained
// exemplars: for each occupied bucket, the K most recent rids whose
// end-to-end latency landed there, so a fat tail bucket in /debug/series
// or /debug/cluster links directly to trees in /debug/requests. Empty
// without a registry.
func (s *Server) RequestExemplars() []obs.Exemplar {
	if s.met == nil {
		return nil
	}
	return s.met.requestWindow.Exemplars()
}

// ExecExemplars is RequestExemplars for the construction-time window.
func (s *Server) ExecExemplars() []obs.Exemplar {
	if s.met == nil {
		return nil
	}
	return s.met.execWindow.Exemplars()
}

// reqTrace carries one request's span-tree handles across the serving
// pipeline: admission on the connection's reader goroutine, queue wait and
// execution on a worker, encode wherever the response is rendered. The
// channel send that moves a task to a worker (and the inflightMu critical
// section that attaches a waiter to its leader) provide the happens-before
// edges obs.Req requires. A nil *reqTrace is the disabled path; every
// method is nil-receiver safe, so the serving code never branches on
// whether request tracing is on.
type reqTrace struct {
	q     *obs.Req
	admit *obs.ReqSpan
	fwd   *obs.ReqSpan
	queue *obs.ReqSpan
	exec  *obs.ReqSpan
	enc   *obs.ReqSpan
}

// beginTrace opens a request trace with its admission span. origin is the
// forwarding peer's address on a cluster-forwarded request ("" on direct
// client traffic): the tree is tagged with it, which routes it out of the
// client-facing slow bucket and marks it as the owner-side half of a
// cross-peer stitch. Returns nil when request tracing is disabled.
func (s *Server) beginTrace(op, rid, remote, origin string) *reqTrace {
	if s.cfg.Requests == nil {
		return nil
	}
	q := s.cfg.Requests.StartRequest(op, rid, obs.String("peer", remote))
	q.SetOrigin(origin)
	return &reqTrace{q: q, admit: q.StartSpan("admission")}
}

// id returns the trace's request id ("" when tracing is off), which the
// response echoes so clients can correlate against /debug/requests.
func (t *reqTrace) id() string {
	if t == nil {
		return ""
	}
	return t.q.ID()
}

// setAttr annotates the request (endpoints, widths, batch sizes).
func (t *reqTrace) setAttr(key, value string) {
	if t != nil {
		t.q.SetAttr(key, value)
	}
}

func (t *reqTrace) endAdmission() {
	if t != nil && t.admit != nil {
		t.admit.End()
		t.admit = nil
	}
}

// startForward / endForward bracket the peer hop of a cluster-forwarded
// query (between admission and either the owner's answer or the local
// fallback's queue span).
func (t *reqTrace) startForward() {
	if t != nil {
		t.fwd = t.q.StartSpan("forward")
	}
}

func (t *reqTrace) endForward() {
	if t != nil && t.fwd != nil {
		t.fwd.End()
		t.fwd = nil
	}
}

// endForwardWith closes the forward span annotated with the hop's remote
// timing: which peer answered, plus remote_queue / remote_exec / wire
// child spans synthesized from the owner's relayed queue_ns and exec_ns —
// so the hop decomposes without scraping the owner. The children are laid
// out sequentially from the span's start; wire is the residue of the
// measured hop not explained by the remote phases (clamped at zero
// against clock jitter).
func (t *reqTrace) endForwardWith(peer string, queueNS, execNS int64) {
	if t == nil || t.fwd == nil {
		return
	}
	fwd := t.fwd
	if peer != "" {
		fwd.SetAttr("peer", peer)
	}
	fwd.End()
	t.fwd = nil
	if queueNS <= 0 && execNS <= 0 {
		return
	}
	at := fwd.Start
	if queueNS > 0 {
		fwd.Children = append(fwd.Children,
			&obs.ReqSpan{Name: "remote_queue", Start: at, Dur: queueNS})
		at += queueNS
	}
	if execNS > 0 {
		fwd.Children = append(fwd.Children,
			&obs.ReqSpan{Name: "remote_exec", Start: at, Dur: execNS})
		at += execNS
	}
	if wire := fwd.Dur - queueNS - execNS; wire > 0 {
		fwd.Children = append(fwd.Children,
			&obs.ReqSpan{Name: "wire", Start: at, Dur: wire})
	}
}

func (t *reqTrace) startQueue() {
	if t != nil {
		t.queue = t.q.StartSpan("queue")
	}
}

func (t *reqTrace) endQueue() {
	if t != nil && t.queue != nil {
		t.queue.End()
		t.queue = nil
	}
}

func (t *reqTrace) startExec() {
	if t != nil {
		t.exec = t.q.StartSpan("exec")
	}
}

func (t *reqTrace) endExec() {
	if t != nil && t.exec != nil {
		t.exec.End()
		t.exec = nil
	}
}

func (t *reqTrace) startEncode() {
	if t != nil {
		t.enc = t.q.StartSpan("encode")
	}
}

func (t *reqTrace) endEncode() {
	if t != nil && t.enc != nil {
		t.enc.End()
		t.enc = nil
	}
}

// finish closes any phase span still open (shed and refused requests never
// reach later phases) and hands the tree to the flight recorder.
func (t *reqTrace) finish(code string) {
	if t == nil {
		return
	}
	t.endAdmission()
	t.endForward()
	t.endQueue()
	t.endExec()
	t.endEncode()
	t.q.Finish(code)
}

// logConnOpen / logConnClose emit one structured line per connection
// event. The Enabled guard keeps the disabled path free of attr-slice
// allocations (a nil logger reports every level disabled).
func (s *Server) logConnOpen(remote string) {
	if s.cfg.Logger.Enabled(obs.LevelInfo) {
		s.cfg.Logger.Info("conn open", obs.String("remote", remote))
	}
}

func (s *Server) logConnClose(remote string) {
	if s.cfg.Logger.Enabled(obs.LevelInfo) {
		s.cfg.Logger.Info("conn close", obs.String("remote", remote))
	}
}

// logResponse emits one structured line per non-OK response.
func (s *Server) logResponse(remote, op, rid, code, msg string) {
	if !s.cfg.Logger.Enabled(obs.LevelWarn) {
		return
	}
	s.cfg.Logger.Warn("request failed",
		obs.String("remote", remote), obs.String("op", op),
		obs.String("rid", rid), obs.String("code", code),
		obs.String("err", msg))
}
