package pathsvc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/hhc"
	"repro/internal/obs"
)

// startServer binds a server on a loopback port and serves it in the
// background. Tests that do not shut down explicitly get a cleanup drain.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// dial connects a test client.
func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// verifyContainer checks a wire-form container parses and is node-valid on g.
func verifyContainer(t *testing.T, g *hhc.Graph, u, v string, paths [][]string) {
	t.Helper()
	for i, p := range paths {
		if len(p) == 0 {
			t.Fatalf("path %d empty", i)
		}
		if p[0] != u || p[len(p)-1] != v {
			t.Fatalf("path %d endpoints %s..%s, want %s..%s", i, p[0], p[len(p)-1], u, v)
		}
		nodes := make([]hhc.Node, len(p))
		for j, s := range p {
			n, err := g.ParseNode(s)
			if err != nil {
				t.Fatalf("path %d node %q: %v", i, s, err)
			}
			nodes[j] = n
		}
		un, _ := g.ParseNode(u)
		vn, _ := g.ParseNode(v)
		if err := g.VerifyPath(un, vn, nodes); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
	}
}

func TestServeBasicOps(t *testing.T) {
	_, addr := startServer(t, Config{M: 3})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.M != 3 || info.Full != 4 {
		t.Fatalf("info = m:%d full:%d, want m:3 full:4", info.M, info.Full)
	}

	g, _ := hhc.New(3)
	u, v := "0x0:0", "0xff:7"
	resp, err := c.Paths(u, v, 0, 0)
	if err != nil {
		t.Fatalf("paths: %v", err)
	}
	if len(resp.Paths) != 4 || resp.Width != 4 || resp.Full != 4 || resp.Degraded {
		t.Fatalf("paths width=%d full=%d degraded=%v len=%d, want full 4-wide container",
			resp.Width, resp.Full, resp.Degraded, len(resp.Paths))
	}
	verifyContainer(t, g, u, v, resp.Paths)

	// MaxPaths truncates without flagging degradation.
	resp, err = c.Paths(u, v, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Paths) != 2 || resp.Degraded {
		t.Fatalf("maxpaths=2 returned %d paths, degraded=%v", len(resp.Paths), resp.Degraded)
	}

	// Route avoids a declared fault.
	full, err := c.Paths(u, v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fault := full.Paths[0][1] // interior node of the first path
	route, err := c.Route(u, v, []string{fault}, 0)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if len(route.Paths) != 1 {
		t.Fatalf("route returned %d paths, want 1", len(route.Paths))
	}
	for _, n := range route.Paths[0] {
		if n == fault {
			t.Fatalf("route crosses declared fault %s", fault)
		}
	}

	// Batch answers per pair.
	batch, err := c.Batch([][2]string{{u, v}, {"0x1:0", "0x1:5"}, {"bogus", v}}, 0)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	if batch.Results[0].Err != "" || len(batch.Results[0].Paths) != 4 {
		t.Fatalf("batch item 0: err=%q paths=%d", batch.Results[0].Err, len(batch.Results[0].Paths))
	}
	if batch.Results[2].Err == "" {
		t.Fatal("batch item with bogus address did not report an error")
	}

	// Bad requests are typed and do not kill the connection.
	var srvErr *ServerError
	if _, err := c.Paths("nonsense", v, 0, 0); !errors.As(err, &srvErr) || srvErr.Code != CodeBadRequest {
		t.Fatalf("bad address: got %v, want bad_request", err)
	}
	if _, err := c.Do(Request{Op: "nope"}); !errors.As(err, &srvErr) || srvErr.Code != CodeBadRequest {
		t.Fatalf("unknown op: got %v, want bad_request", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after bad requests: %v", err)
	}
}

// TestGracefulShutdownDrains: requests admitted before Shutdown are all
// answered (none dropped), Serve exits cleanly, and the listener refuses
// new connections afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	const inflight = 6
	srv, err := New(Config{M: 3, Workers: 2, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Distinct pairs (no coalescing), one client each, fired concurrently.
	g, _ := hhc.New(3)
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		u := g.FormatNode(hhc.Node{X: uint64(i), Y: 0})
		v := g.FormatNode(hhc.Node{X: uint64(0xf0 ^ i), Y: 5})
		go func() {
			c, err := Dial(addr)
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			resp, err := c.Paths(u, v, 0, time.Minute)
			if err == nil && len(resp.Paths) != 4 {
				err = fmt.Errorf("got %d paths, want 4", len(resp.Paths))
			}
			results <- err
		}()
	}
	waitFor(t, "all requests admitted", func() bool {
		return srv.Counters().Admitted == inflight
	})

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	// The drain must wait for the stalled workers, not abandon them.
	time.Sleep(20 * time.Millisecond)
	close(release)

	for i := 0; i < inflight; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight request %d dropped by shutdown: %v", i, err)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	snap := srv.Counters()
	if snap.Completed < inflight {
		t.Fatalf("completed %d < admitted %d: shutdown dropped answers", snap.Completed, inflight)
	}
	// No new work after close.
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("listener still accepting after drained shutdown")
	}
}

// TestDeadlineExceededTyped: a request whose deadline expires while it
// waits returns the typed ErrDeadlineExceeded through the client.
func TestDeadlineExceededTyped(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8})
	block := make(chan struct{})
	var once sync.Once
	srv.stallForTest = func() { once.Do(func() { <-block }) }

	// Occupy the single worker, then queue a request with a tiny deadline.
	occupier := dial(t, addr)
	occDone := make(chan struct{})
	go func() {
		defer close(occDone)
		_, _ = occupier.Paths("0x1:0", "0x2:3", 0, time.Minute)
	}()
	waitFor(t, "worker occupied", func() bool { return srv.activeWorkers.Load() == 1 })

	// Release the worker only after the queued request's deadline lapses.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(block)
	}()
	c := dial(t, addr)
	_, err := c.Paths("0x3:0", "0x4:4", 0, 10*time.Millisecond)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if srv.Counters().Deadline == 0 {
		t.Fatal("deadline counter not incremented")
	}
	<-occDone
}

// TestCoalesceInflight: identical (u, v) queries issued while the first is
// still executing share one construction and all receive full answers.
func TestCoalesceInflight(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }

	const dup = 3
	u, v := "0x5:1", "0xa:6"
	results := make(chan *Response, 1+dup)
	errs := make(chan error, 1+dup)
	for i := 0; i < 1+dup; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			resp, err := c.Paths(u, v, 0, time.Minute)
			errs <- err
			results <- resp
		}()
	}
	waitFor(t, "duplicates coalesced", func() bool {
		return srv.Counters().Coalesced == dup
	})
	if admitted := srv.Counters().Admitted; admitted != 1 {
		t.Fatalf("admitted %d constructions for %d identical queries, want 1", admitted, 1+dup)
	}
	close(release)
	for i := 0; i < 1+dup; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("coalesced request %d: %v", i, err)
		}
		if resp := <-results; len(resp.Paths) != 4 {
			t.Fatalf("coalesced request %d got %d paths, want 4", i, len(resp.Paths))
		}
	}
	// The cache saw exactly one construction for the whole fan-in.
	if cs := srv.CacheSnapshot(); cs.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", cs.Misses)
	}
}

// TestShedOverload: once the queue is full, reject-mode admission answers
// CodeOverload with a retry hint instead of queueing unboundedly.
func TestShedOverload(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 1, Admission: AdmitReject,
		RetryAfter: 75 * time.Millisecond})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }
	defer close(release)

	// Occupy the worker, fill the queue, then overflow it. Distinct pairs
	// keep coalescing out of the picture.
	bg := []struct{ u, v string }{{"0x1:0", "0x2:3"}, {"0x3:1", "0x4:4"}}
	for _, p := range bg {
		c := dial(t, addr)
		go func(u, v string) { _, _ = c.Paths(u, v, 0, time.Minute) }(p.u, p.v)
	}
	waitFor(t, "worker busy and queue full", func() bool {
		return srv.activeWorkers.Load() == 1 && len(srv.queue) == 1
	})

	c := dial(t, addr)
	resp, err := c.Paths("0x5:2", "0x6:5", 0, 0)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	var srvErr *ServerError
	if !errors.As(err, &srvErr) || srvErr.RetryAfter != 75*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want 75ms", srvErr.RetryAfter)
	}
	if resp == nil || resp.Code != CodeOverload {
		t.Fatalf("response %+v, want code overload", resp)
	}
	if srv.Counters().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// TestBlockAdmission: block mode parks the submitting connection instead
// of shedding, and the parked request completes once space frees up.
func TestBlockAdmission(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 1, Admission: AdmitBlock})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }

	pairsUV := []struct{ u, v string }{
		{"0x1:0", "0x2:3"}, {"0x3:1", "0x4:4"}, {"0x5:2", "0x6:5"},
	}
	errs := make(chan error, len(pairsUV))
	for _, p := range pairsUV {
		c := dial(t, addr)
		go func(u, v string) {
			_, err := c.Paths(u, v, 0, time.Minute)
			errs <- err
		}(p.u, p.v)
	}
	// Third request has nowhere to go; block mode must not shed it.
	time.Sleep(50 * time.Millisecond)
	if snap := srv.Counters(); snap.Shed != 0 {
		t.Fatalf("block mode shed %d requests", snap.Shed)
	}
	close(release)
	for range pairsUV {
		if err := <-errs; err != nil {
			t.Fatalf("blocked request failed: %v", err)
		}
	}
}

// TestDegradeUnderPressure: queue pressure past the shed threshold
// truncates path responses to DegradeWidth and flags them.
func TestDegradeUnderPressure(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 1, QueueDepth: 8,
		ShedThreshold: 0.25, DegradeWidth: 2})
	release := make(chan struct{})
	srv.stallForTest = func() { <-release }

	// Occupy the worker and put two requests in the queue (past the
	// 0.25 * 8 = 2 threshold).
	bg := []struct{ u, v string }{{"0x1:0", "0x2:3"}, {"0x3:1", "0x4:4"}, {"0x5:2", "0x6:5"}}
	errs := make(chan error, len(bg))
	for _, p := range bg {
		c := dial(t, addr)
		go func(u, v string) {
			_, err := c.Paths(u, v, 0, time.Minute)
			errs <- err
		}(p.u, p.v)
	}
	waitFor(t, "queue past shed threshold", func() bool { return len(srv.queue) >= 2 })

	c := dial(t, addr)
	got := make(chan *Response, 1)
	go func() {
		resp, err := c.Paths("0x7:3", "0x8:6", 0, time.Minute)
		if err != nil {
			t.Errorf("degraded request failed: %v", err)
		}
		got <- resp
	}()
	waitFor(t, "degraded request admitted", func() bool { return srv.Counters().Admitted == 4 })
	close(release)
	for range bg {
		if err := <-errs; err != nil {
			t.Fatalf("background request: %v", err)
		}
	}
	resp := <-got
	if resp == nil {
		t.Fatal("no degraded response")
	}
	if !resp.Degraded || len(resp.Paths) != 2 || resp.Full != 4 {
		t.Fatalf("degraded=%v width=%d full=%d, want degraded 2-of-4", resp.Degraded, len(resp.Paths), resp.Full)
	}
	if srv.Counters().Degraded == 0 {
		t.Fatal("degraded counter not incremented")
	}
}

// TestMetricsRegistered: with a registry configured, the pathsvc_* and
// cache_* families show up in the exposition after traffic.
func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startServer(t, Config{M: 3, Reg: reg})
	c := dial(t, addr)
	if _, err := c.Paths("0x0:0", "0x3:3", 0, 0); err != nil {
		t.Fatal(err)
	}
	var sb syncBuilder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"pathsvc_requests_total 1",
		"pathsvc_admitted_total 1",
		"pathsvc_completed_total 1",
		"pathsvc_queue_capacity 256",
		"pathsvc_request_seconds_bucket",
		"pathsvc_queue_wait_seconds_bucket",
		"cache_misses_total 1",
	} {
		if !contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestConcurrentHammer drives many connections with overlapping pairs and
// mixed ops; meant to run under -race (CI runs go test -race ./...).
func TestConcurrentHammer(t *testing.T) {
	srv, addr := startServer(t, Config{M: 3, Workers: 4, QueueDepth: 64})
	g, _ := hhc.New(3)
	pairs := []struct{ u, v hhc.Node }{
		{hhc.Node{X: 0, Y: 0}, hhc.Node{X: 0xff, Y: 7}},
		{hhc.Node{X: 1, Y: 2}, hhc.Node{X: 0x42, Y: 5}},
		{hhc.Node{X: 7, Y: 1}, hhc.Node{X: 7, Y: 6}},
	}
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	errsCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errsCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				p := pairs[(i+j)%len(pairs)]
				u, v := g.FormatNode(p.u), g.FormatNode(p.v)
				switch j % 3 {
				case 0:
					_, err = c.Paths(u, v, 0, time.Second)
				case 1:
					_, err = c.Route(u, v, nil, time.Second)
				default:
					_, err = c.Batch([][2]string{{u, v}}, time.Second)
				}
				if err != nil {
					errsCh <- fmt.Errorf("goroutine %d op %d: %w", i, j, err)
					return
				}
			}
			errsCh <- nil
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if err := <-errsCh; err != nil {
			t.Fatal(err)
		}
	}
	if snap := srv.Counters(); snap.Completed != goroutines*per {
		t.Fatalf("completed %d, want %d", snap.Completed, goroutines*per)
	}
}

// TestOversizeBatchTyped: a batch whose reply cannot fit one frame is
// refused with a typed bad_request naming the limit. The regression was a
// silently dropped response frame that left the client blocked forever.
func TestOversizeBatchTyped(t *testing.T) {
	_, addr := startServer(t, Config{M: 3, MaxFrame: 2048})
	c := dial(t, addr)

	pairs := make([][2]string, 16)
	for i := range pairs {
		pairs[i] = [2]string{"0x0:0", "0xff:7"}
	}
	var srvErr *ServerError
	if _, err := c.Batch(pairs, 0); !errors.As(err, &srvErr) || srvErr.Code != CodeBadRequest {
		t.Fatalf("oversize batch: got %v, want typed bad_request", err)
	}
	if !contains(srvErr.Msg, "split the batch") {
		t.Fatalf("refusal %q does not tell the client to split the batch", srvErr.Msg)
	}
	// The refusal is an answer, not a connection failure.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after oversize batch: %v", err)
	}
}

// TestOversizePathsAnsweredInternal: when an already-constructed response
// outgrows the frame limit at write time, the server substitutes a small
// CodeInternal answer instead of leaving the client waiting on silence.
func TestOversizePathsAnsweredInternal(t *testing.T) {
	_, addr := startServer(t, Config{M: 3, MaxFrame: 200})
	c := dial(t, addr)

	var srvErr *ServerError
	if _, err := c.Paths("0x0:0", "0xff:7", 0, 0); !errors.As(err, &srvErr) || srvErr.Code != CodeInternal {
		t.Fatalf("oversize paths: got %v, want typed internal", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after oversize paths: %v", err)
	}
}

// TestShutdownBeforeServe: a Shutdown that wins the race with Serve's
// startup must still end up closing the listener — the regression read
// s.ln before Serve published it and left Accept blocked forever.
func TestShutdownBeforeServe(t *testing.T) {
	srv, err := New(Config{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	waitFor(t, "close initiated", srv.closing)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not observe the pre-Serve shutdown")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestTrackAfterClosePoked: a connection accepted just before beginClose
// but tracked just after it missed the shutdown poke loop; track must
// apply the read deadline itself so the drain cannot wait on an idle
// reader forever.
func TestTrackAfterClosePoked(t *testing.T) {
	srv, err := New(Config{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv.beginClose()
	sc, cc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	srv.track(sc)

	readErr := make(chan error, 1)
	go func() {
		_, err := sc.Read(make([]byte, 1))
		readErr <- err
	}()
	select {
	case err := <-readErr:
		if err == nil || !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read returned %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late-tracked connection was not poked; reader still blocked")
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// syncBuilder is a minimal concurrent-safe strings.Builder stand-in.
type syncBuilder struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}

func contains(haystack, needle string) bool {
	return len(needle) == 0 || (len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0)
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}
