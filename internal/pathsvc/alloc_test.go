package pathsvc

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/hhc"
	"repro/internal/obs"
)

// serveStarted serves srv on a loopback port with a cleanup drain
// (startServer's shape, but usable from benchmarks too).
func serveStarted(tb testing.TB, srv *Server) (*Server, string) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			tb.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// allocClient dials a server built from cfg and returns a v2 client with
// a warmed cache entry for (u, v).
func allocSetupWith(t testing.TB, cfg Config) (*Client, hhc.Node, hhc.Node) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := serveStarted(t, srv)
	c, err := DialWith(addr, DialOptions{Proto: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	u, v := hhc.Node{X: 0x2a, Y: 3}, hhc.Node{X: 0x91, Y: 6}
	var resp ResponseV2
	for i := 0; i < 50; i++ { // warm the cache, the pools, and the buffers
		if err := c.PathsV2(u, v, 0, time.Second, &resp); err != nil {
			t.Fatal(err)
		}
	}
	return c, u, v
}

// allocSetup is the uninstrumented baseline configuration.
func allocSetup(t testing.TB) (*Client, hhc.Node, hhc.Node) {
	t.Helper()
	return allocSetupWith(t, Config{M: 3})
}

// ServeV2AllocBudget is the explicit steady-state allocation budget for
// one warm-cache OpPaths round trip over protocol v2, counted across
// every goroutine on both sides of the loopback (client encode/decode,
// server read/dispatch/construct/deliver/send). Measured: 9 allocs/op
// (11 under -race); the dominant terms are inherent — the per-request
// task, the coalescing flight entry, and the cache's defensive container
// copy (one outer + m+1 inner slices). The JSON path spends several
// hundred allocations on the same round trip. The margin above the
// measurement absorbs pool refills after an unluckily timed GC, not new
// hot-path costs.
const ServeV2AllocBudget = 16

// TestServeV2AllocBudget extends the TestUninstrumentedAllocIdentity
// discipline to the serve path: the budget is pinned by test so an
// accidental fmt.Sprintf or per-frame buffer on the hot path fails CI
// instead of silently eroding the v2 win.
func TestServeV2AllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is noisy under -short race runs")
	}
	c, u, v := allocSetup(t)
	var resp ResponseV2
	got := testing.AllocsPerRun(400, func() {
		if err := c.PathsV2(u, v, 0, time.Second, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if got > ServeV2AllocBudget {
		t.Errorf("v2 round trip allocates %.1f allocs/op, budget %d", got, ServeV2AllocBudget)
	}
	t.Logf("v2 round trip: %.1f allocs/op (budget %d)", got, ServeV2AllocBudget)
}

// TestServeV2AllocBudgetObserved re-runs the budget with metrics enabled:
// the window histograms record on every request (and rotate once per
// second), so this pins the claim that windowed telemetry rides the
// observer-pointer pattern without adding steady-state allocations.
func TestServeV2AllocBudgetObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is noisy under -short race runs")
	}
	reg := obs.NewRegistry()
	c, u, v := allocSetupWith(t, Config{M: 3, Reg: reg})
	var resp ResponseV2
	got := testing.AllocsPerRun(400, func() {
		if err := c.PathsV2(u, v, 0, time.Second, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if got > ServeV2AllocBudget {
		t.Errorf("instrumented v2 round trip allocates %.1f allocs/op, budget %d", got, ServeV2AllocBudget)
	}
	// The windows must actually have recorded: an accidentally nil-ed
	// svcMetrics would pass the budget while dropping every sample.
	if q := reg.Snapshot(); q.Counters["pathsvc_completed_total"] == 0 {
		t.Error("instrumented run recorded no completed requests")
	}
	t.Logf("instrumented v2 round trip: %.1f allocs/op (budget %d)", got, ServeV2AllocBudget)
}

func BenchmarkServeV2Paths(b *testing.B) {
	c, u, v := allocSetup(b)
	var resp ResponseV2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PathsV2(u, v, 0, time.Second, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeV1Paths(b *testing.B) {
	srv, err := New(Config{M: 3})
	if err != nil {
		b.Fatal(err)
	}
	_, addr := serveStarted(b, srv)
	c, err := DialWith(addr, DialOptions{Proto: ProtocolVersion})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	u, v := "0x2a:3", "0x91:6"
	if _, err := c.Paths(u, v, 0, time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Paths(u, v, 0, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
