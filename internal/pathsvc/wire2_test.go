package pathsvc

import (
	"bytes"
	"errors"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/hhc"
)

func n2(x uint64, y uint8) hhc.Node { return hhc.Node{X: x, Y: y} }

func reqV2Cases() []RequestV2 {
	return []RequestV2{
		{Op: OpCodePing, ID: 1},
		{Op: OpCodeInfo, ID: 2, RID: "trace-abc"},
		{Op: OpCodePaths, ID: 3, U: n2(0, 0), V: n2(0xff, 7), MaxPaths: 2, TimeoutNS: 1500},
		{Op: OpCodeRoute, ID: 4, U: n2(1, 1), V: n2(2, 2),
			Faults: []hhc.Node{n2(3, 3), n2(4, 4)}, TimeoutNS: int64(1) << 40},
		{Op: OpCodeRoute, ID: 5, U: n2(9, 0), V: n2(10, 1), Faults: []hhc.Node{}},
		{Op: OpCodeBatch, ID: 6, RID: "r",
			Pairs: []NodePair{{U: n2(1, 0), V: n2(2, 1)}, {U: n2(3, 2), V: n2(4, 3)}}},
		{Op: OpCodePaths, ID: 7, RID: "r42", U: n2(5, 1), V: n2(6, 2),
			Forwarded: true, Origin: "10.0.0.1:9100"},
		{Op: OpCodeRoute, ID: 8, U: n2(7, 0), V: n2(8, 3),
			Faults: []hhc.Node{n2(9, 4)}, Forwarded: true, Origin: "peer-a:1"},
	}
}

func respV2Cases() []ResponseV2 {
	return []ResponseV2{
		{Op: OpCodePing, ID: 1},
		{Op: OpCodeInfo, ID: 2, M: 3, Width: 4, Full: 4, RID: "echo"},
		{Op: OpCodePaths, ID: 3, QueueNS: 10, ExecNS: 20, Width: 2, Full: 4, Degraded: true,
			Paths: [][]hhc.Node{{n2(0, 0), n2(1, 0), n2(0xff, 7)}, {n2(0, 0), n2(0xff, 7)}}},
		{Op: OpCodePaths, ID: 4, Coalesced: true, ExecNS: 7,
			Paths: [][]hhc.Node{{n2(5, 5)}}},
		{Op: OpCodeRoute, ID: 5, Code: StatusUnroutable, Err: "all paths faulty"},
		{Op: OpCodeBatch, ID: 6, Results: []BatchItemV2{
			{U: n2(1, 0), V: n2(2, 1), Paths: [][]hhc.Node{{n2(1, 0), n2(2, 1)}}},
			{U: n2(3, 2), V: n2(4, 3), Err: "node out of range", Paths: [][]hhc.Node{}},
		}},
		{Op: OpCodePaths, ID: 7, Code: StatusOverload, Err: "queue full", RetryAfterNS: 50_000_000},
		{Op: OpCodePaths, ID: 8, Code: StatusShutdown, Err: "draining", RID: "rid-9"},
	}
}

// normalizeReq/normalizeResp make reflect.DeepEqual insensitive to the
// nil-vs-empty slice distinction the reusing decoder cannot preserve.
func normalizeReq(r *RequestV2) {
	if len(r.Faults) == 0 {
		r.Faults = nil
	}
	if len(r.Pairs) == 0 {
		r.Pairs = nil
	}
}

func normalizeResp(r *ResponseV2) {
	if len(r.Paths) == 0 {
		r.Paths = nil
	}
	for i := range r.Paths {
		if len(r.Paths[i]) == 0 {
			r.Paths[i] = nil
		}
	}
	if len(r.Results) == 0 {
		r.Results = nil
	}
	for i := range r.Results {
		if len(r.Results[i].Paths) == 0 {
			r.Results[i].Paths = nil
		}
		for j := range r.Results[i].Paths {
			if len(r.Results[i].Paths[j]) == 0 {
				r.Results[i].Paths[j] = nil
			}
		}
	}
}

func TestRequestV2RoundTrip(t *testing.T) {
	for _, want := range reqV2Cases() {
		buf := AppendRequestV2(nil, &want)
		var got RequestV2
		if err := DecodeRequestV2(buf, &got); err != nil {
			t.Fatalf("op %d: decode: %v", want.Op, err)
		}
		normalizeReq(&want)
		normalizeReq(&got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("op %d round trip:\n want %+v\n got  %+v", want.Op, want, got)
		}
	}
}

func TestResponseV2RoundTrip(t *testing.T) {
	for _, want := range respV2Cases() {
		buf := AppendResponseV2(nil, &want)
		var got ResponseV2
		if err := DecodeResponseV2(buf, &got); err != nil {
			t.Fatalf("op %d: decode: %v", want.Op, err)
		}
		normalizeResp(&want)
		normalizeResp(&got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("op %d round trip:\n want %+v\n got  %+v", want.Op, want, got)
		}
	}
}

// TestDecodeV2ScratchReuse: decoding a small request into scratch that
// previously held a large one must not leak the old request's slices.
func TestDecodeV2ScratchReuse(t *testing.T) {
	big := RequestV2{Op: OpCodeRoute, ID: 1, U: n2(1, 1), V: n2(2, 2),
		Faults: []hhc.Node{n2(3, 3), n2(4, 4), n2(5, 5)}, RID: "long-request-id",
		Forwarded: true, Origin: "10.0.0.9:9100"}
	small := RequestV2{Op: OpCodePaths, ID: 2, U: n2(7, 7), V: n2(8, 0)}
	var scratch RequestV2
	if err := DecodeRequestV2(AppendRequestV2(nil, &big), &scratch); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestV2(AppendRequestV2(nil, &small), &scratch); err != nil {
		t.Fatal(err)
	}
	if len(scratch.Faults) != 0 || scratch.RID != "" || scratch.Origin != "" || scratch.ID != 2 {
		t.Fatalf("scratch bleed-through: %+v", scratch)
	}

	bigResp := ResponseV2{Op: OpCodePaths, ID: 1,
		Paths: [][]hhc.Node{{n2(1, 1), n2(2, 2), n2(3, 3)}, {n2(4, 4)}}}
	smallResp := ResponseV2{Op: OpCodePaths, ID: 2, Paths: [][]hhc.Node{{n2(9, 1)}}}
	var rscratch ResponseV2
	if err := DecodeResponseV2(AppendResponseV2(nil, &bigResp), &rscratch); err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponseV2(AppendResponseV2(nil, &smallResp), &rscratch); err != nil {
		t.Fatal(err)
	}
	if len(rscratch.Paths) != 1 || len(rscratch.Paths[0]) != 1 || rscratch.Paths[0][0] != n2(9, 1) {
		t.Fatalf("response scratch bleed-through: %+v", rscratch.Paths)
	}
}

func TestDecodeRequestV2Malformed(t *testing.T) {
	valid := AppendRequestV2(nil, &RequestV2{Op: OpCodePaths, ID: 9, U: n2(1, 1), V: n2(2, 2)})

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = '{'
	badVer := append([]byte(nil), valid...)
	badVer[1] = 3
	badOp := append([]byte(nil), valid...)
	badOp[2] = 200
	trailing := append(append([]byte(nil), valid...), 0x00)

	// A route claiming 2^31 faults in a short payload must be rejected by
	// the count-vs-length check, not attempted.
	hostile := AppendRequestV2(nil, &RequestV2{Op: OpCodeRoute, ID: 1, U: n2(1, 1), V: n2(2, 2)})
	hostile[len(hostile)-4] = 0x80 // nfaults u32 := 1<<31

	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, errV2Short},
		{"magic only", valid[:1], errV2Short},
		{"header cut", valid[:10], errV2Short},
		{"body cut", valid[:len(valid)-3], errV2Short},
		{"bad magic", badMagic, errV2Magic},
		{"bad version", badVer, errV2Version},
		{"bad op", badOp, errV2Op},
		{"trailing bytes", trailing, errV2Trailing},
		{"hostile count", hostile, errV2Count},
	}
	for _, tc := range cases {
		var req RequestV2
		err := DecodeRequestV2(tc.payload, &req)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if !errors.Is(err, ErrMalformedV2) {
			t.Errorf("%s: %v does not wrap ErrMalformedV2", tc.name, err)
		}
	}

	// A truncated header still surfaces the id when it arrived, so the
	// server can address its refusal.
	var req RequestV2
	if err := DecodeRequestV2(valid[:len(valid)-3], &req); err == nil || req.ID != 9 {
		t.Fatalf("truncated body: id = %d (err %v), want id 9 preserved", req.ID, err)
	}
}

// TestReadFrameIntoLargeMax pins the fix for the uint32(max) truncation:
// a max above math.MaxUint32 must accept every representable frame, not be
// compared modulo 2^32 (which rejected frames the caller meant to accept).
func TestReadFrameIntoLargeMax(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("needs 64-bit int")
	}
	frame := []byte{0, 0, 0, 16}
	frame = append(frame, bytes.Repeat([]byte{0xab}, 16)...)
	// 1<<32+8 truncates to 8 in uint32 space: the old comparison saw
	// 16 > 8 and rejected the frame.
	payload, err := ReadFrame(bytes.NewReader(frame), 1<<32+8)
	if err != nil {
		t.Fatalf("ReadFrame with max > MaxUint32: %v", err)
	}
	if len(payload) != 16 {
		t.Fatalf("payload length %d, want 16", len(payload))
	}
}

// TestReadFrameIntoReuse pins the buffer-reuse contract: a big-enough
// caller buffer is aliased, a too-small one is replaced.
func TestReadFrameIntoReuse(t *testing.T) {
	frame := []byte{0, 0, 0, 4, 1, 2, 3, 4}
	buf := make([]byte, 0, 64)
	payload, err := ReadFrameInto(bytes.NewReader(frame), buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &payload[0] != &buf[:1][0] {
		t.Fatal("payload did not reuse the caller's buffer")
	}
	payload2, err := ReadFrameInto(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("reused and fresh reads differ")
	}
}

func FuzzWireDecodeV2(f *testing.F) {
	for _, r := range reqV2Cases() {
		req := r
		f.Add(AppendRequestV2(nil, &req))
	}
	for _, r := range respV2Cases() {
		resp := r
		f.Add(AppendResponseV2(nil, &resp))
	}
	f.Add([]byte{frameMagicV2})
	f.Add([]byte{frameMagicV2, ProtocolV2, OpCodePaths, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req RequestV2
		if DecodeRequestV2(payload, &req) == nil {
			// Re-encode and re-decode: the codec must be self-consistent on
			// everything it accepts.
			enc := AppendRequestV2(nil, &req)
			var again RequestV2
			if err := DecodeRequestV2(enc, &again); err != nil {
				t.Fatalf("re-decode of re-encoded request: %v", err)
			}
			normalizeReq(&req)
			normalizeReq(&again)
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("request not canonical:\n first  %+v\n second %+v", req, again)
			}
		}
		var resp ResponseV2
		if DecodeResponseV2(payload, &resp) == nil {
			enc := AppendResponseV2(nil, &resp)
			var again ResponseV2
			if err := DecodeResponseV2(enc, &again); err != nil {
				t.Fatalf("re-decode of re-encoded response: %v", err)
			}
			normalizeResp(&resp)
			normalizeResp(&again)
			if !reflect.DeepEqual(resp, again) {
				t.Fatalf("response not canonical:\n first  %+v\n second %+v", resp, again)
			}
		}
	})
}
