package pathsvc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/hhc"
)

// TestClientCloseRaceHammer closes clients while requests are in flight
// on them, repeatedly. Its value is under `go test -race`: Close joins
// the reader goroutine via readerDone, so by the time Close returns no
// demuxing may still be running — every in-flight call must resolve to
// either a real response or a poison error, never a hang, and the reader
// must be provably gone.
func TestClientCloseRaceHammer(t *testing.T) {
	_, addr := startServer(t, Config{M: 3, QueueDepth: 256})

	const rounds = 8
	const callers = 6
	for r := 0; r < rounds; r++ {
		c, err := DialWith(addr, DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				var resp ResponseV2
				for j := 0; ; j++ {
					u := hhc.Node{X: uint64((seed*13 + j) % 256), Y: uint8(seed % 8)}
					v := hhc.Node{X: uint64((seed*7 + j*3 + 1) % 256), Y: uint8((seed + 3) % 8)}
					if u == v {
						v.X = (v.X + 1) % 256
					}
					err := c.PathsV2(u, v, 0, time.Second, &resp)
					if err == nil {
						continue
					}
					// Once the handle is closed, the only acceptable
					// outcome is the sticky poison error, fast.
					if !errors.Is(err, ErrClientBroken) {
						t.Errorf("caller %d: %v, want success or ErrClientBroken", seed, err)
					}
					return
				}
			}(i)
		}
		// Close mid-flight: callers race the teardown.
		time.Sleep(time.Duration(r) * time.Millisecond)
		_ = c.Close()
		// Close has joined the reader: readerDone must already be closed,
		// without waiting on the callers.
		select {
		case <-c.readerDone:
		default:
			t.Fatal("Close returned before the reader goroutine exited")
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("in-flight calls hung after Close")
		}
		// A second Close on a dead client must not hang or panic.
		_ = c.Close()
	}
}
