// Binary wire protocol v2.
//
// v1 frames JSON; v2 frames a fixed-layout binary encoding of the same
// requests and responses, sharing the outer framing (4-byte big-endian
// length prefix). The two are distinguished per frame by the first payload
// byte: JSON payloads always open with '{' (0x7b), v2 payloads open with
// the magic byte 0xf2 — so one connection can carry both, the server
// answers each request in the encoding it arrived in, and version
// negotiation reduces to reading ver_max off a v1 OpInfo response.
//
// Node addresses are uint64 cube word + uint8 processor, so they pack into
// 9 fixed bytes with no varints and no text; a full v2 request header is
// 24 bytes where the v1 JSON equivalent spends that on `{"ver":1,"id":`.
// Encoders are append-style ([]byte in, []byte out) and decoders fill
// caller-owned structs reusing their slice capacity, which is what lets
// the serve path run at a fixed per-request allocation budget
// (TestServeV2AllocBudget) with pooled frame buffers and a single
// conn.Write per frame.
//
// Layout (all multi-byte integers big-endian, node = X uint64 + Y uint8):
//
//	request:  f2 | ver | op | flags | id u64 | timeout_ns u64 | max_paths u32
//	          paths: u v | route: u v nfaults u32 faults | batch: n u32 pairs
//	          [rid: len u16 bytes]                         (flags bit 0)
//	          [origin: len u16 bytes]                      (flags bit 5)
//	          flags bit 4 marks a peer-forwarded query (hop guard, no tail)
//	response: f2 | ver | op | flags | id u64 | status u8 | queue_ns u64
//	          | exec_ns u64 | retry_ns u64 | width u16 | full u16 | m u8
//	          status OK: paths/route: npaths u32 {nlen u32, nodes}
//	                     batch: n u32 {u v, errlen u16 err, npaths u32 {…}}
//	          [err: len u16 bytes]                         (flags bit 3)
//	          [rid: len u16 bytes]                         (flags bit 0)
package pathsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/hhc"
)

// ProtocolV2 is the binary wire version.
const ProtocolV2 = 2

// frameMagicV2 is the first payload byte of every v2 frame. It can never
// open a JSON payload, so framing-level protocol detection is one byte.
const frameMagicV2 = 0xf2

// Op codes of the v2 header (v1 spells ops as strings).
const (
	OpCodePaths uint8 = 1
	OpCodeBatch uint8 = 2
	OpCodeRoute uint8 = 3
	OpCodeInfo  uint8 = 4
	OpCodePing  uint8 = 5
)

// Status codes of the v2 response header, mirroring the v1 Code* strings.
const (
	StatusOK         uint8 = 0
	StatusBadRequest uint8 = 1
	StatusOverload   uint8 = 2
	StatusDeadline   uint8 = 3
	StatusShutdown   uint8 = 4
	StatusUnroutable uint8 = 5
	StatusInternal   uint8 = 6
)

// Header flag bits.
const (
	flagRID       = 1 << 0 // request & response: rid tail present
	flagDegraded  = 1 << 1 // response: container truncated by load shedding
	flagCoalesced = 1 << 2 // response: answered off an in-flight duplicate
	flagErr       = 1 << 3 // response: error-detail tail present
	flagForwarded = 1 << 4 // request: relayed peer-to-peer once already (hop guard)
	flagOrigin    = 1 << 5 // request: origin-peer tail present (forwarded trace context)
)

// Fixed header lengths.
const (
	reqV2HeaderLen  = 24
	respV2HeaderLen = 42
	nodeWireLen     = 9
)

// ErrMalformedV2 is the root of every v2 decode failure; the wrapped
// sentinels below are preallocated so hot-path decoders never format.
var (
	ErrMalformedV2 = errors.New("pathsvc: malformed v2 payload")

	errV2Short    = fmt.Errorf("%w: truncated", ErrMalformedV2)
	errV2Magic    = fmt.Errorf("%w: bad magic byte", ErrMalformedV2)
	errV2Version  = fmt.Errorf("%w: unsupported version", ErrMalformedV2)
	errV2Op       = fmt.Errorf("%w: unknown op code", ErrMalformedV2)
	errV2Count    = fmt.Errorf("%w: element count exceeds payload", ErrMalformedV2)
	errV2Trailing = fmt.Errorf("%w: trailing bytes", ErrMalformedV2)
)

// opCodeOf maps a v1 op string onto its v2 code.
func opCodeOf(op string) (uint8, bool) {
	switch op {
	case OpPaths:
		return OpCodePaths, true
	case OpBatch:
		return OpCodeBatch, true
	case OpRoute:
		return OpCodeRoute, true
	case OpInfo:
		return OpCodeInfo, true
	case OpPing:
		return OpCodePing, true
	}
	return 0, false
}

// opNameOf maps a v2 op code onto its v1 string.
func opNameOf(code uint8) (string, bool) {
	switch code {
	case OpCodePaths:
		return OpPaths, true
	case OpCodeBatch:
		return OpBatch, true
	case OpCodeRoute:
		return OpRoute, true
	case OpCodeInfo:
		return OpInfo, true
	case OpCodePing:
		return OpPing, true
	}
	return "", false
}

// statusOf maps a v1 code string onto its v2 status byte.
func statusOf(code string) uint8 {
	switch code {
	case CodeOK:
		return StatusOK
	case CodeBadRequest:
		return StatusBadRequest
	case CodeOverload:
		return StatusOverload
	case CodeDeadline:
		return StatusDeadline
	case CodeShutdown:
		return StatusShutdown
	case CodeUnroutable:
		return StatusUnroutable
	default:
		return StatusInternal
	}
}

// codeOfStatus maps a v2 status byte back onto the v1 code string.
func codeOfStatus(st uint8) string {
	switch st {
	case StatusOK:
		return CodeOK
	case StatusBadRequest:
		return CodeBadRequest
	case StatusOverload:
		return CodeOverload
	case StatusDeadline:
		return CodeDeadline
	case StatusShutdown:
		return CodeShutdown
	case StatusUnroutable:
		return CodeUnroutable
	default:
		return CodeInternal
	}
}

// NodePair is one [source, destination] endpoint pair of a v2 batch.
type NodePair struct {
	U, V hhc.Node
}

// RequestV2 is the node-native form of one v2 request. Clients reuse one
// instance per connection or goroutine; DecodeRequestV2 refills a reused
// instance without allocating once its slices have grown.
type RequestV2 struct {
	ID uint64
	// Op is a v2 op code (OpCodePaths, …).
	Op  uint8
	RID string
	// U and V are the endpoints (OpCodePaths, OpCodeRoute).
	U, V hhc.Node
	// Faults lists nodes OpCodeRoute must avoid.
	Faults []hhc.Node
	// Pairs are the endpoint pairs of OpCodeBatch.
	Pairs []NodePair
	// MaxPaths, when > 0, truncates the returned container.
	MaxPaths int
	// TimeoutNS, when > 0, caps this request's end-to-end time in
	// nanoseconds (v1 carries milliseconds; v2 keeps full resolution).
	TimeoutNS int64
	// Forwarded marks a query relayed peer-to-peer inside a cluster (the
	// hop guard, v1's Fwd): the receiving peer must answer locally and
	// never forward again.
	Forwarded bool
	// Origin names the forwarding peer on a Forwarded request (the
	// requester's advertised -self address), so the owner's request trace
	// records which peer the query came from and fleet-level stitching can
	// join the two trees. Empty on direct client traffic.
	Origin string
}

// BatchItemV2 is one per-pair outcome inside a v2 batch response.
type BatchItemV2 struct {
	U, V  hhc.Node
	Paths [][]hhc.Node
	Err   string
}

// ResponseV2 is the node-native form of one v2 response. DecodeResponseV2
// refills a reused instance, recycling the Paths/Results backing arrays.
type ResponseV2 struct {
	ID           uint64
	Op           uint8 // v2 op code
	RID          string
	Code         uint8 // v2 status byte (StatusOK, …)
	Err          string
	QueueNS      int64
	ExecNS       int64
	RetryAfterNS int64
	Coalesced    bool
	Degraded     bool
	Width, Full  int
	M            int
	Paths        [][]hhc.Node
	Results      []BatchItemV2
}

// CodeString renders the v1 spelling of the status byte (for error
// taxonomies shared across protocol versions).
func (r *ResponseV2) CodeString() string { return codeOfStatus(r.Code) }

// appendNode packs one node address (8-byte X, 1-byte Y).
//
//hhc:hotpath
func appendNode(buf []byte, u hhc.Node) []byte {
	var w [nodeWireLen]byte
	binary.BigEndian.PutUint64(w[:8], u.X)
	w[8] = u.Y
	return append(buf, w[:]...)
}

// AppendRequestV2 appends the v2 encoding of req to buf and returns the
// extended slice. RIDs longer than 64 KiB are silently dropped (the field
// is a trace correlation hint, not data).
//
//hhc:hotpath
func AppendRequestV2(buf []byte, req *RequestV2) []byte {
	var flags uint8
	rid, origin := req.RID, req.Origin
	if len(rid) > 0xffff {
		rid = ""
	}
	if len(origin) > 0xffff {
		origin = ""
	}
	if rid != "" {
		flags |= flagRID
	}
	if origin != "" {
		flags |= flagOrigin
	}
	if req.Forwarded {
		flags |= flagForwarded
	}
	var hdr [reqV2HeaderLen]byte
	hdr[0] = frameMagicV2
	hdr[1] = ProtocolV2
	hdr[2] = req.Op
	hdr[3] = flags
	binary.BigEndian.PutUint64(hdr[4:12], req.ID)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(req.TimeoutNS))
	binary.BigEndian.PutUint32(hdr[20:24], uint32(req.MaxPaths))
	buf = append(buf, hdr[:]...)
	switch req.Op {
	case OpCodePaths:
		buf = appendNode(buf, req.U)
		buf = appendNode(buf, req.V)
	case OpCodeRoute:
		buf = appendNode(buf, req.U)
		buf = appendNode(buf, req.V)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(req.Faults)))
		for _, f := range req.Faults {
			buf = appendNode(buf, f)
		}
	case OpCodeBatch:
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(req.Pairs)))
		for _, p := range req.Pairs {
			buf = appendNode(buf, p.U)
			buf = appendNode(buf, p.V)
		}
	}
	if flags&flagRID != 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rid)))
		buf = append(buf, rid...)
	}
	if flags&flagOrigin != 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(origin)))
		buf = append(buf, origin...)
	}
	return buf
}

// AppendResponseV2 appends the v2 encoding of resp to buf and returns the
// extended slice. Bodies are encoded only for StatusOK; error details ride
// the tail. Oversized RID/Err tails (> 64 KiB) are dropped.
//
//hhc:hotpath
func AppendResponseV2(buf []byte, resp *ResponseV2) []byte {
	var flags uint8
	rid, errStr := resp.RID, resp.Err
	if len(rid) > 0xffff {
		rid = ""
	}
	if len(errStr) > 0xffff {
		errStr = errStr[:0xffff]
	}
	if rid != "" {
		flags |= flagRID
	}
	if errStr != "" {
		flags |= flagErr
	}
	if resp.Degraded {
		flags |= flagDegraded
	}
	if resp.Coalesced {
		flags |= flagCoalesced
	}
	var hdr [respV2HeaderLen]byte
	hdr[0] = frameMagicV2
	hdr[1] = ProtocolV2
	hdr[2] = resp.Op
	hdr[3] = flags
	binary.BigEndian.PutUint64(hdr[4:12], resp.ID)
	hdr[12] = resp.Code
	binary.BigEndian.PutUint64(hdr[13:21], uint64(resp.QueueNS))
	binary.BigEndian.PutUint64(hdr[21:29], uint64(resp.ExecNS))
	binary.BigEndian.PutUint64(hdr[29:37], uint64(resp.RetryAfterNS))
	binary.BigEndian.PutUint16(hdr[37:39], uint16(resp.Width))
	binary.BigEndian.PutUint16(hdr[39:41], uint16(resp.Full))
	hdr[41] = uint8(resp.M)
	buf = append(buf, hdr[:]...)
	if resp.Code == StatusOK {
		switch resp.Op {
		case OpCodePaths, OpCodeRoute:
			buf = appendPathsV2(buf, resp.Paths)
		case OpCodeBatch:
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(resp.Results)))
			for i := range resp.Results {
				item := &resp.Results[i]
				buf = appendNode(buf, item.U)
				buf = appendNode(buf, item.V)
				buf = binary.BigEndian.AppendUint16(buf, uint16(len(item.Err)))
				buf = append(buf, item.Err...)
				buf = appendPathsV2(buf, item.Paths)
			}
		}
	}
	if flags&flagErr != 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(errStr)))
		buf = append(buf, errStr...)
	}
	if flags&flagRID != 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rid)))
		buf = append(buf, rid...)
	}
	return buf
}

//hhc:hotpath
func appendPathsV2(buf []byte, paths [][]hhc.Node) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(paths)))
	for _, p := range paths {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p)))
		for _, n := range p {
			buf = appendNode(buf, n)
		}
	}
	return buf
}

// batchItemSizeV2 is the exact encoded footprint of one batch item, used
// by the server to refuse frame-overflowing batch replies with a typed
// error instead of an undeliverable frame.
func batchItemSizeV2(item *BatchItemV2) int {
	size := 2*nodeWireLen + 2 + len(item.Err) + 4
	for _, p := range item.Paths {
		size += 4 + nodeWireLen*len(p)
	}
	return size
}

// v2cur is a bounds-checked cursor over one v2 payload. Every read method
// reports underflow through ok; decoders bail on the first failure with a
// preallocated sentinel.
type v2cur struct {
	b   []byte
	off int
}

//hhc:hotpath
func (c *v2cur) u8() (uint8, bool) {
	if c.off+1 > len(c.b) {
		return 0, false
	}
	v := c.b[c.off]
	c.off++
	return v, true
}

//hhc:hotpath
func (c *v2cur) u16() (uint16, bool) {
	if c.off+2 > len(c.b) {
		return 0, false
	}
	v := binary.BigEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, true
}

//hhc:hotpath
func (c *v2cur) u32() (uint32, bool) {
	if c.off+4 > len(c.b) {
		return 0, false
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, true
}

//hhc:hotpath
func (c *v2cur) u64() (uint64, bool) {
	if c.off+8 > len(c.b) {
		return 0, false
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, true
}

//hhc:hotpath
func (c *v2cur) node() (hhc.Node, bool) {
	if c.off+nodeWireLen > len(c.b) {
		return hhc.Node{}, false
	}
	n := hhc.Node{X: binary.BigEndian.Uint64(c.b[c.off:]), Y: c.b[c.off+8]}
	c.off += nodeWireLen
	return n, true
}

// str reads a u16-length-prefixed string (copied out of the payload, which
// the caller reuses for the next frame).
//
//hhc:hotpath
func (c *v2cur) str() (string, bool) {
	n, ok := c.u16()
	if !ok || c.off+int(n) > len(c.b) {
		return "", false
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, true
}

// count reads a u32 element count and validates it against the bytes left
// at elemSize each, so a hostile count cannot drive a huge preallocation.
//
//hhc:hotpath
func (c *v2cur) count(elemSize int) (int, bool) {
	n, ok := c.u32()
	if !ok {
		return 0, false
	}
	if uint64(n)*uint64(elemSize) > uint64(len(c.b)-c.off) {
		return 0, false
	}
	return int(n), true
}

// header checks magic and version; returns the op, flags, and id.
//
//hhc:hotpath
func (c *v2cur) header() (op, flags uint8, id uint64, err error) {
	magic, ok := c.u8()
	if !ok {
		return 0, 0, 0, errV2Short
	}
	if magic != frameMagicV2 {
		return 0, 0, 0, errV2Magic
	}
	ver, ok := c.u8()
	if !ok {
		return 0, 0, 0, errV2Short
	}
	if ver != ProtocolV2 {
		return 0, 0, 0, errV2Version
	}
	op, _ = c.u8()
	flags, ok = c.u8()
	if !ok {
		return 0, 0, 0, errV2Short
	}
	id, ok = c.u64()
	if !ok {
		return 0, 0, 0, errV2Short
	}
	if _, k := opNameOf(op); !k {
		return 0, 0, 0, errV2Op
	}
	return op, flags, id, nil
}

// DecodeRequestV2 parses one v2 request payload into req, reusing its
// slice capacity. On error req holds whatever decoded before the failure
// (the ID in particular, when at least the header arrived, so the server
// can still address its refusal).
//
//hhc:hotpath
func DecodeRequestV2(payload []byte, req *RequestV2) error {
	req.RID = ""
	req.Origin = ""
	req.Faults = req.Faults[:0]
	req.Pairs = req.Pairs[:0]
	c := v2cur{b: payload}
	op, flags, id, err := c.header()
	req.ID = id
	req.Op = op
	if err != nil {
		return err
	}
	req.Forwarded = flags&flagForwarded != 0
	tns, ok := c.u64()
	if !ok {
		return errV2Short
	}
	req.TimeoutNS = int64(tns)
	mp, ok := c.u32()
	if !ok {
		return errV2Short
	}
	req.MaxPaths = int(mp)
	switch op {
	case OpCodePaths, OpCodeRoute:
		if req.U, ok = c.node(); !ok {
			return errV2Short
		}
		if req.V, ok = c.node(); !ok {
			return errV2Short
		}
		if op == OpCodeRoute {
			n, ok := c.count(nodeWireLen)
			if !ok {
				return errV2Count
			}
			for i := 0; i < n; i++ {
				f, ok := c.node()
				if !ok {
					return errV2Short
				}
				req.Faults = append(req.Faults, f)
			}
		}
	case OpCodeBatch:
		n, ok := c.count(2 * nodeWireLen)
		if !ok {
			return errV2Count
		}
		for i := 0; i < n; i++ {
			var p NodePair
			if p.U, ok = c.node(); !ok {
				return errV2Short
			}
			if p.V, ok = c.node(); !ok {
				return errV2Short
			}
			req.Pairs = append(req.Pairs, p)
		}
	}
	if flags&flagRID != 0 {
		if req.RID, ok = c.str(); !ok {
			return errV2Short
		}
	}
	if flags&flagOrigin != 0 {
		if req.Origin, ok = c.str(); !ok {
			return errV2Short
		}
	}
	if c.off != len(payload) {
		return errV2Trailing
	}
	return nil
}

// DecodeResponseV2 parses one v2 response payload into resp, reusing the
// backing arrays of resp.Paths and resp.Results across calls.
//
//hhc:hotpath
func DecodeResponseV2(payload []byte, resp *ResponseV2) error {
	resp.RID, resp.Err = "", ""
	resp.Paths = resp.Paths[:0]
	resp.Results = resp.Results[:0]
	c := v2cur{b: payload}
	op, flags, id, err := c.header()
	resp.ID = id
	resp.Op = op
	if err != nil {
		return err
	}
	st, ok := c.u8()
	if !ok {
		return errV2Short
	}
	resp.Code = st
	qns, ok := c.u64()
	if !ok {
		return errV2Short
	}
	ens, ok := c.u64()
	if !ok {
		return errV2Short
	}
	rns, ok := c.u64()
	if !ok {
		return errV2Short
	}
	resp.QueueNS, resp.ExecNS, resp.RetryAfterNS = int64(qns), int64(ens), int64(rns)
	w, ok := c.u16()
	if !ok {
		return errV2Short
	}
	f, ok := c.u16()
	if !ok {
		return errV2Short
	}
	m, ok := c.u8()
	if !ok {
		return errV2Short
	}
	resp.Width, resp.Full, resp.M = int(w), int(f), int(m)
	resp.Degraded = flags&flagDegraded != 0
	resp.Coalesced = flags&flagCoalesced != 0
	if st == StatusOK {
		switch op {
		case OpCodePaths, OpCodeRoute:
			if resp.Paths, ok = c.paths(resp.Paths); !ok {
				return errV2Count
			}
		case OpCodeBatch:
			n, ok := c.count(2*nodeWireLen + 2 + 4)
			if !ok {
				return errV2Count
			}
			results := resp.Results
			if cap(results) < n {
				grown := make([]BatchItemV2, n)
				copy(grown, results[:cap(results)])
				results = grown
			} else {
				results = results[:n]
			}
			for i := 0; i < n; i++ {
				item := &results[i]
				if item.U, ok = c.node(); !ok {
					return errV2Short
				}
				if item.V, ok = c.node(); !ok {
					return errV2Short
				}
				if item.Err, ok = c.str(); !ok {
					return errV2Short
				}
				if item.Paths, ok = c.paths(item.Paths[:0]); !ok {
					return errV2Count
				}
			}
			resp.Results = results
		}
	}
	if flags&flagErr != 0 {
		if resp.Err, ok = c.str(); !ok {
			return errV2Short
		}
	}
	if flags&flagRID != 0 {
		if resp.RID, ok = c.str(); !ok {
			return errV2Short
		}
	}
	if c.off != len(payload) {
		return errV2Trailing
	}
	return nil
}

// paths decodes a path list into dst (length 0), reusing both the outer
// backing array and the inner per-path slices it still holds beyond len.
//
//hhc:hotpath
func (c *v2cur) paths(dst [][]hhc.Node) ([][]hhc.Node, bool) {
	n, ok := c.count(4)
	if !ok {
		return dst, false
	}
	if cap(dst) < n {
		grown := make([][]hhc.Node, n)
		copy(grown, dst[:cap(dst)])
		dst = grown
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		l, ok := c.count(nodeWireLen)
		if !ok {
			return dst, false
		}
		p := dst[i][:0]
		for j := 0; j < l; j++ {
			u, ok := c.node()
			if !ok {
				return dst, false
			}
			p = append(p, u)
		}
		dst[i] = p
	}
	return dst, true
}

// frameBufPool recycles encode buffers: reserve 4 prefix bytes, append the
// payload, patch the prefix, write once, put back. Steady state this makes
// frame encoding allocation-free on both the server's send path and the
// client's.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// appendFramePrefix reserves the 4-byte length prefix at the start of an
// empty frame buffer.
//
//hhc:hotpath
func appendFramePrefix(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0, 0)
}

// patchFramePrefix writes the payload length into the reserved prefix and
// reports the payload size.
//
//hhc:hotpath
func patchFramePrefix(buf []byte) int {
	n := len(buf) - 4
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	return n
}
