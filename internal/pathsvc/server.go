package pathsvc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Typed request-outcome errors. The server renders them into response
// codes; the client maps the codes back onto the same sentinels, so
// errors.Is works identically on both sides of the wire.
var (
	// ErrDeadlineExceeded reports that a request's deadline expired while
	// it waited in the queue or executed.
	ErrDeadlineExceeded = errors.New("pathsvc: request deadline exceeded")
	// ErrOverload reports an admission rejection: the work queue was full.
	ErrOverload = errors.New("pathsvc: server overloaded, queue full")
	// ErrShutdown reports that the server is draining and refused the request.
	ErrShutdown = errors.New("pathsvc: server shutting down")
)

// Admission selects what happens to a request that arrives while the work
// queue is full.
type Admission int

const (
	// AdmitReject answers CodeOverload immediately with a retry-after hint
	// (shed load early, keep latency bounded for admitted work).
	AdmitReject Admission = iota
	// AdmitBlock parks the connection's reader until queue space frees up
	// (per-connection backpressure instead of shedding).
	AdmitBlock
)

// String names the policy.
func (a Admission) String() string {
	switch a {
	case AdmitReject:
		return "reject"
	case AdmitBlock:
		return "block"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// ParseAdmission parses the CLI spelling of an admission policy.
func ParseAdmission(s string) (Admission, error) {
	switch s {
	case "reject", "":
		return AdmitReject, nil
	case "block":
		return AdmitBlock, nil
	default:
		return 0, fmt.Errorf("pathsvc: unknown admission policy %q (want reject|block)", s)
	}
}

// Forwarder hooks a cluster layer into the server. The server consults it
// once per path/route query: non-owned queries that have not been forwarded
// already (the wire's forwarded bit — the hop guard) are relayed to their
// owning peer instead of executing locally. implementations live above this
// package (internal/cluster); the server only needs ownership answers and
// a way to relay.
type Forwarder interface {
	// Owns reports whether this process owns the canonicalized (u, v) key.
	Owns(u, v hhc.Node) bool
	// Forward relays req to the owning peer and decodes its answer into
	// resp, returning the owner's address so the requester's trace can
	// attribute the hop. A non-nil error is either transport-level (the
	// peer is unreachable or the stream broke — the server falls back to a
	// local, correctness-preserving answer) or a *ServerError carrying the
	// owner's verdict; peer names the attempted owner in both cases when
	// known.
	Forward(req *RequestV2, resp *ResponseV2) (peer string, err error)
}

// Config tunes a Server. The zero value of every field selects a sensible
// default; only M is required.
type Config struct {
	// M is the served topology's son-cube dimension.
	M int
	// Workers is the construction worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (0 = DefaultQueueDepth).
	QueueDepth int
	// Admission selects the full-queue behavior (default AdmitReject).
	Admission Admission
	// RetryAfter is the back-off hint sent with CodeOverload
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// DefaultTimeout caps requests that carry no deadline of their own
	// (0 = DefaultRequestTimeout).
	DefaultTimeout time.Duration
	// MaxFrame bounds wire frames (0 = DefaultMaxFrame).
	MaxFrame int
	// ShedThreshold is the queue-fill fraction beyond which OpPaths
	// responses degrade to DegradeWidth paths (0 = DefaultShedThreshold;
	// must be in (0, 1]).
	ShedThreshold float64
	// DegradeWidth is the container width served while degraded
	// (0 = DefaultDegradeWidth).
	DegradeWidth int
	// MaxBatch bounds OpBatch pair counts (0 = DefaultMaxBatch).
	MaxBatch int
	// Cache tunes the memoizing container cache backing the service.
	Cache cache.Options
	// Reg, when non-nil, receives the pathsvc_* metric set (plus the
	// cache_* set of the backing cache).
	Reg *obs.Registry
	// Logger, when non-nil, receives one structured line per connection
	// event and per non-OK response. Nil disables logging at zero cost.
	Logger *obs.Logger
	// Requests, when non-nil, records a span tree per request (admission,
	// queue wait, execution, encode) into the flight recorder behind
	// /debug/requests. Nil disables request tracing at zero cost.
	Requests *obs.RequestTracer
	// Router, when non-nil, shards the query space across cluster peers:
	// path/route queries whose canonical key this process does not own are
	// relayed to the owner (at most once — see the wire's forwarded bit)
	// and answered locally only when the owner is unreachable.
	Router Forwarder
	// Peer names this process in the cluster (its own address). When set,
	// the core pathsvc_* counters are additionally exported with a
	// {peer="..."} label so multi-peer scrapes can tell instances apart.
	Peer string
	// ForwardConcurrency bounds in-flight peer forwards
	// (0 = DefaultForwardConcurrency). Beyond the bound the server answers
	// locally instead of queueing forwards.
	ForwardConcurrency int
}

// Defaults for Config zero values.
const (
	DefaultQueueDepth         = 256
	DefaultRetryAfter         = 50 * time.Millisecond
	DefaultRequestTimeout     = 2 * time.Second
	DefaultShedThreshold      = 0.75
	DefaultDegradeWidth       = 1
	DefaultMaxBatch           = 1024
	DefaultForwardConcurrency = 256
)

// Counters is the always-on (obs-independent) event ledger of a Server,
// updated atomically on the serving path and re-exported through obs
// callbacks when a registry is configured.
type Counters struct {
	Conns     stats.Counter // accepted connections
	Requests  stats.Counter // decoded requests of any op
	Admitted  stats.Counter // requests that entered the work queue
	Shed      stats.Counter // requests rejected at admission (queue full)
	Coalesced stats.Counter // requests piggybacked on an identical in-flight query
	Degraded  stats.Counter // responses truncated below full width by queue pressure
	Deadline  stats.Counter // requests that missed their deadline
	Failed    stats.Counter // bad_request / unroutable / internal responses
	Completed stats.Counter // successful responses
	// Cluster-mode ledger (all zero without a Router).
	Forwarded     stats.Counter // non-owned queries answered through the owning peer
	ForwardErrors stats.Counter // forwards that failed (peer down, overload, stream broken)
	ForwardedIn   stats.Counter // queries that arrived already forwarded by a peer
	DegradedLocal stats.Counter // non-owned queries answered locally after a failed forward
	BatchLocal    stats.Counter // batches answered locally despite containing non-owned pairs
}

// Snapshot is a point-in-time reading of Counters.
type Snapshot struct {
	Conns, Requests, Admitted, Shed, Coalesced                     int64
	Degraded, Deadline, Failed, Completed                          int64
	Forwarded, ForwardErrors, ForwardedIn, DegradedLoc, BatchLocal int64
}

// String renders the snapshot on one line for CLI summaries.
func (s Snapshot) String() string {
	line := fmt.Sprintf("conns=%d requests=%d admitted=%d shed=%d coalesced=%d degraded=%d deadline=%d failed=%d completed=%d",
		s.Conns, s.Requests, s.Admitted, s.Shed, s.Coalesced, s.Degraded, s.Deadline, s.Failed, s.Completed)
	if s.Forwarded > 0 || s.ForwardErrors > 0 || s.ForwardedIn > 0 || s.DegradedLoc > 0 || s.BatchLocal > 0 {
		line += fmt.Sprintf(" forwarded=%d fwd_errors=%d fwd_in=%d degraded_local=%d batch_local=%d",
			s.Forwarded, s.ForwardErrors, s.ForwardedIn, s.DegradedLoc, s.BatchLocal)
	}
	return line
}

// coalesceKey identifies queries that may share one construction: same
// endpoints on the server's one topology. Width preferences (MaxPaths,
// shedding) stay per-requester — the leader computes the full container and
// every recipient truncates its own copy.
type coalesceKey struct {
	u, v hhc.Node
}

// pendingReq is everything needed to answer one requester: leader and
// coalesced waiters carry the same shape. proto records which wire version
// the request arrived in, so coalesced v1 and v2 requesters of the same
// construction each get an answer in their own encoding.
type pendingReq struct {
	pc       *serverConn
	proto    uint8 // ProtocolVersion or ProtocolV2
	id       uint64
	rid      string // request id echoed in the response ("" = untraced, none supplied)
	op       string
	maxPaths int
	degraded bool
	// coalesced marks a waiter answered by piggybacking on the leader's
	// construction; its queueNS stays 0 (it never entered the queue).
	coalesced bool
	queueNS   int64 // time spent waiting for a worker, set at pickup
	tr        *reqTrace
	// deadline is the absolute per-request deadline (arrival + the request
	// or default timeout). A plain time.Time instead of a context: the serve
	// path only ever polls expiry, and skipping context.WithTimeout saves a
	// context, a timer, and a cancel func per request on both protocols.
	deadline time.Time
	start    time.Time
}

// task is one unit of queued work.
type task struct {
	pendingReq
	u, v  hhc.Node
	pairs [][2]string
	// nodePairs is the node-native batch form of v2 requests (pairs stays
	// the textual v1 form; exactly one of the two is set).
	nodePairs []NodePair
	faults    map[hhc.Node]bool
	enqueued  time.Time
	lead      bool // owns an entry in Server.inflight
	// forwarded mirrors the wire's hop-guard bit: the query already crossed
	// a peer hop, so this server must answer it locally whatever the ring says.
	forwarded bool
	key       coalesceKey
}

// flight collects the waiters coalesced onto one in-flight query.
type flight struct {
	waiters []pendingReq
}

// outcome is a worker's answer, shared by the leader and all waiters.
type outcome struct {
	code    string
	errMsg  string
	paths   [][]hhc.Node
	results []BatchItem
	// resultsV2 is the node-native batch answer of a v2 batch task (batches
	// are never coalesced, so exactly one of results/resultsV2 is set).
	resultsV2 []BatchItemV2
	retryMS   int64
	execNS    int64 // construction time, shared by every coalesced recipient
}

// serverConn serializes concurrent response writes onto one connection.
type serverConn struct {
	c       net.Conn
	remote  string
	maxSend int
	wmu     sync.Mutex
	// pending counts responses owed by the worker pool; the reader waits
	// for it before closing the connection, so graceful shutdown never
	// drops an admitted request's answer.
	pending sync.WaitGroup
}

func (pc *serverConn) send(resp *Response) {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	err := WriteFrame(pc.c, resp, pc.maxSend)
	if err == nil || !errors.Is(err, ErrFrameTooLarge) {
		// An I/O error means the peer vanished; the reader will observe the
		// broken connection and clean up, so there is nobody left to notify.
		return
	}
	// The encoded response outgrew the frame limit. The peer is alive and
	// blocked on its answer, so silence would hang it forever: substitute a
	// small typed error, and if even that cannot be framed, close the
	// connection so the client at least sees EOF.
	small := &Response{Ver: ProtocolVersion, ID: resp.ID, Op: resp.Op,
		Code: CodeInternal, Err: err.Error()}
	if WriteFrame(pc.c, small, pc.maxSend) != nil {
		_ = pc.c.Close()
	}
}

// sendV2 encodes and writes one binary response as a single frame from a
// pooled buffer: no intermediate payload slice, no per-field marshalling
// state, and exactly one conn.Write, so the steady-state send path
// allocates nothing.
//
//hhc:hotpath
func (pc *serverConn) sendV2(resp *ResponseV2) {
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFramePrefix(*bufp)
	buf = AppendResponseV2(buf, resp)
	if patchFramePrefix(buf) > pc.maxSend {
		buf = pc.oversizeV2(buf, resp)
	}
	if buf != nil {
		pc.wmu.Lock()
		// An I/O error means the peer vanished; the reader will observe the
		// broken connection and clean up, so there is nobody left to notify.
		_, _ = pc.c.Write(buf)
		pc.wmu.Unlock()
		*bufp = buf[:0]
	}
	frameBufPool.Put(bufp)
}

// oversizeV2 replaces a v2 response that outgrew the frame limit with a
// small typed error — the peer is alive and blocked on its answer, so
// silence would hang it forever. If even the substitute cannot be framed,
// the connection is closed so the client at least sees EOF.
func (pc *serverConn) oversizeV2(buf []byte, resp *ResponseV2) []byte {
	small := ResponseV2{ID: resp.ID, RID: resp.RID, Op: resp.Op, Code: StatusInternal,
		Err: fmt.Sprintf("%s: response exceeds %d bytes", ErrFrameTooLarge.Error(), pc.maxSend)}
	buf = appendFramePrefix(buf)
	buf = AppendResponseV2(buf, &small)
	if patchFramePrefix(buf) > pc.maxSend {
		_ = pc.c.Close()
		return nil
	}
	return buf
}

// Server serves disjoint-path queries over length-prefixed JSON frames.
// Create with New, run with Serve, stop with Shutdown.
type Server struct {
	cfg      Config
	g        *hhc.Graph
	cache    *cache.Cache
	counters Counters

	queue    chan *task
	shedHigh int

	quit      chan struct{} // closed by Shutdown: stop admitting work
	done      chan struct{} // closed by Serve once fully drained
	closeOnce sync.Once
	started   atomic.Bool

	connMu sync.Mutex
	ln     net.Listener          // guarded by connMu (Serve publishes, beginClose closes)
	conns  map[net.Conn]struct{} // guarded by connMu
	connWG sync.WaitGroup

	workerWG      sync.WaitGroup
	activeWorkers atomic.Int64

	inflightMu sync.Mutex
	inflight   map[coalesceKey]*flight // guarded by inflightMu

	// fwdSem bounds in-flight peer forwards (nil without a Router); a full
	// semaphore downgrades to an immediate local answer, so forwards can
	// never starve the connection readers or the worker pool.
	fwdSem    chan struct{}
	forwardWG sync.WaitGroup

	met *svcMetrics

	// stallForTest, when non-nil, runs at the top of every worker
	// execution; lifecycle tests use it to hold workers mid-request.
	stallForTest func()
}

// New validates cfg, builds the topology and its container cache, and
// registers the metric set when cfg.Reg is non-nil.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultRequestTimeout
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.ShedThreshold == 0 {
		cfg.ShedThreshold = DefaultShedThreshold
	}
	if cfg.ShedThreshold < 0 || cfg.ShedThreshold > 1 {
		return nil, fmt.Errorf("pathsvc: shed threshold %g out of range (0, 1]", cfg.ShedThreshold)
	}
	if cfg.DegradeWidth <= 0 {
		cfg.DegradeWidth = DefaultDegradeWidth
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	// Even an all-error batch reply spends ~minBatchItemBytes per item, so a
	// batch larger than this floor could never answer within one frame;
	// capping MaxBatch lets admission refuse it up front.
	if floor := (cfg.MaxFrame - batchEnvelopeBytes) / minBatchItemBytes; cfg.MaxBatch > floor {
		cfg.MaxBatch = floor
		if cfg.MaxBatch < 1 {
			cfg.MaxBatch = 1
		}
	}
	switch cfg.Admission {
	case AdmitReject, AdmitBlock:
	default:
		return nil, fmt.Errorf("pathsvc: unknown admission policy %d", int(cfg.Admission))
	}
	g, err := hhc.New(cfg.M)
	if err != nil {
		return nil, err
	}
	c, err := cache.New(g, cfg.Cache)
	if err != nil {
		return nil, err
	}
	shedHigh := int(cfg.ShedThreshold * float64(cfg.QueueDepth))
	if shedHigh < 1 {
		shedHigh = 1
	}
	if cfg.ForwardConcurrency <= 0 {
		cfg.ForwardConcurrency = DefaultForwardConcurrency
	}
	s := &Server{
		cfg:      cfg,
		g:        g,
		cache:    c,
		queue:    make(chan *task, cfg.QueueDepth),
		shedHigh: shedHigh,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		inflight: make(map[coalesceKey]*flight),
	}
	if cfg.Router != nil {
		s.fwdSem = make(chan struct{}, cfg.ForwardConcurrency)
	}
	if cfg.Reg != nil {
		s.met = newSvcMetrics(cfg.Reg, s)
		s.cache.Register(cfg.Reg)
	}
	return s, nil
}

// M returns the served son-cube dimension.
func (s *Server) M() int { return s.g.M() }

// Counters returns a point-in-time reading of the serving ledger.
func (s *Server) Counters() Snapshot {
	return Snapshot{
		Conns:         s.counters.Conns.Load(),
		Requests:      s.counters.Requests.Load(),
		Admitted:      s.counters.Admitted.Load(),
		Shed:          s.counters.Shed.Load(),
		Coalesced:     s.counters.Coalesced.Load(),
		Degraded:      s.counters.Degraded.Load(),
		Deadline:      s.counters.Deadline.Load(),
		Failed:        s.counters.Failed.Load(),
		Completed:     s.counters.Completed.Load(),
		Forwarded:     s.counters.Forwarded.Load(),
		ForwardErrors: s.counters.ForwardErrors.Load(),
		ForwardedIn:   s.counters.ForwardedIn.Load(),
		DegradedLoc:   s.counters.DegradedLocal.Load(),
		BatchLocal:    s.counters.BatchLocal.Load(),
	}
}

// CacheSnapshot reads the backing container cache's counters.
func (s *Server) CacheSnapshot() stats.CacheSnapshot { return s.cache.Snapshot() }

// Serve accepts connections on ln and blocks until Shutdown (returning
// nil) or an accept error. It owns the drain: by the time Serve returns,
// every admitted request has been answered and every worker has exited.
func (s *Server) Serve(ln net.Listener) error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("pathsvc: Serve called twice")
	}
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	// A Shutdown that raced Serve's startup saw s.ln nil and could not close
	// it; re-checking after publication guarantees one of the two sides does.
	if s.closing() {
		_ = ln.Close()
	}
	s.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			if !s.closing() {
				err = fmt.Errorf("pathsvc: accept: %w", aerr)
				s.beginClose()
			}
			break
		}
		s.counters.Conns.Inc()
		s.track(conn)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
	// Drain: readers first (they stop enqueuing and wait out their pending
	// responses), then in-flight peer forwards (their fallbacks re-enter the
	// queue, so the queue cannot close under them), then the queue, then the
	// workers.
	s.connWG.Wait()
	s.forwardWG.Wait()
	close(s.queue)
	s.workerWG.Wait()
	close(s.done)
	return err
}

// Shutdown gracefully stops the server: no new connections or requests are
// accepted, every in-flight and queued request is answered, and the worker
// pool exits. It returns nil once fully drained, or ctx.Err() if ctx
// expires first (the drain keeps going in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginClose()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginClose makes the shutdown decision once: refuse new work and poke
// every blocked connection reader awake.
func (s *Server) beginClose() {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.connMu.Lock()
		if s.ln != nil {
			_ = s.ln.Close()
		}
		for c := range s.conns {
			// Unblock pending reads; the reader sees quit closed and exits
			// after its owed responses are written.
			_ = c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
	})
}

func (s *Server) closing() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

func (s *Server) track(c net.Conn) {
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	// A connection accepted just before beginClose but tracked just after it
	// missed the poke loop; re-checking here closes that window, so an idle
	// reader cannot block the drain forever.
	if s.closing() {
		_ = c.SetReadDeadline(time.Now())
	}
}

func (s *Server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// openConns reports the live connection count (metrics callback).
func (s *Server) openConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// handleConn reads frames off one connection and dispatches them. It never
// closes the connection while worker responses are owed.
func (s *Server) handleConn(conn net.Conn) {
	pc := &serverConn{c: conn, remote: conn.RemoteAddr().String(), maxSend: s.cfg.MaxFrame}
	s.logConnOpen(pc.remote)
	defer func() {
		pc.pending.Wait()
		_ = conn.Close()
		s.untrack(conn)
		s.logConnClose(pc.remote)
		s.connWG.Done()
	}()
	br := bufio.NewReader(conn)
	// One read buffer and one v2 decode scratch per connection: every frame
	// lands in rbuf (grown once, then reused) and binary requests decode
	// into sreq, whose slices dispatchV2 copies out of before returning.
	var rbuf []byte
	var sreq RequestV2
	for {
		payload, err := ReadFrameInto(br, rbuf, s.cfg.MaxFrame)
		if err != nil {
			// EOF, a peer reset, a framing violation, or the shutdown read
			// deadline: all end the connection.
			return
		}
		rbuf = payload
		if s.closing() {
			// The frame raced the drain decision; refuse it explicitly, in
			// the encoding it arrived in (best effort — the id is only known
			// if the payload decodes).
			if payload[0] == frameMagicV2 {
				if DecodeRequestV2(payload, &sreq) == nil {
					s.counters.Requests.Inc()
					op, _ := opNameOf(sreq.Op)
					s.logResponse(pc.remote, op, sreq.RID, CodeShutdown, ErrShutdown.Error())
					pc.sendV2(&ResponseV2{ID: sreq.ID, RID: sreq.RID, Op: sreq.Op,
						Code: StatusShutdown, Err: ErrShutdown.Error()})
				}
			} else if req, derr := DecodeRequest(payload); derr == nil {
				s.counters.Requests.Inc()
				s.logResponse(pc.remote, req.Op, req.RID, CodeShutdown, ErrShutdown.Error())
				pc.send(&Response{Ver: ProtocolVersion, ID: req.ID, RID: req.RID,
					Op: req.Op, Code: CodeShutdown, Err: ErrShutdown.Error()})
			}
			return
		}
		if payload[0] == frameMagicV2 {
			if derr := DecodeRequestV2(payload, &sreq); derr != nil {
				// A structurally broken binary frame is still answerable —
				// the outer framing holds, and when at least the header
				// arrived the refusal can carry the request's id.
				s.counters.Requests.Inc()
				s.counters.Failed.Inc()
				op, _ := opNameOf(sreq.Op)
				s.logResponse(pc.remote, op, sreq.RID, CodeBadRequest, derr.Error())
				pc.sendV2(&ResponseV2{ID: sreq.ID, Op: sreq.Op,
					Code: StatusBadRequest, Err: derr.Error()})
				continue
			}
			s.dispatchV2(pc, &sreq)
			continue
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			// JSON-level garbage is answerable (framing still holds).
			s.counters.Requests.Inc()
			s.counters.Failed.Inc()
			s.logResponse(pc.remote, req.Op, req.RID, CodeBadRequest, err.Error())
			pc.send(&Response{Ver: ProtocolVersion, ID: req.ID, RID: req.RID,
				Op: req.Op, Code: CodeBadRequest, Err: err.Error()})
			continue
		}
		s.dispatch(pc, req)
	}
}

// dispatch validates a request, answers trivial ops inline, coalesces
// duplicate path queries, and runs admission control for the rest. It runs
// on the connection's reader goroutine, so AdmitBlock backpressure parks
// exactly the connection that is overloading the queue.
func (s *Server) dispatch(pc *serverConn, req Request) {
	s.counters.Requests.Inc()
	start := time.Now()
	tr := s.beginTrace(req.Op, req.RID, pc.remote, req.Origin)
	// The echoed request id: the trace id when tracing is on (it adopts a
	// client-supplied RID), else a pass-through of whatever the client sent.
	rid := req.RID
	if id := tr.id(); id != "" {
		rid = id
	}

	switch req.Op {
	case OpPing:
		s.counters.Completed.Inc()
		pc.send(&Response{Ver: ProtocolVersion, ID: req.ID, RID: rid, Op: req.Op})
		tr.finish(CodeOK)
		s.met.observeRequest(time.Since(start), rid)
		return
	case OpInfo:
		s.counters.Completed.Inc()
		pc.send(&Response{Ver: ProtocolVersion, ID: req.ID, RID: rid, Op: req.Op,
			M: s.g.M(), Full: s.g.M() + 1, Width: s.g.M() + 1,
			VerMax: MaxProtocolVersion})
		tr.finish(CodeOK)
		s.met.observeRequest(time.Since(start), rid)
		return
	case OpPaths, OpBatch, OpRoute:
	default:
		s.fail(pc, req, rid, tr, fmt.Sprintf("unknown op %q", req.Op))
		return
	}

	t := &task{
		pendingReq: pendingReq{
			pc: pc, proto: ProtocolVersion, id: req.ID, rid: rid, op: req.Op,
			maxPaths: req.MaxPaths, tr: tr, start: start,
		},
		forwarded: req.Fwd,
	}
	var err error
	switch req.Op {
	case OpPaths, OpRoute:
		if t.u, err = s.g.ParseNode(req.U); err == nil {
			t.v, err = s.g.ParseNode(req.V)
		}
		if err == nil && req.Op == OpRoute {
			t.faults = make(map[hhc.Node]bool, len(req.Faults))
			for _, f := range req.Faults {
				var fn hhc.Node
				if fn, err = s.g.ParseNode(f); err != nil {
					break
				}
				t.faults[fn] = true
			}
		}
	case OpBatch:
		if len(req.Pairs) == 0 {
			err = errors.New("pathsvc: batch with no pairs")
		} else if len(req.Pairs) > s.cfg.MaxBatch {
			err = fmt.Errorf("pathsvc: batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.cfg.MaxBatch)
		}
		t.pairs = req.Pairs
	}
	if err != nil {
		s.fail(pc, req, rid, tr, err.Error())
		return
	}
	switch req.Op {
	case OpPaths, OpRoute:
		tr.setAttr("u", req.U)
		tr.setAttr("v", req.V)
	case OpBatch:
		tr.setAttr("pairs", fmt.Sprint(len(t.pairs)))
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	t.deadline = start.Add(timeout)
	s.admit(t)
}

// dispatchV2 validates a binary-frame request, answers trivial ops inline,
// and hands the rest to the shared admission path. req aliases the
// connection's per-frame decode scratch, so everything the task retains
// past return (faults, batch pairs) is copied out here; scalar endpoints
// and the already-copied RID string ride along for free.
func (s *Server) dispatchV2(pc *serverConn, req *RequestV2) {
	s.counters.Requests.Inc()
	start := time.Now()
	op, _ := opNameOf(req.Op)
	tr := s.beginTrace(op, req.RID, pc.remote, req.Origin)
	rid := req.RID
	if id := tr.id(); id != "" {
		rid = id
	}

	switch req.Op {
	case OpCodePing:
		s.counters.Completed.Inc()
		pc.sendV2(&ResponseV2{ID: req.ID, RID: rid, Op: req.Op})
		tr.finish(CodeOK)
		s.met.observeRequest(time.Since(start), rid)
		return
	case OpCodeInfo:
		s.counters.Completed.Inc()
		pc.sendV2(&ResponseV2{ID: req.ID, RID: rid, Op: req.Op,
			M: s.g.M(), Full: s.g.M() + 1, Width: s.g.M() + 1})
		tr.finish(CodeOK)
		s.met.observeRequest(time.Since(start), rid)
		return
	}

	t := &task{
		pendingReq: pendingReq{
			pc: pc, proto: ProtocolV2, id: req.ID, rid: rid, op: op,
			maxPaths: req.MaxPaths, tr: tr, start: start,
		},
		forwarded: req.Forwarded,
	}
	var err error
	switch req.Op {
	case OpCodePaths, OpCodeRoute:
		t.u, t.v = req.U, req.V
		// Binary addresses skip ParseNode, so the topology bound is
		// checked here instead.
		if !s.g.Contains(t.u) {
			err = s.nodeRangeErr(t.u)
		} else if !s.g.Contains(t.v) {
			err = s.nodeRangeErr(t.v)
		}
		if err == nil && req.Op == OpCodeRoute {
			t.faults = make(map[hhc.Node]bool, len(req.Faults))
			for _, f := range req.Faults {
				if !s.g.Contains(f) {
					err = s.nodeRangeErr(f)
					break
				}
				t.faults[f] = true
			}
		}
	case OpCodeBatch:
		if len(req.Pairs) == 0 {
			err = errors.New("pathsvc: batch with no pairs")
		} else if len(req.Pairs) > s.cfg.MaxBatch {
			err = fmt.Errorf("pathsvc: batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.cfg.MaxBatch)
		} else {
			t.nodePairs = append(t.nodePairs, req.Pairs...)
		}
	}
	if err != nil {
		s.failV2(pc, req.ID, req.Op, rid, tr, err.Error())
		return
	}
	if tr != nil {
		// Attribute formatting only when a tracer is recording: rendering
		// node addresses costs allocations the hot path must not pay.
		switch req.Op {
		case OpCodePaths, OpCodeRoute:
			tr.setAttr("u", hhc.FormatNodeWire(t.u))
			tr.setAttr("v", hhc.FormatNodeWire(t.v))
		case OpCodeBatch:
			tr.setAttr("pairs", fmt.Sprint(len(t.nodePairs)))
		}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutNS > 0 {
		// v2 carries the timeout at nanosecond resolution; no millisecond
		// rounding on this protocol.
		timeout = time.Duration(req.TimeoutNS)
	}
	t.deadline = start.Add(timeout)
	s.admit(t)
}

// nodeRangeErr renders the v2 analogue of hhc's out-of-range parse error
// for addresses that arrived in binary form.
func (s *Server) nodeRangeErr(u hhc.Node) error {
	return fmt.Errorf("pathsvc: node %s out of range for m=%d", s.g.FormatNode(u), s.g.M())
}

// admit routes one validated request: in cluster mode, path/route queries
// whose canonical key another peer owns are relayed there (unless the
// hop-guard bit says the query already crossed a hop — then this server
// answers locally no matter what its ring says, so disagreeing membership
// views can never bounce a query forever); everything else runs the local
// admission path.
func (s *Server) admit(t *task) {
	if s.cfg.Router != nil && (t.op == OpPaths || t.op == OpRoute) {
		if t.forwarded {
			s.counters.ForwardedIn.Inc()
		} else if !s.cfg.Router.Owns(t.u, t.v) {
			s.forward(t)
			return
		}
	}
	s.admitLocal(t)
}

// admitLocal runs the protocol-independent tail of dispatch: the degrade
// decision, in-flight coalescing of identical path queries, and admission
// control. It runs on the connection's reader goroutine (or a forward
// goroutine falling back after a peer failure), so AdmitBlock backpressure
// parks exactly the connection that is overloading the queue.
func (s *Server) admitLocal(t *task) {
	// The degrade decision is taken at admission time: a queue filling past
	// the shed threshold marks new path queries for width truncation.
	t.degraded = len(s.queue) >= s.shedHigh

	if t.op == OpPaths {
		key := coalesceKey{u: t.u, v: t.v}
		s.inflightMu.Lock()
		if fl, ok := s.inflight[key]; ok {
			t.coalesced = true
			t.tr.setAttr("coalesced", "true")
			t.tr.endAdmission()
			t.pc.pending.Add(1)
			fl.waiters = append(fl.waiters, t.pendingReq)
			s.inflightMu.Unlock()
			s.counters.Coalesced.Inc()
			return
		}
		s.inflight[key] = &flight{}
		s.inflightMu.Unlock()
		t.lead, t.key = true, key
	}

	t.enqueued = time.Now()
	t.tr.endAdmission()
	t.tr.startQueue()
	t.pc.pending.Add(1)
	select {
	case s.queue <- t:
		s.counters.Admitted.Inc()
		return
	default:
	}
	if s.cfg.Admission == AdmitBlock {
		select {
		case s.queue <- t:
			s.counters.Admitted.Inc()
			return
		case <-s.quit:
			s.deliverAll(t, outcome{code: CodeShutdown, errMsg: ErrShutdown.Error()})
			return
		}
	}
	// AdmitReject: shed now, with a back-off hint.
	s.counters.Shed.Inc()
	s.deliverAll(t, outcome{
		code:    CodeOverload,
		errMsg:  ErrOverload.Error(),
		retryMS: s.cfg.RetryAfter.Milliseconds(),
	})
}

// forward relays a non-owned query to its owning peer on a dedicated
// bounded goroutine: forwards must never occupy a construction worker, or
// two peers forwarding to each other could deadlock both pools. The owed
// response is reserved (pc.pending) before the reader goroutine moves on,
// so connection close and graceful drain both account for the in-flight
// hop.
func (s *Server) forward(t *task) {
	t.tr.endAdmission()
	t.pc.pending.Add(1)
	select {
	case s.fwdSem <- struct{}{}:
	default:
		// The forward pool is saturated. Answering locally is always
		// correct — just a construction the owner's cache would have
		// absorbed — so shed the hop, not the request.
		s.counters.DegradedLocal.Inc()
		s.fallbackLocal(t)
		return
	}
	t.tr.startForward()
	s.forwardWG.Add(1)
	go func() {
		defer s.forwardWG.Done()
		defer func() { <-s.fwdSem }()
		s.runForward(t)
	}()
}

// runForward executes one peer hop: the query goes out as a v2 frame with
// the hop-guard bit set and MaxPaths 0 (the full container comes back, and
// deliver applies this requester's own width, degrade, and deadline policy
// locally). Transport failures and an overloaded or draining owner
// downgrade to a local answer; any other owner verdict is this query's
// answer and is relayed as-is.
func (s *Server) runForward(t *task) {
	opc, _ := opCodeOf(t.op)
	// The rid and this peer's own address travel with the hop, so the owner
	// records the forwarded tree under the same rid, tagged with its origin
	// — the two halves of the cross-peer trace stitch back together by rid.
	// A client that supplied no rid still gets a joinable trace: the hop
	// carries the id the flight recorder minted for this request.
	rid := t.rid
	if rid == "" {
		rid = t.tr.id()
	}
	req := RequestV2{Op: opc, RID: rid, U: t.u, V: t.v,
		Forwarded: true, Origin: s.cfg.Peer}
	if len(t.faults) > 0 {
		req.Faults = make([]hhc.Node, 0, len(t.faults))
		for f := range t.faults {
			req.Faults = append(req.Faults, f)
		}
	}
	remaining := time.Until(t.deadline)
	if remaining <= 0 {
		t.tr.endForward()
		s.deliverAll(t, outcome{code: CodeDeadline, errMsg: ErrDeadlineExceeded.Error()})
		return
	}
	req.TimeoutNS = int64(remaining)
	var resp ResponseV2
	peer, err := s.cfg.Router.Forward(&req, &resp)
	if err == nil {
		// Relay the owner's timing into this requester's view: the forward
		// span decomposes into remote queue/exec/wire children, and the
		// response's queue_ns reports the remote queue wait (this side never
		// queued, so the field would otherwise read 0 and hide the stall).
		t.tr.endForwardWith(peer, resp.QueueNS, resp.ExecNS)
		t.queueNS = resp.QueueNS
		s.counters.Forwarded.Inc()
		s.deliverAll(t, outcome{paths: resp.Paths, execNS: resp.ExecNS})
		return
	}
	var se *ServerError
	if errors.As(err, &se) && !errors.Is(se, ErrOverload) && !errors.Is(se, ErrShutdown) {
		// The owner reached a verdict (bad_request, unroutable, deadline,
		// internal): that verdict is the answer — the hop itself worked.
		t.tr.endForwardWith(peer, resp.QueueNS, resp.ExecNS)
		s.counters.Forwarded.Inc()
		s.deliverAll(t, outcome{code: se.Code, errMsg: se.Msg})
		return
	}
	// The peer is unreachable, the stream broke, or the owner is too loaded
	// to help: degrade to a correctness-preserving local answer.
	s.counters.ForwardErrors.Inc()
	s.counters.DegradedLocal.Inc()
	s.fallbackLocal(t)
}

// fallbackLocal re-enters the local admission path for a query whose
// forward could not run. The pending reservation taken by forward is
// released only after admitLocal takes its own, so the connection's
// owed-response count never touches zero with the answer still unsent.
func (s *Server) fallbackLocal(t *task) {
	t.tr.endForward()
	s.admitLocal(t)
	t.pc.pending.Done()
}

// fail answers a request that never reached the queue.
func (s *Server) fail(pc *serverConn, req Request, rid string, tr *reqTrace, msg string) {
	s.counters.Failed.Inc()
	s.logResponse(pc.remote, req.Op, rid, CodeBadRequest, msg)
	pc.send(&Response{Ver: ProtocolVersion, ID: req.ID, RID: rid, Op: req.Op,
		Code: CodeBadRequest, Err: msg})
	tr.finish(CodeBadRequest)
}

// failV2 answers a binary request that never reached the queue.
func (s *Server) failV2(pc *serverConn, id uint64, op uint8, rid string, tr *reqTrace, msg string) {
	s.counters.Failed.Inc()
	name, _ := opNameOf(op)
	s.logResponse(pc.remote, name, rid, CodeBadRequest, msg)
	pc.sendV2(&ResponseV2{ID: id, RID: rid, Op: op, Code: StatusBadRequest, Err: msg})
	tr.finish(CodeBadRequest)
}

// worker executes queued tasks until the queue closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		wait := time.Since(t.enqueued)
		s.met.observeQueueWait(wait)
		t.queueNS = int64(wait)
		t.tr.endQueue()
		s.activeWorkers.Add(1)
		s.process(t)
		s.activeWorkers.Add(-1)
	}
}

func (s *Server) process(t *task) {
	if s.stallForTest != nil {
		s.stallForTest()
	}
	var out outcome
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		out = outcome{code: CodeDeadline, errMsg: ErrDeadlineExceeded.Error()}
	} else {
		t.tr.startExec()
		execStart := time.Now()
		switch t.op {
		case OpPaths:
			out = s.doPaths(t)
		case OpRoute:
			out = s.doRoute(t)
		case OpBatch:
			if t.proto == ProtocolV2 {
				out = s.doBatchV2(t)
			} else {
				out = s.doBatch(t)
			}
		}
		out.execNS = int64(time.Since(execStart))
		s.met.observeExec(time.Duration(out.execNS), t.rid)
		t.tr.endExec()
	}
	s.deliverAll(t, out)
}

// doPaths constructs (or fetches) the full-width container; truncation is
// applied per recipient in deliver.
func (s *Server) doPaths(t *task) outcome {
	paths, err := s.cache.Paths(t.u, t.v, core.Options{})
	if err != nil {
		return outcome{code: CodeBadRequest, errMsg: err.Error()}
	}
	return outcome{paths: paths}
}

// doRoute picks the shortest container path avoiding the declared faults.
func (s *Server) doRoute(t *task) outcome {
	if t.faults[t.u] {
		return outcome{code: CodeBadRequest,
			errMsg: fmt.Sprintf("pathsvc: source %s is faulty", s.g.FormatNode(t.u))}
	}
	if t.faults[t.v] {
		return outcome{code: CodeBadRequest,
			errMsg: fmt.Sprintf("pathsvc: destination %s is faulty", s.g.FormatNode(t.v))}
	}
	paths, err := s.cache.Paths(t.u, t.v, core.Options{})
	if err != nil {
		return outcome{code: CodeBadRequest, errMsg: err.Error()}
	}
	surviving := core.SurvivingPaths(paths, t.faults)
	if len(surviving) == 0 {
		return outcome{code: CodeUnroutable, errMsg: core.ErrAllPathsFaulty.Error()}
	}
	sort.Slice(surviving, func(i, j int) bool { return len(surviving[i]) < len(surviving[j]) })
	return outcome{paths: surviving[:1]}
}

const (
	// batchEnvelopeBytes is the frame budget reserved for the non-Results
	// fields of a batch Response (ver, id, op, and JSON punctuation).
	batchEnvelopeBytes = 256
	// minBatchItemBytes is the smallest footprint one BatchItem can encode
	// to (an error item with minimal addresses).
	minBatchItemBytes = 32
)

// doBatch serves every pair through the cache, checking the deadline
// between items so a huge batch cannot outlive its budget, and the encoded
// size so the response is refused with a typed error — rather than
// silently undeliverable — when it cannot fit one reply frame.
func (s *Server) doBatch(t *task) outcome {
	sizeBudget := s.cfg.MaxFrame - batchEnvelopeBytes
	size := 0
	nonOwned := false
	results := make([]BatchItem, 0, len(t.pairs))
	for i, pair := range t.pairs {
		if time.Now().After(t.deadline) {
			return outcome{code: CodeDeadline, errMsg: ErrDeadlineExceeded.Error()}
		}
		item := BatchItem{U: pair[0], V: pair[1]}
		u, err := s.g.ParseNode(pair[0])
		if err == nil {
			var v hhc.Node
			if v, err = s.g.ParseNode(pair[1]); err == nil {
				if s.cfg.Router != nil && !s.cfg.Router.Owns(u, v) {
					nonOwned = true
				}
				var paths [][]hhc.Node
				if paths, err = s.cache.Paths(u, v, core.Options{}); err == nil {
					item.Paths = s.formatPaths(paths, len(paths))
				}
			}
		}
		if err != nil {
			item.Err = err.Error()
		}
		if enc, jerr := json.Marshal(item); jerr == nil {
			size += len(enc) + 1 // +1 for the separating comma
		}
		if size > sizeBudget {
			return outcome{code: CodeBadRequest, errMsg: fmt.Sprintf(
				"pathsvc: batch response exceeds the %d-byte frame limit at pair %d of %d; split the batch",
				s.cfg.MaxFrame, i+1, len(t.pairs))}
		}
		results = append(results, item)
	}
	s.noteBatchLocal(t, nonOwned)
	return outcome{results: results}
}

// noteBatchLocal counts a batch that was answered locally even though it
// contained pairs another peer owns — batch forwarding is a known gap
// (see ROADMAP), and this counter makes its cost visible in telemetry
// instead of silently folding into local work. Hop-guarded batches are
// excluded: a forwarded batch is supposed to be answered locally.
func (s *Server) noteBatchLocal(t *task, nonOwned bool) {
	if nonOwned && s.cfg.Router != nil && !t.forwarded {
		s.counters.BatchLocal.Inc()
	}
}

// doBatchV2 serves a binary batch: per-pair containers kept node-native
// (the encoder packs them without any per-node formatting), the deadline
// checked between items, and the exact v2 encoded size budgeted against
// the frame limit so an unfittable reply is refused with a typed error
// rather than silently undeliverable.
func (s *Server) doBatchV2(t *task) outcome {
	sizeBudget := s.cfg.MaxFrame - batchEnvelopeBytes
	size := 0
	nonOwned := false
	results := make([]BatchItemV2, 0, len(t.nodePairs))
	for i, pair := range t.nodePairs {
		if time.Now().After(t.deadline) {
			return outcome{code: CodeDeadline, errMsg: ErrDeadlineExceeded.Error()}
		}
		item := BatchItemV2{U: pair.U, V: pair.V}
		var err error
		if !s.g.Contains(pair.U) {
			err = s.nodeRangeErr(pair.U)
		} else if !s.g.Contains(pair.V) {
			err = s.nodeRangeErr(pair.V)
		} else {
			if s.cfg.Router != nil && !s.cfg.Router.Owns(pair.U, pair.V) {
				nonOwned = true
			}
			var paths [][]hhc.Node
			if paths, err = s.cache.Paths(pair.U, pair.V, core.Options{}); err == nil {
				item.Paths = paths
			}
		}
		if err != nil {
			item.Err = err.Error()
		}
		size += batchItemSizeV2(&item)
		if size > sizeBudget {
			return outcome{code: CodeBadRequest, errMsg: fmt.Sprintf(
				"pathsvc: batch response exceeds the %d-byte frame limit at pair %d of %d; split the batch",
				s.cfg.MaxFrame, i+1, len(t.nodePairs))}
		}
		results = append(results, item)
	}
	s.noteBatchLocal(t, nonOwned)
	return outcome{resultsV2: results}
}

// deliverAll answers the leader and, for coalesced queries, every waiter
// that piggybacked on it. The in-flight entry is removed first so late
// duplicates start a fresh construction instead of attaching to a
// completed one.
func (s *Server) deliverAll(t *task, out outcome) {
	if t.lead {
		s.inflightMu.Lock()
		fl := s.inflight[t.key]
		delete(s.inflight, t.key)
		s.inflightMu.Unlock()
		s.deliver(t.pendingReq, out)
		for _, w := range fl.waiters {
			s.deliver(w, out)
		}
		return
	}
	s.deliver(t.pendingReq, out)
}

// deliver renders one recipient's response in its own wire version: its
// own deadline check, its own width truncation, its own counters and
// latency sample.
func (s *Server) deliver(p pendingReq, out outcome) {
	if p.proto == ProtocolV2 {
		s.deliverV2(p, out)
		return
	}
	defer p.pc.pending.Done()
	resp := &Response{Ver: ProtocolVersion, ID: p.id, RID: p.rid, Op: p.op,
		QueueNS: p.queueNS, ExecNS: out.execNS, Coalesced: p.coalesced}
	code := out.code
	if code == CodeOK && !p.deadline.IsZero() && time.Now().After(p.deadline) {
		// The shared construction finished, but after this requester's own
		// deadline: a stale answer is still a missed deadline.
		code, out = CodeDeadline, outcome{errMsg: ErrDeadlineExceeded.Error()}
	}
	switch code {
	case CodeOK:
		switch p.op {
		case OpPaths:
			full := len(out.paths)
			want := full
			if p.maxPaths > 0 && p.maxPaths < want {
				want = p.maxPaths
			}
			k := want
			if p.degraded && s.cfg.DegradeWidth < k {
				k = s.cfg.DegradeWidth
				resp.Degraded = true
				s.counters.Degraded.Inc()
			}
			resp.Paths = s.formatPaths(out.paths, k)
			resp.Width, resp.Full = k, full
			p.tr.setAttr("width", fmt.Sprint(k))
		case OpRoute:
			resp.Paths = s.formatPaths(out.paths, len(out.paths))
			resp.Width, resp.Full = len(out.paths), s.g.M()+1
		case OpBatch:
			resp.Results = out.results
		}
		s.counters.Completed.Inc()
	case CodeDeadline:
		s.counters.Deadline.Inc()
		resp.Code, resp.Err = code, out.errMsg
	case CodeOverload, CodeShutdown:
		// Shed/refused work is already counted at its decision site.
		resp.Code, resp.Err = code, out.errMsg
		resp.RetryAfterMS = out.retryMS
	default:
		s.counters.Failed.Inc()
		resp.Code, resp.Err = code, out.errMsg
	}
	if code != CodeOK {
		s.logResponse(p.pc.remote, p.op, p.rid, code, resp.Err)
	}
	p.tr.startEncode()
	p.pc.send(resp)
	p.tr.endEncode()
	p.tr.finish(code)
	s.met.observeRequest(time.Since(p.start), p.rid)
}

// deliverV2 renders one binary-protocol recipient's response. The OK path
// shares out.paths read-only (resp.Paths = out.paths[:k]): the encoder
// walks it exactly once on this goroutine, so unlike v1's formatPaths
// there is no defensive copy and no per-node formatting — the bulk of the
// v2 serve path's allocation win.
func (s *Server) deliverV2(p pendingReq, out outcome) {
	defer p.pc.pending.Done()
	opc, _ := opCodeOf(p.op)
	resp := ResponseV2{ID: p.id, RID: p.rid, Op: opc,
		QueueNS: p.queueNS, ExecNS: out.execNS, Coalesced: p.coalesced}
	code := out.code
	if code == CodeOK && !p.deadline.IsZero() && time.Now().After(p.deadline) {
		// The shared construction finished, but after this requester's own
		// deadline: a stale answer is still a missed deadline.
		code, out = CodeDeadline, outcome{errMsg: ErrDeadlineExceeded.Error()}
	}
	switch code {
	case CodeOK:
		switch p.op {
		case OpPaths:
			full := len(out.paths)
			want := full
			if p.maxPaths > 0 && p.maxPaths < want {
				want = p.maxPaths
			}
			k := want
			if p.degraded && s.cfg.DegradeWidth < k {
				k = s.cfg.DegradeWidth
				resp.Degraded = true
				s.counters.Degraded.Inc()
			}
			resp.Paths = out.paths[:k]
			resp.Width, resp.Full = k, full
			if p.tr != nil {
				p.tr.setAttr("width", fmt.Sprint(k))
			}
		case OpRoute:
			resp.Paths = out.paths
			resp.Width, resp.Full = len(out.paths), s.g.M()+1
		case OpBatch:
			resp.Results = out.resultsV2
		}
		s.counters.Completed.Inc()
	case CodeDeadline:
		s.counters.Deadline.Inc()
		resp.Code, resp.Err = StatusDeadline, out.errMsg
	case CodeOverload, CodeShutdown:
		// Shed/refused work is already counted at its decision site.
		resp.Code, resp.Err = statusOf(code), out.errMsg
		resp.RetryAfterNS = out.retryMS * int64(time.Millisecond)
	default:
		s.counters.Failed.Inc()
		resp.Code, resp.Err = statusOf(code), out.errMsg
	}
	if code != CodeOK {
		s.logResponse(p.pc.remote, p.op, p.rid, code, resp.Err)
	}
	p.tr.startEncode()
	p.pc.sendV2(&resp)
	p.tr.endEncode()
	p.tr.finish(code)
	s.met.observeRequest(time.Since(p.start), p.rid)
}

// formatPaths renders the first k container paths in wire form.
func (s *Server) formatPaths(paths [][]hhc.Node, k int) [][]string {
	if k > len(paths) {
		k = len(paths)
	}
	out := make([][]string, k)
	for i := 0; i < k; i++ {
		p := make([]string, len(paths[i]))
		for j, n := range paths[i] {
			p[j] = s.g.FormatNode(n)
		}
		out[i] = p
	}
	return out
}
