package pathsvc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/hhc"
)

// Client-side liveness errors.
var (
	// ErrClientBroken marks a poisoned client: a transport or protocol
	// error left the framing stream in an unknown state, so every
	// subsequent call fails fast instead of misparsing stale frames.
	// Dial again (or use Reconn) to recover.
	ErrClientBroken = errors.New("pathsvc: client connection broken")
	// ErrClientTimeout reports that the client-side wait budget (the
	// request timeout plus DialOptions.TimeoutSlack, or IOTimeout for
	// requests without one) expired before the response arrived. The
	// connection stays usable: the late response is dropped by id when it
	// eventually lands.
	ErrClientTimeout = errors.New("pathsvc: timed out waiting for response")
)

// Client-side defaults.
const (
	// DefaultIOTimeout bounds dialing, each frame write, and the response
	// wait of requests that carry no timeout of their own.
	DefaultIOTimeout = 10 * time.Second
	// DefaultTimeoutSlack is added to a request's own timeout to form the
	// client-side wait budget (server-side expiry answers arrive a little
	// after the deadline itself, so the slack covers delivery).
	DefaultTimeoutSlack = 1 * time.Second
)

// DialOptions tunes DialWith. The zero value negotiates the protocol
// version and applies the Default* timeouts.
type DialOptions struct {
	// Proto pins the wire version: 1 or 2. 0 negotiates the highest both
	// sides speak — one v1 OpInfo round-trip at dial time reads the
	// server's ver_max (servers predating negotiation omit it, which
	// reads as v1-only).
	Proto int
	// IOTimeout: see DefaultIOTimeout (0 selects it).
	IOTimeout time.Duration
	// TimeoutSlack: see DefaultTimeoutSlack (0 selects it).
	TimeoutSlack time.Duration
	// MaxFrame bounds wire frames (0 = DefaultMaxFrame).
	MaxFrame int
}

func (o *DialOptions) fill() {
	if o.IOTimeout <= 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	if o.TimeoutSlack <= 0 {
		o.TimeoutSlack = DefaultTimeoutSlack
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
}

// ServerError is a non-OK response surfaced as an error. It unwraps to the
// typed sentinel matching its code, so errors.Is(err, ErrOverload) and
// friends work on the client side exactly as on the server side.
type ServerError struct {
	Code       string
	Msg        string
	RetryAfter time.Duration
}

// Error renders the code and server-side detail.
func (e *ServerError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("pathsvc: server answered %q", e.Code)
	}
	return e.Msg
}

// Unwrap maps the wire code back onto the package's typed errors.
func (e *ServerError) Unwrap() error {
	switch e.Code {
	case CodeOverload:
		return ErrOverload
	case CodeDeadline:
		return ErrDeadlineExceeded
	case CodeShutdown:
		return ErrShutdown
	default:
		return nil
	}
}

// call is one in-flight request. done is buffered so delivery never blocks
// the reader; exactly one party delivers or reclaims it (whoever removes
// the id from Client.pending owns it), which is what makes pooling safe:
// a reclaimed call's channel is provably empty.
type call struct {
	done  chan struct{}
	resp  Response    // v1 result, set before done
	resp2 *ResponseV2 // v2 decode target (caller-owned); nil for v1 calls
	err   error       // set before done when the call failed
}

var callPool = sync.Pool{New: func() any {
	return &call{done: make(chan struct{}, 1)}
}}

func newCall() *call {
	ca := callPool.Get().(*call)
	ca.resp = Response{}
	ca.resp2 = nil
	ca.err = nil
	return ca
}

// timerPool recycles wait timers across calls (a pipelined client arms one
// per request).
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// Client is a pipelined pathsvc connection: any number of requests may be
// in flight at once (the server answers out of order), a reader goroutine
// demuxes responses back to their callers by correlation id, and every
// wait is bounded — a hung or partitioned server surfaces as
// ErrClientTimeout instead of blocking forever.
//
// Any transport or protocol error poisons the client (the framing stream
// is in an unknown state); subsequent calls fail fast with ErrClientBroken
// and the caller redials. A per-request timeout does NOT poison: the
// stream is still framed correctly, and the late response is dropped when
// it arrives.
type Client struct {
	conn net.Conn
	opts DialOptions

	proto int // wire version used by the convenience methods and DoV2

	wmu sync.Mutex // serializes frame writes

	// readerDone is closed when the reader goroutine exits (it does so
	// exactly once, when the connection dies); Close waits on it so no
	// demuxing survives the handle.
	readerDone chan struct{}

	mu      sync.Mutex
	nextID  uint64           // last issued correlation id; guarded by mu
	pending map[uint64]*call // guarded by mu
	broken  error            // sticky poison, wraps ErrClientBroken; guarded by mu
}

// Dial connects to a pathsvc server, speaking v1 (the universally
// understood version). Use DialWith to negotiate v2.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{Proto: ProtocolVersion})
}

// DialWith connects with explicit options, negotiating the protocol
// version when opts.Proto is 0.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	opts.fill()
	conn, err := net.DialTimeout("tcp", addr, opts.IOTimeout)
	if err != nil {
		return nil, fmt.Errorf("pathsvc: dial %s: %w", addr, err)
	}
	c := newClient(conn, opts)
	if err := c.negotiate(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (the tests drive net.Pipe) as
// a v1 client with default timeouts.
func NewClient(conn net.Conn) *Client {
	return newClient(conn, DialOptions{Proto: ProtocolVersion,
		IOTimeout: DefaultIOTimeout, TimeoutSlack: DefaultTimeoutSlack, MaxFrame: DefaultMaxFrame})
}

// NewClientWith wraps an established connection with explicit options;
// opts.Proto == 0 negotiates, costing one Info round-trip.
func NewClientWith(conn net.Conn, opts DialOptions) (*Client, error) {
	opts.fill()
	c := newClient(conn, opts)
	if err := c.negotiate(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

func newClient(conn net.Conn, opts DialOptions) *Client {
	c := &Client{
		conn:       conn,
		opts:       opts,
		proto:      opts.Proto,
		readerDone: make(chan struct{}),
		pending:    make(map[uint64]*call),
	}
	go c.reader()
	return c
}

// negotiate resolves Proto 0 against the server's advertised ver_max.
func (c *Client) negotiate() error {
	switch c.opts.Proto {
	case ProtocolVersion, ProtocolV2:
		return nil
	case 0:
	default:
		return fmt.Errorf("pathsvc: unknown protocol version %d (speak 1..%d)", c.opts.Proto, MaxProtocolVersion)
	}
	resp, err := c.Info()
	if err != nil {
		return fmt.Errorf("pathsvc: version negotiation: %w", err)
	}
	if resp.VerMax >= ProtocolV2 {
		c.proto = ProtocolV2
	} else {
		c.proto = ProtocolVersion
	}
	return nil
}

// Proto reports the wire version in effect (after negotiation).
func (c *Client) Proto() int { return c.proto }

// Close closes the underlying connection and waits for the reader
// goroutine to exit — by return, every in-flight call has been drained
// and poisoned, and nothing of the client is still running.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// fail poisons the client once, closes the connection, and drains every
// pending call with the sticky broken error. It returns that error.
func (c *Client) fail(cause error) error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = fmt.Errorf("%w: %w", ErrClientBroken, cause)
	}
	err := c.broken
	var drained []*call
	for id, ca := range c.pending {
		delete(c.pending, id)
		drained = append(drained, ca)
	}
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, ca := range drained {
		ca.err = err
		ca.done <- struct{}{}
	}
	return err
}

// failWith poisons the client and delivers the broken error to one call
// the reader already claimed.
func (c *Client) failWith(ca *call, cause error) {
	err := c.fail(cause)
	ca.err = err
	ca.done <- struct{}{}
}

// claim removes id from the pending table. unknown reports an id this
// client never issued — a protocol violation (or a v1-only server JSON-
// rejecting a binary frame as id 0). A nil call with unknown == false is
// a late response to a timed-out request: droppable.
func (c *Client) claim(id uint64) (ca *call, unknown bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == 0 || id > c.nextID {
		return nil, true
	}
	if ca = c.pending[id]; ca != nil {
		delete(c.pending, id)
	}
	return ca, false
}

// reader demuxes response frames to their callers until the connection
// dies. It never blocks on delivery (done channels are buffered) and it
// reuses one read buffer across frames.
func (c *Client) reader() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	var rbuf []byte
	for {
		payload, err := ReadFrameInto(br, rbuf, c.opts.MaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		rbuf = payload
		if payload[0] == frameMagicV2 {
			if len(payload) < respV2HeaderLen {
				c.fail(errV2Short)
				return
			}
			id := binary.BigEndian.Uint64(payload[4:12])
			ca, unknown := c.claim(id)
			if unknown {
				c.fail(fmt.Errorf("pathsvc: response for id %d, which was never issued", id))
				return
			}
			if ca == nil {
				continue // late answer to a timed-out call
			}
			if ca.resp2 == nil {
				c.failWith(ca, errors.New("pathsvc: binary response to a JSON request"))
				return
			}
			if derr := DecodeResponseV2(payload, ca.resp2); derr != nil {
				c.failWith(ca, derr)
				return
			}
			ca.done <- struct{}{}
			continue
		}
		resp, derr := DecodeResponse(payload)
		if derr != nil {
			c.fail(derr)
			return
		}
		ca, unknown := c.claim(resp.ID)
		if unknown {
			// The detail matters here: a v1-only server answers a binary
			// frame it cannot parse with a JSON bad_request carrying id 0,
			// which is how a forced-v2 client learns its mistake.
			c.fail(fmt.Errorf("pathsvc: response for id %d, which was never issued (code %q: %s); does the server speak protocol v%d?",
				resp.ID, resp.Code, resp.Err, c.proto))
			return
		}
		if ca == nil {
			continue
		}
		if ca.resp2 != nil {
			c.failWith(ca, errors.New("pathsvc: JSON response to a binary request"))
			return
		}
		ca.resp = resp
		ca.done <- struct{}{}
	}
}

// register allocates the next correlation id and parks a call under it.
func (c *Client) register(resp2 *ResponseV2) (*call, uint64, error) {
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, 0, err
	}
	c.nextID++
	id := c.nextID
	ca := newCall()
	ca.resp2 = resp2
	c.pending[id] = ca
	c.mu.Unlock()
	return ca, id, nil
}

// reclaim removes id if the reader has not claimed it yet; true means the
// caller now owns the call and no delivery will ever happen.
func (c *Client) reclaim(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pending[id]; !ok {
		return false
	}
	delete(c.pending, id)
	return true
}

// writeFrame sends one already-framed buffer under the write lock with the
// IO deadline armed, poisoning the client on failure (bytes may have hit
// the wire, so the stream state is unknown).
func (c *Client) writeFrame(buf []byte) error {
	c.wmu.Lock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.opts.IOTimeout))
	_, err := c.conn.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		return c.fail(err)
	}
	return nil
}

// await waits out one call with the given request timeout (0 = none; the
// IO default applies). On expiry the call is reclaimed and the connection
// stays healthy.
func (c *Client) await(ca *call, id uint64, reqTimeout time.Duration) error {
	budget := c.opts.IOTimeout
	if reqTimeout > 0 {
		budget = reqTimeout + c.opts.TimeoutSlack
	}
	t := getTimer(budget)
	select {
	case <-ca.done:
		putTimer(t)
	case <-t.C:
		putTimer(t)
		if c.reclaim(id) {
			// The reader never saw this call: its channel is empty, pooling
			// is safe, and the eventual response will be dropped by id.
			callPool.Put(ca)
			return fmt.Errorf("%w: no response within %v", ErrClientTimeout, budget)
		}
		// The reader claimed it concurrently; delivery is imminent.
		<-ca.done
	}
	return nil
}

// Do sends one v1 (JSON) request and waits for its response. The protocol
// version and correlation id are filled in; a response that is not CodeOK
// is returned alongside a *ServerError carrying the code. Do always
// encodes v1 regardless of the negotiated version — the server answers
// each frame in the encoding it arrived in — which is what keeps old-style
// callers working on an upgraded connection.
func (c *Client) Do(req Request) (*Response, error) {
	ca, id, err := c.register(nil)
	if err != nil {
		return nil, err
	}
	req.Ver, req.ID = ProtocolVersion, id
	payload, err := encodeJSONFrame(&req, c.opts.MaxFrame)
	if err != nil {
		// Nothing hit the wire; the connection is still healthy.
		c.reclaim(id)
		callPool.Put(ca)
		return nil, err
	}
	if err := c.writeFrame(payload); err != nil {
		return nil, err
	}
	if err := c.await(ca, id, time.Duration(req.TimeoutMS)*time.Millisecond); err != nil {
		return nil, err
	}
	if ca.err != nil {
		err := ca.err
		callPool.Put(ca)
		return nil, err
	}
	resp := ca.resp
	callPool.Put(ca)
	if resp.Code != CodeOK {
		return &resp, &ServerError{
			Code:       resp.Code,
			Msg:        resp.Err,
			RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
		}
	}
	return &resp, nil
}

// DoV2 sends one binary request and decodes the response into resp, which
// the caller owns and may reuse across calls (its slice capacity is
// recycled — the steady-state round trip allocates nothing on the client).
// req.ID is assigned here. Requires a connection speaking v2.
func (c *Client) DoV2(req *RequestV2, resp *ResponseV2) error {
	if c.proto < ProtocolV2 {
		return fmt.Errorf("pathsvc: connection speaks v%d; DoV2 needs v2 (dial with Proto 0 or 2)", c.proto)
	}
	ca, id, err := c.register(resp)
	if err != nil {
		return err
	}
	req.ID = id
	bufp := frameBufPool.Get().(*[]byte)
	buf := appendFramePrefix(*bufp)
	buf = AppendRequestV2(buf, req)
	if n := patchFramePrefix(buf); n > c.opts.MaxFrame {
		*bufp = buf[:0]
		frameBufPool.Put(bufp)
		c.reclaim(id)
		callPool.Put(ca)
		return fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, n, c.opts.MaxFrame)
	}
	err = c.writeFrame(buf)
	*bufp = buf[:0]
	frameBufPool.Put(bufp)
	if err != nil {
		return err
	}
	if err := c.await(ca, id, time.Duration(req.TimeoutNS)); err != nil {
		return err
	}
	if ca.err != nil {
		err := ca.err
		callPool.Put(ca)
		return err
	}
	callPool.Put(ca)
	if resp.Code != StatusOK {
		return &ServerError{
			Code:       codeOfStatus(resp.Code),
			Msg:        resp.Err,
			RetryAfter: time.Duration(resp.RetryAfterNS),
		}
	}
	return nil
}

// encodeJSONFrame marshals one v1 frame into a fresh buffer (the JSON path
// allocates anyway; the binary path is the allocation-free one).
func encodeJSONFrame(v any, max int) ([]byte, error) {
	buf := appendFramePrefix(nil)
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("pathsvc: encode frame: %w", err)
	}
	if len(payload) > max {
		return nil, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), max)
	}
	buf = append(buf, payload...)
	patchFramePrefix(buf)
	return buf, nil
}

// Paths requests the disjoint-path container between u and v ("x:y" form).
// maxPaths > 0 truncates the answer; timeout > 0 sets a per-request
// deadline (v1 wire granularity is 1ms — sub-millisecond values round up
// rather than silently meaning "server default").
func (c *Client) Paths(u, v string, maxPaths int, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpPaths, U: u, V: v, MaxPaths: maxPaths, TimeoutMS: wireTimeoutMS(timeout)})
}

// Route requests one shortest container path from u to v avoiding faults.
func (c *Client) Route(u, v string, faults []string, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpRoute, U: u, V: v, Faults: faults, TimeoutMS: wireTimeoutMS(timeout)})
}

// Batch requests containers for every [source, destination] pair.
func (c *Client) Batch(pairs [][2]string, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpBatch, Pairs: pairs, TimeoutMS: wireTimeoutMS(timeout)})
}

// Info reports the served topology (always over v1: it doubles as the
// negotiation probe).
func (c *Client) Info() (*Response, error) {
	return c.Do(Request{Op: OpInfo})
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Do(Request{Op: OpPing})
	return err
}

// PathsV2 is the node-native container query: no address formatting or
// parsing on either side. resp is caller-owned and reusable.
func (c *Client) PathsV2(u, v hhc.Node, maxPaths int, timeout time.Duration, resp *ResponseV2) error {
	req := RequestV2{Op: OpCodePaths, U: u, V: v, MaxPaths: maxPaths, TimeoutNS: int64(timeout)}
	return c.DoV2(&req, resp)
}

// wireTimeoutMS renders a timeout at the v1 wire's millisecond
// granularity. Sub-millisecond values round up to 1ms: truncating to 0
// would silently select the server default, turning the tightest deadline
// a caller can ask for into the loosest. (v2 carries nanoseconds and has
// no such cliff.)
func wireTimeoutMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Millisecond - 1) / time.Millisecond)
}

// Reconn is a self-healing client handle for long-running drivers: it
// hands out a live Client and redials after poison (ErrClientBroken) or
// explicit invalidation. It does not retry requests itself — the caller
// decides which failures are retryable.
type Reconn struct {
	addr string
	opts DialOptions

	mu sync.Mutex
	c  *Client // guarded by mu
}

// NewReconn prepares a reconnecting handle (no connection is made until
// the first Client call).
func NewReconn(addr string, opts DialOptions) *Reconn {
	return &Reconn{addr: addr, opts: opts}
}

// Client returns the current live client, dialing if there is none.
func (r *Reconn) Client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		return r.c, nil
	}
	c, err := DialWith(r.addr, r.opts)
	if err != nil {
		return nil, err
	}
	r.c = c
	return c, nil
}

// Invalidate discards c if it is still the current client (a stale handle
// someone else already replaced is left alone) and closes it.
func (r *Reconn) Invalidate(c *Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// Close closes the current client, if any.
func (r *Reconn) Close() {
	r.mu.Lock()
	c := r.c
	r.c = nil
	r.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}
