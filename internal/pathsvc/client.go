package pathsvc

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// ServerError is a non-OK response surfaced as an error. It unwraps to the
// typed sentinel matching its code, so errors.Is(err, ErrOverload) and
// friends work on the client side exactly as on the server side.
type ServerError struct {
	Code       string
	Msg        string
	RetryAfter time.Duration
}

// Error renders the code and server-side detail.
func (e *ServerError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("pathsvc: server answered %q", e.Code)
	}
	return e.Msg
}

// Unwrap maps the wire code back onto the package's typed errors.
func (e *ServerError) Unwrap() error {
	switch e.Code {
	case CodeOverload:
		return ErrOverload
	case CodeDeadline:
		return ErrDeadlineExceeded
	case CodeShutdown:
		return ErrShutdown
	default:
		return nil
	}
}

// Client is a synchronous pathsvc connection: one request in flight at a
// time (Do holds the lock across write and read, so responses trivially
// match requests). For concurrency, open one Client per goroutine — the
// server's worker pool, not the connection count, bounds its parallelism.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	mu       sync.Mutex
	nextID   uint64
	maxFrame int
}

// Dial connects to a pathsvc server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pathsvc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (the tests drive net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), maxFrame: DefaultMaxFrame}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. The protocol version
// and correlation id are filled in; a response that is not CodeOK is
// returned alongside a *ServerError carrying the code.
func (c *Client) Do(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.Ver, req.ID = ProtocolVersion, c.nextID
	if err := WriteFrame(c.conn, &req, c.maxFrame); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.br, c.maxFrame)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("pathsvc: response id %d does not match request id %d", resp.ID, req.ID)
	}
	if resp.Code != CodeOK {
		return &resp, &ServerError{
			Code:       resp.Code,
			Msg:        resp.Err,
			RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
		}
	}
	return &resp, nil
}

// Paths requests the disjoint-path container between u and v ("x:y" form).
// maxPaths > 0 truncates the answer; timeout > 0 sets a per-request
// deadline.
func (c *Client) Paths(u, v string, maxPaths int, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpPaths, U: u, V: v, MaxPaths: maxPaths, TimeoutMS: timeout.Milliseconds()})
}

// Route requests one shortest container path from u to v avoiding faults.
func (c *Client) Route(u, v string, faults []string, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpRoute, U: u, V: v, Faults: faults, TimeoutMS: timeout.Milliseconds()})
}

// Batch requests containers for every [source, destination] pair.
func (c *Client) Batch(pairs [][2]string, timeout time.Duration) (*Response, error) {
	return c.Do(Request{Op: OpBatch, Pairs: pairs, TimeoutMS: timeout.Milliseconds()})
}

// Info reports the served topology.
func (c *Client) Info() (*Response, error) {
	return c.Do(Request{Op: OpInfo})
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.Do(Request{Op: OpPing})
	return err
}
