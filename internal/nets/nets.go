// Package nets gives the three networks this reproduction compares — the
// hierarchical hypercube HHC_n, the ordinary hypercube Q_n, and the
// cube-connected cycles CCC(2^m) — one uniform face, so the evaluation can
// measure (not just quote) their degree, diameter, connectivity, and
// container width on equal node counts.
//
// The sizes align exactly: for n = 2^m + m,
//
//	|HHC_n| = 2^n,   |Q_n| = 2^n,   |CCC(2^m)| = 2^m·2^(2^m) = 2^n.
//
// So for every m the three candidates have identical node counts, and the
// comparison isolates pure topology effects.
package nets

import (
	"fmt"
	"math/rand"

	"repro/internal/ccc"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/hcn"
	"repro/internal/hhc"
)

// Network is the uniform comparison face.
type Network interface {
	// Name identifies the topology instance, e.g. "HHC_11".
	Name() string
	// LogNodes returns log2 of the node count.
	LogNodes() int
	// Degree returns the (uniform) node degree.
	Degree() int
	// ContainerWidth returns the node-connectivity, i.e. the maximum
	// container width between any two nodes.
	ContainerWidth() int
	// DiameterBound returns an analytic upper bound on the diameter.
	DiameterBound() int
	// Dense returns a traversable view, or graph.ErrTooLarge.
	Dense() (graph.Graph, error)
}

// --- HHC ---

// HHCNet wraps hhc.Graph.
type HHCNet struct{ G *hhc.Graph }

// NewHHC builds the HHC instance for parameter m.
func NewHHC(m int) (HHCNet, error) {
	g, err := hhc.New(m)
	if err != nil {
		return HHCNet{}, err
	}
	return HHCNet{G: g}, nil
}

// Name implements Network.
func (n HHCNet) Name() string { return fmt.Sprintf("HHC_%d", n.G.N()) }

// LogNodes implements Network.
func (n HHCNet) LogNodes() int { return n.G.N() }

// Degree implements Network.
func (n HHCNet) Degree() int { return n.G.Degree() }

// ContainerWidth implements Network.
func (n HHCNet) ContainerWidth() int { return n.G.Degree() }

// DiameterBound implements Network.
func (n HHCNet) DiameterBound() int { return n.G.DiameterUpperBound() }

// Dense implements Network.
func (n HHCNet) Dense() (graph.Graph, error) { return n.G.Dense() }

// --- hypercube ---

// CubeNet is the ordinary hypercube Q_n.
type CubeNet struct{ N int }

// NewCube builds Q_n.
func NewCube(n int) (CubeNet, error) {
	if n < 1 || n > 64 {
		return CubeNet{}, fmt.Errorf("nets: Q_%d out of range", n)
	}
	return CubeNet{N: n}, nil
}

// Name implements Network.
func (c CubeNet) Name() string { return fmt.Sprintf("Q_%d", c.N) }

// LogNodes implements Network.
func (c CubeNet) LogNodes() int { return c.N }

// Degree implements Network.
func (c CubeNet) Degree() int { return c.N }

// ContainerWidth implements Network.
func (c CubeNet) ContainerWidth() int { return c.N }

// DiameterBound implements Network.
func (c CubeNet) DiameterBound() int { return c.N } // exact, in fact

// Dense implements Network.
func (c CubeNet) Dense() (graph.Graph, error) {
	if c.N > 20 {
		return nil, fmt.Errorf("%w: Q_%d", graph.ErrTooLarge, c.N)
	}
	return graph.FuncGraph{
		N:      1 << uint(c.N),
		Degree: c.N,
		Fn: func(v uint64, buf []uint64) []uint64 {
			for i := 0; i < c.N; i++ {
				buf = append(buf, v^(1<<uint(i)))
			}
			return buf
		},
	}, nil
}

// --- CCC ---

// CCCNet wraps ccc.Graph. Note CCC(k)'s node count k·2^k is a power of two
// exactly when k is, which is the regime the comparison uses (k = 2^m).
type CCCNet struct{ G *ccc.Graph }

// NewCCC builds CCC(k).
func NewCCC(k int) (CCCNet, error) {
	g, err := ccc.New(k)
	if err != nil {
		return CCCNet{}, err
	}
	return CCCNet{G: g}, nil
}

// Name implements Network.
func (n CCCNet) Name() string { return fmt.Sprintf("CCC(%d)", n.G.K()) }

// LogNodes implements Network (exact only for power-of-two k; the
// comparison tables only instantiate those).
func (n CCCNet) LogNodes() int {
	log := 0
	for c := n.G.NumNodes(); c > 1; c >>= 1 {
		log++
	}
	return log
}

// Degree implements Network.
func (n CCCNet) Degree() int { return 3 }

// ContainerWidth implements Network.
func (n CCCNet) ContainerWidth() int { return 3 }

// DiameterBound implements Network.
func (n CCCNet) DiameterBound() int { return n.G.DiameterUpperBound() }

// Dense implements Network.
func (n CCCNet) Dense() (graph.Graph, error) { return n.G.Dense() }

// --- HCN ---

// HCNNet wraps hcn.Graph: the hierarchical cubic network HCN(k), 2^(2k)
// nodes of degree k+1. Its size matches the HHC/Q_n pair exactly when
// 2k = 2^m + m (even n only).
type HCNNet struct{ G *hcn.Graph }

// NewHCN builds HCN(k).
func NewHCN(k int) (HCNNet, error) {
	g, err := hcn.New(k)
	if err != nil {
		return HCNNet{}, err
	}
	return HCNNet{G: g}, nil
}

// Name implements Network.
func (n HCNNet) Name() string { return fmt.Sprintf("HCN(%d)", n.G.N()) }

// LogNodes implements Network.
func (n HCNNet) LogNodes() int { return 2 * n.G.N() }

// Degree implements Network.
func (n HCNNet) Degree() int { return n.G.Degree() }

// ContainerWidth implements Network.
func (n HCNNet) ContainerWidth() int { return n.G.Degree() }

// DiameterBound implements Network.
func (n HCNNet) DiameterBound() int { return n.G.DiameterUpperBound() }

// Dense implements Network.
func (n HCNNet) Dense() (graph.Graph, error) { return n.G.Dense() }

// --- measured properties ---

// Triple returns the equal-sized candidates for a given m: HHC_n, Q_n and
// CCC(2^m) always, plus HCN(n/2) when n is even.
func Triple(m int) ([]Network, error) {
	h, err := NewHHC(m)
	if err != nil {
		return nil, err
	}
	q, err := NewCube(h.G.N())
	if err != nil {
		return nil, err
	}
	c, err := NewCCC(h.G.T())
	if err != nil {
		return nil, err
	}
	out := []Network{h, q, c}
	if n := h.G.N(); n%2 == 0 {
		hc, err := NewHCN(n / 2)
		if err != nil {
			return nil, err
		}
		out = append(out, hc)
	}
	return out, nil
}

// MeasuredDiameter returns the exact diameter when the network is small
// enough for all-source BFS, a sampled-eccentricity lower bound marked
// ">=…" when only single-source BFS is affordable, and the analytic bound
// marked "<=…" beyond.
func MeasuredDiameter(n Network, sources int, seed int64) (string, error) {
	dg, err := n.Dense()
	if err != nil {
		return fmt.Sprintf("<=%d", n.DiameterBound()), nil
	}
	if dg.Order() <= 1<<12 {
		d, err := graph.Diameter(dg)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d", d), nil
	}
	r := rand.New(rand.NewSource(seed))
	best := 0
	for i := 0; i < sources; i++ {
		src := uint64(r.Int63n(dg.Order()))
		ecc, _, err := graph.Eccentricity(dg, src)
		if err != nil {
			return "", err
		}
		if ecc > best {
			best = ecc
		}
	}
	return fmt.Sprintf(">=%d", best), nil
}

// MeasuredConnectivity verifies the container width by max flow on sampled
// non-adjacent pairs; returns the minimum found, which must equal the
// analytic connectivity on these vertex-transitive networks.
func MeasuredConnectivity(n Network, samples int, seed int64) (int, error) {
	dg, err := n.Dense()
	if err != nil {
		return 0, err
	}
	r := rand.New(rand.NewSource(seed))
	minK := int(dg.Order()) // effectively +inf
	found := 0
	buf := make([]uint64, 0, dg.MaxDegree())
	for attempts := 0; found < samples && attempts < samples*20; attempts++ {
		s := uint64(r.Int63n(dg.Order()))
		t := uint64(r.Int63n(dg.Order()))
		if s == t {
			continue
		}
		adjacent := false
		for _, w := range dg.Neighbors(s, buf[:0]) {
			if w == t {
				adjacent = true
				break
			}
		}
		if adjacent {
			continue
		}
		k, err := flow.LocalConnectivity(dg, s, t)
		if err != nil {
			return 0, err
		}
		if k < minK {
			minK = k
		}
		found++
	}
	if found == 0 {
		return 0, fmt.Errorf("nets: found no non-adjacent sample pairs")
	}
	return minK, nil
}
