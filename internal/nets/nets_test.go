package nets

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestTripleSizesAlign(t *testing.T) {
	// The whole point: |HHC_n| = |Q_n| = |CCC(2^m)| for n = 2^m + m, plus
	// |HCN(n/2)| when n is even.
	wantCount := map[int]int{2: 4, 3: 3, 4: 4} // n = 6, 11, 20
	for m := 2; m <= 4; m++ {
		nets, err := Triple(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(nets) != wantCount[m] {
			t.Fatalf("m=%d: %d candidates, want %d", m, len(nets), wantCount[m])
		}
		want := nets[0].LogNodes()
		for _, n := range nets {
			if n.LogNodes() != want {
				t.Fatalf("m=%d: %s has 2^%d nodes, want 2^%d", m, n.Name(), n.LogNodes(), want)
			}
		}
	}
}

func TestHCNInTriple(t *testing.T) {
	nets, err := Triple(2)
	if err != nil {
		t.Fatal(err)
	}
	last := nets[len(nets)-1]
	if last.Name() != "HCN(3)" {
		t.Fatalf("expected HCN(3) for m=2, got %s", last.Name())
	}
	if last.Degree() != 4 || last.ContainerWidth() != 4 {
		t.Fatalf("HCN(3): degree %d width %d", last.Degree(), last.ContainerWidth())
	}
	k, err := MeasuredConnectivity(last, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("HCN(3) measured connectivity %d, want 4", k)
	}
}

func TestTripleM1Unavailable(t *testing.T) {
	// m=1 gives CCC(2), below the supported k range.
	if _, err := Triple(1); err == nil {
		t.Fatal("Triple(1): want error (CCC(2) is degenerate)")
	}
}

func TestNames(t *testing.T) {
	nets, err := Triple(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"HHC_11", "Q_11", "CCC(8)"} // n = 11 is odd: no HCN row
	if len(nets) != len(want) {
		t.Fatalf("%d candidates", len(nets))
	}
	for i, n := range nets {
		if n.Name() != want[i] {
			t.Fatalf("name %d = %q, want %q", i, n.Name(), want[i])
		}
	}
}

func TestDegreesAndWidths(t *testing.T) {
	nets, err := Triple(3)
	if err != nil {
		t.Fatal(err)
	}
	// HHC_11: degree 4; Q_11: degree 11; CCC(8): degree 3.
	wantDeg := []int{4, 11, 3}
	for i, n := range nets {
		if n.Degree() != wantDeg[i] {
			t.Fatalf("%s degree %d, want %d", n.Name(), n.Degree(), wantDeg[i])
		}
		if n.ContainerWidth() != n.Degree() {
			t.Fatalf("%s width %d != degree %d (all three are maximally connected)",
				n.Name(), n.ContainerWidth(), n.Degree())
		}
	}
}

func TestDenseViewsSymmetric(t *testing.T) {
	nets, err := Triple(2) // 64 nodes each
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		dg, err := n.Dense()
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if dg.Order() != 64 {
			t.Fatalf("%s order %d", n.Name(), dg.Order())
		}
		if err := graph.CheckSymmetric(dg); err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
	}
}

func TestMeasuredDiameterExactSmall(t *testing.T) {
	nets, err := Triple(2)
	if err != nil {
		t.Fatal(err)
	}
	// Q_6's diameter is exactly 6; HHC_6's is 8 (measured in E1); CCC(4) is
	// known to be 9 or less.
	for _, n := range nets {
		d, err := MeasuredDiameter(n, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(d, "<=") || strings.HasPrefix(d, ">=") {
			t.Fatalf("%s: expected exact diameter for 64 nodes, got %s", n.Name(), d)
		}
	}
	q, _ := NewCube(6)
	d, err := MeasuredDiameter(q, 1, 1)
	if err != nil || d != "6" {
		t.Fatalf("diameter(Q_6) = %s, %v; want 6", d, err)
	}
}

func TestMeasuredDiameterSampledBranch(t *testing.T) {
	// HCN(7) has 2^14 nodes: enumerable but above the exact-diameter cap,
	// so the sampled-eccentricity lower bound branch must fire.
	hc, err := NewHCN(7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeasuredDiameter(hc, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d, ">=") {
		t.Fatalf("want sampled lower bound, got %s", d)
	}
	if parsed := parseAfterPrefix(d); parsed < 7 || parsed > hc.DiameterBound() {
		t.Fatalf("sampled diameter %s implausible (bound %d)", d, hc.DiameterBound())
	}
}

func parseAfterPrefix(s string) int {
	v := 0
	for _, c := range s {
		if c >= '0' && c <= '9' {
			v = v*10 + int(c-'0')
		}
	}
	return v
}

func TestMeasuredConnectivityTooLarge(t *testing.T) {
	h, err := NewHHC(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasuredConnectivity(h, 2, 1); err == nil {
		t.Fatal("non-enumerable network accepted")
	}
}

func TestMeasuredDiameterBoundFallback(t *testing.T) {
	h, err := NewHHC(5) // not enumerable
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeasuredDiameter(h, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d, "<=") {
		t.Fatalf("want analytic-bound fallback, got %s", d)
	}
}

func TestMeasuredConnectivity(t *testing.T) {
	nets, err := Triple(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		k, err := MeasuredConnectivity(n, 8, 3)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if k != n.ContainerWidth() {
			t.Fatalf("%s measured connectivity %d, want %d", n.Name(), k, n.ContainerWidth())
		}
	}
}

func TestNewCubeBounds(t *testing.T) {
	if _, err := NewCube(0); err == nil {
		t.Fatal("Q_0: want error")
	}
	if _, err := NewCube(65); err == nil {
		t.Fatal("Q_65: want error")
	}
	c, err := NewCube(25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dense(); err == nil {
		t.Fatal("Q_25 dense: want too-large error")
	}
}
