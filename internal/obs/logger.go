package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. The zero value is LevelDebug, so a Logger
// built without an explicit minimum logs everything.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the wire spelling of a level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// ParseLevel parses the CLI spelling of a level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger is a dependency-free leveled structured logger: one JSON object
// per line, in the order {"ts":…,"level":…,"msg":…, attrs…}. It is safe
// for concurrent use (one writer mutex; lines are written atomically) and
// nil-receiver safe: a nil *Logger ignores every call without allocating,
// so instrumented code holds one pointer and never branches on whether
// logging is enabled.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer // guarded by mu
	min   atomic.Int32
	lines atomic.Int64
}

// NewLogger builds a logger writing JSONL to w, suppressing records below
// min.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether a record at lv would be written. Call sites with
// expensive attribute construction should guard on it; plain calls need
// not (a suppressed or nil logger returns before formatting anything).
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Lines reports how many records have been written (tests and sanity
// checks; not a metric).
func (l *Logger) Lines() int64 {
	if l == nil {
		return 0
	}
	return l.lines.Load()
}

// Log writes one record. Attribute keys should not collide with the
// reserved keys ts, level, and msg; later attrs win over earlier ones only
// in readers that parse into maps (the line preserves caller order).
func (l *Logger) Log(lv Level, msg string, attrs ...Attr) {
	if !l.Enabled(lv) {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"ts":`)
	writeJSONString(&buf, time.Now().UTC().Format(time.RFC3339Nano))
	buf.WriteString(`,"level":`)
	writeJSONString(&buf, lv.String())
	buf.WriteString(`,"msg":`)
	writeJSONString(&buf, msg)
	for _, a := range attrs {
		buf.WriteByte(',')
		writeJSONString(&buf, a.Key)
		buf.WriteByte(':')
		writeJSONString(&buf, a.Value)
	}
	buf.WriteString("}\n")
	l.mu.Lock()
	// A broken sink must not take down the program; logging is advisory.
	_, _ = l.w.Write(buf.Bytes())
	l.mu.Unlock()
	l.lines.Add(1)
}

// Debug, Info, Warn, and Error are the leveled shorthands.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LevelDebug, msg, attrs...) }
func (l *Logger) Info(msg string, attrs ...Attr)  { l.Log(LevelInfo, msg, attrs...) }
func (l *Logger) Warn(msg string, attrs ...Attr)  { l.Log(LevelWarn, msg, attrs...) }
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LevelError, msg, attrs...) }

// writeJSONString appends s as a JSON string literal. json.Marshal on a
// string cannot fail; it handles every escape JSON requires.
func writeJSONString(buf *bytes.Buffer, s string) {
	enc, _ := json.Marshal(s)
	buf.Write(enc)
}
