package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenRecorder replays fixed, hand-built traces through the retention
// policy, so the snapshot is fully deterministic.
func goldenRecorder() *RequestTracer {
	rt := NewRequestTracer(2)
	rt.SetSlowThreshold(time.Millisecond)
	rt.Record(&RequestTrace{
		ID: "r1", Op: "paths", Start: 1700000000000000000, Dur: 250_000,
		Attrs: []Attr{{Key: "peer", Value: "10.0.0.9:41000"}, {Key: "width", Value: "4"}},
		Spans: []*ReqSpan{
			{Name: "admission", Start: 1700000000000001000, Dur: 1_000},
			{Name: "exec", Start: 1700000000000002000, Dur: 230_000,
				Children: []*ReqSpan{
					{Name: "realize", Start: 1700000000000003000, Dur: 200_000,
						Attrs: []Attr{{Key: "pairs", Value: "4"}}},
				}},
			{Name: "encode", Start: 1700000000000240000, Dur: 9_000},
		},
	})
	rt.Record(&RequestTrace{
		ID: "r2", Op: "paths", Start: 1700000001000000000, Dur: 40_000,
		Code:  "overload",
		Spans: []*ReqSpan{{Name: "admission", Start: 1700000001000001000, Dur: 35_000}},
	})
	rt.Record(&RequestTrace{
		ID: "slow-1", Op: "paths", Start: 1700000002000000000, Dur: 2_500_000,
		Slow:  true,
		Spans: []*ReqSpan{{Name: "exec", Start: 1700000002000001000, Dur: 2_400_000}},
	})
	return rt
}

// TestRequestsJSONGolden pins the /debug/requests?format=json shape:
// cmd/hhcobs and the CI smoke test parse this payload, so drift is an
// interface break, not a cosmetic change.
func TestRequestsJSONGolden(t *testing.T) {
	srv := httptest.NewServer(goldenRecorder().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "requests.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("/debug/requests JSON drifted from golden file\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestRequestsHTML(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/requests", nil)
	goldenRecorder().Handler().ServeHTTP(rec, req)

	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"3 requests seen, 1 errored",
		"slow threshold 1ms",
		"<h2>Slowest (2)</h2>",
		"<h2>Recent errors (1)</h2>",
		"<h2>Recent slow (1)</h2>",
		"<h2>Recent (2)</h2>",
		"overload",
		"realize",
		"pairs=4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML lacks %q", want)
		}
	}
}

func TestRequestsAcceptHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/requests", nil)
	req.Header.Set("Accept", "application/json")
	goldenRecorder().Handler().ServeHTTP(rec, req)
	if !strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "{") {
		t.Error("Accept: application/json did not select the JSON dump")
	}
}
