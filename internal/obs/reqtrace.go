package obs

import (
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: span
// trees with parent/child structure (one tree per served request) and a
// flight recorder that retains the most interesting trees — the K slowest,
// the K most recent errored, the K most recent over the slow threshold,
// and the K most recent overall — for /debug/requests, x/net/trace-style.
//
// Ownership rule: a Req and its spans are mutated by one goroutine at a
// time (hand-offs between goroutines must carry a happens-before edge,
// e.g. a channel send). The recorder only ever sees a tree after Finish,
// so snapshots never race with in-flight mutation.

// DefaultRecorderK is the per-bucket retention of a RequestTracer.
const DefaultRecorderK = 32

// ReqSpan is one named phase inside a request, possibly with nested
// children. Times are wall-clock unix nanoseconds, durations nanoseconds.
type ReqSpan struct {
	Name     string
	Start    int64
	Dur      int64
	Attrs    []Attr
	Children []*ReqSpan

	begin time.Time
}

// reqSpanJSON is the wire shape of a ReqSpan; attrs render as a flat
// object (map keys sort, so output is deterministic).
type reqSpanJSON struct {
	Name     string            `json:"name"`
	Start    int64             `json:"start_ns"`
	Dur      int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*ReqSpan        `json:"children,omitempty"`
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func mapAttrs(m map[string]string) []Attr {
	if len(m) == 0 {
		return nil
	}
	out := make([]Attr, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{Key: k, Value: v})
	}
	return out
}

// MarshalJSON renders the span with attrs as a flat object.
func (s *ReqSpan) MarshalJSON() ([]byte, error) {
	return json.Marshal(reqSpanJSON{
		Name: s.Name, Start: s.Start, Dur: s.Dur,
		Attrs: attrMap(s.Attrs), Children: s.Children,
	})
}

// UnmarshalJSON parses the wire shape back (attr order is not preserved).
func (s *ReqSpan) UnmarshalJSON(data []byte) error {
	var a reqSpanJSON
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*s = ReqSpan{Name: a.Name, Start: a.Start, Dur: a.Dur,
		Attrs: mapAttrs(a.Attrs), Children: a.Children}
	return nil
}

// StartChild opens a nested span under s.
func (s *ReqSpan) StartChild(name string, attrs ...Attr) *ReqSpan {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &ReqSpan{Name: name, Start: now.UnixNano(), Attrs: attrs, begin: now}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr annotates an in-flight span.
func (s *ReqSpan) SetAttr(key, value string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
}

// End completes the span. Safe to call from a different goroutine than
// StartChild as long as a happens-before edge orders the two.
func (s *ReqSpan) End() {
	if s != nil {
		s.Dur = int64(time.Since(s.begin))
	}
}

// RequestTrace is one completed request's tree: identity, outcome, and the
// phase spans in start order.
type RequestTrace struct {
	ID    string
	Op    string
	Start int64
	Dur   int64
	Code  string // "" = OK
	Slow  bool   // Dur reached the recorder's slow threshold
	// Origin names the peer a forwarded request came from ("" for direct
	// client traffic). Origin-tagged trees are the owner-side half of a
	// cross-peer trace: stitching joins them to the requester's tree by ID,
	// and the recorder keeps them out of the client-facing slow bucket by
	// default (see RetainForwardedSlow).
	Origin string
	Attrs  []Attr
	Spans  []*ReqSpan
}

type requestTraceJSON struct {
	ID     string            `json:"id"`
	Op     string            `json:"op"`
	Start  int64             `json:"start_ns"`
	Dur    int64             `json:"dur_ns"`
	Code   string            `json:"code,omitempty"`
	Slow   bool              `json:"slow,omitempty"`
	Origin string            `json:"origin,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Spans  []*ReqSpan        `json:"spans,omitempty"`
}

// MarshalJSON renders the trace with attrs as a flat object.
func (t *RequestTrace) MarshalJSON() ([]byte, error) {
	return json.Marshal(requestTraceJSON{
		ID: t.ID, Op: t.Op, Start: t.Start, Dur: t.Dur, Code: t.Code,
		Slow: t.Slow, Origin: t.Origin, Attrs: attrMap(t.Attrs), Spans: t.Spans,
	})
}

// UnmarshalJSON parses the wire shape back.
func (t *RequestTrace) UnmarshalJSON(data []byte) error {
	var a requestTraceJSON
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*t = RequestTrace{ID: a.ID, Op: a.Op, Start: a.Start, Dur: a.Dur,
		Code: a.Code, Slow: a.Slow, Origin: a.Origin,
		Attrs: mapAttrs(a.Attrs), Spans: a.Spans}
	return nil
}

// Req is one in-flight request's tracing handle. A nil Req (from a nil
// RequestTracer) ignores every call, so serving code never branches on
// whether request tracing is enabled.
type Req struct {
	rt    *RequestTracer
	tr    *RequestTrace
	begin time.Time
}

// ID returns the request's correlation id ("" on a nil Req).
func (q *Req) ID() string {
	if q == nil {
		return ""
	}
	return q.tr.ID
}

// SetAttr annotates the request itself (endpoints, widths, peers).
func (q *Req) SetAttr(key, value string) {
	if q != nil {
		q.tr.Attrs = append(q.tr.Attrs, Attr{Key: key, Value: value})
	}
}

// SetOrigin marks the request as forwarded from the named peer. The tree
// records the origin both structurally (RequestTrace.Origin, the stitching
// join key) and as a visible attr.
func (q *Req) SetOrigin(peer string) {
	if q == nil || peer == "" {
		return
	}
	q.tr.Origin = peer
	q.tr.Attrs = append(q.tr.Attrs, Attr{Key: "origin", Value: peer})
}

// StartSpan opens a top-level phase span on the request.
func (q *Req) StartSpan(name string, attrs ...Attr) *ReqSpan {
	if q == nil {
		return nil
	}
	now := time.Now()
	s := &ReqSpan{Name: name, Start: now.UnixNano(), Attrs: attrs, begin: now}
	q.tr.Spans = append(q.tr.Spans, s)
	return s
}

// Finish completes the request with its outcome code ("" = OK), hands the
// tree to the recorder, and mirrors the spans to the attached flat tracer
// stream. The Req must not be used afterwards.
func (q *Req) Finish(code string) {
	if q == nil {
		return
	}
	q.tr.Dur = int64(time.Since(q.begin))
	q.tr.Code = code
	q.rt.finishLive(q.tr)
}

// ringBuf retains the last cap(buf) traces, newest overwriting oldest.
type ringBuf struct {
	buf  []*RequestTrace
	n    int // live entries
	next int
}

func newRingBuf(k int) ringBuf { return ringBuf{buf: make([]*RequestTrace, k)} }

func (r *ringBuf) add(tr *RequestTrace) {
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the retained traces newest-first.
func (r *ringBuf) list() []*RequestTrace {
	out := make([]*RequestTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// RequestTracer is the flight recorder: it assigns request ids, collects
// span trees, and retains the interesting ones. All methods are safe for
// concurrent use and nil-receiver safe.
type RequestTracer struct {
	k       int
	seq     atomic.Uint64
	slowNS  atomic.Int64
	fwdSlow atomic.Bool // retain Origin-tagged trees in the slow bucket

	// mirror receives every finished request's spans as flat tracer spans
	// (rid attr added), so -trace JSONL files carry request phases too.
	// Set once at wiring time, before serving starts.
	mirror *Tracer

	mu      sync.Mutex
	total   int64           // guarded by mu
	errored int64           // guarded by mu
	slowest []*RequestTrace // min-heap by Dur: the K slowest ever; guarded by mu
	errs    ringBuf         // K most recent non-OK; guarded by mu
	slow    ringBuf         // K most recent over the slow threshold; guarded by mu
	recent  ringBuf         // K most recent overall; guarded by mu
}

// NewRequestTracer builds a recorder retaining k traces per bucket
// (k <= 0 selects DefaultRecorderK).
func NewRequestTracer(k int) *RequestTracer {
	if k <= 0 {
		k = DefaultRecorderK
	}
	return &RequestTracer{
		k:      k,
		errs:   newRingBuf(k),
		slow:   newRingBuf(k),
		recent: newRingBuf(k),
	}
}

// SetSlowThreshold force-retains requests at least d long in the slow
// bucket (and marks them Slow), regardless of how they rank among the K
// slowest. d <= 0 disables the bucket.
func (t *RequestTracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNS.Store(int64(d))
	}
}

// RetainForwardedSlow opts forwarded (Origin-tagged) trees into the slow
// bucket. By default they are filtered out: the slow view answers "which
// client requests were slow here", and a forwarded tree's latency is
// already accounted for inside the requester peer's own trace — retaining
// both would double-count every slow cross-peer query.
func (t *RequestTracer) RetainForwardedSlow(on bool) {
	if t != nil {
		t.fwdSlow.Store(on)
	}
}

// SlowThreshold returns the configured threshold (0 = disabled).
func (t *RequestTracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNS.Load())
}

// Mirror re-emits every finished request's spans onto tr's flat stream
// (one span per phase, rid attr added). Call once at wiring time, before
// serving starts.
func (t *RequestTracer) Mirror(tr *Tracer) {
	if t != nil {
		t.mirror = tr
	}
}

// StartRequest opens a request trace. id is the client-supplied
// correlation id; when empty, the recorder assigns "r<seq>". Returns nil
// on a nil receiver — every Req and ReqSpan method tolerates that.
func (t *RequestTracer) StartRequest(op, id string, attrs ...Attr) *Req {
	if t == nil {
		return nil
	}
	if id == "" {
		id = "r" + strconv.FormatUint(t.seq.Add(1), 10)
	}
	now := time.Now()
	return &Req{
		rt:    t,
		begin: now,
		tr:    &RequestTrace{ID: id, Op: op, Start: now.UnixNano(), Attrs: attrs},
	}
}

// finishLive records a tree produced by live serving: retention plus the
// mirror emission (Record alone skips the mirror, so replayed/ingested
// traces are not re-streamed).
func (t *RequestTracer) finishLive(tr *RequestTrace) {
	if d := t.slowNS.Load(); d > 0 && tr.Dur >= d {
		tr.Slow = true
	}
	t.Record(tr)
	if t.mirror != nil {
		t.mirrorTrace(tr)
	}
}

// Record applies the retention policy to one completed trace. Exported so
// offline consumers (cmd/hhcobs) can replay dumped traces through the same
// top-K logic the live recorder uses.
func (t *RequestTracer) Record(tr *RequestTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	t.recent.add(tr)
	if tr.Code != "" {
		t.errored++
		t.errs.add(tr)
	}
	if tr.Slow && (tr.Origin == "" || t.fwdSlow.Load()) {
		t.slow.add(tr)
	}
	// Min-heap of the K slowest: the root is the fastest retained trace.
	if len(t.slowest) < t.k {
		t.slowest = append(t.slowest, tr)
		t.siftUp(len(t.slowest) - 1)
	} else if tr.Dur > t.slowest[0].Dur {
		t.slowest[0] = tr
		t.siftDown(0)
	}
}

// siftUp restores the heap invariant upward from i.
//
//hhc:holds mu
func (t *RequestTracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.slowest[p].Dur <= t.slowest[i].Dur {
			return
		}
		t.slowest[p], t.slowest[i] = t.slowest[i], t.slowest[p]
		i = p
	}
}

// siftDown restores the heap invariant downward from i.
//
//hhc:holds mu
func (t *RequestTracer) siftDown(i int) {
	n := len(t.slowest)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.slowest[l].Dur < t.slowest[min].Dur {
			min = l
		}
		if r < n && t.slowest[r].Dur < t.slowest[min].Dur {
			min = r
		}
		if min == i {
			return
		}
		t.slowest[i], t.slowest[min] = t.slowest[min], t.slowest[i]
		i = min
	}
}

// mirrorTrace flattens one finished tree onto the flat tracer: a "request"
// span for the whole request, then every phase span, each carrying the rid
// attr so offline tools can regroup them per request.
func (t *RequestTracer) mirrorTrace(tr *RequestTrace) {
	rid := Attr{Key: "rid", Value: tr.ID}
	root := Span{Name: "request", Start: tr.Start, Dur: tr.Dur,
		Attrs: append([]Attr{rid, {Key: "op", Value: tr.Op}}, tr.Attrs...)}
	if tr.Code != "" {
		root.Attrs = append(root.Attrs, Attr{Key: "code", Value: tr.Code})
	}
	t.mirror.record(root)
	var walk func(spans []*ReqSpan)
	walk = func(spans []*ReqSpan) {
		for _, s := range spans {
			t.mirror.record(Span{Name: s.Name, Start: s.Start, Dur: s.Dur,
				Attrs: append([]Attr{rid}, s.Attrs...)})
			walk(s.Children)
		}
	}
	walk(tr.Spans)
}

// RequestsSnapshot is the /debug/requests payload: totals plus the four
// retention buckets, each newest- or slowest-first.
type RequestsSnapshot struct {
	Total           int64           `json:"total"`
	Errored         int64           `json:"errored"`
	SlowThresholdNS int64           `json:"slow_threshold_ns,omitempty"`
	Slowest         []*RequestTrace `json:"slowest"`
	Errors          []*RequestTrace `json:"errors"`
	Slow            []*RequestTrace `json:"slow,omitempty"`
	Recent          []*RequestTrace `json:"recent"`
}

// Snapshot reads the recorder. Slowest is ordered slowest-first; the ring
// buckets newest-first. The returned traces are shared (completed trees
// are immutable), the slices fresh.
func (t *RequestTracer) Snapshot() RequestsSnapshot {
	if t == nil {
		return RequestsSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slowest := append([]*RequestTrace(nil), t.slowest...)
	// Insertion sort is fine at K entries; sort descending by duration.
	for i := 1; i < len(slowest); i++ {
		for j := i; j > 0 && slowest[j].Dur > slowest[j-1].Dur; j-- {
			slowest[j], slowest[j-1] = slowest[j-1], slowest[j]
		}
	}
	return RequestsSnapshot{
		Total:           t.total,
		Errored:         t.errored,
		SlowThresholdNS: t.slowNS.Load(),
		Slowest:         slowest,
		Errors:          t.errs.list(),
		Slow:            t.slow.list(),
		Recent:          t.recent.list(),
	}
}

// Totals reports (requests seen, errored) without copying the buckets.
func (t *RequestTracer) Totals() (total, errored int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.errored
}

// RetainedCounts reports how many traces each retention bucket currently
// holds, so trace retention is scrapeable instead of only visible by
// dumping /debug/requests.
func (t *RequestTracer) RetainedCounts() (slowest, errs, slow, recent int) {
	if t == nil {
		return 0, 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slowest), t.errs.n, t.slow.n, t.recent.n
}
