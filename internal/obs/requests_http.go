package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler serves the flight recorder as /debug/requests, x/net/trace
// style: an HTML table of the retained span trees by default, the raw
// JSON snapshot with ?format=json (or an Accept header naming
// application/json). The JSON shape is RequestsSnapshot; cmd/hhcobs
// consumes it directly.
func (t *RequestTracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := t.Snapshot()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteRequestsJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRequestsHTML(w, snap)
	})
}

// WriteRequestsJSON renders a snapshot as indented JSON, the exact
// /debug/requests?format=json payload (split out so tests can golden-file
// it and tools can re-serialize aggregated snapshots).
func WriteRequestsJSON(w io.Writer, snap RequestsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func writeRequestsHTML(w io.Writer, snap RequestsSnapshot) {
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>/debug/requests</title><style>
body { font-family: sans-serif; margin: 1em; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: left; vertical-align: top; }
th { background: #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
pre { margin: 0; font-size: 90%; }
.err { color: #a00; }
.slow { color: #850; }
</style></head><body>
`)
	fmt.Fprintf(w, "<h1>/debug/requests</h1><p>%d requests seen, %d errored",
		snap.Total, snap.Errored)
	if snap.SlowThresholdNS > 0 {
		fmt.Fprintf(w, ", slow threshold %s", time.Duration(snap.SlowThresholdNS))
	}
	fmt.Fprint(w, "</p>\n")
	writeTraceTable(w, "Slowest", snap.Slowest)
	writeTraceTable(w, "Recent errors", snap.Errors)
	if snap.SlowThresholdNS > 0 {
		writeTraceTable(w, "Recent slow", snap.Slow)
	}
	writeTraceTable(w, "Recent", snap.Recent)
	fmt.Fprint(w, "</body></html>\n")
}

func writeTraceTable(w io.Writer, title string, traces []*RequestTrace) {
	fmt.Fprintf(w, "<h2>%s (%d)</h2>\n", html.EscapeString(title), len(traces))
	if len(traces) == 0 {
		fmt.Fprint(w, "<p>none</p>\n")
		return
	}
	fmt.Fprint(w, "<table><tr><th>id</th><th>op</th><th>outcome</th><th>duration</th><th>attrs</th><th>spans</th></tr>\n")
	for _, tr := range traces {
		outcome, class := "ok", ""
		if tr.Code != "" {
			outcome, class = tr.Code, ` class="err"`
		} else if tr.Slow {
			class = ` class="slow"`
		}
		fmt.Fprintf(w, "<tr%s><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%s</td><td>%s</td><td><pre>",
			class,
			html.EscapeString(tr.ID), html.EscapeString(tr.Op),
			html.EscapeString(outcome), time.Duration(tr.Dur),
			html.EscapeString(attrString(tr.Attrs)))
		writeSpanTree(w, tr.Spans, 0)
		fmt.Fprint(w, "</pre></td></tr>\n")
	}
	fmt.Fprint(w, "</table>\n")
}

// writeSpanTree renders the tree indented, one span per line.
func writeSpanTree(w io.Writer, spans []*ReqSpan, depth int) {
	for _, s := range spans {
		line := fmt.Sprintf("%s%-12s %10s", strings.Repeat("  ", depth),
			s.Name, time.Duration(s.Dur))
		if a := attrString(s.Attrs); a != "" {
			line += "  " + a
		}
		fmt.Fprintf(w, "%s\n", html.EscapeString(line))
		writeSpanTree(w, s.Children, depth+1)
	}
}

// attrString renders attrs as "k=v k2=v2" in caller order.
func attrString(attrs []Attr) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return strings.Join(parts, " ")
}
