package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("req_total", "")
	g := reg.Gauge("depth", "")
	h := reg.Histogram("lat_seconds", "", []float64{0.001, 0.01, 0.1})
	backing := int64(5)
	reg.CounterFunc("cb_total", "", func() int64 { return backing })

	c.Add(10)
	g.Set(3)
	h.Observe(0.0005)
	prev := reg.Snapshot()
	if prev.Counters["req_total"] != 10 || prev.Counters["cb_total"] != 5 {
		t.Fatalf("snapshot counters = %v", prev.Counters)
	}

	c.Add(20)
	backing = 11
	g.Set(7)
	h.Observe(0.05)
	h.Observe(0.05)
	cur := reg.Snapshot()

	// Pin the interval so rates are deterministic.
	prev.At = time.Unix(100, 0)
	cur.At = time.Unix(102, 0)
	p := cur.DeltaSince(prev)
	if p.Counters["req_total"] != 20 || p.Rates["req_total"] != 10 {
		t.Errorf("req_total delta/rate = %d/%g, want 20/10", p.Counters["req_total"], p.Rates["req_total"])
	}
	if p.Counters["cb_total"] != 6 {
		t.Errorf("cb_total delta = %d, want 6", p.Counters["cb_total"])
	}
	if p.Gauges["depth"] != 7 {
		t.Errorf("gauge = %g, want 7", p.Gauges["depth"])
	}
	hp := p.Hists["lat_seconds"]
	if hp.Count != 2 || hp.Rate != 1 {
		t.Errorf("hist count/rate = %d/%g, want 2/1", hp.Count, hp.Rate)
	}
	// Both interval samples landed in the 0.1 bucket: every interval
	// percentile reports that bound, unpolluted by the earlier fast sample.
	if hp.P50 != 0.1 || hp.P99 != 0.1 {
		t.Errorf("interval p50/p99 = %g/%g, want 0.1/0.1", hp.P50, hp.P99)
	}
	if hp.Mean != 0.05 {
		t.Errorf("interval mean = %g, want 0.05", hp.Mean)
	}
}

func TestHistDeltaReset(t *testing.T) {
	cur := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{3, 0}, Count: 3, Sum: 1.5}
	// A counter reset (cur < prev) must clamp to cur, not go negative.
	prev := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{9, 0}, Count: 9, Sum: 4}
	if d := histDelta(prev, cur); d.Count != 3 {
		t.Errorf("reset delta count = %d, want 3 (clamped to cur)", d.Count)
	}
	// Mismatched layouts count as no baseline.
	if d := histDelta(HistogramSnapshot{}, cur); d.Count != 3 {
		t.Errorf("no-baseline delta count = %d, want 3", d.Count)
	}
}

func TestSeriesRingSampleAndWrap(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "")
	ring := NewSeriesRing(reg, time.Second, 2)

	ring.Sample() // primes only
	if pts := ring.Points(0); len(pts) != 0 {
		t.Fatalf("points after prime = %d, want 0", len(pts))
	}
	c.Add(1)
	ring.Sample()
	c.Add(2)
	ring.Sample()
	c.Add(3)
	ring.Sample() // wraps: capacity 2 keeps the newest two
	pts := ring.Points(0)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Counters["x_total"] != 2 || pts[1].Counters["x_total"] != 3 {
		t.Errorf("deltas = %d,%d, want 2,3 (oldest first)",
			pts[0].Counters["x_total"], pts[1].Counters["x_total"])
	}
	if got := ring.Points(1); len(got) != 1 || got[0].Counters["x_total"] != 3 {
		t.Errorf("Points(1) = %v, want just the newest", got)
	}
}

func TestSeriesRingStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("y_total", "")
	ring := NewSeriesRing(reg, 10*time.Millisecond, 16)
	ring.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Inc()
		if len(ring.Points(0)) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ring.Stop()
	ring.Stop() // idempotent
	if len(ring.Points(0)) < 2 {
		t.Fatalf("sampler produced %d points, want >= 2", len(ring.Points(0)))
	}
}

// goldenRing injects fixed interval points, so the /debug/series payload
// is fully deterministic.
func goldenRing() *SeriesRing {
	ring := NewSeriesRing(NewRegistry(), time.Second, 8)
	ring.add(SeriesPoint{
		At: 1700000001000000000, Dur: int64(time.Second),
		Counters: map[string]int64{"pathsvc_admitted_total": 40, "pathsvc_shed_total": 0},
		Rates:    map[string]float64{"pathsvc_admitted_total": 40, "pathsvc_shed_total": 0},
		Gauges:   map[string]float64{"pathsvc_queue_depth": 2},
		Hists: map[string]HistPoint{
			"pathsvc_request_seconds": {Count: 40, Rate: 40, Mean: 0.002, P50: 0.0025, P95: 0.005, P99: 0.005},
		},
	})
	ring.add(SeriesPoint{
		At: 1700000002000000000, Dur: int64(time.Second),
		Counters: map[string]int64{"pathsvc_admitted_total": 120, "pathsvc_shed_total": 15},
		Rates:    map[string]float64{"pathsvc_admitted_total": 120, "pathsvc_shed_total": 15},
		Gauges:   map[string]float64{"pathsvc_queue_depth": 48},
		Hists: map[string]HistPoint{
			"pathsvc_request_seconds": {Count: 120, Rate: 120, Mean: 0.011, P50: 0.01, P95: 0.05, P99: 0.1},
		},
	})
	return ring
}

// TestSeriesJSONGolden pins the /debug/series JSON shape: cmd/hhctop and
// the CI smoke test parse this payload, so drift is an interface break.
func TestSeriesJSONGolden(t *testing.T) {
	srv := httptest.NewServer(goldenRing().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "series.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("/debug/series JSON drifted from golden file\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestSeriesTable(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/series?format=table", nil)
	goldenRing().Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"2 points, interval 1s",
		"counter rates (/s)",
		"pathsvc_admitted_total",
		"histogram interval p99",
		"summary over 2 points",
		"pathsvc_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("table lacks %q:\n%s", want, body)
		}
	}
	// The summary merges count-weighted: 160 samples over 2s = 80/s.
	if !strings.Contains(body, "count=160 rate=80/s") {
		t.Errorf("summary merge wrong:\n%s", body)
	}
}

func TestSeriesLastParam(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/series?last=1", nil)
	goldenRing().Handler().ServeHTTP(rec, req)
	var snap SeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Points) != 1 || snap.Points[0].At != 1700000002000000000 {
		t.Fatalf("last=1 returned %d points (want the newest only)", len(snap.Points))
	}
	if snap.Summary["pathsvc_request_seconds"].Count != 120 {
		t.Errorf("summary over last=1 count = %d, want 120",
			snap.Summary["pathsvc_request_seconds"].Count)
	}
}
