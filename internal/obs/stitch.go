package obs

import (
	"sort"
	"strconv"
)

// This file joins request trees recorded on different cluster peers into
// one cross-peer trace. The rid is the join key: a forwarded query runs
// under the same rid on both sides (the requester propagates it on the
// wire), the requester's tree shows an opaque "forward" span, and the
// owner's tree carries Origin = <requester peer>. Stitching grafts the
// owner's spans under the requester's forward span, so one tree shows the
// whole cross-peer request with per-peer phase attribution.
//
// Join rules:
//
//  1. A tree with Origin == "" is a requester-side root candidate; a tree
//     with Origin != "" is an owner-side fragment.
//  2. Roots and fragments pair by exact rid. Server-minted rids ("r1",
//     "r2", ...) are only unique per peer, so when several roots share a
//     rid a fragment joins the root whose peer key equals its Origin; a
//     lone root also takes origin-less matches (scrapers may key byPeer
//     with debug addresses while Origin carries the serve address). A
//     fragment whose rid matches no root is an orphan (its root fell out
//     of the requester's retention) and is dropped; a root with no
//     fragment was never forwarded (or the owner's half fell out) and is
//     also dropped — stitching reports only genuinely joined cross-peer
//     trees.
//  3. The owner's spans become children of the requester's top-level
//     "forward" span (the first one, matching the at-most-one-hop
//     guarantee). Trees are deep-copied first: recorder snapshots share
//     immutable trees, and stitching must not mutate them.
//  4. Remote queue/exec attribution comes from the owner's top-level
//     "queue" and "exec" spans.

// StitchedTrace is one cross-peer request tree after joining.
type StitchedTrace struct {
	// RID is the shared request id both halves carried.
	RID string `json:"rid"`
	// RequesterPeer and OwnerPeer name the two sides of the hop: the peer
	// whose client-facing tree rooted the stitch, and the peer that
	// answered the forwarded query (the owner tree's recording peer).
	RequesterPeer string `json:"requester_peer"`
	OwnerPeer     string `json:"owner_peer"`
	// Root is the requester's tree with the owner's spans grafted under
	// its forward span. A fresh deep copy, safe to mutate.
	Root *RequestTrace `json:"root"`
	// ForwardNS is the requester's forward-span duration; RemoteQueueNS and
	// RemoteExecNS are the owner's queue and exec span durations. The
	// difference ForwardNS - RemoteQueueNS - RemoteExecNS is wire + peer
	// overhead.
	ForwardNS     int64 `json:"forward_ns"`
	RemoteQueueNS int64 `json:"remote_queue_ns"`
	RemoteExecNS  int64 `json:"remote_exec_ns"`
}

// WireNS is the part of the forward span not accounted for by the owner's
// queue or exec phases (clamped at zero against clock skew).
func (s *StitchedTrace) WireNS() int64 {
	w := s.ForwardNS - s.RemoteQueueNS - s.RemoteExecNS
	if w < 0 {
		return 0
	}
	return w
}

// copyTrace deep-copies a request tree (attrs and spans included).
func copyTrace(tr *RequestTrace) *RequestTrace {
	out := *tr
	out.Attrs = append([]Attr(nil), tr.Attrs...)
	out.Spans = copySpans(tr.Spans)
	return &out
}

func copySpans(spans []*ReqSpan) []*ReqSpan {
	if spans == nil {
		return nil
	}
	out := make([]*ReqSpan, len(spans))
	for i, s := range spans {
		c := *s
		c.Attrs = append([]Attr(nil), s.Attrs...)
		c.Children = copySpans(s.Children)
		out[i] = &c
	}
	return out
}

// topSpan finds the first top-level span with the given name (nil if
// absent).
func topSpan(tr *RequestTrace, name string) *ReqSpan {
	for _, s := range tr.Spans {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StitchTraces joins per-peer trace sets into cross-peer trees. byPeer
// maps each peer's address (as the fleet knows it — the hhcd -self value)
// to the trees scraped from that peer's /debug/requests; every retention
// bucket may be passed, duplicates by (ID, Start) are ignored. The result
// is ordered by descending forward duration, then rid, so the most
// expensive hops list first and equal inputs stitch deterministically.
func StitchTraces(byPeer map[string][]*RequestTrace) []*StitchedTrace {
	type half struct {
		peer string
		tr   *RequestTrace
	}
	roots := map[string][]half{}
	frags := map[string][]half{}
	seen := map[string]map[string]bool{} // peer -> ID/Start dedup
	for peer, trees := range byPeer {
		dd := seen[peer]
		if dd == nil {
			dd = map[string]bool{}
			seen[peer] = dd
		}
		for _, tr := range trees {
			if tr == nil || tr.ID == "" {
				continue
			}
			key := tr.ID + "\x00" + strconv.FormatInt(tr.Start, 10)
			if dd[key] {
				continue
			}
			dd[key] = true
			if tr.Origin != "" {
				frags[tr.ID] = append(frags[tr.ID], half{peer, tr})
				continue
			}
			// A requester root must actually contain a forward span;
			// plain local trees share the rid namespace shape but never
			// pair with a fragment anyway — the span check just avoids
			// mis-rooting when rids collide across peers.
			if topSpan(tr, "forward") != nil {
				roots[tr.ID] = append(roots[tr.ID], half{peer, tr})
			}
		}
	}

	var out []*StitchedTrace
	for rid, rootList := range roots {
		halves := frags[rid]
		if len(halves) == 0 {
			continue
		}
		for _, root := range rootList {
			// Origin names the root's peer; a lone root also claims
			// origin-less matches (see join rule 2). Two same-rid roots
			// with no origin claim stay unjoined — a wrong graft is worse
			// than a dropped one.
			var mine []half
			for _, h := range halves {
				if h.tr.Origin == root.peer {
					mine = append(mine, h)
				}
			}
			if len(mine) == 0 && len(rootList) == 1 {
				mine = halves
			}
			if len(mine) == 0 {
				continue
			}
			sort.Slice(mine, func(i, j int) bool { return mine[i].peer < mine[j].peer })
			tree := copyTrace(root.tr)
			fwd := topSpan(tree, "forward")
			st := &StitchedTrace{
				RID:           rid,
				RequesterPeer: root.peer,
				Root:          tree,
				ForwardNS:     fwd.Dur,
			}
			for _, h := range mine {
				remote := copyTrace(h.tr)
				// The grafted subtree is the owner's whole request, rendered
				// as one child span so the peer boundary stays visible.
				sub := &ReqSpan{
					Name:  "remote",
					Start: remote.Start,
					Dur:   remote.Dur,
					Attrs: append([]Attr{{Key: "peer", Value: h.peer}}, remote.Attrs...),
				}
				sub.Children = remote.Spans
				fwd.Children = append(fwd.Children, sub)
				st.OwnerPeer = h.peer
				if q := topSpan(remote, "queue"); q != nil {
					st.RemoteQueueNS += q.Dur
				}
				if x := topSpan(remote, "exec"); x != nil {
					st.RemoteExecNS += x.Dur
				}
			}
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ForwardNS != out[j].ForwardNS {
			return out[i].ForwardNS > out[j].ForwardNS
		}
		return out[i].RID < out[j].RID
	})
	return out
}
