package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "A demo counter.").Add(3)
	mux := Mux(reg)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		return rec
	}

	rec := get("/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "demo_total 3") {
		t.Errorf("/metrics body:\n%s", body)
	}

	rec = get("/debug/vars")
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["demo_total"] != float64(3) {
		t.Errorf("/debug/vars demo_total = %v", vars["demo_total"])
	}

	if body := get("/debug/pprof/").Body.String(); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
}
