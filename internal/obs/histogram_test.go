package obs

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestHistogramLeSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(0.5) // le=1
	h.Observe(1)   // le=1: bounds are inclusive, Prometheus convention
	h.Observe(1.5) // le=2
	h.Observe(5)   // le=5
	h.Observe(7)   // overflow
	s := h.Snapshot()
	if want := []int64{2, 1, 1, 1}; !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 15 {
		t.Errorf("sum = %g, want 15", s.Sum)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("mean = %g, want 3", got)
	}
}

func TestHistogramSortsBounds(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 2})
	if want := []float64{1, 2, 5}; !reflect.DeepEqual(h.Snapshot().Bounds, want) {
		t.Errorf("bounds = %v, want %v", h.Snapshot().Bounds, want)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1.5)
	}
	h.Observe(100)
	qs := h.Snapshot().Percentiles(50, 95, 99, 100)
	// Estimates are bucket upper bounds: p50 -> le=1, p95/p99 -> le=2,
	// p100 -> the overflow bucket, reported as +Inf.
	if qs[0] != 1 || qs[1] != 2 || qs[2] != 2 {
		t.Errorf("p50/p95/p99 = %v, want [1 2 2 ...]", qs)
	}
	if !math.IsInf(qs[3], 1) {
		t.Errorf("p100 = %g, want +Inf (overflow bucket)", qs[3])
	}
}

func TestHistogramEmptyPercentiles(t *testing.T) {
	h := NewHistogram([]float64{1})
	if qs := h.Snapshot().Percentiles(50, 99); qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty histogram percentiles = %v, want zeros", qs)
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	h := NewHistogram([]float64{1})
	if got := h.Snapshot().Mean(); got != 0 {
		t.Errorf("empty histogram mean = %g, want 0 (not NaN)", got)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.001, 1})
	h.ObserveDuration(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Errorf("2ms landed in %v, want le=1 bucket", s.Counts)
	}
	if math.Abs(s.Sum-0.002) > 1e-12 {
		t.Errorf("sum = %g, want 0.002", s.Sum)
	}
}

func TestBucketGenerators(t *testing.T) {
	if got, want := ExponentialBuckets(1, 2, 4), []float64{1, 2, 4, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExponentialBuckets = %v, want %v", got, want)
	}
	if got, want := LinearBuckets(10, 5, 3), []float64{10, 15, 20}; !reflect.DeepEqual(got, want) {
		t.Errorf("LinearBuckets = %v, want %v", got, want)
	}
}
