package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestSeriesRingHammer drives a SeriesRing from every direction at once:
// the background sampler, manual Sample calls, Points/Snapshot readers,
// table renderers, and registry writers mutating the metrics being
// sampled. Its value is under `go test -race`: the ring's mu-guarded
// state (points, n, next, prev, primed) and the immutable capacity field
// must never race, including across Stop.
func TestSeriesRingHammer(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ring_hammer_total", "")
	h := reg.Histogram("ring_hammer_seconds", "", DefLatencyBuckets)

	const capacity = 16
	s := NewSeriesRing(reg, time.Millisecond, capacity)
	s.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%5) * 1e-4)
				switch i % 4 {
				case 0:
					s.Sample() // manual sampling races the background ticker
				case 1:
					s.Points(id + 1)
				case 2:
					snap := s.Snapshot(0)
					if snap.Capacity != capacity {
						t.Errorf("Snapshot capacity = %d, want %d", snap.Capacity, capacity)
						return
					}
				default:
					_ = s.WriteTable(io.Discard, 4)
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop()
	s.Stop() // idempotent

	pts := s.Points(0)
	if len(pts) > capacity {
		t.Fatalf("retained %d points, capacity %d", len(pts), capacity)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatalf("points out of order at %d: %d < %d", i, pts[i].At, pts[i-1].At)
		}
	}
	// After Stop the sampler goroutine is gone: the ring must be quiescent.
	before := s.Points(0)
	time.Sleep(5 * time.Millisecond)
	after := s.Points(0)
	if len(before) != len(after) {
		t.Fatalf("ring still sampling after Stop: %d -> %d points", len(before), len(after))
	}
}
