package obs

import (
	"io"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentRegistryHammer drives writers, late registrations, and
// snapshot renderers against one registry at once. Its value is under
// `go test -race`: any unsynchronized access between Observe/Inc/Set and
// WritePrometheus/WriteJSON shows up as a data race.
func TestConcurrentRegistryHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", DefLatencyBuckets)
	tr := NewTracer(64)
	tr.StreamTo(io.Discard) // async drain runs alongside the writers
	rt := NewRequestTracer(8)
	rt.Mirror(tr)
	lg := NewLogger(io.Discard, LevelInfo)

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 1e-5)
				// Late registration: new labeled series appear while
				// renderers iterate the family map.
				r.Counter(`hammer_labeled_total{w="`+strconv.Itoa(id)+`"}`, "").Inc()
				sp := tr.Start("hammer", String("w", strconv.Itoa(id)))
				sp.End()
				q := rt.StartRequest("hammer", "")
				q.StartSpan("phase").End()
				if i%5 == 0 {
					q.Finish("overload")
				} else {
					q.Finish("")
				}
				lg.Info("hammer", String("w", strconv.Itoa(id)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if got := c.Load(); got != workers*iters {
				t.Errorf("counter = %d, want %d", got, workers*iters)
			}
			if got := h.Count(); got != workers*iters {
				t.Errorf("histogram count = %d, want %d", got, workers*iters)
			}
			if got := tr.Total(); got < workers*iters {
				t.Errorf("tracer total = %d, want >= %d", got, workers*iters)
			}
			if total, _ := rt.Totals(); total != workers*iters {
				t.Errorf("recorder total = %d, want %d", total, workers*iters)
			}
			tr.StreamTo(nil)
			return
		default:
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Fatal(err)
			}
			if err := r.WriteJSON(io.Discard); err != nil {
				t.Fatal(err)
			}
			tr.Spans()
			rt.Snapshot()
		}
	}
}
