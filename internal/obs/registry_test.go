package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every series shape the
// exposition writer handles: plain and labeled counters, gauges, callback
// metrics, escaping in HELP and label values, and a histogram whose
// buckets must render cumulatively.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "Requests served.").Add(42)
	// Registered in non-sorted label spelling; exposition must canonicalize.
	r.Counter(`rpc_total{zone="west",method="get"}`, "RPCs by site.").Add(7)
	r.Counter(`rpc_total{method="put",zone="east"}`, "").Add(3)
	r.Gauge(`temperature{sensor="a\"b\\c"}`, "Escaping: quote and backslash.").Set(-1.5)
	r.CounterFunc("cache_hits_total", "Callback-backed counter.", func() int64 { return 11 })
	r.GaugeFunc("cache_entries", "Callback-backed gauge.", func() float64 { return 5 })
	h := r.Histogram("latency_seconds", `Help with a backslash \ in it.`, []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 7} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/obs` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice must be byte-identical: map iteration order must not
	// leak into the output.
	var again bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renderings of the same metric set differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if got := out["requests_total"]; got != float64(42) {
		t.Errorf("requests_total = %v, want 42", got)
	}
	if got := out["cache_hits_total"]; got != float64(11) {
		t.Errorf("cache_hits_total = %v, want 11", got)
	}
	hist, ok := out["latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("latency_seconds = %T, want object", out["latency_seconds"])
	}
	if hist["count"] != float64(4) {
		t.Errorf("histogram count = %v, want 4", hist["count"])
	}
	// p50 of {0.5,1,1.5,7} in buckets {1,2,5,+Inf}: rank 2 lands in the
	// le=1 bucket, p99 lands in the overflow bucket, clamped to max finite.
	if hist["p50"] != float64(1) {
		t.Errorf("histogram p50 = %v, want 1", hist["p50"])
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`x_total{b="2",a="1"}`, "")
	b := r.Counter(`x_total{a="1",b="2"}`, "")
	if a != b {
		t.Error("label spelling order created two series")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Error("canonicalized series do not share state")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestMalformedNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("malformed metric name did not panic")
		}
	}()
	r.Counter(`broken{a="1"`, "")
}

func TestSeriesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.Counter(`a_total{k="v"}`, "")
	want := []string{`a_total{k="v"}`, "b_total"}
	if got := r.SeriesNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SeriesNames() = %v, want %v", got, want)
	}
}

// TestNilMetricsSafe: disabled instrumentation holds nil metric pointers
// and calls them unconditionally; none of that may crash or misbehave.
func TestNilMetricsSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter loads nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Load() != 0 {
		t.Error("nil gauge loads nonzero")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(0)
	if h.Count() != 0 {
		t.Error("nil histogram counts")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Error("nil histogram snapshot not empty")
	}
}
