package obs

import (
	"runtime"
	"time"
)

// RegisterRuntime adds the process-level series every long-lived consumer
// of a registry should expose: uptime, goroutine count, heap usage, GC
// pause total, and a build_info marker carrying the toolchain identity as
// labels. Values are read lazily at snapshot time, so registration is
// free; ReadMemStats (microseconds) runs only when something scrapes.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since the observability layer was activated.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines",
		"Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_pause_nanoseconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.PauseTotalNs)
		})
	r.Gauge(`build_info{go_version="`+runtime.Version()+
		`",goarch="`+runtime.GOARCH+`",goos="`+runtime.GOOS+`"}`,
		"Toolchain identity (value is always 1; the labels carry the info).").Set(1)
}

// RegisterSelf exposes the observability layer's own health as obs_*
// series: spans lost to a saturated -trace drain queue (silent until now),
// spans recorded, and the flight recorder's totals and per-bucket
// retention. Either sink may be nil; only the present ones register.
func RegisterSelf(r *Registry, tr *Tracer, rt *RequestTracer) {
	if tr != nil {
		r.CounterFunc("obs_trace_spans_total",
			"Spans completed by the flat tracer (ring retention excluded).", tr.Total)
		r.CounterFunc("obs_trace_dropped_total",
			"Spans lost because the -trace stream sink could not keep up.", tr.Dropped)
	}
	if rt != nil {
		r.CounterFunc("obs_requests_recorded_total",
			"Request trees handed to the flight recorder.",
			func() int64 { total, _ := rt.Totals(); return total })
		r.CounterFunc("obs_requests_errored_total",
			"Recorded request trees that finished with a non-OK code.",
			func() int64 { _, errored := rt.Totals(); return errored })
		bucket := func(name string, pick func() int) {
			r.GaugeFunc(`obs_requests_retained{bucket="`+name+`"}`,
				"Request trees currently retained per flight-recorder bucket.",
				func() float64 { return float64(pick()) })
		}
		bucket("slowest", func() int { n, _, _, _ := rt.RetainedCounts(); return n })
		bucket("errors", func() int { _, n, _, _ := rt.RetainedCounts(); return n })
		bucket("slow", func() int { _, _, n, _ := rt.RetainedCounts(); return n })
		bucket("recent", func() int { _, _, _, n := rt.RetainedCounts(); return n })
	}
}
