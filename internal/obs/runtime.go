package obs

import (
	"runtime"
	"time"
)

// RegisterRuntime adds the process-level series every long-lived consumer
// of a registry should expose: uptime, goroutine count, heap usage, GC
// pause total, and a build_info marker carrying the toolchain identity as
// labels. Values are read lazily at snapshot time, so registration is
// free; ReadMemStats (microseconds) runs only when something scrapes.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since the observability layer was activated.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines",
		"Goroutines currently live.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_pause_nanoseconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.PauseTotalNs)
		})
	r.Gauge(`build_info{go_version="`+runtime.Version()+
		`",goarch="`+runtime.GOARCH+`",goos="`+runtime.GOOS+`"}`,
		"Toolchain identity (value is always 1; the labels carry the info).").Set(1)
}
