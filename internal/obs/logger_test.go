package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.Info("conn open", String("remote", "127.0.0.1:9"), String("quote", `a"b`))
	l.Error("boom")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]string
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	if rec["level"] != "info" || rec["msg"] != "conn open" ||
		rec["remote"] != "127.0.0.1:9" || rec["quote"] != `a"b` || rec["ts"] == "" {
		t.Errorf("record = %v", rec)
	}
	// Keys appear in a fixed order so the raw file is scannable.
	if !strings.HasPrefix(lines[0], `{"ts":`) {
		t.Errorf("line does not lead with ts: %s", lines[0])
	}
	if l.Lines() != 2 {
		t.Errorf("Lines = %d, want 2", l.Lines())
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("no")
	l.Info("no")
	l.Warn("yes")
	l.Error("yes")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("wrote %d lines, want 2:\n%s", got, buf.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with the configured minimum")
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel did not take effect")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Log(LevelError, "x", String("k", "v"))
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.Lines() != 0 {
		t.Error("nil logger counted lines")
	}
	l.SetLevel(LevelInfo)
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
