package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// mkTrace builds a completed trace directly (fixed fields, no clock), the
// way offline consumers replay dumps through Record.
func mkTrace(id string, dur int64, code string) *RequestTrace {
	return &RequestTrace{ID: id, Op: "paths", Start: 1000, Dur: dur, Code: code}
}

func TestRequestTracerSlowestHeap(t *testing.T) {
	rt := NewRequestTracer(3)
	for i, dur := range []int64{50, 10, 90, 30, 70, 20} {
		rt.Record(mkTrace("r"+strconv.Itoa(i), dur, ""))
	}
	snap := rt.Snapshot()
	if snap.Total != 6 || snap.Errored != 0 {
		t.Errorf("totals = %d/%d, want 6/0", snap.Total, snap.Errored)
	}
	var durs []int64
	for _, tr := range snap.Slowest {
		durs = append(durs, tr.Dur)
	}
	if len(durs) != 3 || durs[0] != 90 || durs[1] != 70 || durs[2] != 50 {
		t.Errorf("slowest durations = %v, want [90 70 50]", durs)
	}
	if len(snap.Recent) != 3 || snap.Recent[0].ID != "r5" {
		t.Errorf("recent = %d traces, first %q; want 3, newest r5",
			len(snap.Recent), snap.Recent[0].ID)
	}
}

func TestRequestTracerErrorRing(t *testing.T) {
	rt := NewRequestTracer(2)
	rt.Record(mkTrace("a", 1, "overload"))
	rt.Record(mkTrace("b", 1, ""))
	rt.Record(mkTrace("c", 1, "deadline"))
	rt.Record(mkTrace("d", 1, "internal"))
	snap := rt.Snapshot()
	if snap.Errored != 3 {
		t.Errorf("errored = %d, want 3", snap.Errored)
	}
	if len(snap.Errors) != 2 || snap.Errors[0].ID != "d" || snap.Errors[1].ID != "c" {
		t.Errorf("error ring = %v, want newest-first [d c]", ids(snap.Errors))
	}
}

func TestRequestTracerSlowThreshold(t *testing.T) {
	rt := NewRequestTracer(4)
	rt.SetSlowThreshold(time.Millisecond)
	req := rt.StartRequest("paths", "")
	time.Sleep(2 * time.Millisecond)
	req.Finish("")
	rt.Record(mkTrace("fast", 10, "")) // replayed trace, under threshold

	snap := rt.Snapshot()
	if len(snap.Slow) != 1 || !snap.Slow[0].Slow {
		t.Fatalf("slow bucket = %v, want exactly the over-threshold request", ids(snap.Slow))
	}
	if snap.SlowThresholdNS != int64(time.Millisecond) {
		t.Errorf("snapshot threshold = %d", snap.SlowThresholdNS)
	}
	if rt.SlowThreshold() != time.Millisecond {
		t.Errorf("SlowThreshold = %v", rt.SlowThreshold())
	}
}

func TestStartRequestAssignsIDs(t *testing.T) {
	rt := NewRequestTracer(4)
	q1 := rt.StartRequest("paths", "")
	q2 := rt.StartRequest("paths", "client-7")
	if q1.ID() != "r1" {
		t.Errorf("assigned id = %q, want r1", q1.ID())
	}
	if q2.ID() != "client-7" {
		t.Errorf("client id not passed through: %q", q2.ID())
	}
}

func TestRequestSpanTree(t *testing.T) {
	rt := NewRequestTracer(4)
	q := rt.StartRequest("paths", "t1", String("peer", "unit"))
	q.SetAttr("width", "4")
	admit := q.StartSpan("admission")
	admit.End()
	exec := q.StartSpan("exec")
	child := exec.StartChild("realize", String("pair", "0"))
	child.SetAttr("len", "5")
	child.End()
	exec.End()
	q.Finish("")

	snap := rt.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatal("request not recorded")
	}
	tr := snap.Recent[0]
	if tr.Op != "paths" || tr.Code != "" || tr.Dur <= 0 {
		t.Errorf("trace = %+v", tr)
	}
	if attrString(tr.Attrs) != "peer=unit width=4" {
		t.Errorf("request attrs = %q", attrString(tr.Attrs))
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "admission" || tr.Spans[1].Name != "exec" {
		t.Fatalf("top-level spans = %v", spanNames(tr.Spans))
	}
	kids := tr.Spans[1].Children
	if len(kids) != 1 || kids[0].Name != "realize" ||
		attrString(kids[0].Attrs) != "pair=0 len=5" {
		t.Errorf("child spans wrong: %+v", kids)
	}
}

func TestRequestTraceJSONRoundTrip(t *testing.T) {
	in := &RequestTrace{
		ID: "x", Op: "paths", Start: 5, Dur: 9, Code: "overload", Slow: true,
		Attrs: []Attr{{Key: "k", Value: "v"}},
		Spans: []*ReqSpan{{
			Name: "exec", Start: 6, Dur: 3,
			Children: []*ReqSpan{{Name: "realize", Start: 7, Dur: 1,
				Attrs: []Attr{{Key: "pair", Value: "0"}}}},
		}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RequestTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	back, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, back) {
		t.Errorf("round trip changed the encoding:\n%s\n%s", data, back)
	}
	if !strings.Contains(string(data), `"attrs":{"k":"v"}`) {
		t.Errorf("attrs did not flatten to an object: %s", data)
	}
}

func TestRequestTracerMirror(t *testing.T) {
	flat := NewTracer(16)
	rt := NewRequestTracer(4)
	rt.Mirror(flat)
	q := rt.StartRequest("paths", "m1")
	q.StartSpan("exec").StartChild("realize").End()
	q.Finish("overload")

	spans := flat.Spans()
	if len(spans) != 3 {
		t.Fatalf("mirrored %d flat spans, want 3 (request, exec, realize)", len(spans))
	}
	if spans[0].Name != "request" {
		t.Errorf("first mirrored span = %q, want request", spans[0].Name)
	}
	for _, s := range spans {
		if !hasAttr(s.Attrs, "rid", "m1") {
			t.Errorf("span %q lacks rid=m1: %v", s.Name, s.Attrs)
		}
	}
	if !hasAttr(spans[0].Attrs, "code", "overload") {
		t.Errorf("request span lacks code attr: %v", spans[0].Attrs)
	}
}

func TestNilRequestTracerSafe(t *testing.T) {
	var rt *RequestTracer
	rt.SetSlowThreshold(time.Second)
	if rt.SlowThreshold() != 0 {
		t.Error("nil recorder has a threshold")
	}
	rt.Mirror(nil)
	rt.Record(mkTrace("x", 1, ""))
	q := rt.StartRequest("paths", "id")
	if q != nil {
		t.Fatal("nil recorder returned a live Req")
	}
	if q.ID() != "" {
		t.Error("nil Req has an id")
	}
	q.SetAttr("k", "v")
	s := q.StartSpan("phase")
	if s != nil {
		t.Fatal("nil Req returned a live span")
	}
	s.SetAttr("k", "v")
	c := s.StartChild("sub")
	c.End()
	s.End()
	q.Finish("code")
	if snap := rt.Snapshot(); snap.Total != 0 || snap.Slowest != nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	if total, errored := rt.Totals(); total != 0 || errored != 0 {
		t.Error("nil Totals nonzero")
	}
}

func ids(traces []*RequestTrace) []string {
	out := make([]string, len(traces))
	for i, tr := range traces {
		out[i] = tr.ID
	}
	return out
}

func spanNames(spans []*ReqSpan) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func hasAttr(attrs []Attr, key, value string) bool {
	for _, a := range attrs {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}
