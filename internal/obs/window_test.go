package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// at builds a synthetic instant inside window epoch e (width w), offset
// by frac of the window.
func at(e int64, w time.Duration, frac float64) time.Time {
	return time.Unix(0, e*int64(w)+int64(frac*float64(w)))
}

func TestWindowCounterRotation(t *testing.T) {
	w := time.Second
	c := NewWindowCounter(w, 4)

	// Three windows of activity: 5, 3, 2 events.
	for i := 0; i < 5; i++ {
		c.addAt(at(100, w, 0.1), 1)
	}
	c.addAt(at(101, w, 0.5), 3)
	c.addAt(at(102, w, 0.9), 2)

	now := at(102, w, 0.95)
	if got := c.windowTotalAt(now, 1); got != 2 {
		t.Errorf("last 1 window = %d, want 2", got)
	}
	if got := c.windowTotalAt(now, 2); got != 5 {
		t.Errorf("last 2 windows = %d, want 5", got)
	}
	if got := c.windowTotalAt(now, 0); got != 10 {
		t.Errorf("all windows = %d, want 10", got)
	}
	if got := c.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	// Rate over the last 2 windows: 5 events / 2s.
	if got := c.rateAt(now, 2); got != 2.5 {
		t.Errorf("rate(2) = %g, want 2.5", got)
	}
}

// TestWindowCounterIdleGap pins the wrap-around semantics: after an idle
// gap longer than the whole ring, every slot is stale and reads report
// zero — old windows must not bleed into the new era, with or without a
// write landing first.
func TestWindowCounterIdleGap(t *testing.T) {
	w := time.Second
	c := NewWindowCounter(w, 4)
	c.addAt(at(100, w, 0.1), 7)
	c.addAt(at(103, w, 0.1), 9)

	// Reads far in the future see nothing, even though no write has
	// recycled the slots yet.
	later := at(500, w, 0.2)
	if got := c.windowTotalAt(later, 0); got != 0 {
		t.Errorf("after idle gap, windows = %d, want 0", got)
	}
	// A write in the new era recycles its slot in place; only it counts.
	c.addAt(later, 1)
	if got := c.windowTotalAt(at(500, w, 0.5), 0); got != 1 {
		t.Errorf("after recycle, windows = %d, want 1", got)
	}
	// The cumulative total survives every rotation.
	if got := c.Total(); got != 17 {
		t.Errorf("Total = %d, want 17", got)
	}
	// A partial gap: epochs 500 and 502 live in a 4-slot ring; a 2-window
	// read at 502 must exclude 500.
	c.addAt(at(502, w, 0.1), 3)
	if got := c.windowTotalAt(at(502, w, 0.5), 2); got != 3 {
		t.Errorf("2-window read across gap = %d, want 3", got)
	}
	if got := c.windowTotalAt(at(502, w, 0.5), 3); got != 4 {
		t.Errorf("3-window read across gap = %d, want 4", got)
	}
}

// refWindows is the reference implementation merge correctness is checked
// against: a plain map from epoch to per-bucket counts, no ring, no
// rotation.
type refWindows struct {
	bounds []float64
	byE    map[int64][]int64
	n      map[int64]int64
	sum    map[int64]float64
}

func newRef(bounds []float64) *refWindows {
	return &refWindows{bounds: bounds, byE: map[int64][]int64{},
		n: map[int64]int64{}, sum: map[int64]float64{}}
}

func (r *refWindows) observe(e int64, v float64) {
	c := r.byE[e]
	if c == nil {
		c = make([]int64, len(r.bounds)+1)
		r.byE[e] = c
	}
	i := 0
	for i < len(r.bounds) && v > r.bounds[i] {
		i++
	}
	c[i]++
	r.n[e]++
	r.sum[e] += v
}

func (r *refWindows) merged(cur int64, k int) HistogramSnapshot {
	out := HistogramSnapshot{Bounds: r.bounds, Counts: make([]int64, len(r.bounds)+1)}
	for e := cur - int64(k) + 1; e <= cur; e++ {
		if c, ok := r.byE[e]; ok {
			for j := range c {
				out.Counts[j] += c[j]
			}
			out.Count += r.n[e]
			out.Sum += r.sum[e]
		}
	}
	return out
}

// TestWindowHistogramMergeVsReference drives a randomized observation
// schedule (bursts, idle gaps, wrap-arounds) through WindowHistogram and
// the map-based reference, comparing the k-window merge after every step.
// The ring may only diverge for windows older than its capacity, so the
// comparison sticks to k <= ring size lookbacks that the ring can honor.
func TestWindowHistogramMergeVsReference(t *testing.T) {
	const slots = 8
	w := 100 * time.Millisecond
	bounds := []float64{0.001, 0.01, 0.1, 1}
	h := NewWindowHistogram(w, slots, bounds)
	ref := newRef(h.bounds)

	r := rand.New(rand.NewSource(42))
	epoch := int64(1000)
	for step := 0; step < 400; step++ {
		// Advance time: usually to the next window, sometimes a long gap.
		switch r.Intn(10) {
		case 0:
			epoch += int64(slots) + int64(r.Intn(20)) // wrap the whole ring
		case 1, 2:
			epoch += int64(r.Intn(slots)) // partial gap
		default:
			// stay, or move one on
			epoch += int64(r.Intn(2))
		}
		burst := r.Intn(16)
		for i := 0; i < burst; i++ {
			v := r.Float64() * 2
			h.observeAt(at(epoch, w, r.Float64()), v)
			ref.observe(epoch, v)
		}
		k := 1 + r.Intn(slots)
		// The ring slot for the current epoch may still hold an epoch
		// more than `slots` old if nothing recycled it; reads filter by
		// epoch, so the merge must still match the reference exactly.
		got := h.mergedAt(at(epoch, w, 0.99), k)
		want := ref.merged(epoch, k)
		// Sums accumulate in different orders, so allow float rounding slack.
		if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) {
			t.Fatalf("step %d k=%d: merged count/sum = %d/%g, want %d/%g",
				step, k, got.Count, got.Sum, want.Count, want.Sum)
		}
		for j := range want.Counts {
			if got.Counts[j] != want.Counts[j] {
				t.Fatalf("step %d k=%d bucket %d: %d, want %d",
					step, k, j, got.Counts[j], want.Counts[j])
			}
		}
	}
}

func TestWindowHistogramQuantile(t *testing.T) {
	w := time.Second
	h := NewWindowHistogram(w, 4, []float64{0.001, 0.01, 0.1, 1})
	// 90 fast samples then 10 slow ones, same window.
	for i := 0; i < 90; i++ {
		h.observeAt(at(200, w, 0.1), 0.0005)
	}
	for i := 0; i < 10; i++ {
		h.observeAt(at(200, w, 0.2), 0.05)
	}
	now := at(200, w, 0.9)
	m := h.mergedAt(now, 1)
	qs := m.Percentiles(50, 95, 99)
	if qs[0] != 0.001 {
		t.Errorf("p50 = %g, want 0.001 (first bound at or above the fast samples)", qs[0])
	}
	if qs[1] != 0.1 || qs[2] != 0.1 {
		t.Errorf("p95/p99 = %g/%g, want 0.1/0.1 (bound above the slow samples)", qs[1], qs[2])
	}
	// An empty merge reports quantile 0, not +Inf.
	empty := NewWindowHistogram(w, 4, []float64{1})
	if got := empty.Quantile(1, 99); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestWindowConcurrent hammers rotation from many writers while readers
// merge continuously; run under -race this pins the lock-free rotation
// protocol. Counts are checked against the cumulative total at the end
// (the ring holds everything when no window expires during the run).
func TestWindowConcurrent(t *testing.T) {
	// A width long enough that the whole test fits a few windows, and a
	// ring large enough that nothing rotates out.
	c := NewWindowCounter(time.Minute, 16)
	h := NewWindowHistogram(time.Minute, 16, DefLatencyBuckets)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.WindowTotal(0)
					_ = c.Rate(4)
					_ = h.Merged(0).Count
					_ = h.Quantile(4, 99)
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(r.Float64())
			}
		}(int64(wr))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.WindowTotal(0); got != writers*perWriter {
		t.Errorf("WindowTotal = %d, want %d", got, writers*perWriter)
	}
	if got := h.Merged(0).Count; got != writers*perWriter {
		t.Errorf("Merged count = %d, want %d", got, writers*perWriter)
	}
}

// TestWindowRecordZeroAlloc extends the zero-cost discipline to enabled
// windowed recording: the steady-state record path (no rotation) must not
// allocate, or the v2 serve budget would silently grow.
func TestWindowRecordZeroAlloc(t *testing.T) {
	c := NewWindowCounter(time.Minute, 4)
	h := NewWindowHistogram(time.Minute, 4, DefLatencyBuckets)
	c.Inc() // rotate once so the steady state is measured
	h.Observe(0.001)
	if got := testing.AllocsPerRun(200, func() {
		c.Inc()
		h.Observe(0.001)
	}); got != 0 {
		t.Errorf("enabled window recording allocates %.1f allocs/op, want 0", got)
	}
}
