package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds with `le` (less-or-equal) semantics plus an implicit +Inf
// overflow bucket, matching Prometheus histogram conventions. Observe is
// lock-free; Snapshot may run concurrently with writers and sees a
// consistent-enough view (per-bucket counts are individually atomic).
// A nil Histogram ignores observations.
type Histogram struct {
	bounds []float64      // ascending upper bounds, excluding +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    Gauge // atomic float64 accumulator
}

// DefLatencyBuckets covers construction latencies from 1µs to 10s, the
// range of everything this repository builds (a container takes tens of
// microseconds; a full simulation can take seconds).
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bucket bounds starting at start, each
// factor times the previous (start > 0, factor > 1, n >= 1).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds starting at start, spaced width
// apart.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// NewHistogram builds a standalone histogram (registry-free; the registry
// calls this internally). Bounds are copied and sorted ascending.
func NewHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time reading of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // bucket upper bounds (ascending, no +Inf)
	Counts []int64   // per-bucket counts; len(Bounds)+1, last = overflow
	Count  int64
	Sum    float64
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observation, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Percentiles estimates the requested percentiles (0..100) from the bucket
// counts via stats.WeightedPercentiles: each bucket contributes its upper
// bound weighted by its count, so estimates are conservative (an estimate
// is the smallest bucket bound at or above the true value). Samples in the
// overflow bucket report +Inf.
func (s HistogramSnapshot) Percentiles(ps ...float64) []float64 {
	values := append(append([]float64(nil), s.Bounds...), math.Inf(1))
	return stats.WeightedPercentiles(values, s.Counts, ps...)
}
