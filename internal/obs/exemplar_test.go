package obs

import (
	"testing"
	"time"
)

func TestWindowHistogramExemplars(t *testing.T) {
	h := NewWindowHistogram(time.Second, 4, []float64{0.01, 0.1})
	h.EnableExemplars(2)
	h.ObserveDurationEx(5*time.Millisecond, "r1")  // le=0.01
	h.ObserveDurationEx(50*time.Millisecond, "r2") // le=0.1
	h.ObserveDurationEx(60*time.Millisecond, "r3") // le=0.1
	h.ObserveDurationEx(70*time.Millisecond, "r4") // le=0.1: evicts r2
	h.ObserveDurationEx(2*time.Second, "r5")       // +Inf
	h.ObserveDurationEx(80*time.Millisecond, "")   // untraced: counted, no exemplar

	ex := h.Exemplars()
	byLE := map[string][]string{}
	for _, e := range ex {
		byLE[e.LE] = append(byLE[e.LE], e.RID)
	}
	if got := byLE["0.01"]; len(got) != 1 || got[0] != "r1" {
		t.Errorf("le=0.01 exemplars = %v, want [r1]", got)
	}
	if got := byLE["0.1"]; len(got) != 2 || got[0] != "r4" || got[1] != "r3" {
		t.Errorf("le=0.1 exemplars = %v, want [r4 r3] (newest first, r2 evicted)", got)
	}
	if got := byLE["+Inf"]; len(got) != 1 || got[0] != "r5" {
		t.Errorf("+Inf exemplars = %v, want [r5]", got)
	}
	// The counting path still saw every observation, rid or not.
	if m := h.Merged(0); m.Count != 6 {
		t.Errorf("merged count = %d, want 6", m.Count)
	}
}

func TestWindowHistogramExemplarsDisabled(t *testing.T) {
	h := NewWindowHistogram(time.Second, 4, []float64{0.01})
	h.ObserveDurationEx(5*time.Millisecond, "r1")
	if ex := h.Exemplars(); ex != nil {
		t.Errorf("exemplars without EnableExemplars = %v, want nil", ex)
	}
	var nilH *WindowHistogram
	nilH.EnableExemplars(2)
	nilH.ObserveDurationEx(time.Millisecond, "r")
	if ex := nilH.Exemplars(); ex != nil {
		t.Errorf("nil histogram exemplars = %v, want nil", ex)
	}
}
