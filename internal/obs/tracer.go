package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"-"`
	Value string `json:"-"`
}

// String builds an Attr (named after the OpenTelemetry helper it mirrors).
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one completed named phase.
type Span struct {
	Name  string `json:"name"`
	Start int64  `json:"start_ns"` // wall-clock unix nanoseconds
	Dur   int64  `json:"dur_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// MarshalJSON renders Attrs as a flat object, so JSONL lines read
// {"name":"realize","start_ns":...,"dur_ns":...,"attrs":{"u":"0x2a:3"}}.
func (s Span) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name  string            `json:"name"`
		Start int64             `json:"start_ns"`
		Dur   int64             `json:"dur_ns"`
		Attrs map[string]string `json:"attrs,omitempty"`
	}
	a := alias{Name: s.Name, Start: s.Start, Dur: s.Dur}
	if len(s.Attrs) > 0 {
		a.Attrs = make(map[string]string, len(s.Attrs))
		for _, at := range s.Attrs {
			a.Attrs[at.Key] = at.Value
		}
	}
	return json.Marshal(a)
}

// Tracer records named phases into a bounded in-memory ring and, when a
// stream writer is attached, emits each completed span as one JSON line.
// All methods are safe for concurrent use and safe on a nil receiver, so
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	mu     sync.Mutex
	ring   []Span
	next   int // ring insertion cursor
	total  int64
	stream *json.Encoder
	flush  func() error
}

// NewTracer creates a tracer whose ring keeps the last capacity completed
// spans (capacity <= 0 selects 4096).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// StreamTo attaches a JSONL sink: every span completed from now on is
// written as one JSON object per line. The tracer serializes writes; w
// need not be concurrency-safe. Pass nil to detach.
func (t *Tracer) StreamTo(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.stream = nil
		t.flush = nil
		return
	}
	t.stream = json.NewEncoder(w)
	if f, ok := w.(interface{ Flush() error }); ok {
		t.flush = f.Flush
	} else {
		t.flush = nil
	}
}

// Active is an in-flight span returned by Start. End completes it.
// A nil Active (from a nil Tracer) ignores all calls.
type Active struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Start opens a span. The returned Active must be completed with End;
// attrs set at Start are recorded on the completed span.
func (t *Tracer) Start(name string, attrs ...Attr) *Active {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Active{t: t, start: now, span: Span{Name: name, Start: now.UnixNano(), Attrs: attrs}}
}

// SetAttr adds an annotation to an in-flight span.
func (a *Active) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
}

// End completes the span, recording it in the ring and streaming it if a
// sink is attached.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.span.Dur = int64(time.Since(a.start))
	a.t.record(a.span)
}

// record appends a completed span.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % cap(t.ring)
	}
	if t.stream != nil {
		// A broken sink must not take down the instrumented program; the
		// ring still retains the span.
		_ = t.stream.Encode(s)
	}
	t.mu.Unlock()
}

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns the number of spans ever completed (including those the
// ring has dropped).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSONL dumps the retained spans to w, one JSON object per line —
// for end-of-run dumps when no live stream was attached.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes the attached stream sink, if it supports flushing.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	f := t.flush
	t.mu.Unlock()
	if f != nil {
		return f()
	}
	return nil
}
