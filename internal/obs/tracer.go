package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"-"`
	Value string `json:"-"`
}

// String builds an Attr (named after the OpenTelemetry helper it mirrors).
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one completed named phase.
type Span struct {
	Name  string `json:"name"`
	Start int64  `json:"start_ns"` // wall-clock unix nanoseconds
	Dur   int64  `json:"dur_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// MarshalJSON renders Attrs as a flat object, so JSONL lines read
// {"name":"realize","start_ns":...,"dur_ns":...,"attrs":{"u":"0x2a:3"}}.
func (s Span) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name  string            `json:"name"`
		Start int64             `json:"start_ns"`
		Dur   int64             `json:"dur_ns"`
		Attrs map[string]string `json:"attrs,omitempty"`
	}
	a := alias{Name: s.Name, Start: s.Start, Dur: s.Dur}
	if len(s.Attrs) > 0 {
		a.Attrs = make(map[string]string, len(s.Attrs))
		for _, at := range s.Attrs {
			a.Attrs[at.Key] = at.Value
		}
	}
	return json.Marshal(a)
}

// UnmarshalJSON parses the wire shape back; attr order is not preserved
// (map iteration), so consumers must not rely on it.
func (s *Span) UnmarshalJSON(data []byte) error {
	var a struct {
		Name  string            `json:"name"`
		Start int64             `json:"start_ns"`
		Dur   int64             `json:"dur_ns"`
		Attrs map[string]string `json:"attrs,omitempty"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*s = Span{Name: a.Name, Start: a.Start, Dur: a.Dur, Attrs: mapAttrs(a.Attrs)}
	return nil
}

// streamQueueDepth bounds the spans parked between a hot path completing
// them and the drain goroutine encoding them. A sink slower than the span
// rate overflows the queue and loses spans (counted by Dropped) instead of
// exerting backpressure on instrumented code.
const streamQueueDepth = 1024

// streamer is one attached JSONL sink: a bounded span queue plus the
// goroutine that drains it. Encoding happens only on the drain goroutine,
// never under the ring lock, so a slow or blocked writer cannot stall
// Start/End on any other goroutine.
type streamer struct {
	ch   chan Span
	done chan struct{}
	// wmu serializes sink access between the drain goroutine and Flush;
	// no hot path ever takes it.
	wmu   sync.Mutex
	enc   *json.Encoder // guarded by wmu
	flush func() error  // guarded by wmu
}

func (st *streamer) drain() {
	defer close(st.done)
	for s := range st.ch {
		st.wmu.Lock()
		// A broken sink must not take down the instrumented program; the
		// ring still retains the span.
		_ = st.enc.Encode(s)
		st.wmu.Unlock()
	}
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if st.flush != nil {
		_ = st.flush()
	}
}

// Tracer records named phases into a bounded in-memory ring and, when a
// stream writer is attached, emits each completed span as one JSON line.
// All methods are safe for concurrent use and safe on a nil receiver, so
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span // guarded by mu
	next  int    // ring insertion cursor; guarded by mu
	total int64  // guarded by mu

	// smu guards attach/detach of the stream; record holds it only for a
	// non-blocking channel send, never for encoding.
	smu     sync.Mutex
	out     *streamer // guarded by smu
	dropped int64     // spans lost to a full stream queue (guarded by smu)
}

// NewTracer creates a tracer whose ring keeps the last capacity completed
// spans (capacity <= 0 selects 4096).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// StreamTo attaches a JSONL sink: every span completed from now on is
// written as one JSON object per line by a dedicated drain goroutine, so w
// need not be concurrency-safe and a blocked w never stalls span recording
// (the bounded queue drops spans instead; see Dropped). Pass nil to detach:
// the call blocks until every queued span is written and the sink flushed.
func (t *Tracer) StreamTo(w io.Writer) {
	if t == nil {
		return
	}
	t.smu.Lock()
	old := t.out
	t.out = nil
	t.smu.Unlock()
	if old != nil {
		close(old.ch)
		<-old.done
	}
	if w == nil {
		return
	}
	st := &streamer{
		ch:   make(chan Span, streamQueueDepth),
		done: make(chan struct{}),
		enc:  json.NewEncoder(w),
	}
	if f, ok := w.(interface{ Flush() error }); ok {
		st.flush = f.Flush
	}
	go st.drain()
	t.smu.Lock()
	t.out = st
	t.smu.Unlock()
}

// Dropped reports how many spans were lost because the stream sink could
// not keep up with the span rate. The ring is unaffected by drops.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.smu.Lock()
	defer t.smu.Unlock()
	return t.dropped
}

// Active is an in-flight span returned by Start. End completes it.
// A nil Active (from a nil Tracer) ignores all calls.
type Active struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Start opens a span. The returned Active must be completed with End;
// attrs set at Start are recorded on the completed span.
func (t *Tracer) Start(name string, attrs ...Attr) *Active {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Active{t: t, start: now, span: Span{Name: name, Start: now.UnixNano(), Attrs: attrs}}
}

// SetAttr adds an annotation to an in-flight span.
func (a *Active) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
}

// End completes the span, recording it in the ring and streaming it if a
// sink is attached.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.span.Dur = int64(time.Since(a.start))
	a.t.record(a.span)
}

// record appends a completed span. The ring update and the stream hand-off
// are both non-blocking: encoding happens on the streamer's drain
// goroutine, so a stalled -trace sink cannot stall any instrumented path.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.mu.Unlock()
	t.smu.Lock()
	if t.out != nil {
		select {
		case t.out.ch <- s:
		default:
			t.dropped++
		}
	}
	t.smu.Unlock()
}

// Spans returns the retained spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns the number of spans ever completed (including those the
// ring has dropped).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSONL dumps the retained spans to w, one JSON object per line —
// for end-of-run dumps when no live stream was attached.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Flush waits (briefly, best-effort) for the stream queue to drain and
// flushes the sink if it supports flushing. For a guaranteed full drain,
// detach with StreamTo(nil) instead — that call blocks until every queued
// span is written.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.smu.Lock()
	st := t.out
	t.smu.Unlock()
	if st == nil {
		return nil
	}
	for i := 0; i < 100 && len(st.ch) > 0; i++ {
		time.Sleep(time.Millisecond)
	}
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if st.flush != nil {
		return st.flush()
	}
	return nil
}
