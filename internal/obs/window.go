package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// This file is the windowed half of the metrics layer: rotating-window
// counters and histograms that answer "what happened over the last X
// seconds" instead of "what happened since start". Both types keep N
// fixed slots of width W; a slot belongs to one absolute window epoch
// (unix-nanoseconds / W) and is recycled in place when its epoch falls
// out of the ring, so an idle gap longer than N*W simply leaves every
// slot stale and the next read reports zero — no catch-up work, no
// unbounded memory.
//
// Rotation is lock-cheap: recording is a couple of atomic loads and adds
// in the steady state, and the slot hand-over at a window boundary is a
// single CAS race that exactly one writer wins (the winner clears the
// slot before publishing its new epoch, so later writers in the same
// window never see a half-cleared slot). Readers take no lock at all;
// like Histogram.Snapshot they see a consistent-enough view — per-field
// atomicity, not a global cut — which is the right trade for telemetry.

// Window geometry defaults: 60 one-second windows, so rates and
// quantiles can be merged over the last minute at 1s resolution.
const (
	DefaultWindowWidth = time.Second
	DefaultWindowCount = 60
)

// winEpoch maps a wall-clock instant onto an absolute window index.
func winEpoch(now time.Time, width int64) int64 { return now.UnixNano() / width }

// winSlot is one rotating counter cell. epoch is the absolute window the
// cell currently counts for; claim is the rotation latch (CAS winner
// resets, then publishes epoch).
type winSlot struct {
	claim atomic.Int64
	epoch atomic.Int64
	n     atomic.Int64
}

// rotate claims the slot for epoch e if it is stale, clearing it before
// publication. Returns once the slot's published epoch is e (or after a
// bounded wait if a concurrent winner is mid-reset — the pending add then
// lands in the freshly cleared slot, which is the desired outcome).
func (s *winSlot) rotate(e int64, clear func()) {
	for {
		cur := s.claim.Load()
		if cur >= e {
			break
		}
		if s.claim.CompareAndSwap(cur, e) {
			clear()
			s.epoch.Store(e)
			return
		}
	}
	// Another writer owns the rotation; wait briefly for publication so
	// this record lands after the clear, not before it.
	for i := 0; i < 1024 && s.epoch.Load() < e; i++ {
	}
}

// WindowCounter counts events into rotating time windows. The zero value
// is not usable; build with NewWindowCounter. A nil WindowCounter ignores
// writes and reads as zero, so hot paths can hold one unconditionally.
type WindowCounter struct {
	width int64 // window width in nanoseconds
	slots []winSlot
	total atomic.Int64 // cumulative, rotation-independent
}

// NewWindowCounter builds a counter with n windows of the given width
// (n <= 0 or width <= 0 select the defaults).
func NewWindowCounter(width time.Duration, n int) *WindowCounter {
	if width <= 0 {
		width = DefaultWindowWidth
	}
	if n <= 0 {
		n = DefaultWindowCount
	}
	return &WindowCounter{width: int64(width), slots: make([]winSlot, n)}
}

// Inc adds one to the current window.
func (c *WindowCounter) Inc() { c.Add(1) }

// Add adds n to the current window.
func (c *WindowCounter) Add(n int64) {
	if c != nil {
		c.addAt(time.Now(), n)
	}
}

// addAt is the injectable-clock core of Add (tests drive rotation with
// synthetic times; Add always passes time.Now).
func (c *WindowCounter) addAt(now time.Time, n int64) {
	e := winEpoch(now, c.width)
	s := &c.slots[int(e%int64(len(c.slots)))]
	if s.epoch.Load() != e {
		s.rotate(e, func() { s.n.Store(0) })
	}
	s.n.Add(n)
	c.total.Add(n)
}

// Total returns the cumulative count since creation (never rotated away).
func (c *WindowCounter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total.Load()
}

// WindowTotal sums the last k complete-or-current windows. k <= 0 or
// k > len(slots) reads every live window. Slots whose epoch has fallen
// out of the requested range (idle gaps, wrap-around) contribute zero.
func (c *WindowCounter) WindowTotal(k int) int64 {
	if c == nil {
		return 0
	}
	return c.windowTotalAt(time.Now(), k)
}

func (c *WindowCounter) windowTotalAt(now time.Time, k int) int64 {
	if k <= 0 || k > len(c.slots) {
		k = len(c.slots)
	}
	cur := winEpoch(now, c.width)
	var sum int64
	for i := range c.slots {
		s := &c.slots[i]
		if e := s.epoch.Load(); e > cur-int64(k) && e <= cur {
			sum += s.n.Load()
		}
	}
	return sum
}

// Rate returns events per second over the last k windows.
func (c *WindowCounter) Rate(k int) float64 {
	if c == nil {
		return 0
	}
	return c.rateAt(time.Now(), k)
}

func (c *WindowCounter) rateAt(now time.Time, k int) float64 {
	if k <= 0 || k > len(c.slots) {
		k = len(c.slots)
	}
	span := time.Duration(int64(k) * c.width).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(c.windowTotalAt(now, k)) / span
}

// winHistSlot is one rotating histogram cell: a full bucket array plus
// count and sum, all owned by one window epoch at a time.
type winHistSlot struct {
	claim  atomic.Int64
	epoch  atomic.Int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	n      atomic.Int64
	sum    Gauge
}

// WindowHistogram buckets observations into rotating time windows, so
// percentiles can be computed over the last X windows instead of since
// process start. Bounds follow Histogram's `le` convention. The zero
// value is not usable; build with NewWindowHistogram. A nil
// WindowHistogram ignores observations and reads as empty.
type WindowHistogram struct {
	width  int64
	bounds []float64
	slots  []winHistSlot

	// ex retains per-bucket exemplar rids (see exemplar.go). Set once at
	// wiring time via EnableExemplars, before observations start; nil when
	// exemplars are off.
	ex *exemplarStore
}

// NewWindowHistogram builds a histogram with n windows of the given width
// over the given bucket bounds (copied, sorted ascending; n <= 0 or
// width <= 0 select the defaults).
func NewWindowHistogram(width time.Duration, n int, buckets []float64) *WindowHistogram {
	if width <= 0 {
		width = DefaultWindowWidth
	}
	if n <= 0 {
		n = DefaultWindowCount
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &WindowHistogram{width: int64(width), bounds: bounds, slots: make([]winHistSlot, n)}
	for i := range h.slots {
		h.slots[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// Observe records one sample into the current window.
func (h *WindowHistogram) Observe(v float64) {
	if h != nil {
		h.observeAt(time.Now(), v)
	}
}

// ObserveDuration records a duration in seconds.
func (h *WindowHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

func (h *WindowHistogram) observeAt(now time.Time, v float64) {
	e := winEpoch(now, h.width)
	s := &h.slots[int(e%int64(len(h.slots)))]
	if s.epoch.Load() != e {
		s.rotate(e, func() {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.n.Store(0)
			s.sum.Set(0)
		})
	}
	s.counts[bucketIndex(h.bounds, v)].Add(1)
	s.n.Add(1)
	s.sum.Add(v)
}

// bucketIndex maps a sample onto its bucket under the inclusive-upper-
// bound `le` convention; len(bounds) is the overflow bucket. Shared by
// the counting path and exemplar retention so the two never disagree
// about where a sample landed.
func bucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// rotate claims slot s for epoch e; see winSlot.rotate for the protocol.
func (s *winHistSlot) rotate(e int64, clear func()) {
	for {
		cur := s.claim.Load()
		if cur >= e {
			break
		}
		if s.claim.CompareAndSwap(cur, e) {
			clear()
			s.epoch.Store(e)
			return
		}
	}
	for i := 0; i < 1024 && s.epoch.Load() < e; i++ {
	}
}

// Merged folds the last k windows into one HistogramSnapshot, from which
// Percentiles gives p50/p95/p99-over-last-X. k <= 0 or k > len(slots)
// merges every live window; stale slots (idle gaps) contribute nothing.
func (h *WindowHistogram) Merged(k int) HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.mergedAt(time.Now(), k)
}

func (h *WindowHistogram) mergedAt(now time.Time, k int) HistogramSnapshot {
	if k <= 0 || k > len(h.slots) {
		k = len(h.slots)
	}
	cur := winEpoch(now, h.width)
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.slots {
		s := &h.slots[i]
		if e := s.epoch.Load(); e <= cur-int64(k) || e > cur {
			continue
		}
		for j := range s.counts {
			out.Counts[j] += s.counts[j].Load()
		}
		out.Count += s.n.Load()
		out.Sum += s.sum.Load()
	}
	return out
}

// Quantile estimates one percentile (0..100) over the last k windows.
// Returns 0 for an empty merge, so window gauges read as zero at rest.
func (h *WindowHistogram) Quantile(k int, p float64) float64 {
	if h == nil {
		return 0
	}
	m := h.Merged(k)
	if m.Count == 0 {
		return 0
	}
	return jsonFloat(m.Percentiles(p)[0])
}
