// Package obs is the repository's dependency-free observability layer: a
// concurrent registry of named counters, gauges, and fixed-bucket
// histograms, plus a bounded span tracer for construction-phase timing.
//
// The registry renders two wire formats from one metric set: Prometheus
// text exposition (for scraping a live binary) and an expvar-style JSON
// snapshot (for /debug/vars and file dumps). Metric names may carry a
// static label set in the usual brace syntax — "core_phase_seconds{phase=
// \"realize\"}" — and every series with the same base name forms one
// family sharing a TYPE and HELP line.
//
// All metric operations (Inc, Add, Set, Observe) are atomic, safe for
// concurrent use, and nil-receiver safe: instrumented code may hold nil
// metric pointers when observability is disabled and call them
// unconditionally, so hot paths pay a single nil check instead of
// branching per site.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter.
// A nil Counter ignores writes and loads as zero.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for a well-formed counter).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways.
// A nil Gauge ignores writes and loads as zero.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; safe under concurrent Add/Set).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. Exactly one of the value
// fields is set; fn-backed series are read at snapshot time.
type series struct {
	labels    string // canonical rendering, "" or `k="v",k2="v2"`
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	counterFn func() int64
	gaugeFn   func() float64
}

// family groups all series sharing a base metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // keyed by canonical label string
	order  []string           // label strings in first-registration order
}

// Registry is a concurrent collection of metric families. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// splitName separates "base{k=\"v\"}" into the base name and a canonical
// label string. Labels are sorted by key so spelling order never creates
// duplicate series.
func splitName(name string) (base, labels string, err error) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, "", nil
	}
	if !strings.HasSuffix(name, "}") {
		return "", "", fmt.Errorf("obs: malformed metric name %q", name)
	}
	base = name[:i]
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return base, "", nil
	}
	pairs, err := parseLabels(inner)
	if err != nil {
		return "", "", fmt.Errorf("obs: metric %q: %w", name, err)
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	parts := make([]string, len(pairs))
	for j, p := range pairs {
		parts[j] = p[0] + `="` + escapeLabel(p[1]) + `"`
	}
	return base, strings.Join(parts, ","), nil
}

// parseLabels parses `k="v",k2="v2"`. Values may contain escaped quotes.
func parseLabels(s string) ([][2]string, error) {
	var pairs [][2]string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("label list %q: missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %q: value must be quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("label %q: unterminated value", key)
		}
		pairs = append(pairs, [2]string{key, val.String()})
		rest = rest[i+1:]
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(rest)
	}
	return pairs, nil
}

// escapeLabel escapes a label value for text exposition.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string for text exposition.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// getOrCreate returns the series for name, creating family and series as
// needed. build constructs the value on first registration. A name
// registered twice with a different kind panics: that is a programming
// error, the same class as a duplicate expvar name.
func (r *Registry) getOrCreate(name, help string, k kind, build func() *series) *series {
	base, labels, err := splitName(name)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[base]
	if !ok {
		f = &family{name: base, help: help, kind: k, series: make(map[string]*series)}
		r.families[base] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", base, f.kind, k))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.series[labels]
	if !ok {
		s = build()
		s.labels = labels
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter returns the counter named name (optionally labeled), creating it
// on first use. help is recorded on first registration.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.getOrCreate(name, help, kindCounter, func() *series {
		return &series{counter: &Counter{}}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("obs: counter %q already registered as a callback", name))
	}
	return s.counter
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q already registered as a callback", name))
	}
	return s.gauge
}

// Histogram returns the histogram named name with the given bucket upper
// bounds (ascending; an implicit +Inf overflow bucket is appended),
// creating it on first use. Later calls ignore buckets and return the
// existing histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, func() *series {
		return &series{histogram: NewHistogram(buckets)}
	})
	return s.histogram
}

// CounterFunc registers a callback-backed counter: fn is read at snapshot
// time. Use it to re-export counters owned by another layer (the container
// cache) without double bookkeeping. fn must not touch the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.getOrCreate(name, help, kindCounter, func() *series {
		return &series{counterFn: fn}
	})
}

// GaugeFunc registers a callback-backed gauge (e.g. a cache's live size).
// fn must not touch the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.getOrCreate(name, help, kindGauge, func() *series {
		return &series{gaugeFn: fn}
	})
}

// sortedFamilies snapshots the family list in name order.
// Caller must hold at least the read lock.
//
//hhc:holds mu
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedLabels returns a family's label strings in sorted order, so
// exposition is stable regardless of registration order.
func (f *family) sortedLabels() []string {
	ls := append([]string(nil), f.order...)
	sort.Strings(ls)
	return ls
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
