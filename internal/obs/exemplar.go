package obs

import (
	"strconv"
	"sync"
	"time"
)

// This file attaches exemplars to window histograms: a short ring of
// recent request ids per bucket, so a fat p99 bucket on /debug/series
// links directly to retrievable traces in /debug/requests instead of
// being an anonymous count. Exemplars are opt-in (EnableExemplars) and
// only recorded for observations that carry a rid — the untraced hot
// path pays nothing.

// DefaultExemplarK is the per-bucket exemplar retention.
const DefaultExemplarK = 4

// Exemplar links one histogram bucket to a recent traced request. LE is
// the bucket's upper bound in the Prometheus `le` convention ("+Inf" for
// the overflow bucket).
type Exemplar struct {
	LE    string  `json:"le"`
	Value float64 `json:"value"`
	RID   string  `json:"rid"`
	AtNS  int64   `json:"at_ns"`
}

// exemplarCell is one retained (rid, value) sample.
type exemplarCell struct {
	rid  string
	v    float64
	atNS int64
}

// exemplarStore keeps K recent exemplars per bucket under one mutex. The
// critical section is a couple of stores, so contention stays negligible
// next to the request work that produced the sample; only rid-carrying
// observations ever take the lock.
type exemplarStore struct {
	mu    sync.Mutex
	k     int
	rings [][]exemplarCell // per bucket: ring of up to k cells; guarded by mu
	next  []int            // per bucket ring cursor; guarded by mu
	n     []int            // per bucket live count; guarded by mu
}

// EnableExemplars turns on per-bucket exemplar retention (k <= 0 selects
// DefaultExemplarK). Call once at wiring time, before observations start;
// nil-safe.
func (h *WindowHistogram) EnableExemplars(k int) {
	if h == nil {
		return
	}
	if k <= 0 {
		k = DefaultExemplarK
	}
	buckets := len(h.bounds) + 1
	st := &exemplarStore{
		k:     k,
		rings: make([][]exemplarCell, buckets),
		next:  make([]int, buckets),
		n:     make([]int, buckets),
	}
	for i := range st.rings {
		st.rings[i] = make([]exemplarCell, k)
	}
	h.ex = st
}

// ObserveEx records one sample, retaining (rid, v) as the bucket's newest
// exemplar when rid is non-empty and exemplars are enabled. An empty rid
// degrades to a plain Observe — the zero-allocation untraced path.
func (h *WindowHistogram) ObserveEx(v float64, rid string) {
	if h == nil {
		return
	}
	now := time.Now()
	h.observeAt(now, v)
	if rid == "" || h.ex == nil {
		return
	}
	h.ex.add(bucketIndex(h.bounds, v), v, rid, now.UnixNano())
}

// ObserveDurationEx records a duration in seconds with an exemplar rid.
func (h *WindowHistogram) ObserveDurationEx(d time.Duration, rid string) {
	h.ObserveEx(d.Seconds(), rid)
}

func (st *exemplarStore) add(bucket int, v float64, rid string, atNS int64) {
	st.mu.Lock()
	ring := st.rings[bucket]
	ring[st.next[bucket]] = exemplarCell{rid: rid, v: v, atNS: atNS}
	st.next[bucket] = (st.next[bucket] + 1) % st.k
	if st.n[bucket] < st.k {
		st.n[bucket]++
	}
	st.mu.Unlock()
}

// Exemplars returns the retained exemplars, buckets in ascending bound
// order and newest-first within a bucket. Empty (never nil semantics —
// a nil histogram or disabled store reads as no exemplars).
func (h *WindowHistogram) Exemplars() []Exemplar {
	if h == nil || h.ex == nil {
		return nil
	}
	st := h.ex
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Exemplar
	for b := range st.rings {
		le := "+Inf"
		if b < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[b], 'g', -1, 64)
		}
		for i := 1; i <= st.n[b]; i++ {
			c := st.rings[b][(st.next[b]-i+st.k)%st.k]
			out = append(out, Exemplar{LE: le, Value: c.v, RID: c.rid, AtNS: c.atNS})
		}
	}
	return out
}
