package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		sp := tr.Start("s" + strconv.Itoa(i))
		sp.End()
	}
	if tr.Total() != 6 {
		t.Errorf("Total = %d, want 6", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := "s" + strconv.Itoa(i+2); s.Name != want {
			t.Errorf("spans[%d] = %q, want %q (oldest-first after wrap)", i, s.Name, want)
		}
	}
}

func TestTracerStreamJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.StreamTo(&buf)
	sp := tr.Start("realize", String("u", "0x2a:3"))
	sp.SetAttr("v", "0x07:1")
	sp.End()
	tr.Start("verify").End()
	tr.StreamTo(nil) // block until the drain goroutine wrote everything

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var got struct {
		Name  string            `json:"name"`
		Start int64             `json:"start_ns"`
		Dur   int64             `json:"dur_ns"`
		Attrs map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	if got.Name != "realize" || got.Start == 0 || got.Dur < 0 {
		t.Errorf("span = %+v", got)
	}
	if got.Attrs["u"] != "0x2a:3" || got.Attrs["v"] != "0x07:1" {
		t.Errorf("attrs = %v, want flat object with u and v", got.Attrs)
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("a").End()
	tr.Start("b").End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Errorf("dump has %d lines, want 2:\n%s", n, buf.String())
	}
}

func TestTracerStreamDetach(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.StreamTo(&buf)
	tr.Start("kept").End()
	tr.StreamTo(nil)
	tr.Start("dropped").End()
	if strings.Contains(buf.String(), "dropped") {
		t.Error("span streamed after detach")
	}
	if len(tr.Spans()) != 2 {
		t.Errorf("ring lost spans on detach: %d", len(tr.Spans()))
	}
}

// blockingWriter parks every Write until released, simulating a -trace
// sink on a full pipe or a hung filesystem.
type blockingWriter struct {
	release chan struct{}
	wrote   chan struct{} // closed once the first Write is entered
	once    sync.Once
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.wrote) })
	<-w.release
	return len(p), nil
}

// TestTracerBlockedSinkDoesNotStall is the regression for the streaming
// stall: record used to JSON-encode to the sink while holding the ring
// mutex, so one blocked -trace writer froze every instrumented hot path.
// Now encoding runs on a drain goroutine behind a bounded queue; Start/End
// on other goroutines must complete (dropping overflow spans) while the
// writer is wedged.
func TestTracerBlockedSinkDoesNotStall(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{}), wrote: make(chan struct{})}
	tr := NewTracer(16)
	tr.StreamTo(bw)
	tr.Start("first").End() // drain goroutine picks it up and wedges in Write
	<-bw.wrote

	// Complete far more spans than the stream queue holds, from another
	// goroutine, with a deadline: if any of them blocks, the test times out
	// here instead of hanging the suite.
	const n = streamQueueDepth + 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			tr.Start("burst").End()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Start/End stalled behind a blocked stream sink")
	}
	if got := tr.Total(); got != n+1 {
		t.Errorf("Total = %d, want %d (ring must record every span)", got, n+1)
	}
	if tr.Dropped() == 0 {
		t.Error("expected overflow spans to be counted as dropped")
	}

	close(bw.release)
	tr.StreamTo(nil) // drains what the queue still holds
	if d := tr.Dropped(); d > n {
		t.Errorf("dropped %d spans, more than the %d recorded", d, n)
	}
}

// TestNilTracerSafe: a nil tracer and the nil Active it returns must
// absorb the whole span API.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.StreamTo(nil)
	sp := tr.Start("x", String("k", "v"))
	sp.SetAttr("k2", "v2")
	sp.End()
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Error("nil tracer retained spans")
	}
	if err := tr.Flush(); err != nil {
		t.Error(err)
	}
}
