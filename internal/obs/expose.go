package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series within a family
// sorted by label string, HELP strings and label values escaped, histogram
// buckets cumulative with a trailing +Inf bucket plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ls := range f.sortedLabels() {
			s := f.series[ls]
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, ls, ""), s.counter.Load())
			case s.counterFn != nil:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, ls, ""), s.counterFn())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s %s\n", seriesName(f.name, ls, ""), formatFloat(s.gauge.Load()))
			case s.gaugeFn != nil:
				fmt.Fprintf(bw, "%s %s\n", seriesName(f.name, ls, ""), formatFloat(s.gaugeFn()))
			case s.histogram != nil:
				writeHistogram(bw, f.name, ls, s.histogram.Snapshot())
			}
		}
	}
	return bw.Flush()
}

// seriesName renders name{labels,extra} with empty parts elided.
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// writeHistogram emits the cumulative bucket series for one histogram.
func writeHistogram(w io.Writer, base, labels string, s HistogramSnapshot) {
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := `le="` + formatFloat(bound) + `"`
		fmt.Fprintf(w, "%s %d\n", seriesName(base+"_bucket", labels, le), cum)
	}
	fmt.Fprintf(w, "%s %d\n", seriesName(base+"_bucket", labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s %s\n", seriesName(base+"_sum", labels, ""), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s %d\n", seriesName(base+"_count", labels, ""), s.Count)
}

// jsonHistogram is the JSON shape of a histogram snapshot.
type jsonHistogram struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
}

// WriteJSON renders an expvar-style JSON snapshot: one object keyed by
// series name (labels included), counters and gauges as numbers,
// histograms as {count, sum, bounds, buckets, p50, p95, p99}. Keys are
// sorted (encoding/json sorts map keys), so output is stable.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	r.mu.RLock()
	for _, f := range r.sortedFamilies() {
		for _, ls := range f.sortedLabels() {
			s := f.series[ls]
			name := seriesName(f.name, ls, "")
			switch {
			case s.counter != nil:
				out[name] = s.counter.Load()
			case s.counterFn != nil:
				out[name] = s.counterFn()
			case s.gauge != nil:
				out[name] = jsonFloat(s.gauge.Load())
			case s.gaugeFn != nil:
				out[name] = jsonFloat(s.gaugeFn())
			case s.histogram != nil:
				snap := s.histogram.Snapshot()
				qs := snap.Percentiles(50, 95, 99)
				out[name] = jsonHistogram{
					Count: snap.Count, Sum: snap.Sum,
					Bounds: snap.Bounds, Buckets: snap.Counts,
					P50: jsonFloat(qs[0]), P95: jsonFloat(qs[1]), P99: jsonFloat(qs[2]),
				}
			}
		}
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonFloat maps ±Inf (unrepresentable in JSON) onto the largest finite
// float so encoding never fails.
func jsonFloat(v float64) float64 {
	const max = 1.7976931348623157e308
	if v > max {
		return max
	}
	if v < -max {
		return -max
	}
	return v
}

// WriteSummary renders a compact human-readable report: counters and
// gauges one per line, histograms with count, mean, and P50/P95/P99
// estimated from the bucket counts (the percentile satellite of the
// registry). Intended for `-metrics -` dumps read by people, not scrapers.
func (r *Registry) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.sortedFamilies() {
		for _, ls := range f.sortedLabels() {
			s := f.series[ls]
			name := seriesName(f.name, ls, "")
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%-12s %s = %d\n", "counter", name, s.counter.Load())
			case s.counterFn != nil:
				fmt.Fprintf(bw, "%-12s %s = %d\n", "counter", name, s.counterFn())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%-12s %s = %s\n", "gauge", name, formatFloat(s.gauge.Load()))
			case s.gaugeFn != nil:
				fmt.Fprintf(bw, "%-12s %s = %s\n", "gauge", name, formatFloat(s.gaugeFn()))
			case s.histogram != nil:
				snap := s.histogram.Snapshot()
				qs := snap.Percentiles(50, 95, 99)
				fmt.Fprintf(bw, "%-12s %s: count=%d mean=%s p50=%s p95=%s p99=%s\n",
					"histogram", name, snap.Count,
					strconv.FormatFloat(snap.Mean(), 'g', 4, 64),
					formatFloat(qs[0]), formatFloat(qs[1]), formatFloat(qs[2]))
			}
		}
	}
	return bw.Flush()
}

// SeriesNames returns every series name currently registered, sorted.
// Handy for tests asserting a metric exists without parsing exposition.
func (r *Registry) SeriesNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var names []string
	for _, f := range r.families {
		for ls := range f.series {
			names = append(names, seriesName(f.name, ls, ""))
		}
	}
	sort.Strings(names)
	return names
}
