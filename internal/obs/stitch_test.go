package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// mkForwarded builds a requester-side tree: admission, a forward span of
// fwdNS, encode.
func mkForwarded(rid string, start, fwdNS int64) *RequestTrace {
	return &RequestTrace{
		ID: rid, Op: "paths", Start: start, Dur: fwdNS + 30,
		Spans: []*ReqSpan{
			{Name: "admission", Start: start, Dur: 10},
			{Name: "forward", Start: start + 10, Dur: fwdNS},
			{Name: "encode", Start: start + 10 + fwdNS, Dur: 20},
		},
	}
}

// mkOwner builds the owner-side half: same rid, Origin set, queue and
// exec spans.
func mkOwner(rid, origin string, start, queueNS, execNS int64) *RequestTrace {
	return &RequestTrace{
		ID: rid, Op: "paths", Start: start, Dur: queueNS + execNS + 5,
		Origin: origin,
		Spans: []*ReqSpan{
			{Name: "admission", Start: start, Dur: 2},
			{Name: "queue", Start: start + 2, Dur: queueNS},
			{Name: "exec", Start: start + 2 + queueNS, Dur: execNS},
		},
	}
}

func TestStitchTracesJoinsByRID(t *testing.T) {
	byPeer := map[string][]*RequestTrace{
		"a:1": {
			mkForwarded("r7", 1000, 500),
			// A plain local tree on the requester: no forward span, never
			// a root.
			{ID: "r8", Op: "paths", Start: 1000, Dur: 40,
				Spans: []*ReqSpan{{Name: "exec", Start: 1000, Dur: 40}}},
		},
		"b:2": {
			mkOwner("r7", "a:1", 1100, 120, 300),
			// An orphan fragment: its root fell out of retention.
			mkOwner("r9", "a:1", 1100, 1, 1),
		},
	}
	stitched := StitchTraces(byPeer)
	if len(stitched) != 1 {
		t.Fatalf("stitched %d trees, want 1", len(stitched))
	}
	st := stitched[0]
	if st.RID != "r7" || st.RequesterPeer != "a:1" || st.OwnerPeer != "b:2" {
		t.Errorf("join = rid %q %q->%q, want r7 a:1->b:2",
			st.RID, st.RequesterPeer, st.OwnerPeer)
	}
	if st.ForwardNS != 500 || st.RemoteQueueNS != 120 || st.RemoteExecNS != 300 {
		t.Errorf("phases = fwd %d queue %d exec %d, want 500/120/300",
			st.ForwardNS, st.RemoteQueueNS, st.RemoteExecNS)
	}
	if st.WireNS() != 80 {
		t.Errorf("wire = %d, want 500-120-300 = 80", st.WireNS())
	}
	fwd := topSpan(st.Root, "forward")
	if fwd == nil || len(fwd.Children) != 1 || fwd.Children[0].Name != "remote" {
		t.Fatalf("forward span children = %+v, want one grafted remote subtree", fwd)
	}
	remote := fwd.Children[0]
	if len(remote.Children) != 3 || remote.Children[1].Name != "queue" {
		t.Errorf("remote subtree children = %d, want the owner's 3 phase spans", len(remote.Children))
	}
	// The sum of the stitched remote phases equals the per-peer spans they
	// came from.
	var qd, xd int64
	for _, c := range remote.Children {
		switch c.Name {
		case "queue":
			qd = c.Dur
		case "exec":
			xd = c.Dur
		}
	}
	if qd != st.RemoteQueueNS || xd != st.RemoteExecNS {
		t.Errorf("grafted spans %d/%d disagree with attribution %d/%d",
			qd, xd, st.RemoteQueueNS, st.RemoteExecNS)
	}
}

func TestStitchTracesDoesNotMutateInputs(t *testing.T) {
	root := mkForwarded("r1", 1000, 500)
	owner := mkOwner("r1", "a:1", 1100, 10, 20)
	StitchTraces(map[string][]*RequestTrace{
		"a:1": {root}, "b:2": {owner},
	})
	if fwd := topSpan(root, "forward"); len(fwd.Children) != 0 {
		t.Errorf("stitching grafted %d children into the shared input tree", len(fwd.Children))
	}
}

func TestStitchTracesDedupsAndOrders(t *testing.T) {
	slow, fast := mkForwarded("rslow", 1000, 900), mkForwarded("rfast", 1000, 100)
	byPeer := map[string][]*RequestTrace{
		// The same tree in two retention buckets (slowest + recent).
		"a:1": {slow, slow, fast},
		"b:2": {mkOwner("rslow", "a:1", 1, 1, 2), mkOwner("rfast", "a:1", 1, 1, 2)},
	}
	stitched := StitchTraces(byPeer)
	if len(stitched) != 2 {
		t.Fatalf("stitched %d trees, want 2 (dedup by ID/Start)", len(stitched))
	}
	if stitched[0].RID != "rslow" || stitched[1].RID != "rfast" {
		t.Errorf("order = %q, %q; want slowest forward first", stitched[0].RID, stitched[1].RID)
	}
	if n := len(topSpan(stitched[0].Root, "forward").Children); n != 1 {
		t.Errorf("duplicate root produced %d grafts, want 1", n)
	}
}

func TestRequestTraceOriginJSONRoundTrip(t *testing.T) {
	in := mkOwner("r3", "peer-a:9000", 1000, 5, 7)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out RequestTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Origin != "peer-a:9000" {
		t.Errorf("Origin after round trip = %q, want peer-a:9000", out.Origin)
	}
	plain, _ := json.Marshal(mkTrace("r4", 10, ""))
	if string(plain) == "" || jsonHasKey(plain, "origin") {
		t.Errorf("direct trace serialized origin field: %s", plain)
	}
}

func jsonHasKey(data []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

func TestForwardedSlowFilter(t *testing.T) {
	rt := NewRequestTracer(4)
	rt.SetSlowThreshold(time.Nanosecond) // everything is slow
	fwd := mkOwner("rf", "a:1", 1000, 1, 1)
	fwd.Slow = true
	local := mkTrace("rl", 100, "")
	local.Slow = true
	rt.Record(fwd)
	rt.Record(local)
	snap := rt.Snapshot()
	if len(snap.Slow) != 1 || snap.Slow[0].ID != "rl" {
		t.Fatalf("slow bucket = %v, want only the local tree", ids(snap.Slow))
	}
	// Forwarded trees still count everywhere else.
	if len(snap.Recent) != 2 {
		t.Errorf("recent = %d, want 2", len(snap.Recent))
	}

	rt2 := NewRequestTracer(4)
	rt2.RetainForwardedSlow(true)
	fwd2 := mkOwner("rf2", "a:1", 1000, 1, 1)
	fwd2.Slow = true
	rt2.Record(fwd2)
	if snap := rt2.Snapshot(); len(snap.Slow) != 1 {
		t.Errorf("opt-in slow bucket = %d trees, want 1", len(snap.Slow))
	}
}

func TestSetOriginLiveTagging(t *testing.T) {
	rt := NewRequestTracer(4)
	rt.SetSlowThreshold(time.Nanosecond)
	q := rt.StartRequest("paths", "rid-9")
	q.SetOrigin("peer-b:9001")
	q.StartSpan("exec").End()
	q.Finish("")
	snap := rt.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatal("no trace recorded")
	}
	tr := snap.Recent[0]
	if tr.Origin != "peer-b:9001" || tr.ID != "rid-9" {
		t.Errorf("trace = id %q origin %q, want rid-9 / peer-b:9001", tr.ID, tr.Origin)
	}
	found := false
	for _, a := range tr.Attrs {
		if a.Key == "origin" && a.Value == "peer-b:9001" {
			found = true
		}
	}
	if !found {
		t.Error("origin attr missing from the tree")
	}
	if !tr.Slow {
		t.Error("forwarded tree not marked Slow (marking stays, only the bucket filters)")
	}
	if len(snap.Slow) != 0 {
		t.Error("forwarded tree leaked into the slow bucket")
	}
}

// TestStitchTracesRIDCollisionAcrossPeers: server-minted rids repeat on
// every peer ("r1", "r2", ...). Two requesters forwarding under the same
// rid must each join only the fragment whose Origin names them; with two
// candidate roots, an origin matching neither stays unjoined rather than
// grafting onto the wrong tree.
func TestStitchTracesRIDCollisionAcrossPeers(t *testing.T) {
	byPeer := map[string][]*RequestTrace{
		"peer-a": {mkForwarded("r1", 100, 500)},
		"peer-c": {mkForwarded("r1", 200, 900)},
		"peer-b": {
			mkOwner("r1", "peer-a", 150, 40, 200),
			mkOwner("r1", "peer-c", 250, 10, 700),
			mkOwner("r1", "peer-x", 300, 5, 5), // origin matches no root
		},
	}
	got := StitchTraces(byPeer)
	if len(got) != 2 {
		t.Fatalf("stitched %d trees, want 2 (one per requester)", len(got))
	}
	// Descending forward duration: peer-c's 900ns hop first.
	if got[0].RequesterPeer != "peer-c" || got[0].RemoteExecNS != 700 {
		t.Errorf("first stitch = %s exec=%d, want peer-c's 700ns fragment",
			got[0].RequesterPeer, got[0].RemoteExecNS)
	}
	if got[1].RequesterPeer != "peer-a" || got[1].RemoteExecNS != 200 {
		t.Errorf("second stitch = %s exec=%d, want peer-a's 200ns fragment",
			got[1].RequesterPeer, got[1].RemoteExecNS)
	}
	for _, st := range got {
		fwd := topSpan(st.Root, "forward")
		if len(fwd.Children) != 1 {
			t.Errorf("%s root grafted %d fragments, want exactly its own",
				st.RequesterPeer, len(fwd.Children))
		}
	}
}
