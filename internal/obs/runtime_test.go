package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"process_uptime_seconds",
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_gc_pause_nanoseconds_total",
		`build_info{go_version="` + runtime.Version() + `"`,
		`goarch="` + runtime.GOARCH + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Values must be live, not registration-time snapshots: goroutines and
	// heap are nonzero in any running test binary.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "go_goroutines ") || strings.HasPrefix(line, "go_heap_alloc_bytes ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("runtime series reads zero: %q", line)
			}
		}
	}
}

func TestRegisterSelf(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(16)
	rt := NewRequestTracer(4)
	RegisterSelf(r, tr, rt)

	tr.Start("a").End()
	tr.Start("b").End()
	rt.StartRequest("op", "").Finish("")
	rt.StartRequest("op", "").Finish("timeout")

	snap := r.Snapshot()
	if got := snap.Counters["obs_trace_spans_total"]; got != 2 {
		t.Errorf("obs_trace_spans_total = %d, want 2", got)
	}
	if got := snap.Counters["obs_trace_dropped_total"]; got != 0 {
		t.Errorf("obs_trace_dropped_total = %d, want 0", got)
	}
	if got := snap.Counters["obs_requests_recorded_total"]; got != 2 {
		t.Errorf("obs_requests_recorded_total = %d, want 2", got)
	}
	if got := snap.Counters["obs_requests_errored_total"]; got != 1 {
		t.Errorf("obs_requests_errored_total = %d, want 1", got)
	}
	// Both finished requests sit in the recent ring; the errored one also
	// lands in the errors bucket.
	if got := snap.Gauges[`obs_requests_retained{bucket="recent"}`]; got != 2 {
		t.Errorf("retained recent = %g, want 2", got)
	}
	if got := snap.Gauges[`obs_requests_retained{bucket="errors"}`]; got != 1 {
		t.Errorf("retained errors = %g, want 1", got)
	}

	// Nil sinks must register nothing rather than panic.
	empty := NewRegistry()
	RegisterSelf(empty, nil, nil)
	if n := len(empty.Snapshot().Counters); n != 0 {
		t.Errorf("nil sinks registered %d counters, want 0", n)
	}
}
