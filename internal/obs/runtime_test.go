package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"process_uptime_seconds",
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_gc_pause_nanoseconds_total",
		`build_info{go_version="` + runtime.Version() + `"`,
		`goarch="` + runtime.GOARCH + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Values must be live, not registration-time snapshots: goroutines and
	// heap are nonzero in any running test binary.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "go_goroutines ") || strings.HasPrefix(line, "go_heap_alloc_bytes ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("runtime series reads zero: %q", line)
			}
		}
	}
}
