package obs

import (
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry as Prometheus text exposition.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves the expvar-style JSON snapshot.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// Mux builds the standard debug mux for a long-running binary:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    JSON snapshot of reg
//	/debug/pprof/  the net/http/pprof profiler (heap, profile, trace, …)
//
// The pprof handlers are mounted explicitly so the binary never depends on
// http.DefaultServeMux (which third-party imports can pollute).
func Mux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", reg.VarsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
