package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file turns the cumulative registry into time series: a
// point-in-time Snapshot of every series, a delta between two snapshots
// (per-interval counts, rates, and interval-local histogram percentiles),
// and a bounded SeriesRing that samples the registry on a fixed interval
// and serves the retained points as /debug/series — the windowed view
// every cumulative-only consumer (dashboards, hhctop, SLO gates) needs.

// RegistrySnapshot is a point-in-time reading of every series in a
// registry, fn-backed series included.
type RegistrySnapshot struct {
	At         time.Time
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot reads every series in the registry at once. Callback-backed
// series are evaluated; histogram buckets are copied, so the result is
// safe to retain.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		At:         time.Now(),
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		for ls, s := range f.series {
			name := seriesName(f.name, ls, "")
			switch {
			case s.counter != nil:
				snap.Counters[name] = s.counter.Load()
			case s.counterFn != nil:
				snap.Counters[name] = s.counterFn()
			case s.gauge != nil:
				snap.Gauges[name] = s.gauge.Load()
			case s.gaugeFn != nil:
				snap.Gauges[name] = s.gaugeFn()
			case s.histogram != nil:
				snap.Histograms[name] = s.histogram.Snapshot()
			}
		}
	}
	return snap
}

// HistPoint is one histogram's activity within one interval: the
// observation count and rate, plus mean and percentiles estimated from
// the interval's own bucket deltas (not since-start cumulatives).
type HistPoint struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// SeriesPoint is one interval of registry activity: counter deltas and
// rates, instantaneous gauges, and per-interval histogram percentiles.
type SeriesPoint struct {
	At       int64                `json:"at_ns"`  // interval end, unix nanoseconds
	Dur      int64                `json:"dur_ns"` // actual interval length
	Counters map[string]int64     `json:"counters,omitempty"`
	Rates    map[string]float64   `json:"rates,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Hists    map[string]HistPoint `json:"hists,omitempty"`
}

// DeltaSince computes the interval point from prev to cur. Series absent
// from prev (registered mid-interval) count from zero; series absent from
// cur are dropped. Counter resets (cur < prev) clamp to zero rather than
// reporting negative rates.
func (cur RegistrySnapshot) DeltaSince(prev RegistrySnapshot) SeriesPoint {
	dur := cur.At.Sub(prev.At)
	secs := dur.Seconds()
	p := SeriesPoint{
		At:       cur.At.UnixNano(),
		Dur:      int64(dur),
		Counters: map[string]int64{},
		Rates:    map[string]float64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]HistPoint{},
	}
	for name, v := range cur.Counters {
		d := v - prev.Counters[name]
		if d < 0 {
			d = 0
		}
		p.Counters[name] = d
		if secs > 0 {
			p.Rates[name] = float64(d) / secs
		}
	}
	for name, v := range cur.Gauges {
		p.Gauges[name] = jsonFloat(v)
	}
	for name, h := range cur.Histograms {
		d := histDelta(prev.Histograms[name], h)
		hp := HistPoint{Count: d.Count, Mean: jsonFloat(d.Mean())}
		if secs > 0 {
			hp.Rate = float64(d.Count) / secs
		}
		if d.Count > 0 {
			qs := d.Percentiles(50, 95, 99)
			hp.P50, hp.P95, hp.P99 = jsonFloat(qs[0]), jsonFloat(qs[1]), jsonFloat(qs[2])
		}
		p.Hists[name] = hp
	}
	return p
}

// histDelta subtracts two cumulative snapshots bucket-wise. A prev with
// mismatched bucket layout (or none at all) counts as empty; a shrinking
// count (reset) clamps to the current snapshot.
func histDelta(prev, cur HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(cur.Counts) || cur.Count < prev.Count {
		return cur
	}
	out := HistogramSnapshot{
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
	}
	for i := range cur.Counts {
		if d := cur.Counts[i] - prev.Counts[i]; d > 0 {
			out.Counts[i] = d
		}
	}
	return out
}

// Series ring defaults: 120 one-second intervals = two minutes of
// history at dashboard resolution.
const (
	DefaultSeriesInterval = time.Second
	DefaultSeriesCapacity = 120
)

// SeriesRing samples a registry on a fixed interval and retains the last
// capacity interval points in memory. Start launches the sampler
// goroutine; Stop (idempotent) halts it. Sample may also be driven
// manually (tests, end-of-run flushes). All methods are safe for
// concurrent use.
type SeriesRing struct {
	reg      *Registry
	interval time.Duration
	capacity int // ring size, immutable after construction

	mu     sync.Mutex
	points []SeriesPoint    // ring; guarded by mu
	n      int              // live entries; guarded by mu
	next   int              // guarded by mu
	prev   RegistrySnapshot // guarded by mu
	primed bool             // guarded by mu

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSeriesRing builds a ring sampling reg every interval, retaining
// capacity points (zero values select the defaults).
func NewSeriesRing(reg *Registry, interval time.Duration, capacity int) *SeriesRing {
	if interval <= 0 {
		interval = DefaultSeriesInterval
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &SeriesRing{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		points:   make([]SeriesPoint, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling interval.
func (s *SeriesRing) Interval() time.Duration { return s.interval }

// Start launches the background sampler: the baseline snapshot is primed
// immediately, then every tick appends one interval point.
func (s *SeriesRing) Start() {
	go func() {
		defer close(s.done)
		s.Sample()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts the sampler and waits for it to exit. Safe to call more
// than once, and before Start (the ring is then just never sampled).
func (s *SeriesRing) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.done:
	case <-time.After(s.interval + time.Second):
	}
}

// Sample takes one registry snapshot and appends the delta against the
// previous one. The very first call only primes the baseline.
func (s *SeriesRing) Sample() {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	// The snapshot is taken outside the lock (it walks the whole
	// registry); a concurrent sampler may have won the lock with a newer
	// one. Appending the stale snapshot would emit an out-of-order point
	// and roll prev backwards, so it is dropped instead.
	if s.primed && !snap.At.After(s.prev.At) {
		return
	}
	if s.primed {
		s.add(snap.DeltaSince(s.prev))
	}
	s.prev, s.primed = snap, true
}

// add appends one interval point to the ring.
//
//hhc:holds mu
func (s *SeriesRing) add(p SeriesPoint) {
	s.points[s.next] = p
	s.next = (s.next + 1) % len(s.points)
	if s.n < len(s.points) {
		s.n++
	}
}

// Points returns the retained interval points oldest-first, at most last
// of them (last <= 0 returns everything retained).
func (s *SeriesRing) Points(last int) []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if last > 0 && last < n {
		n = last
	}
	out := make([]SeriesPoint, 0, n)
	for i := n; i >= 1; i-- {
		out = append(out, s.points[(s.next-i+len(s.points))%len(s.points)])
	}
	return out
}

// SeriesSnapshot is the /debug/series payload: ring geometry, the
// retained points oldest-first, and a per-histogram summary merged over
// those points (count-weighted mean and total-interval rate; percentiles
// here are the mean of the per-interval estimates, a cheap stand-in that
// needs no bucket retention).
type SeriesSnapshot struct {
	IntervalNS int64                `json:"interval_ns"`
	Capacity   int                  `json:"capacity"`
	Points     []SeriesPoint        `json:"points"`
	Summary    map[string]HistPoint `json:"summary,omitempty"`
}

// Snapshot assembles the handler payload over the last `last` points.
func (s *SeriesRing) Snapshot(last int) SeriesSnapshot {
	pts := s.Points(last)
	out := SeriesSnapshot{
		IntervalNS: int64(s.interval),
		Capacity:   s.capacity,
		Points:     pts,
		Summary:    map[string]HistPoint{},
	}
	type agg struct {
		count         int64
		sum           float64 // count-weighted mean accumulator
		secs          float64
		p50, p95, p99 float64
	}
	accs := map[string]*agg{}
	for _, p := range pts {
		for name, hp := range p.Hists {
			a := accs[name]
			if a == nil {
				a = &agg{}
				accs[name] = a
			}
			a.secs += time.Duration(p.Dur).Seconds()
			if hp.Count == 0 {
				continue
			}
			a.count += hp.Count
			a.sum += hp.Mean * float64(hp.Count)
			a.p50 += hp.P50 * float64(hp.Count)
			a.p95 += hp.P95 * float64(hp.Count)
			a.p99 += hp.P99 * float64(hp.Count)
		}
	}
	for name, a := range accs {
		hp := HistPoint{Count: a.count}
		if a.secs > 0 {
			hp.Rate = float64(a.count) / a.secs
		}
		if a.count > 0 {
			hp.Mean = a.sum / float64(a.count)
			hp.P50 = a.p50 / float64(a.count)
			hp.P95 = a.p95 / float64(a.count)
			hp.P99 = a.p99 / float64(a.count)
		}
		out.Summary[name] = hp
	}
	return out
}

// Handler serves the ring as /debug/series: the JSON SeriesSnapshot by
// default (shape pinned by golden file; cmd/hhctop consumes it), a human
// table with ?format=table. ?last=N limits output to the newest N points.
func (s *SeriesRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		last := 0
		if v := r.URL.Query().Get("last"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				last = n
			}
		}
		if r.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if last == 0 {
				last = 10
			}
			_ = s.WriteTable(w, last)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteSeriesJSON(w, s.Snapshot(last))
	})
}

// WriteSeriesJSON renders a snapshot as indented JSON, the exact
// /debug/series payload (split out so tests can golden-file it).
func WriteSeriesJSON(w io.Writer, snap SeriesSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteTable renders the last `last` points as a human table: one row per
// series, one column per interval (oldest first) — counter rates, gauge
// values, and histogram interval p99s — plus the merged summary block.
func (s *SeriesRing) WriteTable(w io.Writer, last int) error {
	snap := s.Snapshot(last)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "/debug/series: %d points, interval %s, capacity %d\n",
		len(snap.Points), time.Duration(snap.IntervalNS), snap.Capacity)
	if len(snap.Points) == 0 {
		fmt.Fprintln(bw, "(no complete interval yet)")
		return bw.Flush()
	}

	section := func(title string, names []string, cell func(SeriesPoint, string) (string, bool)) {
		sort.Strings(names)
		if len(names) == 0 {
			return
		}
		fmt.Fprintf(bw, "\n%s (oldest first)\n", title)
		for _, name := range names {
			fmt.Fprintf(bw, "  %-42s", name)
			for _, p := range snap.Points {
				if v, ok := cell(p, name); ok {
					fmt.Fprintf(bw, " %9s", v)
				} else {
					fmt.Fprintf(bw, " %9s", "-")
				}
			}
			fmt.Fprintln(bw)
		}
	}

	section("counter rates (/s)", keysOf(lastPoint(snap.Points).Rates),
		func(p SeriesPoint, name string) (string, bool) {
			v, ok := p.Rates[name]
			return trimFloat(v), ok
		})
	section("gauges", keysOf(lastPoint(snap.Points).Gauges),
		func(p SeriesPoint, name string) (string, bool) {
			v, ok := p.Gauges[name]
			return trimFloat(v), ok
		})
	section("histogram interval p99", keysOf2(lastPoint(snap.Points).Hists),
		func(p SeriesPoint, name string) (string, bool) {
			h, ok := p.Hists[name]
			return trimFloat(h.P99), ok && h.Count > 0
		})

	if len(snap.Summary) > 0 {
		fmt.Fprintf(bw, "\nsummary over %d points\n", len(snap.Points))
		names := make([]string, 0, len(snap.Summary))
		for name := range snap.Summary {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := snap.Summary[name]
			fmt.Fprintf(bw, "  %-42s count=%d rate=%s/s mean=%s p50=%s p95=%s p99=%s\n",
				name, h.Count, trimFloat(h.Rate), trimFloat(h.Mean),
				trimFloat(h.P50), trimFloat(h.P95), trimFloat(h.P99))
		}
	}
	return bw.Flush()
}

func lastPoint(pts []SeriesPoint) SeriesPoint { return pts[len(pts)-1] }

func keysOf[V int64 | float64](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func keysOf2(m map[string]HistPoint) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// trimFloat renders a value compactly for table cells.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}
