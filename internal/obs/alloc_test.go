package obs

import "testing"

// TestDisabledHooksZeroAlloc pins the zero-cost-when-off contract for every
// instrumentation handle a hot path might hold: with observability disabled
// (nil receivers), calls must not allocate at all. Any allocation here
// changes the uninstrumented serving path's memory profile.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	var (
		tr *Tracer
		lg *Logger
		rt *RequestTracer
		wc *WindowCounter
		wh *WindowHistogram
	)
	q := rt.StartRequest("op", "")
	cases := map[string]func(){
		"window": func() {
			wc.Inc()
			wc.Add(3)
			wh.Observe(0.001)
			wh.ObserveDuration(0)
		},
		"tracer": func() {
			sp := tr.Start("x")
			sp.SetAttr("k", "v")
			sp.End()
		},
		"logger": func() {
			if lg.Enabled(LevelInfo) {
				lg.Info("x")
			}
			lg.Error("x")
		},
		"request": func() {
			q2 := rt.StartRequest("op", "id")
			q2.SetAttr("k", "v")
			q2.Finish("")
		},
		"span-tree": func() {
			s := q.StartSpan("phase")
			c := s.StartChild("sub")
			c.End()
			s.End()
		},
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("%s: disabled hooks allocate %.1f allocs/op, want 0", name, got)
		}
	}
}
