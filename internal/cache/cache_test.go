package cache

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
)

func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustCache(t *testing.T, g *hhc.Graph, opts Options) *Cache {
	t.Helper()
	c, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestExactCanonBitIdentical: with the default canonicalization, cached
// results — first request (miss) and repeat (hit) alike — are byte-for-byte
// the direct DisjointPathsOpt output. Exhaustive over all pairs for m=2,
// randomized for m=3 and 4, across all order strategies.
func TestExactCanonBitIdentical(t *testing.T) {
	strategies := []core.OrderStrategy{core.OrderAscending, core.OrderGray, core.OrderNearest}
	check := func(t *testing.T, g *hhc.Graph, c *Cache, u, v hhc.Node, opt core.Options) {
		t.Helper()
		want, err := core.DisjointPathsOpt(g, u, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // miss then hit
			got, err := c.Paths(u, v, opt)
			if err != nil {
				t.Fatalf("%s -> %s pass %d: %v", g.FormatNode(u), g.FormatNode(v), pass, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s -> %s pass %d: cached container differs from direct construction",
					g.FormatNode(u), g.FormatNode(v), pass)
			}
			if err := core.VerifyContainer(g, u, v, got); err != nil {
				t.Fatal(err)
			}
		}
	}

	g2 := mustGraph(t, 2)
	n, _ := g2.NumNodes()
	for _, strat := range strategies {
		c := mustCache(t, g2, Options{})
		opt := core.Options{Order: strat}
		for a := uint64(0); a < n; a++ {
			for b := uint64(0); b < n; b++ {
				if a == b {
					continue
				}
				check(t, g2, c, g2.NodeFromID(a), g2.NodeFromID(b), opt)
			}
		}
		if snap := c.Snapshot(); snap.Hits == 0 || snap.Misses == 0 {
			t.Fatalf("strategy %v: degenerate counters %v", strat, snap)
		}
	}

	for _, m := range []int{3, 4} {
		g := mustGraph(t, m)
		c := mustCache(t, g, Options{})
		r := rand.New(rand.NewSource(int64(m)))
		for trial := 0; trial < 120; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v {
				continue
			}
			check(t, g, c, u, v, core.Options{Order: strategies[trial%len(strategies)]})
		}
	}
}

// TestExactCanonSharesTranslates: all X-translates of one pair occupy a
// single entry, and each translate is answered correctly from it.
func TestExactCanonSharesTranslates(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{})
	base := core.Pair{U: hhc.Node{X: 0x12, Y: 1}, V: hhc.Node{X: 0xe7, Y: 5}}
	for a := uint64(0); a < 1<<uint(g.T()); a++ {
		u := hhc.Node{X: base.U.X ^ a, Y: base.U.Y}
		v := hhc.Node{X: base.V.X ^ a, Y: base.V.Y}
		paths, err := c.Paths(u, v, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyContainer(g, u, v, paths); err != nil {
			t.Fatalf("translate a=%#x: %v", a, err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("%d entries for 256 translated requests, want 1", c.Len())
	}
	snap := c.Snapshot()
	if snap.Misses != 1 || snap.Hits != 255 {
		t.Fatalf("counters %v, want 1 miss + 255 hits", snap)
	}
}

// TestFullCanonSharesOrbit: under CanonFull, Y-translates collapse too, and
// every answer is still a valid verified container.
func TestFullCanonSharesOrbit(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{Canon: CanonFull})
	r := rand.New(rand.NewSource(9))
	u0, v0 := hhc.Node{X: 0x31, Y: 2}, hhc.Node{X: 0x9c, Y: 6}
	for trial := 0; trial < 300; trial++ {
		// Push the base pair through a random automorphism and request it.
		f, err := g.NewAutomorphism(uint64(r.Intn(256)), uint8(r.Intn(8)))
		if err != nil {
			t.Fatal(err)
		}
		u, v := f.Apply(u0), f.Apply(v0)
		paths, err := c.Paths(u, v, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyContainer(g, u, v, paths); err != nil {
			t.Fatalf("orbit request %d (%s -> %s): %v", trial, g.FormatNode(u), g.FormatNode(v), err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("%d entries for one orbit, want 1", c.Len())
	}
}

// TestFullCanonRandomPairs: CanonFull stays correct on arbitrary pairs (not
// just one orbit) and never stores more entries than CanonExact would.
func TestFullCanonRandomPairs(t *testing.T) {
	g := mustGraph(t, 4)
	full := mustCache(t, g, Options{Canon: CanonFull})
	exact := mustCache(t, g, Options{})
	pairs := gen.Pairs(g, 200, gen.Uniform, 41)
	for _, p := range pairs {
		for _, c := range []*Cache{full, exact} {
			paths, err := c.Paths(p.U, p.V, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyContainer(g, p.U, p.V, paths); err != nil {
				t.Fatalf("canon=%v %s -> %s: %v", c.CanonMode(), g.FormatNode(p.U), g.FormatNode(p.V), err)
			}
		}
	}
	if full.Len() > exact.Len() {
		t.Fatalf("full canon stored %d entries, exact %d — sharing went backwards", full.Len(), exact.Len())
	}
}

// TestCanonOff: every pair gets its own entry.
func TestCanonOff(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{Canon: CanonOff})
	base := core.Pair{U: hhc.Node{X: 0x12, Y: 1}, V: hhc.Node{X: 0xe7, Y: 5}}
	for a := uint64(0); a < 16; a++ {
		u := hhc.Node{X: base.U.X ^ a, Y: base.U.Y}
		v := hhc.Node{X: base.V.X ^ a, Y: base.V.Y}
		paths, err := c.Paths(u, v, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifyContainer(g, u, v, paths); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 16 {
		t.Fatalf("%d entries, want 16 without canonicalization", c.Len())
	}
}

// TestStrategyKeysSeparate: the same pair under different strategies must
// not share an entry (their containers differ).
func TestStrategyKeysSeparate(t *testing.T) {
	g := mustGraph(t, 4)
	c := mustCache(t, g, Options{})
	u, v := hhc.Node{X: 0x0001, Y: 2}, hhc.Node{X: 0xbeef, Y: 7}
	for _, opt := range []core.Options{
		{Order: core.OrderAscending},
		{Order: core.OrderGray},
		{Order: core.OrderNearest},
		{Order: core.OrderGray, Detour: core.DetourNearest},
	} {
		want, err := core.DisjointPathsOpt(g, u, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Paths(u, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("opt %+v: wrong container served", opt)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("%d entries, want 4 (one per option set)", c.Len())
	}
}

// TestConfinedRequests: a non-zero detour mask is part of the key, still
// cached, and CanonFull degrades to the exact translation for it.
func TestConfinedRequests(t *testing.T) {
	g := mustGraph(t, 3)
	for _, mode := range []Canon{CanonExact, CanonFull} {
		c := mustCache(t, g, Options{Canon: mode})
		u, v := hhc.Node{X: 0x03, Y: 1}, hhc.Node{X: 0x0c, Y: 2}
		opt := core.Options{ConfineDetours: 0xff}
		want, err := core.DisjointPathsOpt(g, u, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := c.Paths(u, v, opt)
			if err != nil {
				t.Fatalf("canon=%v pass %d: %v", mode, pass, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("canon=%v pass %d: confined container differs", mode, pass)
			}
		}
		// Unconfined request for the same pair is a distinct entry.
		if _, err := c.Paths(u, v, core.Options{}); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 2 {
			t.Fatalf("canon=%v: %d entries, want 2", mode, c.Len())
		}
		// A mask that kills full width errors and is not cached: d has a
		// single differing dimension, so three detour dimensions are
		// needed, but the mask admits only one candidate outside d.
		tu, tv := hhc.Node{X: 0x00, Y: 1}, hhc.Node{X: 0x01, Y: 2}
		tight := core.Options{ConfineDetours: 0x3}
		if _, err := c.Paths(tu, tv, tight); !errors.Is(err, core.ErrCannotConfine) {
			t.Fatalf("canon=%v: want ErrCannotConfine, got %v", mode, err)
		}
		if c.Len() != 2 {
			t.Fatalf("canon=%v: error result was cached", mode)
		}
	}
}

// TestLRUEviction: capacity is enforced per shard with LRU order, and the
// eviction counter advances.
func TestLRUEviction(t *testing.T) {
	g := mustGraph(t, 3)
	// One shard, room for exactly 2 entries.
	c := mustCache(t, g, Options{Shards: 1, Capacity: 2})
	mk := func(y uint8) core.Pair {
		return core.Pair{U: hhc.Node{X: 0, Y: y}, V: hhc.Node{X: 0xff, Y: y}}
	}
	p0, p1, p2 := mk(0), mk(1), mk(2)
	for _, p := range []core.Pair{p0, p1} {
		if _, err := c.Paths(p.U, p.V, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch p0 so p1 is the LRU victim.
	if _, err := c.Paths(p0.U, p0.V, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Paths(p2.U, p2.V, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	snap := c.Snapshot()
	if snap.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Evictions)
	}
	// p0 must still be resident (hit), p1 evicted (miss).
	before := c.Snapshot().Hits
	if _, err := c.Paths(p0.U, p0.V, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Hits != before+1 {
		t.Fatal("recently-used entry was evicted")
	}
	missesBefore := c.Snapshot().Misses
	if _, err := c.Paths(p1.U, p1.V, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Misses != missesBefore+1 {
		t.Fatal("LRU victim still resident")
	}
}

// TestCallerOwnsResult: mutating a returned container never corrupts what
// later callers receive.
func TestCallerOwnsResult(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{})
	u, v := hhc.Node{X: 0x01, Y: 0}, hhc.Node{X: 0xfe, Y: 7}
	first, err := c.Paths(u, v, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		for j := range first[i] {
			first[i][j] = hhc.Node{X: 0xdead, Y: 0}
		}
	}
	second, err := c.Paths(u, v, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyContainer(g, u, v, second); err != nil {
		t.Fatalf("cache entry corrupted by caller mutation: %v", err)
	}
}

// TestBypassInvalidRequests: invalid pairs skip the cache and report the
// construction's own errors, without disturbing counters or entries.
func TestBypassInvalidRequests(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{})
	u := hhc.Node{X: 0x01, Y: 0}
	if _, err := c.Paths(u, u, core.Options{}); !errors.Is(err, core.ErrSameNode) {
		t.Fatalf("same node: %v", err)
	}
	if _, err := c.Paths(hhc.Node{X: 1 << 20, Y: 0}, u, core.Options{}); err == nil {
		t.Fatal("invalid node accepted")
	}
	snap := c.Snapshot()
	if snap.Lookups() != 0 || c.Len() != 0 {
		t.Fatalf("invalid requests touched the cache: %v len=%d", snap, c.Len())
	}
}

// TestBatchThroughCache: Cache.Batch matches core.DisjointPathsBatch
// results exactly (exact canonicalization) and passes BatchVerify.
func TestBatchThroughCache(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{})
	pairs := gen.Pairs(g, 100, gen.Uniform, 7)
	// Duplicate the workload so the second half hits.
	pairs = append(pairs, pairs...)
	var reqs []core.Pair
	for _, p := range pairs {
		reqs = append(reqs, core.Pair{U: p.U, V: p.V})
	}
	direct := core.DisjointPathsBatch(g, reqs, core.Options{}, 4)
	cached := c.Batch(reqs, core.Options{}, 4)
	if err := core.BatchVerify(g, cached); err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if (direct[i].Err == nil) != (cached[i].Err == nil) {
			t.Fatalf("item %d: error mismatch %v vs %v", i, direct[i].Err, cached[i].Err)
		}
		if !reflect.DeepEqual(direct[i].Paths, cached[i].Paths) {
			t.Fatalf("item %d: cached batch result differs from direct", i)
		}
	}
	if snap := c.Snapshot(); snap.Hits+snap.InflightWaits == 0 {
		t.Fatalf("duplicated workload produced no hits: %v", snap)
	}
}

// TestConstructorForeignGraph: a constructor invoked with a topology of a
// different m bypasses the cache rather than serving wrong-size containers.
func TestConstructorForeignGraph(t *testing.T) {
	g3, g2 := mustGraph(t, 3), mustGraph(t, 2)
	c := mustCache(t, g3, Options{})
	construct := c.Constructor()
	u, v := hhc.Node{X: 0x1, Y: 0}, hhc.Node{X: 0xe, Y: 2}
	paths, err := construct(g2, u, v, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyContainer(g2, u, v, paths); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("foreign-graph request was cached")
	}
}

// TestOptionsValidation: New rejects nonsense configurations.
func TestOptionsValidation(t *testing.T) {
	g := mustGraph(t, 2)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, Options{Shards: -3}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(g, Options{Canon: Canon(42)}); err == nil {
		t.Error("unknown canon mode accepted")
	}
	c := mustCache(t, g, Options{Shards: 5}) // rounds up to 8
	if len(c.shards) != 8 {
		t.Errorf("shards = %d, want 8", len(c.shards))
	}
}

// TestParseCanon: CLI spellings round-trip.
func TestParseCanon(t *testing.T) {
	for _, c := range []Canon{CanonExact, CanonFull, CanonOff} {
		got, err := ParseCanon(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCanon(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseCanon(""); err != nil || got != CanonExact {
		t.Errorf("empty spelling: %v, %v", got, err)
	}
	if _, err := ParseCanon("bogus"); err == nil {
		t.Error("bogus spelling accepted")
	}
}
