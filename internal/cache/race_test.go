package cache

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
)

// TestConcurrentHammer drives the cache from many goroutines with heavily
// overlapping pairs — the singleflight, LRU, and counter paths all race
// against each other — and checks every returned container. Run with
// `go test -race` (the CI race job does) to make the detector bite.
func TestConcurrentHammer(t *testing.T) {
	g := mustGraph(t, 3)
	for _, mode := range []Canon{CanonExact, CanonFull} {
		// Tiny capacity keeps eviction racing against lookups.
		c := mustCache(t, g, Options{Shards: 4, Capacity: 32, Canon: mode})
		base := gen.Pairs(g, 24, gen.Uniform, 3)
		const workers = 16
		const perWorker = 150
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					p := base[(w+i)%len(base)]
					// Interleave translated twins so canonicalization
					// collapses requests from different goroutines.
					shift := uint64(i%4) << 4
					u := hhc.Node{X: p.U.X ^ shift, Y: p.U.Y}
					v := hhc.Node{X: p.V.X ^ shift, Y: p.V.Y}
					paths, err := c.Paths(u, v, core.Options{})
					if err != nil {
						errs <- err
						return
					}
					if err := core.VerifyContainer(g, u, v, paths); err != nil {
						errs <- err
						return
					}
					// Scribble over the result: if any slice were shared
					// with the cache or another caller, later verifies
					// would explode.
					for pi := range paths {
						for ni := range paths[pi] {
							paths[pi][ni] = hhc.Node{X: ^uint64(0), Y: 0xff}
						}
					}
				}
				errs <- nil
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("canon=%v: %v", mode, err)
			}
		}
		snap := c.Snapshot()
		if got := snap.Lookups(); got != workers*perWorker {
			t.Fatalf("canon=%v: %d lookups accounted, want %d (%v)", mode, got, workers*perWorker, snap)
		}
	}
}

// TestConcurrentBatch hammers DisjointPathsBatchFunc through the cache
// constructor from several goroutines sharing one workload and verifies
// every batch result.
func TestConcurrentBatch(t *testing.T) {
	g := mustGraph(t, 3)
	c := mustCache(t, g, Options{})
	ps := gen.Pairs(g, 60, gen.CrossCube, 11)
	reqs := make([]core.Pair, len(ps))
	for i, p := range ps {
		reqs[i] = core.Pair{U: p.U, V: p.V}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results := core.DisjointPathsBatchFunc(g, reqs, core.Options{}, 4, c.Constructor())
			errs <- core.BatchVerify(g, results)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSingleflightDistinctSlices: goroutines requesting the same pair at
// the same time must never receive aliased backing arrays, even when they
// coalesce onto one in-flight construction.
func TestSingleflightDistinctSlices(t *testing.T) {
	g := mustGraph(t, 4)
	u, v := hhc.Node{X: 0x0001, Y: 2}, hhc.Node{X: 0xbeef, Y: 7}
	for round := 0; round < 20; round++ {
		c := mustCache(t, g, Options{}) // fresh cache: every round races the first build
		const callers = 8
		results := make([][][]hhc.Node, callers)
		var start, wg sync.WaitGroup
		start.Add(1)
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start.Wait()
				paths, err := c.Paths(u, v, core.Options{})
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = paths
			}(i)
		}
		start.Done()
		wg.Wait()
		for i := 0; i < callers; i++ {
			for j := i + 1; j < callers; j++ {
				if results[i] == nil || results[j] == nil {
					t.Fatal("missing result")
				}
				for pi := range results[i] {
					a := reflect.ValueOf(results[i][pi]).Pointer()
					b := reflect.ValueOf(results[j][pi]).Pointer()
					if a == b {
						t.Fatalf("round %d: callers %d and %d share path %d backing array", round, i, j, pi)
					}
				}
			}
		}
		// All callers must have been served the same container value.
		for i := 1; i < callers; i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Fatalf("round %d: caller %d got a different container", round, i)
			}
		}
		snap := c.Snapshot()
		if snap.Misses != 1 {
			t.Fatalf("round %d: %d constructions for one pair (%v)", round, snap.Misses, snap)
		}
	}
}
