package cache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
)

func benchGraph(b *testing.B, m int) *hhc.Graph {
	b.Helper()
	g, err := hhc.New(m)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkColdConstruction is the uncached baseline: direct construction
// for a rotating cross-cube workload at m=4.
func BenchmarkColdConstruction(b *testing.B) {
	g := benchGraph(b, 4)
	pairs := gen.Pairs(g, 64, gen.CrossCube, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := core.DisjointPathsOpt(g, p.U, p.V, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmHit serves the same workload from a warmed cache: the
// steady-state repeated-pair hot path.
func BenchmarkWarmHit(b *testing.B) {
	g := benchGraph(b, 4)
	c, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	pairs := gen.Pairs(g, 64, gen.CrossCube, 1)
	for _, p := range pairs {
		if _, err := c.Paths(p.U, p.V, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := c.Paths(p.U, p.V, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmHitCanonical rotates through X-translates of a few base
// pairs: every request is a distinct pair, yet canonicalization answers
// all of them from the handful of warmed entries.
func BenchmarkWarmHitCanonical(b *testing.B) {
	g := benchGraph(b, 4)
	c, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	base := gen.Pairs(g, 8, gen.CrossCube, 2)
	for _, p := range base {
		if _, err := c.Paths(p.U, p.V, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base[i%len(base)]
		shift := uint64(i) & 0xffff
		u := hhc.Node{X: p.U.X ^ shift, Y: p.U.Y}
		v := hhc.Node{X: p.V.X ^ shift, Y: p.V.Y}
		if _, err := c.Paths(u, v, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchCached measures the parallel batch path over a workload
// with heavy repetition, cache on vs off.
func BenchmarkBatchCached(b *testing.B) {
	g := benchGraph(b, 4)
	ps := gen.Pairs(g, 32, gen.Uniform, 3)
	var reqs []core.Pair
	for rep := 0; rep < 8; rep++ {
		for _, p := range ps {
			reqs = append(reqs, core.Pair{U: p.U, V: p.V})
		}
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DisjointPathsBatch(g, reqs, core.Options{}, 0)
		}
	})
	b.Run("cached", func(b *testing.B) {
		c, err := New(g, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			c.Batch(reqs, core.Options{}, 0)
		}
	})
}

// TestWarmSpeedupAtLeast5x is the acceptance gate: on a warm repeated-pair
// workload the cache must be at least 5x faster than direct construction.
// Measured margins are ~20-50x, so the 5x bar holds comfortably even on
// noisy CI machines; three attempts absorb scheduler hiccups.
func TestWarmSpeedupAtLeast5x(t *testing.T) {
	g, err := hhc.New(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := gen.Pairs(g, 32, gen.CrossCube, 5)
	opt := core.Options{}
	for _, p := range pairs { // warm
		if _, err := c.Paths(p.U, p.V, opt); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 40
	var best float64
	for attempt := 0; attempt < 3; attempt++ {
		direct := time.Duration(0)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, p := range pairs {
				if _, err := core.DisjointPathsOpt(g, p.U, p.V, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		direct = time.Since(start)
		start = time.Now()
		for r := 0; r < rounds; r++ {
			for _, p := range pairs {
				if _, err := c.Paths(p.U, p.V, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		warm := time.Since(start)
		speedup := float64(direct) / float64(warm)
		if speedup > best {
			best = speedup
		}
		if best >= 5 {
			break
		}
	}
	snap := c.Snapshot()
	if snap.Hits == 0 || snap.Misses != int64(len(pairs)) {
		t.Fatalf("workload not served warm: %v", snap)
	}
	if best < 5 {
		t.Fatalf("warm speedup %.1fx < 5x (counters %v)", best, snap)
	}
	t.Logf("warm repeated-pair speedup: %.1fx (%v)", best, snap)
}
