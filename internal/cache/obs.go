package cache

import "repro/internal/obs"

// Register re-exports the cache's counters through an obs registry under
// the cache_* namespace. The stats.CacheCounters stay the single source of
// truth (the cache keeps updating them as before); the registry reads them
// through callbacks at snapshot time, so there is no double bookkeeping
// and no extra cost on the lookup path.
func (c *Cache) Register(reg *obs.Registry) {
	reg.CounterFunc("cache_hits_total",
		"Lookups answered from a stored entry.", c.counters.Hits.Load)
	reg.CounterFunc("cache_misses_total",
		"Lookups that ran the underlying construction.", c.counters.Misses.Load)
	reg.CounterFunc("cache_evictions_total",
		"Entries displaced by capacity pressure.", c.counters.Evictions.Load)
	reg.CounterFunc("cache_inflight_waits_total",
		"Lookups coalesced onto an in-flight construction.", c.counters.InflightWaits.Load)
	reg.GaugeFunc("cache_entries",
		"Containers currently stored across all shards.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc("cache_hit_rate",
		"Fraction of lookups that avoided a construction.",
		func() float64 { return c.Snapshot().HitRate() })
}
