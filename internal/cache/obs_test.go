package cache

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/obs"
)

// TestRegisterExportsCounters: Register re-exports the cache's own
// counters through a registry via callbacks — snapshots must reflect live
// values without the cache doing any double bookkeeping.
func TestRegisterExportsCounters(t *testing.T) {
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Register(reg)

	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0x2a, Y: 3}
	if _, err := c.Paths(u, v, core.Options{}); err != nil {
		t.Fatal(err) // miss
	}
	if _, err := c.Paths(u, v, core.Options{}); err != nil {
		t.Fatal(err) // hit
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cache_hits_total 1",
		"cache_misses_total 1",
		"cache_entries 1",
		"cache_hit_rate 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The callbacks are live: further traffic shows up on the next
	// snapshot with no re-registration.
	if _, err := c.Paths(u, v, core.Options{}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache_hits_total 2") {
		t.Errorf("second snapshot not live:\n%s", buf.String())
	}
}
