// Package cache is a sharded, memoizing front-end for the container
// construction of internal/core. The paper's algorithm is poly(n) per pair,
// but serving workloads (fault-tolerant routing tables, repeated multi-path
// requests) ask for the same or symmetric pairs over and over; memoizing
// turns the hot path from microseconds of construction into a map lookup
// plus a copy.
//
// # Keying and canonicalization
//
// Entries are keyed by (m, order strategy, detour strategy, confine mask,
// canonical pair). Before lookup every request pair (u, v) is mapped
// through a network automorphism (internal/hhc/automorphism.go) onto a
// canonical representative, so symmetric pairs share one entry:
//
//   - CanonExact (default) translates by u.X, canonicalizing (u, v) to
//     ((0, u.Y), (u.X⊕v.X, v.Y)). All 2^t X-translates of a pair collapse
//     onto one entry. The construction is exactly equivariant under
//     X-translation — it consumes the pair only through d = u.X⊕v.X and
//     XOR-accumulates cube addresses — so cached answers are bit-identical
//     to direct DisjointPathsOpt output (asserted by tests).
//   - CanonFull composes an X-translation with the position-shuffle
//     Y-translation, mapping u onto (0, 0): every pair with the same
//     relative offset shares one entry (2^t·t-fold collapsing). The mapped
//     container is a valid verified container, but because the order and
//     detour strategies rank dimensions by absolute index, it need not be
//     the byte-for-byte output of the direct construction.
//   - CanonOff disables canonicalization (for measuring its benefit).
//
// A non-zero Options.ConfineDetours mask names absolute super-dimensions,
// which X-translation preserves but the position shuffle does not, so
// CanonFull silently degrades to CanonExact for confined requests.
//
// # Concurrency
//
// The cache is safe for concurrent use. Requests hash to one of the
// shards; each shard serializes its map under a mutex and evicts LRU
// beyond its capacity. Identical in-flight constructions are deduplicated
// (singleflight): the first requester constructs, later ones wait on the
// same result. Every caller — hit, miss, or coalesced waiter — receives a
// freshly allocated copy of the paths, so callers may mutate their result
// freely. Hit/miss/eviction/in-flight counters are exposed through
// internal/stats.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// Canon selects the canonicalization applied to request pairs before
// keying. See the package comment for the trade-offs.
type Canon int

const (
	// CanonExact canonicalizes by X-translation only: maximal sharing that
	// keeps cached results bit-identical to the direct construction.
	CanonExact Canon = iota
	// CanonFull canonicalizes by the full translation group (u maps to the
	// origin): more sharing, containers valid but possibly different from
	// the direct construction's byte-for-byte output.
	CanonFull
	// CanonOff stores every requested pair under its own key.
	CanonOff
)

// String names the mode.
func (c Canon) String() string {
	switch c {
	case CanonExact:
		return "exact"
	case CanonFull:
		return "full"
	case CanonOff:
		return "off"
	default:
		return fmt.Sprintf("Canon(%d)", int(c))
	}
}

// ParseCanon parses the CLI spelling of a Canon mode.
func ParseCanon(s string) (Canon, error) {
	switch s {
	case "exact", "":
		return CanonExact, nil
	case "full":
		return CanonFull, nil
	case "off", "none":
		return CanonOff, nil
	default:
		return 0, fmt.Errorf("cache: unknown canonicalization %q (want exact|full|off)", s)
	}
}

// Options tunes a Cache.
type Options struct {
	// Shards is the number of independent lock domains; rounded up to a
	// power of two. Zero selects DefaultShards.
	Shards int
	// Capacity bounds the total number of stored containers across all
	// shards (each shard holds Capacity/Shards, at least 1). Zero selects
	// DefaultCapacity; negative means unbounded.
	Capacity int
	// Canon selects pair canonicalization. Zero value = CanonExact.
	Canon Canon
}

// Defaults for Options zero values.
const (
	DefaultShards   = 16
	DefaultCapacity = 4096
)

// key identifies one stored container. The canonical source cube address
// is folded into cx (CanonExact and CanonFull both translate it to 0;
// CanonOff keeps u.X).
type key struct {
	order   core.OrderStrategy
	detour  core.DetourStrategy
	confine uint64
	m       uint8
	uy, vy  uint8
	ux, vx  uint64
}

// entry is one cached container; paths is immutable once stored.
type entry struct {
	k     key
	paths [][]hhc.Node
}

// call is an in-flight construction other requesters can wait on.
type call struct {
	done  chan struct{}
	paths [][]hhc.Node
	err   error
}

// shard is one lock domain: an LRU-ordered map plus the in-flight table.
type shard struct {
	mu       sync.Mutex
	entries  map[key]*list.Element // guarded by mu; element value: *entry
	lru      *list.List            // guarded by mu; front = most recently used
	inflight map[key]*call         // guarded by mu
}

// Cache memoizes container constructions for one topology.
type Cache struct {
	g        *hhc.Graph
	shards   []*shard
	mask     uint64
	perShard int // max entries per shard; <0 = unbounded
	canon    Canon
	counters stats.CacheCounters
}

// New builds a cache bound to topology g.
func New(g *hhc.Graph, opts Options) (*Cache, error) {
	if g == nil {
		return nil, fmt.Errorf("cache: nil topology")
	}
	n := opts.Shards
	if n == 0 {
		n = DefaultShards
	}
	if n < 1 {
		return nil, fmt.Errorf("cache: %d shards out of range", n)
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	cap := opts.Capacity
	if cap == 0 {
		cap = DefaultCapacity
	}
	perShard := -1
	if cap > 0 {
		perShard = (cap + pow - 1) / pow
	}
	switch opts.Canon {
	case CanonExact, CanonFull, CanonOff:
	default:
		return nil, fmt.Errorf("cache: unknown canonicalization mode %d", int(opts.Canon))
	}
	c := &Cache{
		g:        g,
		shards:   make([]*shard, pow),
		mask:     uint64(pow - 1),
		perShard: perShard,
		canon:    opts.Canon,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries:  make(map[key]*list.Element),
			lru:      list.New(),
			inflight: make(map[key]*call),
		}
	}
	return c, nil
}

// M returns the son-cube dimension of the bound topology.
func (c *Cache) M() int { return c.g.M() }

// Canon returns the configured canonicalization mode.
func (c *Cache) CanonMode() Canon { return c.canon }

// Len returns the number of stored containers.
func (c *Cache) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Snapshot reads the counters plus the current size.
func (c *Cache) Snapshot() stats.CacheSnapshot {
	return c.counters.Snapshot(int64(c.Len()))
}

// canonicalize maps (u, v) to the canonical pair under the configured mode
// and returns the automorphism carrying the canonical container back onto
// the requested one. Confined requests degrade CanonFull to CanonExact
// because the detour mask names absolute dimensions.
func (c *Cache) canonicalize(u, v hhc.Node, opt core.Options) (cu, cv hhc.Node, back hhc.Automorphism, err error) {
	mode := c.canon
	if mode == CanonFull && opt.ConfineDetours != 0 {
		mode = CanonExact
	}
	switch mode {
	case CanonOff:
		back, err = c.g.NewAutomorphism(0, 0) // identity
		return u, v, back, err
	case CanonExact:
		// Translate by u.X: an involution, so the map back is the map there.
		back, err = c.g.NewAutomorphism(u.X, 0)
		if err != nil {
			return
		}
		return hhc.Node{X: 0, Y: u.Y}, hhc.Node{X: u.X ^ v.X, Y: v.Y}, back, nil
	default: // CanonFull
		var to hhc.Automorphism
		to, err = c.g.MappingTo(u, hhc.Node{})
		if err != nil {
			return
		}
		return hhc.Node{}, to.Apply(v), to.Inverse(), nil
	}
}

// keyFor builds the shard key for a canonical pair.
func (c *Cache) keyFor(cu, cv hhc.Node, opt core.Options) key {
	return key{
		order:   opt.Order,
		detour:  opt.Detour,
		confine: opt.ConfineDetours,
		m:       uint8(c.g.M()),
		uy:      cu.Y,
		vy:      cv.Y,
		ux:      cu.X,
		vx:      cv.X,
	}
}

// shardFor hashes a key onto its shard (FNV-1a over the key fields).
func (c *Cache) shardFor(k key) *shard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(k.ux)
	mix(k.vx)
	mix(k.confine)
	mix(uint64(k.uy) | uint64(k.vy)<<8 | uint64(k.m)<<16 |
		uint64(k.order)<<24 | uint64(k.detour)<<32)
	return c.shards[h&c.mask]
}

// Paths returns the (m+1)-wide container between u and v, serving from the
// cache when possible. The result is always a fresh copy the caller owns.
// Invalid requests (unknown nodes, u == v) bypass the cache and report the
// construction's own error.
func (c *Cache) Paths(u, v hhc.Node, opt core.Options) ([][]hhc.Node, error) {
	if !c.g.Contains(u) || !c.g.Contains(v) || u == v {
		return core.DisjointPathsOpt(c.g, u, v, opt)
	}
	cu, cv, back, err := c.canonicalize(u, v, opt)
	if err != nil {
		return nil, fmt.Errorf("cache: canonicalize: %w", err)
	}
	k := c.keyFor(cu, cv, opt)
	s := c.shardFor(k)

	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.lru.MoveToFront(el)
		paths := el.Value.(*entry).paths
		s.mu.Unlock()
		c.counters.Hits.Inc()
		return mapPaths(back, paths), nil
	}
	if cl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.counters.InflightWaits.Inc()
		<-cl.done
		if cl.err != nil {
			return nil, cl.err
		}
		return mapPaths(back, cl.paths), nil
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[k] = cl
	s.mu.Unlock()
	c.counters.Misses.Inc()

	cl.paths, cl.err = core.DisjointPathsOpt(c.g, cu, cv, opt)

	s.mu.Lock()
	delete(s.inflight, k)
	if cl.err == nil {
		s.insert(k, cl.paths, c.perShard, &c.counters)
	}
	s.mu.Unlock()
	close(cl.done)

	if cl.err != nil {
		return nil, cl.err
	}
	return mapPaths(back, cl.paths), nil
}

// insert stores a container and evicts LRU entries beyond the per-shard
// capacity (cap < 0 = unbounded). Caller holds the shard lock.
//
//hhc:holds mu
func (s *shard) insert(k key, paths [][]hhc.Node, cap int, counters *stats.CacheCounters) {
	if el, ok := s.entries[k]; ok {
		// A concurrent miss for the same key already stored it; keep the
		// newer value (identical by determinism) and refresh recency.
		el.Value.(*entry).paths = paths
		s.lru.MoveToFront(el)
		return
	}
	s.entries[k] = s.lru.PushFront(&entry{k: k, paths: paths})
	for cap >= 0 && s.lru.Len() > cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry).k)
		counters.Evictions.Inc()
	}
}

// mapPaths maps a stored container through the automorphism into fresh
// slices — the stored value is never aliased by returned results.
func mapPaths(back hhc.Automorphism, paths [][]hhc.Node) [][]hhc.Node {
	out := make([][]hhc.Node, len(paths))
	for i, p := range paths {
		out[i] = back.ApplyPath(p)
	}
	return out
}

// Constructor adapts the cache to the core.Constructor signature, so it
// drops into DisjointPathsBatchFunc and internal/netsim. A graph argument
// with a different m than the cache's topology bypasses the cache.
func (c *Cache) Constructor() core.Constructor {
	return func(g *hhc.Graph, u, v hhc.Node, opt core.Options) ([][]hhc.Node, error) {
		if g.M() != c.g.M() {
			return core.DisjointPathsOpt(g, u, v, opt)
		}
		return c.Paths(u, v, opt)
	}
}

// Batch constructs containers for every pair through the cache, with the
// same concurrency and result shape as core.DisjointPathsBatch.
func (c *Cache) Batch(pairs []core.Pair, opt core.Options, workers int) []core.BatchResult {
	return core.DisjointPathsBatchFunc(c.g, pairs, opt, workers, c.Constructor())
}
