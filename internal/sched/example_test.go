package sched_test

import (
	"fmt"
	"log"

	"repro/internal/sched"
)

// Example shows backfilling slipping a small job past a blocked queue head.
func Example() {
	jobs := []sched.Job{
		{ID: 1, Arrival: 0, Order: 2, Duration: 100}, // half the 2^3 machine
		{ID: 2, Arrival: 1, Order: 3, Duration: 50},  // whole machine: blocked head
		{ID: 3, Arrival: 2, Order: 1, Duration: 10},  // fits the idle half NOW
	}
	for _, p := range []sched.Policy{sched.FCFS, sched.Backfill} {
		results, m, err := sched.Run(3, jobs, p)
		if err != nil {
			log.Fatal(err)
		}
		var start3 int64
		for _, r := range results {
			if r.ID == 3 {
				start3 = r.Start
			}
		}
		fmt.Printf("%s: job3 starts at %d, mean wait %.1f\n", p, start3, m.MeanWait)
	}
	// Output:
	// fcfs: job3 starts at 150, mean wait 82.3
	// backfill: job3 starts at 2, mean wait 33.0
}
