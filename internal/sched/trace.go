package sched

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Job traces are exchanged as CSV with the header
//
//	id,arrival,order,duration
//
// one line per job — the interchange format used by cmd/hhcsched and easy
// to produce from real scheduler logs.

// WriteTrace serializes jobs as CSV.
func WriteTrace(w io.Writer, jobs []Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival", "order", "duration"}); err != nil {
		return err
	}
	for _, j := range jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatInt(j.Arrival, 10),
			strconv.Itoa(j.Order),
			strconv.FormatInt(j.Duration, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseTrace reads a CSV job trace. The header row is required; duplicate
// IDs, negative fields, and malformed rows are rejected with the offending
// line number.
func ParseTrace(r io.Reader) ([]Job, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sched: trace header: %w", err)
	}
	want := []string{"id", "arrival", "order", "duration"}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("sched: trace header %v, want %v", header, want)
		}
	}
	var jobs []Job
	seen := map[int]bool{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sched: trace line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("sched: trace line %d: bad id %q", line, rec[0])
		}
		arrival, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil || arrival < 0 {
			return nil, fmt.Errorf("sched: trace line %d: bad arrival %q", line, rec[1])
		}
		order, err := strconv.Atoi(rec[2])
		if err != nil || order < 0 {
			return nil, fmt.Errorf("sched: trace line %d: bad order %q", line, rec[2])
		}
		duration, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil || duration <= 0 {
			return nil, fmt.Errorf("sched: trace line %d: bad duration %q", line, rec[3])
		}
		if seen[id] {
			return nil, fmt.Errorf("sched: trace line %d: duplicate job id %d", line, id)
		}
		seen[id] = true
		jobs = append(jobs, Job{ID: id, Arrival: arrival, Order: order, Duration: duration})
	}
	return jobs, nil
}
