package sched

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace: the trace parser must never panic, and every accepted
// trace must survive a write/parse round trip and be schedulable (or fail
// Run's own validation cleanly).
func FuzzParseTrace(f *testing.F) {
	f.Add("id,arrival,order,duration\n1,0,2,10\n")
	f.Add("id,arrival,order,duration\n")
	f.Add("id,arrival,order,duration\n1,0,2,10\n2,5,0,1\n")
	f.Add("")
	f.Add("garbage")
	f.Add("id,arrival,order,duration\n1,-1,2,10\n")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, j := range jobs {
			if j.Arrival < 0 || j.Order < 0 || j.Duration <= 0 {
				t.Fatalf("parser accepted invalid job %+v", j)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, jobs); err != nil {
			t.Fatal(err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(jobs) {
			t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
		}
		// Scheduling either works or rejects with a clean error (job too
		// large for the machine) — never panics or stalls.
		if _, _, err := Run(4, jobs, Backfill); err == nil {
			if _, _, err := Run(4, jobs, FCFS); err != nil {
				t.Fatalf("FCFS failed where backfill succeeded: %v", err)
			}
		}
	})
}
