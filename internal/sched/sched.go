// Package sched implements space-sharing job scheduling for a partitionable
// hierarchical hypercube on top of the buddy subcube allocator: jobs request
// 2^r son-cubes for a duration, wait in a queue when the machine is full,
// and are placed by either strict FCFS or EASY-style backfilling (later jobs
// may jump the queue iff a conservative reservation for the head job is not
// delayed). The simulator is deterministic and event-free (integer time
// steps), which keeps the policy comparison exact and testable.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alloc"
)

// Policy selects the queueing discipline.
type Policy int

const (
	// FCFS places strictly in arrival order: the queue head blocks
	// everything behind it until it fits.
	FCFS Policy = iota
	// Backfill lets later jobs start out of order as long as they do not
	// delay the queue head's earliest possible start time (EASY
	// backfilling with one reservation).
	Backfill
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Job is one scheduling request.
type Job struct {
	ID       int
	Arrival  int64 // time step the job enters the queue
	Order    int   // requests 2^Order son-cubes
	Duration int64 // run time in steps, > 0
}

// JobResult records one job's fate.
type JobResult struct {
	Job
	Start  int64 // -1 if never started
	Finish int64
	Wait   int64
}

// running pairs a started job with its allocation.
type running struct {
	res  *JobResult
	base uint64
}

// Metrics aggregates a run.
type Metrics struct {
	Jobs        int
	Finished    int
	Makespan    int64
	MeanWait    float64
	MaxWait     int64
	Utilization float64 // busy cube-steps / (total cubes × makespan)
}

// Run simulates the job list (sorted by arrival; ties by ID) to completion
// under the policy on a machine with super-cube dimension t, and returns
// per-job results plus aggregate metrics.
func Run(t int, jobs []Job, policy Policy) ([]JobResult, Metrics, error) {
	if policy != FCFS && policy != Backfill {
		return nil, Metrics{}, fmt.Errorf("sched: unknown policy %v", policy)
	}
	a, err := alloc.New(t)
	if err != nil {
		return nil, Metrics{}, err
	}
	for _, j := range jobs {
		if j.Order < 0 || j.Order > t {
			return nil, Metrics{}, fmt.Errorf("sched: job %d order %d out of range [0,%d]", j.ID, j.Order, t)
		}
		if j.Duration <= 0 {
			return nil, Metrics{}, errors.New("sched: job durations must be positive")
		}
	}
	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool {
		if pending[i].Arrival != pending[k].Arrival {
			return pending[i].Arrival < pending[k].Arrival
		}
		return pending[i].ID < pending[k].ID
	})

	results := make([]JobResult, 0, len(jobs))
	var queue []Job
	var live []running
	var now int64
	var busyCubeSteps int64
	totalCubes := int64(1) << uint(t)

	finishEarliest := func() int64 {
		earliest := int64(-1)
		for _, r := range live {
			if earliest < 0 || r.res.Finish < earliest {
				earliest = r.res.Finish
			}
		}
		return earliest
	}

	startJob := func(j Job) bool {
		base, err := a.Alloc(j.Order)
		if err != nil {
			return false
		}
		results = append(results, JobResult{Job: j, Start: now, Finish: now + j.Duration, Wait: now - j.Arrival})
		res := &results[len(results)-1]
		live = append(live, running{res: res, base: base})
		busyCubeSteps += int64(1<<uint(j.Order)) * j.Duration
		return true
	}

	for len(pending) > 0 || len(queue) > 0 || len(live) > 0 {
		// Retire finished jobs.
		keep := live[:0]
		for _, r := range live {
			if r.res.Finish <= now {
				if err := a.Free(r.base); err != nil {
					return nil, Metrics{}, err
				}
			} else {
				keep = append(keep, r)
			}
		}
		live = keep
		// Admit arrivals.
		for len(pending) > 0 && pending[0].Arrival <= now {
			queue = append(queue, pending[0])
			pending = pending[1:]
		}
		// Place from the queue.
		for len(queue) > 0 {
			if startJob(queue[0]) {
				queue = queue[1:]
				continue
			}
			break
		}
		if policy == Backfill && len(queue) > 1 {
			// Reservation for the head: the earliest time enough space
			// frees up, assuming no new starts. A backfilled job must
			// finish by then or use cubes the head cannot (conservatively:
			// must finish by the reservation).
			reservation := headReservation(t, live, queue[0])
			rest := queue[1:]
			for i := 0; i < len(rest); {
				j := rest[i]
				if now+j.Duration <= reservation && startJob(j) {
					rest = append(rest[:i], rest[i+1:]...)
					continue
				}
				i++
			}
			queue = append(queue[:1], rest...)
		}
		// Advance time: next event is an arrival or a finish.
		next := int64(-1)
		if len(pending) > 0 {
			next = pending[0].Arrival
		}
		if f := finishEarliest(); f >= 0 && (next < 0 || f < next) {
			next = f
		}
		if next < 0 || next <= now {
			if len(live) == 0 && len(queue) > 0 {
				// A queued job that fits nowhere even on an empty machine
				// was validated against above; this cannot happen.
				return nil, Metrics{}, errors.New("sched: scheduler stalled")
			}
			if len(live) == 0 && len(queue) == 0 && len(pending) == 0 {
				break
			}
			next = now + 1
		}
		now = next
	}

	m := Metrics{Jobs: len(jobs), Finished: len(results)}
	var waitSum int64
	for _, r := range results {
		if r.Finish > m.Makespan {
			m.Makespan = r.Finish
		}
		waitSum += r.Wait
		if r.Wait > m.MaxWait {
			m.MaxWait = r.Wait
		}
	}
	if len(results) > 0 {
		m.MeanWait = float64(waitSum) / float64(len(results))
	}
	if m.Makespan > 0 {
		m.Utilization = float64(busyCubeSteps) / float64(totalCubes*m.Makespan)
	}
	return results, m, nil
}

// headReservation estimates the earliest start time of the queue head:
// walk the running jobs in finish order, releasing their cubes, until an
// allocation of the head's order would succeed. Conservative (ignores
// buddy-merge specifics by simulating on a scratch allocator).
func headReservation(t int, live []running, head Job) int64 {
	// Free capacity might already admit the head at the next retirement;
	// simulate releases in finish order on a scratch copy.
	type rel struct {
		finish int64
		base   uint64
		order  int
	}
	rels := make([]rel, 0, len(live))
	scratch, err := alloc.New(t)
	if err != nil {
		return 1 << 62
	}
	// Rebuild scratch state: allocate everything the real allocator holds.
	// Orders are recoverable from the live list's jobs.
	for _, r := range live {
		base, err := scratch.Alloc(r.res.Order)
		if err != nil {
			return 1 << 62
		}
		// The scratch allocator's deterministic lowest-base policy may give
		// different bases than the live machine; buddy feasibility depends
		// only on the multiset of allocated orders, so this is safe for a
		// conservative reservation.
		rels = append(rels, rel{finish: r.res.Finish, base: base, order: r.res.Order})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].finish < rels[j].finish })
	if _, err := scratch.Alloc(head.Order); err == nil {
		// Fits now in the scratch reconstruction: next loop round will
		// start it; reserve at the earliest finish to stay conservative.
		if len(rels) > 0 {
			return rels[0].finish
		}
		return 0
	} else if !errors.Is(err, alloc.ErrNoSpace) {
		return 1 << 62
	}
	for _, r := range rels {
		if err := scratch.Free(r.base); err != nil {
			return 1 << 62
		}
		if _, err := scratch.Alloc(head.Order); err == nil {
			return r.finish
		}
	}
	return 1 << 62
}
