package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	jobs := []Job{
		{ID: 1, Arrival: 0, Order: 2, Duration: 10},
		{ID: 7, Arrival: 55, Order: 0, Duration: 3},
		{ID: 3, Arrival: 12, Order: 4, Duration: 100},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("%d jobs, want %d", len(back), len(jobs))
	}
	for i := range jobs {
		if back[i] != jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, back[i], jobs[i])
		}
	}
}

func TestParseTraceRejections(t *testing.T) {
	cases := []struct {
		name, trace string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d\n1,0,1,1\n"},
		{"bad id", "id,arrival,order,duration\nx,0,1,1\n"},
		{"negative arrival", "id,arrival,order,duration\n1,-5,1,1\n"},
		{"bad order", "id,arrival,order,duration\n1,0,x,1\n"},
		{"zero duration", "id,arrival,order,duration\n1,0,1,0\n"},
		{"duplicate id", "id,arrival,order,duration\n1,0,1,1\n1,2,1,1\n"},
		{"wrong arity", "id,arrival,order,duration\n1,0,1\n"},
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c.trace)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestParseTraceThenRun(t *testing.T) {
	trace := "id,arrival,order,duration\n1,0,3,20\n2,1,3,20\n3,2,0,5\n"
	jobs, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	results, m, err := Run(3, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if m.Finished != 3 {
		t.Fatalf("finished %d", m.Finished)
	}
	verifySchedule(t, 3, results)
}
