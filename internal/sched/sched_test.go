package sched

import (
	"math/rand"
	"testing"
)

// verifyNoOverlapSchedule re-simulates a result list and asserts that at
// every moment the total cubes in use fit the machine, jobs never start
// before arrival, and every job ran for exactly its duration.
func verifySchedule(t *testing.T, dim int, results []JobResult) {
	t.Helper()
	total := int64(1) << uint(dim)
	type ev struct {
		at    int64
		delta int64
	}
	var evs []ev
	for _, r := range results {
		if r.Start < r.Arrival {
			t.Fatalf("job %d started at %d before arrival %d", r.ID, r.Start, r.Arrival)
		}
		if r.Finish-r.Start != r.Duration {
			t.Fatalf("job %d ran %d, wants %d", r.ID, r.Finish-r.Start, r.Duration)
		}
		if r.Wait != r.Start-r.Arrival {
			t.Fatalf("job %d wait accounting wrong", r.ID)
		}
		evs = append(evs, ev{r.Start, int64(1) << uint(r.Order)}, ev{r.Finish, -(int64(1) << uint(r.Order))})
	}
	// Sweep: releases before acquisitions at equal times (the scheduler
	// retires before placing).
	inUse := int64(0)
	times := map[int64]int64{}
	for _, e := range evs {
		times[e.at] += e.delta
	}
	var order []int64
	for at := range times {
		order = append(order, at)
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, at := range order {
		inUse += times[at]
		if inUse > total {
			t.Fatalf("machine oversubscribed at t=%d: %d of %d cubes", at, inUse, total)
		}
		if inUse < 0 {
			t.Fatalf("negative usage at t=%d", at)
		}
	}
}

func TestSingleJob(t *testing.T) {
	jobs := []Job{{ID: 1, Arrival: 5, Order: 2, Duration: 10}}
	for _, p := range []Policy{FCFS, Backfill} {
		results, m, err := Run(4, jobs, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 || results[0].Start != 5 || results[0].Finish != 15 {
			t.Fatalf("%v: %+v", p, results)
		}
		if m.Makespan != 15 || m.MeanWait != 0 {
			t.Fatalf("%v metrics: %+v", p, m)
		}
		verifySchedule(t, 4, results)
	}
}

// TestBackfillJumpsBlockedHead: a whole-machine job blocks the FCFS queue;
// a small short job behind it can backfill without delaying it.
func TestBackfillJumpsBlockedHead(t *testing.T) {
	jobs := []Job{
		{ID: 1, Arrival: 0, Order: 3, Duration: 100}, // fills machine (t=3)
		{ID: 2, Arrival: 1, Order: 3, Duration: 50},  // head: must wait until 100
		{ID: 3, Arrival: 2, Order: 0, Duration: 10},  // small, short
	}
	fcfsRes, fcfsM, err := Run(3, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, 3, fcfsRes)
	bfRes, bfM, err := Run(3, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, 3, bfRes)

	get := func(results []JobResult, id int) JobResult {
		for _, r := range results {
			if r.ID == id {
				return r
			}
		}
		t.Fatalf("job %d missing", id)
		return JobResult{}
	}
	// Under FCFS job 3 waits behind job 2 (starts at 100 or later... job 2
	// occupies whole machine until 150).
	if got := get(fcfsRes, 3).Start; got < 100 {
		t.Fatalf("FCFS let job 3 start at %d", got)
	}
	// Under backfill job 3 cannot start before job 1 finishes (machine is
	// FULL until t=100), but the reservation logic must not stall: head
	// starts exactly at 100 and job 3 backfills into the leftover space.
	if got := get(bfRes, 2).Start; got != 100 {
		t.Fatalf("backfill delayed the head to %d", got)
	}
	if bfM.MeanWait > fcfsM.MeanWait {
		t.Fatalf("backfill mean wait %.1f worse than FCFS %.1f", bfM.MeanWait, fcfsM.MeanWait)
	}
}

// TestBackfillImprovesPackedWorkload: with a machine-half head blocked
// behind a long job, quarter-sized short jobs should flow through under
// backfill and wait under FCFS.
func TestBackfillImprovesPackedWorkload(t *testing.T) {
	jobs := []Job{
		{ID: 1, Arrival: 0, Order: 3, Duration: 40}, // half of t=4 machine
		{ID: 2, Arrival: 0, Order: 4, Duration: 40}, // whole machine: blocks
		{ID: 3, Arrival: 1, Order: 1, Duration: 5},
		{ID: 4, Arrival: 1, Order: 1, Duration: 5},
		{ID: 5, Arrival: 1, Order: 1, Duration: 5},
	}
	_, fcfsM, err := Run(4, jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	bfRes, bfM, err := Run(4, jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, 4, bfRes)
	if bfM.MeanWait >= fcfsM.MeanWait {
		t.Fatalf("backfill (%.2f) did not beat FCFS (%.2f)", bfM.MeanWait, fcfsM.MeanWait)
	}
	// The short jobs must have run in the free half while the whole-machine
	// job waited.
	for _, r := range bfRes {
		if r.ID >= 3 && r.Start >= 40 {
			t.Fatalf("job %d failed to backfill: start %d", r.ID, r.Start)
		}
	}
}

// TestRandomWorkloadsBothPolicies: fuzz-ish stress with an oversubscription
// oracle on every run.
func TestRandomWorkloadsBothPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		dim := 3 + r.Intn(3)
		n := 20 + r.Intn(40)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				ID:       i + 1,
				Arrival:  int64(r.Intn(200)),
				Order:    r.Intn(dim + 1),
				Duration: int64(1 + r.Intn(50)),
			}
		}
		for _, p := range []Policy{FCFS, Backfill} {
			results, m, err := Run(dim, jobs, p)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, p, err)
			}
			if m.Finished != n {
				t.Fatalf("trial %d %v: finished %d of %d", trial, p, m.Finished, n)
			}
			if m.Utilization <= 0 || m.Utilization > 1 {
				t.Fatalf("trial %d %v: utilization %.3f", trial, p, m.Utilization)
			}
			verifySchedule(t, dim, results)
		}
	}
}

// TestBackfillNeverDelaysHeadVsFCFS: the EASY property — the queue head's
// start time under backfill is never later than under FCFS.
func TestBackfillNeverDelaysHeadVsFCFS(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 15 + r.Intn(20)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{
				ID:       i + 1,
				Arrival:  int64(r.Intn(100)),
				Order:    r.Intn(4),
				Duration: int64(1 + r.Intn(30)),
			}
		}
		fcfsRes, _, err := Run(4, jobs, FCFS)
		if err != nil {
			t.Fatal(err)
		}
		bfRes, _, err := Run(4, jobs, Backfill)
		if err != nil {
			t.Fatal(err)
		}
		fcfsStart := map[int]int64{}
		for _, jr := range fcfsRes {
			fcfsStart[jr.ID] = jr.Start
		}
		// The strong EASY guarantee applies to each instantaneous queue
		// head; as a coarser but checkable proxy, total makespan must not
		// regress.
		var fcfsMakespan, bfMakespan int64
		for _, jr := range fcfsRes {
			if jr.Finish > fcfsMakespan {
				fcfsMakespan = jr.Finish
			}
		}
		for _, jr := range bfRes {
			if jr.Finish > bfMakespan {
				bfMakespan = jr.Finish
			}
		}
		if bfMakespan > fcfsMakespan {
			t.Fatalf("trial %d: backfill makespan %d > FCFS %d", trial, bfMakespan, fcfsMakespan)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := Run(3, []Job{{ID: 1, Order: 9, Duration: 1}}, FCFS); err == nil {
		t.Error("oversized job accepted")
	}
	if _, _, err := Run(3, []Job{{ID: 1, Order: 1, Duration: 0}}, FCFS); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := Run(3, nil, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, _, err := Run(99, nil, FCFS); err == nil {
		t.Error("bad machine dimension accepted")
	}
	if FCFS.String() != "fcfs" || Backfill.String() != "backfill" || Policy(7).String() == "" {
		t.Error("policy names wrong")
	}
}

func TestEmptyWorkload(t *testing.T) {
	results, m, err := Run(3, nil, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || m.Jobs != 0 || m.Makespan != 0 {
		t.Fatalf("empty workload: %+v", m)
	}
}
