package dessim_test

import (
	"fmt"
	"log"

	"repro/internal/dessim"
)

// Example simulates two packets contending for a link: the engine is
// topology-agnostic — any comparable node type works.
func Example() {
	packets := []dessim.Packet[string]{
		{Route: []string{"a", "b", "c"}, Flits: 4, Release: 0, Msg: 0},
		{Route: []string{"a", "b"}, Flits: 4, Release: 0, Msg: 1},
	}
	done, links, err := dessim.SimulateEx(packets, 2, dessim.StoreAndForward)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("message completions:", done)
	fmt.Printf("hottest link: %s->%s busy %d cycles\n",
		links[0].From, links[0].To, links[0].Busy)
	// Output:
	// message completions: [8 8]
	// hottest link: a->b busy 8 cycles
}
