package dessim

import (
	"math/rand"
	"testing"
)

func TestSingleHopSAF(t *testing.T) {
	done, err := Simulate([]Packet[int]{
		{Route: []int{1, 2}, Flits: 10, Release: 5, Msg: 0},
	}, 1, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 15 {
		t.Fatalf("done at %d, want release+flits = 15", done[0])
	}
}

func TestMultiHopSAF(t *testing.T) {
	// 3 hops × 4 flits = 12 cycles.
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1, 2, 3}, Flits: 4, Release: 0, Msg: 0},
	}, 1, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 12 {
		t.Fatalf("done at %d, want 12", done[0])
	}
}

func TestMultiHopCutThrough(t *testing.T) {
	// Head: 3 cycles to reach the destination; tail: +4 flits.
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1, 2, 3}, Flits: 4, Release: 0, Msg: 0},
	}, 1, CutThrough)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 7 {
		t.Fatalf("done at %d, want hops+flits = 7", done[0])
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two packets share link 0->1; the second must wait.
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1}, Flits: 10, Release: 0, Msg: 0},
		{Route: []int{0, 1}, Flits: 10, Release: 0, Msg: 1},
	}, 2, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 10 || done[1] != 20 {
		t.Fatalf("done = %v, want [10 20]", done)
	}
}

func TestContentionTieBreakDeterministic(t *testing.T) {
	// Identical releases: submission order wins, every run.
	for trial := 0; trial < 5; trial++ {
		done, err := Simulate([]Packet[string]{
			{Route: []string{"a", "b"}, Flits: 3, Release: 7, Msg: 0},
			{Route: []string{"a", "b"}, Flits: 3, Release: 7, Msg: 1},
			{Route: []string{"a", "b"}, Flits: 3, Release: 7, Msg: 2},
		}, 3, StoreAndForward)
		if err != nil {
			t.Fatal(err)
		}
		if done[0] != 10 || done[1] != 13 || done[2] != 16 {
			t.Fatalf("done = %v", done)
		}
	}
}

func TestStripedMessageCompletesAtLastPacket(t *testing.T) {
	// One message split over two disjoint routes of different lengths.
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1, 9}, Flits: 5, Release: 0, Msg: 0},
		{Route: []int{0, 2, 3, 9}, Flits: 5, Release: 0, Msg: 0},
	}, 1, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 15 { // slower stripe: 3 hops × 5
		t.Fatalf("message done at %d, want 15", done[0])
	}
}

func TestSelfDelivery(t *testing.T) {
	done, err := Simulate([]Packet[int]{
		{Route: []int{4}, Flits: 1, Release: 3, Msg: 0},
	}, 1, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 3 {
		t.Fatalf("single-node route done at %d, want release time", done[0])
	}
}

func TestNoPacketsMessage(t *testing.T) {
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1}, Flits: 1, Release: 0, Msg: 1},
	}, 2, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != -1 {
		t.Fatalf("empty message should stay -1, got %d", done[0])
	}
	if done[1] != 1 {
		t.Fatalf("done[1] = %d", done[1])
	}
}

// TestLowerBoundProperty: for random workloads, every message completes no
// earlier than its contention-free minimum (release + flits × hops under
// store-and-forward; release + hops + flits under cut-through), and no
// earlier than its release.
func TestLowerBoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		packets := make([]Packet[int], n)
		for i := range packets {
			hops := 1 + r.Intn(6)
			route := make([]int, hops+1)
			route[0] = r.Intn(10)
			for h := 1; h <= hops; h++ {
				route[h] = route[h-1] + 1 + r.Intn(5) // strictly increasing: simple
			}
			packets[i] = Packet[int]{
				Route:   route,
				Flits:   int64(1 + r.Intn(20)),
				Release: int64(r.Intn(100)),
				Msg:     i,
			}
		}
		for _, sw := range []Switching{StoreAndForward, CutThrough} {
			done, err := Simulate(packets, n, sw)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range packets {
				hops := int64(len(p.Route) - 1)
				var min int64
				if sw == StoreAndForward {
					min = p.Release + p.Flits*hops
				} else {
					min = p.Release + hops + p.Flits
				}
				if done[i] < min {
					t.Fatalf("trial %d %v: packet %d done at %d, physical minimum %d",
						trial, sw, i, done[i], min)
				}
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Simulate([]Packet[int]{{Route: nil, Flits: 1}}, 1, StoreAndForward); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := Simulate([]Packet[int]{{Route: []int{0}, Flits: 0}}, 1, StoreAndForward); err == nil {
		t.Error("zero flits accepted")
	}
	if _, err := Simulate([]Packet[int]{{Route: []int{0}, Flits: 1, Msg: 5}}, 1, StoreAndForward); err == nil {
		t.Error("message index out of range accepted")
	}
}

// TestLinkStats: SimulateEx reports per-link busy time and crossing counts,
// hottest first.
func TestLinkStats(t *testing.T) {
	_, links, err := SimulateEx([]Packet[int]{
		{Route: []int{0, 1, 2}, Flits: 10, Release: 0, Msg: 0},
		{Route: []int{0, 1}, Flits: 10, Release: 0, Msg: 1},
	}, 2, StoreAndForward)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("%d links, want 2", len(links))
	}
	// Link 0->1 carried both packets: 20 busy cycles; 1->2 only one.
	if links[0].From != 0 || links[0].To != 1 || links[0].Busy != 20 || links[0].Packets != 2 {
		t.Fatalf("hottest link wrong: %+v", links[0])
	}
	if links[1].Busy != 10 || links[1].Packets != 1 {
		t.Fatalf("second link wrong: %+v", links[1])
	}
}

// TestCutThroughLinkHoldBlocks: under cut-through the link is held for the
// full body, so a second worm sharing a link stalls behind the first.
func TestCutThroughLinkHoldBlocks(t *testing.T) {
	done, err := Simulate([]Packet[int]{
		{Route: []int{0, 1, 2}, Flits: 8, Release: 0, Msg: 0},
		{Route: []int{0, 1, 3}, Flits: 8, Release: 0, Msg: 1},
	}, 2, CutThrough)
	if err != nil {
		t.Fatal(err)
	}
	// Worm 0: head crosses 0->1 at cycle 1, 1->2 at 2, tail done 2+8=10.
	if done[0] != 10 {
		t.Fatalf("worm 0 done at %d, want 10", done[0])
	}
	// Worm 1: link 0->1 busy until 8; head crosses at 9, then 1->3 at 10,
	// done 10+8 = 18.
	if done[1] != 18 {
		t.Fatalf("worm 1 done at %d, want 18", done[1])
	}
}
