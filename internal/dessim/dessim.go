// Package dessim is the network-agnostic discrete-event core under the
// simulators in this repository: store-and-forward or virtual cut-through
// packet forwarding over directed links with FIFO serialization, for any
// comparable node type. It knows nothing about topologies or routing — the
// caller supplies each packet's concrete route — which is what lets the
// same engine drive hierarchical hypercubes, plain hypercubes, hierarchical
// cubic networks, and cube-connected cycles in the cross-network
// experiments.
package dessim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Switching selects the flow-control model.
type Switching int

const (
	// StoreAndForward: an F-flit packet occupies each link for F cycles and
	// is only forwarded once fully received.
	StoreAndForward Switching = iota
	// CutThrough: the head flit advances one hop per cycle while the body
	// streams behind; stalled worms buffer at nodes (virtual cut-through).
	CutThrough
)

// Packet is one unit of simulated traffic. Packets with the same Msg index
// belong to one message (stripes); the message completes when its last
// packet is fully received.
type Packet[N comparable] struct {
	Route   []N   // at least the source; a single-node route delivers instantly
	Flits   int64 // > 0
	Release int64 // creation time
	Msg     int   // message index, >= 0
}

// LinkUse records a directed link's traffic during a simulation.
type LinkUse[N comparable] struct {
	From, To N
	Busy     int64 // cycles the link was occupied
	Packets  int64 // packets that crossed it
}

// Simulate runs the event loop and returns, for every message index in
// 0..numMsgs-1, the cycle at which its last packet was fully received (-1
// for messages with no packets). Packets are serialized per directed link
// in global time order with deterministic tie-breaking by submission order.
func Simulate[N comparable](packets []Packet[N], numMsgs int, sw Switching) ([]int64, error) {
	done, _, err := SimulateEx(packets, numMsgs, sw)
	return done, err
}

// SimulateEx additionally returns per-link usage statistics, sorted by
// descending busy time (the hottest links first).
func SimulateEx[N comparable](packets []Packet[N], numMsgs int, sw Switching) ([]int64, []LinkUse[N], error) {
	done := make([]int64, numMsgs)
	for i := range done {
		done[i] = -1
	}
	remaining := make([]int, numMsgs)

	type event struct {
		time int64
		seq  int64
		pkt  int
		hop  int
	}
	events := &eventHeap[event]{less: func(a, b event) bool {
		if a.time != b.time {
			return a.time < b.time
		}
		return a.seq < b.seq
	}}
	var seq int64
	push := func(t int64, pkt, hop int) {
		seq++
		heap.Push(events, event{time: t, seq: seq, pkt: pkt, hop: hop})
	}

	for i, p := range packets {
		if len(p.Route) == 0 {
			return nil, nil, fmt.Errorf("dessim: packet %d has empty route", i)
		}
		if p.Flits <= 0 {
			return nil, nil, fmt.Errorf("dessim: packet %d has %d flits", i, p.Flits)
		}
		if p.Msg < 0 || p.Msg >= numMsgs {
			return nil, nil, fmt.Errorf("dessim: packet %d names message %d of %d", i, p.Msg, numMsgs)
		}
		remaining[p.Msg]++
		push(p.Release, i, 0)
	}

	type linkKey struct{ from, to N }
	linkFree := make(map[linkKey]int64)
	busy := make(map[linkKey]int64)
	crossed := make(map[linkKey]int64)

	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		p := &packets[ev.pkt]
		if ev.hop == len(p.Route)-1 {
			doneAt := ev.time
			if sw == CutThrough && len(p.Route) > 1 {
				doneAt += p.Flits // wait for the tail
			}
			remaining[p.Msg]--
			if doneAt > done[p.Msg] {
				done[p.Msg] = doneAt
			}
			continue
		}
		lk := linkKey{from: p.Route[ev.hop], to: p.Route[ev.hop+1]}
		start := ev.time
		if free := linkFree[lk]; free > start {
			start = free
		}
		busy[lk] += p.Flits
		crossed[lk]++
		if sw == CutThrough {
			linkFree[lk] = start + p.Flits
			push(start+1, ev.pkt, ev.hop+1)
		} else {
			finish := start + p.Flits
			linkFree[lk] = finish
			push(finish, ev.pkt, ev.hop+1)
		}
	}
	// Messages whose packets all arrived keep their completion time; the
	// loop above always drains, so remaining is zero for every message that
	// had packets.
	for m, r := range remaining {
		if r != 0 {
			return nil, nil, fmt.Errorf("dessim: message %d left with %d packets in flight", m, r)
		}
	}
	links := make([]LinkUse[N], 0, len(busy))
	for lk, b := range busy {
		links = append(links, LinkUse[N]{From: lk.from, To: lk.to, Busy: b, Packets: crossed[lk]})
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Busy > links[j].Busy })
	return done, links, nil
}

// eventHeap is a tiny generic heap.
type eventHeap[E any] struct {
	items []E
	less  func(a, b E) bool
}

func (h *eventHeap[E]) Len() int           { return len(h.items) }
func (h *eventHeap[E]) Less(i, j int) bool { return h.less(h.items[i], h.items[j]) }
func (h *eventHeap[E]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap[E]) Push(x interface{}) { h.items = append(h.items, x.(E)) }
func (h *eventHeap[E]) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
