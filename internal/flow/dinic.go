package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// MaxFlowDinic pushes up to limit units from s to t using Dinic's
// algorithm (BFS level graph + DFS blocking flows). On the unit-capacity
// split graphs this package builds, Dinic runs in O(E·√V) and is the
// preferred engine for wide cuts; for the handful-of-paths cuts of
// interconnection networks Edmonds–Karp is equally fine, so both engines
// are kept and differentially tested against each other.
func (nw *Network) MaxFlowDinic(s, t int32, limit int32) int32 {
	if limit <= 0 {
		limit = math.MaxInt32
	}
	level := make([]int32, nw.n)
	iter := make([]int32, nw.n)
	queue := make([]int32, 0, nw.n)
	var total int32

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for e := nw.first[v]; e != -1; e = nw.next[e] {
				w := nw.to[e]
				if nw.cap[e] > 0 && level[w] == -1 {
					level[w] = level[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return level[t] != -1
	}

	var dfs func(v int32, pushed int32) int32
	dfs = func(v int32, pushed int32) int32 {
		if v == t {
			return pushed
		}
		for ; iter[v] != -1; iter[v] = nw.next[iter[v]] {
			e := iter[v]
			w := nw.to[e]
			if nw.cap[e] <= 0 || level[w] != level[v]+1 {
				continue
			}
			d := pushed
			if nw.cap[e] < d {
				d = nw.cap[e]
			}
			if got := dfs(w, d); got > 0 {
				nw.cap[e] -= got
				nw.cap[e^1] += got
				return got
			}
		}
		return 0
	}

	for total < limit && bfs() {
		copy(iter, nw.first)
		for total < limit {
			pushed := dfs(s, limit-total)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// VertexDisjointPathsDinic is VertexDisjointPaths with the Dinic engine
// (always max-cardinality; no min-cost variant).
func VertexDisjointPathsDinic(g graph.Graph, s, t uint64, limit int) ([][]uint64, error) {
	if s == t {
		return nil, fmt.Errorf("flow: source equals target (%d)", s)
	}
	if int64(s) >= g.Order() || int64(t) >= g.Order() {
		return nil, fmt.Errorf("flow: vertex out of range [0,%d)", g.Order())
	}
	nw, err := splitNetwork(g, map[uint64]bool{s: true, t: true})
	if err != nil {
		return nil, err
	}
	units := nw.MaxFlowDinic(int32(2*s+1), int32(2*t), int32(limit))
	return extractPaths(nw, s, t, int(units)), nil
}
