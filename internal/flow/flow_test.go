package flow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestMaxFlowTextbook(t *testing.T) {
	// Classic 6-vertex example with max flow 23.
	nw := NewNetwork(6)
	type e struct{ u, v, c int32 }
	for _, x := range []e{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4}, {1, 3, 12},
		{3, 2, 9}, {2, 4, 14}, {4, 3, 7}, {3, 5, 20}, {4, 5, 4},
	} {
		nw.AddEdge(x.u, x.v, x.c, 0)
	}
	if got := nw.MaxFlow(0, 5, 0); got != 23 {
		t.Fatalf("max flow = %d, want 23", got)
	}
}

func TestMaxFlowLimit(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddEdge(0, 1, 10, 0)
	if got := nw.MaxFlow(0, 1, 3); got != 3 {
		t.Fatalf("limited flow = %d, want 3", got)
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// Two parallel routes: cost 1 and cost 10; one unit must take the cheap one.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 1, 1)
	nw.AddEdge(1, 3, 1, 0)
	nw.AddEdge(0, 2, 1, 10)
	nw.AddEdge(2, 3, 1, 0)
	flow, cost := nw.MinCostFlow(0, 3, 1)
	if flow != 1 || cost != 1 {
		t.Fatalf("flow=%d cost=%d, want 1,1", flow, cost)
	}
	// Second unit forced onto the expensive route.
	flow, cost = nw.MinCostFlow(0, 3, 1)
	if flow != 1 || cost != 10 {
		t.Fatalf("second unit: flow=%d cost=%d, want 1,10", flow, cost)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	nw := NewNetwork(2)
	nw.AddEdge(0, 5, 1, 0)
}

// cycleGraph builds C_n for disjoint-path sanity checks: exactly 2 disjoint
// paths between any two distinct vertices.
func cycleGraph(n int64) graph.Graph {
	return graph.FuncGraph{N: n, Degree: 2, Fn: func(v uint64, buf []uint64) []uint64 {
		return append(buf, (v+1)%uint64(n), (v+uint64(n)-1)%uint64(n))
	}}
}

// cubeGraph builds Q_k over IDs.
func cubeGraph(k int) graph.Graph {
	return graph.FuncGraph{N: 1 << uint(k), Degree: k, Fn: func(v uint64, buf []uint64) []uint64 {
		for i := 0; i < k; i++ {
			buf = append(buf, v^(1<<uint(i)))
		}
		return buf
	}}
}

func verifyDisjointIDs(t *testing.T, g graph.Graph, s, d uint64, paths [][]uint64) {
	t.Helper()
	seen := map[uint64]int{}
	for pi, p := range paths {
		if p[0] != s || p[len(p)-1] != d {
			t.Fatalf("path %d endpoints %v", pi, p)
		}
		inner := map[uint64]bool{}
		for i := 1; i < len(p); i++ {
			nbrs := g.Neighbors(p[i-1], nil)
			ok := false
			for _, w := range nbrs {
				if w == p[i] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("path %d not contiguous at %d: %v", pi, i, p)
			}
			if i < len(p)-1 {
				if inner[p[i]] {
					t.Fatalf("path %d self-intersects: %v", pi, p)
				}
				inner[p[i]] = true
				if prev, dup := seen[p[i]]; dup {
					t.Fatalf("paths %d and %d share %d", prev, pi, p[i])
				}
				seen[p[i]] = pi
			}
		}
	}
}

func TestVertexDisjointPathsCycle(t *testing.T) {
	g := cycleGraph(9)
	for _, minCost := range []bool{false, true} {
		paths, err := VertexDisjointPaths(g, 1, 5, 0, minCost)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 2 {
			t.Fatalf("cycle gives %d paths, want 2", len(paths))
		}
		verifyDisjointIDs(t, g, 1, 5, paths)
	}
}

func TestVertexDisjointPathsCube(t *testing.T) {
	for k := 2; k <= 5; k++ {
		g := cubeGraph(k)
		r := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 30; trial++ {
			s := r.Uint64() & (1<<uint(k) - 1)
			d := r.Uint64() & (1<<uint(k) - 1)
			if s == d {
				continue
			}
			paths, err := VertexDisjointPaths(g, s, d, 0, k <= 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != k {
				t.Fatalf("Q_%d: %d disjoint paths, want %d (connectivity)", k, len(paths), k)
			}
			verifyDisjointIDs(t, g, s, d, paths)
		}
	}
}

func TestVertexDisjointPathsLimit(t *testing.T) {
	g := cubeGraph(4)
	paths, err := VertexDisjointPaths(g, 0, 15, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("limited to 2, got %d", len(paths))
	}
	verifyDisjointIDs(t, g, 0, 15, paths)
}

func TestVertexDisjointPathsErrors(t *testing.T) {
	g := cycleGraph(5)
	if _, err := VertexDisjointPaths(g, 2, 2, 0, false); err == nil {
		t.Fatal("s == t: want error")
	}
	if _, err := VertexDisjointPaths(g, 0, 9, 0, false); err == nil {
		t.Fatal("out of range: want error")
	}
}

func TestLocalConnectivity(t *testing.T) {
	if k, err := LocalConnectivity(cycleGraph(8), 0, 4); err != nil || k != 2 {
		t.Fatalf("cycle connectivity = %d, %v; want 2", k, err)
	}
	if k, err := LocalConnectivity(cubeGraph(4), 3, 12); err != nil || k != 4 {
		t.Fatalf("Q_4 connectivity = %d, %v; want 4", k, err)
	}
	// Path graph: cut vertex makes connectivity 1.
	path := graph.FuncGraph{N: 3, Degree: 2, Fn: func(v uint64, buf []uint64) []uint64 {
		switch v {
		case 0:
			return append(buf, 1)
		case 1:
			return append(buf, 0, 2)
		default:
			return append(buf, 1)
		}
	}}
	if k, err := LocalConnectivity(path, 0, 2); err != nil || k != 1 {
		t.Fatalf("path connectivity = %d, %v; want 1", k, err)
	}
}

func TestFanOnCube(t *testing.T) {
	g := cubeGraph(4)
	targets := []uint64{0b1111, 0b0110, 0b1000}
	fan, err := VertexDisjointFan(g, 0, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(fan) != 3 {
		t.Fatalf("fan size %d", len(fan))
	}
	seen := map[uint64]int{}
	for i, p := range fan {
		if p[0] != 0 || p[len(p)-1] != targets[i] {
			t.Fatalf("fan %d endpoints wrong: %v", i, p)
		}
		for _, v := range p[1:] {
			if prev, dup := seen[v]; dup {
				t.Fatalf("fan paths %d and %d share %d", prev, i, v)
			}
			seen[v] = i
		}
	}
}

func TestFanErrors(t *testing.T) {
	g := cycleGraph(6)
	if _, err := VertexDisjointFan(g, 0, []uint64{0}); err == nil {
		t.Fatal("target==src: want error")
	}
	if _, err := VertexDisjointFan(g, 0, []uint64{2, 2}); err == nil {
		t.Fatal("duplicate: want error")
	}
	// A cycle is only 2-connected: a 3-target fan must fail.
	if _, err := VertexDisjointFan(g, 0, []uint64{1, 3, 5}); err == nil {
		t.Fatal("fan beyond connectivity: want error")
	}
	if got, err := VertexDisjointFan(g, 0, nil); err != nil || got != nil {
		t.Fatalf("empty fan: %v, %v", got, err)
	}
}
