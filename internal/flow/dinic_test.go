package flow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestDinicTextbook(t *testing.T) {
	nw := NewNetwork(6)
	type e struct{ u, v, c int32 }
	for _, x := range []e{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4}, {1, 3, 12},
		{3, 2, 9}, {2, 4, 14}, {4, 3, 7}, {3, 5, 20}, {4, 5, 4},
	} {
		nw.AddEdge(x.u, x.v, x.c, 0)
	}
	if got := nw.MaxFlowDinic(0, 5, 0); got != 23 {
		t.Fatalf("Dinic max flow = %d, want 23", got)
	}
}

func TestDinicLimit(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddEdge(0, 1, 10, 0)
	if got := nw.MaxFlowDinic(0, 1, 4); got != 4 {
		t.Fatalf("limited Dinic flow = %d, want 4", got)
	}
}

// TestDinicEquivalenceRandom differentially tests Dinic against
// Edmonds–Karp on random sparse digraphs.
func TestDinicEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 120; trial++ {
		n := 4 + r.Intn(12)
		edges := 2 * n
		type e struct{ u, v, c int32 }
		es := make([]e, 0, edges)
		for i := 0; i < edges; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			es = append(es, e{u, v, int32(1 + r.Intn(9))})
		}
		build := func() *Network {
			nw := NewNetwork(n)
			for _, x := range es {
				nw.AddEdge(x.u, x.v, x.c, 0)
			}
			return nw
		}
		s, d := int32(0), int32(n-1)
		ek := build().MaxFlow(s, d, 0)
		din := build().MaxFlowDinic(s, d, 0)
		if ek != din {
			t.Fatalf("trial %d: Edmonds-Karp %d != Dinic %d", trial, ek, din)
		}
	}
}

// TestDinicDisjointPathsOnCube: the Dinic-backed path extractor matches the
// connectivity and yields genuinely disjoint paths.
func TestDinicDisjointPathsOnCube(t *testing.T) {
	k := 4
	g := graph.FuncGraph{N: 1 << uint(k), Degree: k, Fn: func(v uint64, buf []uint64) []uint64 {
		for i := 0; i < k; i++ {
			buf = append(buf, v^(1<<uint(i)))
		}
		return buf
	}}
	paths, err := VertexDisjointPathsDinic(g, 0, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != k {
		t.Fatalf("Dinic finds %d paths, want %d", len(paths), k)
	}
	verifyDisjointIDs(t, g, 0, 15, paths)
	// Errors surface.
	if _, err := VertexDisjointPathsDinic(g, 3, 3, 0); err == nil {
		t.Fatal("s == t accepted")
	}
	if _, err := VertexDisjointPathsDinic(g, 0, 99, 0); err == nil {
		t.Fatal("out of range accepted")
	}
}
