package flow

import (
	"fmt"

	"repro/internal/graph"
)

// splitNetwork builds the node-split transformation of g: every vertex v
// becomes in(v)=2v and out(v)=2v+1 joined by a unit-capacity edge (infinite
// for the vertices in unbounded), and every undirected edge {u,v} becomes
// out(u)->in(v) and out(v)->in(u) with unit capacity. Edge costs are 1 on
// adjacency edges and 0 on split edges so that min-cost solutions minimize
// total path length.
func splitNetwork(g graph.Graph, unbounded map[uint64]bool) (*Network, error) {
	n := g.Order()
	if n > graph.MaxDenseOrder/2 {
		return nil, fmt.Errorf("%w: order %d", graph.ErrTooLarge, n)
	}
	nw := NewNetwork(int(2 * n))
	buf := make([]uint64, 0, g.MaxDegree())
	const inf = int32(1 << 30)
	for v := int64(0); v < n; v++ {
		capV := int32(1)
		if unbounded[uint64(v)] {
			capV = inf
		}
		nw.AddEdge(int32(2*v), int32(2*v+1), capV, 0)
		buf = g.Neighbors(uint64(v), buf[:0])
		for _, w := range buf {
			nw.AddEdge(int32(2*v+1), int32(2*uint64(w)), 1, 1)
		}
	}
	return nw, nil
}

// extractPaths decomposes a unit flow on a split network into vertex paths
// from s to t (original vertex IDs). Each unit of flow yields one path.
func extractPaths(nw *Network, s, t uint64, units int) [][]uint64 {
	paths := make([][]uint64, 0, units)
	// consumed marks edge IDs already claimed by an extracted path.
	consumed := make(map[int32]bool)
	for p := 0; p < units; p++ {
		path := []uint64{s}
		cur := int32(2*s + 1) // out(s)
		for {
			var chosen int32 = -1
			for e := nw.first[cur]; e != -1; e = nw.next[e] {
				if e%2 != 0 || consumed[e] {
					continue // residual twin or already used
				}
				if nw.Flow(int(e)) > 0 && nw.cost[e] > 0 { // adjacency edge carrying flow
					chosen = e
					break
				}
			}
			if chosen == -1 {
				break
			}
			consumed[chosen] = true
			next := uint64(nw.to[chosen]) / 2 // in(next) -> original ID
			path = append(path, next)
			if next == t {
				break
			}
			cur = int32(2*next + 1)
		}
		if len(path) > 1 && path[len(path)-1] == t {
			paths = append(paths, path)
		}
	}
	return paths
}

// VertexDisjointPaths returns up to limit pairwise internally vertex-disjoint
// paths from s to t in g, computed by max flow on the node-split graph
// (Menger's theorem). limit <= 0 finds the maximum number. When minCost is
// true the min-cost solver is used, which makes the total length of the
// returned family minimum for its cardinality; this is only advisable for
// small graphs.
func VertexDisjointPaths(g graph.Graph, s, t uint64, limit int, minCost bool) ([][]uint64, error) {
	if s == t {
		return nil, fmt.Errorf("flow: source equals target (%d)", s)
	}
	if int64(s) >= g.Order() || int64(t) >= g.Order() {
		return nil, fmt.Errorf("flow: vertex out of range [0,%d)", g.Order())
	}
	nw, err := splitNetwork(g, map[uint64]bool{s: true, t: true})
	if err != nil {
		return nil, err
	}
	src, dst := int32(2*s+1), int32(2*t)
	var units int32
	if minCost {
		units, _ = nw.MinCostFlow(src, dst, int32(limit))
	} else {
		units = nw.MaxFlow(src, dst, int32(limit))
	}
	return extractPaths(nw, s, t, int(units)), nil
}

// LocalConnectivity returns the maximum number of internally vertex-disjoint
// s-t paths, i.e. the size of a minimum s-t vertex cut when s and t are not
// adjacent (Menger).
func LocalConnectivity(g graph.Graph, s, t uint64) (int, error) {
	if s == t {
		return 0, fmt.Errorf("flow: source equals target (%d)", s)
	}
	nw, err := splitNetwork(g, map[uint64]bool{s: true, t: true})
	if err != nil {
		return 0, err
	}
	return int(nw.MaxFlow(int32(2*s+1), int32(2*t), 0)), nil
}

// VertexDisjointFan returns len(targets) paths from src to each target,
// pairwise sharing no vertex except src, and such that no path passes
// through another target. The family minimizes total length (min-cost flow).
// Returned paths are ordered to match targets. Targets must be distinct and
// different from src; an error is returned if no full fan exists (by the fan
// lemma one always exists when the graph is len(targets)-connected).
func VertexDisjointFan(g graph.Graph, src uint64, targets []uint64) ([][]uint64, error) {
	k := len(targets)
	if k == 0 {
		return nil, nil
	}
	seen := make(map[uint64]bool, k)
	for _, t := range targets {
		if t == src {
			return nil, fmt.Errorf("flow: fan target equals source %d", src)
		}
		if seen[t] {
			return nil, fmt.Errorf("flow: duplicate fan target %d", t)
		}
		seen[t] = true
	}
	n := g.Order()
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: fan wants order <= 2^20, have %d", graph.ErrTooLarge, n)
	}
	nw, err := splitNetwork(g, map[uint64]bool{src: true})
	if err != nil {
		return nil, err
	}
	// Super-sink collecting one unit from each target's OUT-side. A full fan
	// saturates every out(t)->super edge, which consumes each target's unit
	// vertex capacity on termination — so no other path can pass through a
	// target, giving the strong fan property (paths meet the target set only
	// at their own endpoints).
	super := int32(nw.Order())
	// Grow the network by one vertex: rebuild is avoided by appending heads.
	nw.first = append(nw.first, -1)
	nw.n++
	for _, t := range targets {
		nw.AddEdge(int32(2*t+1), super, 1, 0)
	}
	got, _ := nw.MinCostFlow(int32(2*src+1), super, int32(k))
	if got != int32(k) {
		return nil, fmt.Errorf("flow: fan from %d to %d targets: only %d disjoint paths exist", src, k, got)
	}
	raw := extractFanPaths(nw, src, targets)
	if len(raw) != k {
		return nil, fmt.Errorf("flow: fan decomposition produced %d of %d paths", len(raw), k)
	}
	// Order by target.
	byEnd := make(map[uint64][]uint64, k)
	for _, p := range raw {
		byEnd[p[len(p)-1]] = p
	}
	out := make([][]uint64, k)
	for i, t := range targets {
		p, ok := byEnd[t]
		if !ok {
			return nil, fmt.Errorf("flow: fan missing path to target %d", t)
		}
		out[i] = p
	}
	return out, nil
}

// extractFanPaths walks unit flows from src until a vertex whose in->super
// edge carries flow is reached.
func extractFanPaths(nw *Network, src uint64, targets []uint64) [][]uint64 {
	targetSet := make(map[uint64]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	var paths [][]uint64
	consumed := make(map[int32]bool)
	for range targets {
		path := []uint64{src}
		cur := int32(2*src + 1)
		for {
			var chosen int32 = -1
			for e := nw.first[cur]; e != -1; e = nw.next[e] {
				if e%2 != 0 || consumed[e] {
					continue
				}
				if nw.Flow(int(e)) > 0 && nw.cost[e] > 0 {
					chosen = e
					break
				}
			}
			if chosen == -1 {
				break
			}
			consumed[chosen] = true
			next := uint64(nw.to[chosen]) / 2
			path = append(path, next)
			// Every target's out->super edge is saturated in a full fan, so
			// its single vertex unit is consumed by termination: a reached
			// target always ends the path.
			if targetSet[next] {
				break
			}
			cur = int32(2*next + 1)
		}
		if len(path) > 1 && targetSet[path[len(path)-1]] {
			paths = append(paths, path)
		}
	}
	return paths
}
