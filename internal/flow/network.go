// Package flow implements maximum flow and minimum-cost maximum flow on
// explicit networks, plus vertex-capacity (node-splitting) helpers that turn
// Menger's theorem into an executable baseline: the maximum number of
// vertex-disjoint paths between two vertices of an implicit graph.
//
// Two solvers are provided:
//
//   - MaxFlow: Edmonds–Karp (BFS augmentation). Linear-memory, suitable for
//     split graphs with millions of vertices when only a handful of
//     augmenting paths are needed (path counts in interconnection networks
//     are bounded by the degree).
//   - MinCostFlow: successive shortest augmenting paths with SPFA. Intended
//     for small networks (hundreds of vertices), where it yields the
//     minimum-total-length family of disjoint paths.
package flow

import (
	"errors"
	"fmt"
	"math"
)

// Network is a directed flow network with parallel-edge support. Adding an
// edge implicitly adds its residual reverse edge.
type Network struct {
	n     int
	first []int32 // head of per-vertex edge list, -1 terminated
	next  []int32 // next edge in the source vertex's list
	to    []int32
	cap   []int32
	cost  []int32
}

// NewNetwork returns an empty network on n vertices (IDs 0..n-1).
func NewNetwork(n int) *Network {
	first := make([]int32, n)
	for i := range first {
		first[i] = -1
	}
	return &Network{n: n, first: first}
}

// Order returns the number of vertices.
func (nw *Network) Order() int { return nw.n }

// NumEdges returns the number of directed edges including residual twins.
func (nw *Network) NumEdges() int { return len(nw.to) }

// AddEdge adds a directed edge u->v with the given capacity and unit cost
// and returns its ID. The matching residual edge gets ID id^1.
func (nw *Network) AddEdge(u, v int32, capacity, cost int32) int {
	if u < 0 || v < 0 || int(u) >= nw.n || int(v) >= nw.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range [0,%d)", u, v, nw.n))
	}
	id := int32(len(nw.to))
	nw.to = append(nw.to, v, u)
	nw.cap = append(nw.cap, capacity, 0)
	nw.cost = append(nw.cost, cost, -cost)
	nw.next = append(nw.next, nw.first[u], nw.first[v])
	nw.first[u] = id
	nw.first[v] = id + 1
	return int(id)
}

// Flow returns the amount of flow pushed over edge id (the residual twin's
// remaining capacity).
func (nw *Network) Flow(id int) int32 { return nw.cap[id^1] }

// ErrNoAugmentingPath is returned by solvers when the requested flow value
// cannot be reached.
var ErrNoAugmentingPath = errors.New("flow: no augmenting path")

// MaxFlow pushes up to limit units from s to t using Edmonds–Karp and
// returns the flow value achieved. limit <= 0 means unbounded.
func (nw *Network) MaxFlow(s, t int32, limit int32) int32 {
	if limit <= 0 {
		limit = math.MaxInt32
	}
	var total int32
	parentEdge := make([]int32, nw.n)
	queue := make([]int32, 0, nw.n)
	for total < limit {
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		parentEdge[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for e := nw.first[v]; e != -1; e = nw.next[e] {
				w := nw.to[e]
				if nw.cap[e] > 0 && parentEdge[w] == -1 {
					parentEdge[w] = e
					if w == t {
						found = true
						break bfs
					}
					queue = append(queue, w)
				}
			}
		}
		if !found {
			break
		}
		// Bottleneck along the path.
		push := limit - total
		for v := t; v != s; {
			e := parentEdge[v]
			if nw.cap[e] < push {
				push = nw.cap[e]
			}
			v = nw.to[e^1]
		}
		for v := t; v != s; {
			e := parentEdge[v]
			nw.cap[e] -= push
			nw.cap[e^1] += push
			v = nw.to[e^1]
		}
		total += push
	}
	return total
}

// MinCostFlow pushes up to limit units from s to t along successively
// cheapest augmenting paths (SPFA/Bellman-Ford, so negative residual costs
// are fine) and returns the achieved flow and its total cost. limit <= 0
// means unbounded. Intended for small networks.
func (nw *Network) MinCostFlow(s, t int32, limit int32) (flowVal, totalCost int32) {
	if limit <= 0 {
		limit = math.MaxInt32
	}
	dist := make([]int32, nw.n)
	inQueue := make([]bool, nw.n)
	parentEdge := make([]int32, nw.n)
	for flowVal < limit {
		for i := range dist {
			dist[i] = math.MaxInt32
			parentEdge[i] = -1
		}
		dist[s] = 0
		queue := []int32{s}
		inQueue[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			inQueue[v] = false
			for e := nw.first[v]; e != -1; e = nw.next[e] {
				w := nw.to[e]
				if nw.cap[e] > 0 && dist[v]+nw.cost[e] < dist[w] {
					dist[w] = dist[v] + nw.cost[e]
					parentEdge[w] = e
					if !inQueue[w] {
						inQueue[w] = true
						queue = append(queue, w)
					}
				}
			}
		}
		if parentEdge[t] == -1 {
			break
		}
		push := limit - flowVal
		for v := t; v != s; {
			e := parentEdge[v]
			if nw.cap[e] < push {
				push = nw.cap[e]
			}
			v = nw.to[e^1]
		}
		for v := t; v != s; {
			e := parentEdge[v]
			nw.cap[e] -= push
			nw.cap[e^1] += push
			totalCost += push * nw.cost[e]
			v = nw.to[e^1]
		}
		flowVal += push
	}
	return flowVal, totalCost
}
