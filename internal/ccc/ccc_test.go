package ccc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
)

func mustNew(t *testing.T, k int) *Graph {
	t.Helper()
	g, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBounds(t *testing.T) {
	for _, k := range []int{0, 1, 2, 27, -1} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d): want error", k)
		}
	}
	g := mustNew(t, 4)
	if g.K() != 4 || g.NumNodes() != 64 || g.Degree() != 3 {
		t.Fatalf("metadata: k=%d nodes=%d deg=%d", g.K(), g.NumNodes(), g.Degree())
	}
}

func TestContains(t *testing.T) {
	g := mustNew(t, 3)
	cases := []struct {
		u  Node
		ok bool
	}{
		{Node{X: 0, Pos: 0}, true},
		{Node{X: 7, Pos: 2}, true},
		{Node{X: 8, Pos: 0}, false},
		{Node{X: 0, Pos: 3}, false},
	}
	for _, c := range cases {
		if got := g.Contains(c.u); got != c.ok {
			t.Errorf("Contains(%v) = %v, want %v", c.u, got, c.ok)
		}
	}
}

func TestNeighborsAndAdjacency(t *testing.T) {
	g := mustNew(t, 4)
	u := Node{X: 0b1010, Pos: 1}
	nbrs := g.Neighbors(u, nil)
	if len(nbrs) != 3 {
		t.Fatalf("degree %d", len(nbrs))
	}
	want := []Node{
		{X: 0b1010, Pos: 0},
		{X: 0b1010, Pos: 2},
		{X: 0b1000, Pos: 1}, // cube dimension 1 flips bit 1
	}
	for i, w := range want {
		if nbrs[i] != w {
			t.Fatalf("neighbor %d = %v, want %v", i, nbrs[i], w)
		}
		if !g.Adjacent(u, w) || !g.Adjacent(w, u) {
			t.Fatalf("adjacency not symmetric for %v-%v", u, w)
		}
	}
	if g.Adjacent(u, u) {
		t.Fatal("self-adjacent")
	}
	if g.Adjacent(u, Node{X: 0b1010, Pos: 3}) {
		t.Fatal("positions 1 and 3 are not cycle-adjacent in C_4")
	}
}

func TestCycleWraps(t *testing.T) {
	g := mustNew(t, 5)
	u := Node{X: 3, Pos: 0}
	if got := g.CycleNeighbor(u, -1); got.Pos != 4 {
		t.Fatalf("wrap -1 from 0 gives %v", got)
	}
	if got := g.CycleNeighbor(Node{X: 3, Pos: 4}, +1); got.Pos != 0 {
		t.Fatalf("wrap +1 from 4 gives %v", got)
	}
	// Cube edge is an involution.
	if g.CubeNeighbor(g.CubeNeighbor(u)) != u {
		t.Fatal("cube edge not an involution")
	}
}

func TestIDRoundTrip(t *testing.T) {
	g := mustNew(t, 5)
	prop := func(x uint64, p uint8) bool {
		u := Node{X: x & 0x1F, Pos: p % 5}
		return g.NodeFromID(g.ID(u)) == u
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// IDs are dense 0..N-1 and unique.
	seen := map[uint64]bool{}
	for x := uint64(0); x < 32; x++ {
		for p := uint8(0); p < 5; p++ {
			id := g.ID(Node{X: x, Pos: p})
			if id >= g.NumNodes() || seen[id] {
				t.Fatalf("bad ID %d for (%d,%d)", id, x, p)
			}
			seen[id] = true
		}
	}
}

func TestDenseGraphStructure(t *testing.T) {
	g := mustNew(t, 4)
	dg, err := g.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if dg.Order() != 64 || dg.MaxDegree() != 3 {
		t.Fatalf("order=%d deg=%d", dg.Order(), dg.MaxDegree())
	}
	if err := graph.CheckSymmetric(dg); err != nil {
		t.Fatalf("CCC(4) adjacency broken: %v", err)
	}
	edges, err := graph.CountEdges(dg)
	if err != nil {
		t.Fatal(err)
	}
	if edges != 64*3/2 {
		t.Fatalf("edges = %d, want 96", edges)
	}
	conn, err := graph.IsConnected(dg)
	if err != nil || !conn {
		t.Fatalf("connected = %v, %v", conn, err)
	}
	if _, err := mustNew(t, 20).Dense(); err == nil {
		t.Fatal("CCC(20) dense: want too-large error")
	}
}

func TestDiameterWithinBound(t *testing.T) {
	for _, k := range []int{3, 4, 5, 6} {
		g := mustNew(t, k)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		var diam int
		if g.NumNodes() <= 1<<10 {
			diam, err = graph.Diameter(dg)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			diam, _, err = graph.Eccentricity(dg, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		if diam > g.DiameterUpperBound() {
			t.Fatalf("k=%d: diameter %d exceeds bound %d", k, diam, g.DiameterUpperBound())
		}
	}
}

// TestConnectivityIsThree: CCC's container width is stuck at 3 regardless of
// size — the structural contrast with HHC that E9/E11 quantify.
func TestConnectivityIsThree(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		g := mustNew(t, k)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(k)))
		minK := 4
		for trial := 0; trial < 15; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v || g.Adjacent(u, v) {
				continue
			}
			c, err := flow.LocalConnectivity(dg, g.ID(u), g.ID(v))
			if err != nil {
				t.Fatal(err)
			}
			if c < minK {
				minK = c
			}
		}
		if minK != 3 {
			t.Fatalf("k=%d: connectivity %d, want 3", k, minK)
		}
	}
}

func TestVerifyPath(t *testing.T) {
	g := mustNew(t, 3)
	u := Node{X: 0, Pos: 0}
	v := Node{X: 1, Pos: 1}
	good := []Node{u, {X: 1, Pos: 0}, v}
	if err := g.VerifyPath(u, v, good); err != nil {
		t.Fatalf("good path rejected: %v", err)
	}
	if err := g.VerifyPath(u, v, []Node{u, {X: 3, Pos: 2}, v}); err == nil {
		t.Fatal("broken path accepted")
	}
	if err := g.VerifyPath(u, v, nil); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestRandomNodeValid(t *testing.T) {
	g := mustNew(t, 6)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if u := g.RandomNode(r); !g.Contains(u) {
			t.Fatalf("invalid random node %v", u)
		}
	}
}
