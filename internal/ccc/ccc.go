// Package ccc implements the cube-connected cycles network CCC(k)
// (Preparata & Vuillemin, 1981) — the closest relative of the hierarchical
// hypercube and its standard comparison point: where HHC replaces each
// hypercube vertex by an m-cube, CCC replaces it by a k-cycle. Both
// networks delegate each cube dimension to one member of the local group;
// CCC buys constant degree 3 at the price of connectivity 3 (so containers
// of width 3 no matter the size), whereas HHC keeps degree and container
// width growing as m+1.
package ccc

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// MinK and MaxK bound the supported cycle length. k = 2 is degenerate
// (parallel cycle edges); we start at 3 like the literature.
const (
	MinK = 3
	MaxK = 26
)

// Node is a CCC node: X is the k-bit cycle address, Pos the position on the
// cycle (which also names the hypercube dimension this node serves).
type Node struct {
	X   uint64
	Pos uint8
}

// String formats a node.
func (u Node) String() string { return fmt.Sprintf("(x=%#x,p=%d)", u.X, u.Pos) }

// Graph is a CCC(k) topology handle.
type Graph struct {
	k int
}

// New returns the CCC(k) topology: k·2^k nodes of degree 3.
func New(k int) (*Graph, error) {
	if k < MinK || k > MaxK {
		return nil, fmt.Errorf("ccc: k = %d out of supported range [%d,%d]", k, MinK, MaxK)
	}
	return &Graph{k: k}, nil
}

// K returns the cycle length (= cube dimension).
func (g *Graph) K() int { return g.k }

// NumNodes returns k·2^k.
func (g *Graph) NumNodes() uint64 { return uint64(g.k) << uint(g.k) }

// Degree returns 3 (two cycle edges, one cube edge).
func (g *Graph) Degree() int { return 3 }

// Contains validates a node.
func (g *Graph) Contains(u Node) bool {
	if int(u.Pos) >= g.k {
		return false
	}
	if g.k < 64 && u.X>>uint(g.k) != 0 {
		return false
	}
	return true
}

// CycleNeighbor returns the cycle neighbor in direction +1 or -1.
func (g *Graph) CycleNeighbor(u Node, dir int) Node {
	p := (int(u.Pos) + dir + g.k) % g.k
	return Node{X: u.X, Pos: uint8(p)}
}

// CubeNeighbor returns the neighbor across the hypercube dimension this
// node serves.
func (g *Graph) CubeNeighbor(u Node) Node {
	return Node{X: u.X ^ (1 << uint(u.Pos)), Pos: u.Pos}
}

// Neighbors appends u's 3 neighbors: cycle -1, cycle +1, cube.
func (g *Graph) Neighbors(u Node, buf []Node) []Node {
	buf = append(buf, g.CycleNeighbor(u, -1))
	buf = append(buf, g.CycleNeighbor(u, +1))
	return append(buf, g.CubeNeighbor(u))
}

// Adjacent reports whether two nodes are joined by an edge.
func (g *Graph) Adjacent(u, v Node) bool {
	if u.X == v.X {
		d := (int(u.Pos) - int(v.Pos) + g.k) % g.k
		return d == 1 || d == g.k-1
	}
	return u.Pos == v.Pos && u.X^v.X == 1<<uint(u.Pos)
}

// ID packs a node into 0..k·2^k-1 as x·k + pos.
func (g *Graph) ID(u Node) uint64 { return u.X*uint64(g.k) + uint64(u.Pos) }

// NodeFromID inverts ID.
func (g *Graph) NodeFromID(id uint64) Node {
	return Node{X: id / uint64(g.k), Pos: uint8(id % uint64(g.k))}
}

// RandomNode draws a uniform node.
func (g *Graph) RandomNode(r *rand.Rand) Node {
	var x uint64
	if g.k == 64 {
		x = r.Uint64()
	} else {
		x = r.Uint64() & (1<<uint(g.k) - 1)
	}
	return Node{X: x, Pos: uint8(r.Intn(g.k))}
}

// MaxDenseK bounds the dense (enumerable) view: CCC(16) already has one
// million nodes.
const MaxDenseK = 16

// Dense returns a graph.Graph view for ground-truth traversal.
func (g *Graph) Dense() (graph.Graph, error) {
	if g.k > MaxDenseK {
		return nil, fmt.Errorf("%w: CCC(%d) has %d nodes", graph.ErrTooLarge, g.k, g.NumNodes())
	}
	return denseView{g}, nil
}

type denseView struct{ g *Graph }

func (d denseView) Order() int64   { return int64(d.g.NumNodes()) }
func (d denseView) MaxDegree() int { return 3 }

func (d denseView) Neighbors(v uint64, buf []uint64) []uint64 {
	u := d.g.NodeFromID(v)
	for _, w := range d.g.Neighbors(u, nil) {
		buf = append(buf, d.g.ID(w))
	}
	return buf
}

// DiameterUpperBound returns the classical bound 2k + floor(k/2) - 2 for
// k >= 4 (Preparata & Vuillemin give Θ(k); this simple crossing argument
// bound suffices for the comparison tables).
func (g *Graph) DiameterUpperBound() int {
	if g.k == 3 {
		return 6
	}
	return 2*g.k + g.k/2 - 2
}

// VerifyPath checks a simple path between u and v.
func (g *Graph) VerifyPath(u, v Node, path []Node) error {
	if len(path) == 0 {
		return fmt.Errorf("ccc: empty path")
	}
	if path[0] != u || path[len(path)-1] != v {
		return fmt.Errorf("ccc: path runs %v..%v, want %v..%v", path[0], path[len(path)-1], u, v)
	}
	seen := make(map[Node]bool, len(path))
	for i, w := range path {
		if !g.Contains(w) {
			return fmt.Errorf("ccc: invalid node %v", w)
		}
		if seen[w] {
			return fmt.Errorf("ccc: repeated node %v", w)
		}
		seen[w] = true
		if i > 0 && !g.Adjacent(path[i-1], w) {
			return fmt.Errorf("ccc: %v-%v not adjacent", path[i-1], w)
		}
	}
	return nil
}
