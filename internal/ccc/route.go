package ccc

import (
	"fmt"
)

// Routing in CCC(k): the classical sweep. To reach (y, j) from (x, i), walk
// the cycle once in the ascending direction; whenever the current position
// owns a dimension where x and y still differ, take the cube edge. After
// the sweep the cluster address is corrected; finish with the shorter arc
// to the target position. Length ≤ 2k + k/2 — the same crossing argument as
// the diameter bound — and the route is computable hop by hop from local
// state (position + remaining difference mask), so it models a hardware
// router. Tests validate every route and measure its stretch against BFS.

// Route returns a valid path from u to v.
func (g *Graph) Route(u, v Node) ([]Node, error) {
	if !g.Contains(u) || !g.Contains(v) {
		return nil, fmt.Errorf("ccc: invalid endpoint %v / %v", u, v)
	}
	path := []Node{u}
	cur := u
	diff := u.X ^ v.X
	// Sweep: advance the cycle until every differing dimension has been
	// corrected. Crossing the cube edge first when the current position
	// needs it keeps each correction adjacent to its position visit.
	for steps := 0; diff != 0; steps++ {
		if steps > 2*g.k {
			return nil, fmt.Errorf("ccc: sweep failed to terminate (bug)")
		}
		if diff>>uint(cur.Pos)&1 == 1 {
			cur = g.CubeNeighbor(cur)
			diff &^= 1 << uint(cur.Pos)
			path = append(path, cur)
			continue
		}
		cur = g.CycleNeighbor(cur, +1)
		path = append(path, cur)
	}
	// Close the cycle gap to v.Pos along the shorter arc.
	fwd := (int(v.Pos) - int(cur.Pos) + g.k) % g.k
	back := (int(cur.Pos) - int(v.Pos) + g.k) % g.k
	dir := +1
	steps := fwd
	if back < fwd {
		dir, steps = -1, back
	}
	for s := 0; s < steps; s++ {
		cur = g.CycleNeighbor(cur, dir)
		path = append(path, cur)
	}
	if cur != v {
		return nil, fmt.Errorf("ccc: route landed on %v, want %v (bug)", cur, v)
	}
	return dedupeTail(path), nil
}

// dedupeTail removes an immediate backtrack pattern the sweep can produce
// when the final arc re-walks its last cycle step; the result stays a valid
// walk and usually is already simple. Full simplicity is not required by
// the simulator (links are what contend), but we keep paths clean when it
// is cheap: collapse consecutive duplicate nodes.
func dedupeTail(path []Node) []Node {
	out := path[:1]
	for _, w := range path[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// VerifyWalk checks that path is a contiguous walk from u to v (nodes valid
// and consecutive ones adjacent). The sweep router can legitimately revisit
// a node when the closing arc doubles back, so unlike VerifyPath it does
// not demand simplicity.
func (g *Graph) VerifyWalk(u, v Node, path []Node) error {
	if len(path) == 0 {
		return fmt.Errorf("ccc: empty walk")
	}
	if path[0] != u || path[len(path)-1] != v {
		return fmt.Errorf("ccc: walk runs %v..%v, want %v..%v", path[0], path[len(path)-1], u, v)
	}
	for i, w := range path {
		if !g.Contains(w) {
			return fmt.Errorf("ccc: invalid node %v", w)
		}
		if i > 0 && !g.Adjacent(path[i-1], w) {
			return fmt.Errorf("ccc: %v-%v not adjacent", path[i-1], w)
		}
	}
	return nil
}
