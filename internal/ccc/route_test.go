package ccc

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestRouteExhaustive routes every ordered pair of CCC(3) and CCC(4),
// validating walks and measuring stretch against BFS.
func TestRouteExhaustive(t *testing.T) {
	for _, k := range []int{3, 4} {
		g := mustNew(t, k)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		worst := 0
		for i := uint64(0); i < n; i++ {
			u := g.NodeFromID(i)
			dist, err := graph.BFS(dg, i)
			if err != nil {
				t.Fatal(err)
			}
			for j := uint64(0); j < n; j++ {
				v := g.NodeFromID(j)
				p, err := g.Route(u, v)
				if err != nil {
					t.Fatalf("Route(%v,%v): %v", u, v, err)
				}
				if err := g.VerifyWalk(u, v, p); err != nil {
					t.Fatalf("Route(%v,%v): %v", u, v, err)
				}
				if len(p)-1 > 3*k {
					t.Fatalf("route length %d above 3k bound", len(p)-1)
				}
				if s := (len(p) - 1) - int(dist[j]); s > worst {
					worst = s
				}
			}
		}
		t.Logf("CCC(%d): worst additive stretch over BFS = %d", k, worst)
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	g := mustNew(t, 4)
	u := Node{X: 5, Pos: 2}
	p, err := g.Route(u, u)
	if err != nil || len(p) != 1 {
		t.Fatalf("self route %v, %v", p, err)
	}
	if _, err := g.Route(Node{X: 99, Pos: 0}, u); err == nil {
		t.Error("invalid source accepted")
	}
	if _, err := g.Route(u, Node{X: 0, Pos: 9}); err == nil {
		t.Error("invalid destination accepted")
	}
}

func TestRouteRandomLargeK(t *testing.T) {
	g := mustNew(t, 16) // one million nodes; router must stay address-local
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		p, err := g.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyWalk(u, v, p); err != nil {
			t.Fatal(err)
		}
		if len(p)-1 > 3*16 {
			t.Fatalf("length %d above bound", len(p)-1)
		}
	}
}

func TestVerifyWalkRejections(t *testing.T) {
	g := mustNew(t, 3)
	u, v := Node{X: 0, Pos: 0}, Node{X: 0, Pos: 1}
	if err := g.VerifyWalk(u, v, nil); err == nil {
		t.Error("empty accepted")
	}
	if err := g.VerifyWalk(u, v, []Node{u, {X: 7, Pos: 2}, v}); err == nil {
		t.Error("jump accepted")
	}
	if err := g.VerifyWalk(u, v, []Node{u, v}); err != nil {
		t.Errorf("edge rejected: %v", err)
	}
}
