package netsim

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/hhc"
)

// TestRunWithCacheMatchesDirect: a cached simulation run is bit-identical
// to an uncached one (exact canonicalization preserves the constructed
// containers byte-for-byte), and the cache actually absorbs repeated
// constructions across runs.
func TestRunWithCacheMatchesDirect(t *testing.T) {
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(g, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RoutingMode{MultiPathStripe, FaultAwareSingle} {
		cfg := Config{
			M: 3, Mode: mode, Flows: 16, MessagesPerFlow: 10,
			MessageFlits: 64, ArrivalRate: 0.01, FaultCount: 2, Seed: 5,
		}
		direct, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = c
		cached, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, cached) {
			t.Fatalf("mode %v: cached run diverged\ndirect: %+v\ncached: %+v", mode, direct, cached)
		}
		// Same config again: every container now comes from the cache.
		misses := c.Snapshot().Misses
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot().Misses; got != misses {
			t.Fatalf("mode %v: repeat run missed %d times", mode, got-misses)
		}
	}
	if snap := c.Snapshot(); snap.Hits == 0 {
		t.Fatalf("cache never hit: %v", snap)
	}
}

// TestValidateCacheMismatch: a cache bound to the wrong topology is
// rejected up front.
func TestValidateCacheMismatch(t *testing.T) {
	g2, err := hhc.New(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(g2, cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		M: 3, Mode: MultiPathStripe, Flows: 2, MessagesPerFlow: 1,
		MessageFlits: 8, ArrivalRate: 0.1, Cache: c,
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched cache accepted")
	}
}
