package netsim

import (
	"sort"

	"repro/internal/obs"
)

// runMetrics bundles the simulator's registry metrics. A nil *runMetrics
// (observability off) is safe: every obs metric is nil-receiver safe and
// the struct's methods check the receiver.
type runMetrics struct {
	generated    *obs.Counter
	delivered    *obs.Counter
	dropped      *obs.Counter
	faultBlocked *obs.Counter
	pathPrunes   *obs.Counter
	flows        *obs.Gauge
	latency      *obs.Histogram
	inflight     *obs.Histogram
	inflightPeak *obs.Gauge
	makespan     *obs.Gauge
	throughput   *obs.Gauge
}

// latencyBuckets spans 1..2^17 cycles in powers of two — wide enough for
// every workload the evaluation section runs (deep networks saturate in
// the tens of thousands of cycles).
var latencyBuckets = obs.ExponentialBuckets(1, 2, 18)

// newRunMetrics registers (or re-binds) the netsim metric set in reg.
// Registration is idempotent: repeated runs against one registry reuse the
// same series and keep accumulating, which is what a scraped long-running
// process wants.
func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		generated: reg.Counter("netsim_messages_generated_total",
			"Messages created by all flows."),
		delivered: reg.Counter("netsim_messages_delivered_total",
			"Messages fully received at their destination."),
		dropped: reg.Counter("netsim_messages_dropped_total",
			"Messages lost because every usable path was faulty."),
		faultBlocked: reg.Counter("netsim_flows_blocked_total",
			"Messages whose flow had no surviving path at all."),
		pathPrunes: reg.Counter("netsim_fault_reroutes_total",
			"Container paths pruned by node or link faults (traffic rerouted onto survivors)."),
		flows: reg.Gauge("netsim_flows",
			"Concurrent flows in the current run."),
		latency: reg.Histogram("netsim_flow_latency_cycles",
			"Measured end-to-end message latency in cycles.", latencyBuckets),
		inflight: reg.Histogram("netsim_inflight_messages",
			"In-flight messages sampled at every delivery event.", latencyBuckets),
		inflightPeak: reg.Gauge("netsim_inflight_messages_peak",
			"Peak simultaneous in-flight messages over the run."),
		makespan: reg.Gauge("netsim_makespan_cycles",
			"Cycle of the last delivery in the most recent run."),
		throughput: reg.Gauge("netsim_throughput_flits_per_cycle",
			"Delivered flits per cycle (goodput) of the most recent run."),
	}
}

// addPrunes counts fault-pruned paths when metrics are on.
func (m *runMetrics) addPrunes(n int64) {
	if m != nil {
		m.pathPrunes.Add(n)
	}
}

// occupancy replays the message creation/completion events in time order,
// recording the in-flight count at every completion and the overall peak —
// the simulator is event-driven, so this post-pass is the per-tick
// occupancy signal without instrumenting the inner event loop.
func (m *runMetrics) occupancy(created, done []int64) {
	if m == nil || len(created) == 0 {
		return
	}
	type event struct {
		at    int64
		delta int
	}
	events := make([]event, 0, 2*len(created))
	for i := range created {
		events = append(events, event{created[i], +1}, event{done[i], -1})
	}
	// Sort by time; completions before creations at equal timestamps so the
	// count never double-peaks on a same-cycle handoff.
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if e.delta < 0 {
			m.inflight.Observe(float64(cur + 1)) // occupancy just before this delivery
		}
		if cur > peak {
			peak = cur
		}
	}
	m.inflightPeak.Set(float64(peak))
}
