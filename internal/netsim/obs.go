package netsim

import (
	"sort"

	"repro/internal/obs"
)

// runMetrics bundles the simulator's registry metrics. A nil *runMetrics
// (observability off) is safe: every obs metric is nil-receiver safe and
// the struct's methods check the receiver.
type runMetrics struct {
	generated    *obs.Counter
	delivered    *obs.Counter
	dropped      *obs.Counter
	faultBlocked *obs.Counter
	pathPrunes   *obs.Counter
	flows        *obs.Gauge
	latency      *obs.Histogram
	inflight     *obs.Histogram
	inflightPeak *obs.Gauge
	makespan     *obs.Gauge
	throughput   *obs.Gauge
}

// latencyBuckets spans 1..2^17 cycles in powers of two — wide enough for
// every workload the evaluation section runs (deep networks saturate in
// the tens of thousands of cycles).
var latencyBuckets = obs.ExponentialBuckets(1, 2, 18)

// newRunMetrics registers (or re-binds) the netsim metric set in reg.
// Registration is idempotent: repeated runs against one registry reuse the
// same series and keep accumulating, which is what a scraped long-running
// process wants.
func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		generated: reg.Counter("netsim_messages_generated_total",
			"Messages created by all flows."),
		delivered: reg.Counter("netsim_messages_delivered_total",
			"Messages fully received at their destination."),
		dropped: reg.Counter("netsim_messages_dropped_total",
			"Messages lost because every usable path was faulty."),
		faultBlocked: reg.Counter("netsim_flows_blocked_total",
			"Messages whose flow had no surviving path at all."),
		pathPrunes: reg.Counter("netsim_fault_reroutes_total",
			"Container paths pruned by node or link faults (traffic rerouted onto survivors)."),
		flows: reg.Gauge("netsim_flows",
			"Concurrent flows in the current run."),
		latency: reg.Histogram("netsim_flow_latency_cycles",
			"Measured end-to-end message latency in cycles.", latencyBuckets),
		inflight: reg.Histogram("netsim_inflight_messages",
			"In-flight messages sampled at every delivery event.", latencyBuckets),
		inflightPeak: reg.Gauge("netsim_inflight_messages_peak",
			"Peak simultaneous in-flight messages over the run."),
		makespan: reg.Gauge("netsim_makespan_cycles",
			"Cycle of the last delivery in the most recent run."),
		throughput: reg.Gauge("netsim_throughput_flits_per_cycle",
			"Delivered flits per cycle (goodput) of the most recent run."),
	}
}

// span is the simulator's handle on one tracer span, so Run itself never
// calls into internal/obs (the obscost analyzer keeps that split honest).
type span struct{ a *obs.Active }

func (s span) end() { s.a.End() }

// startSpan opens a named span with alternating key/value attribute pairs.
// Nil tracers are fine: obs spans are nil-receiver safe.
func (cfg Config) startSpan(name string, kv ...string) span {
	attrs := make([]obs.Attr, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		attrs = append(attrs, obs.String(kv[i], kv[i+1]))
	}
	return span{a: cfg.Tracer.Start(name, attrs...)}
}

// setFlows records the run's concurrent-flow count.
func (m *runMetrics) setFlows(n int) {
	if m != nil {
		m.flows.Set(float64(n))
	}
}

// observeLatency records one measured end-to-end latency.
func (m *runMetrics) observeLatency(lat int64) {
	if m != nil {
		m.latency.Observe(float64(lat))
	}
}

// record publishes the run's aggregate result plus the occupancy replay.
func (m *runMetrics) record(res Result, created, done []int64) {
	if m == nil {
		return
	}
	m.generated.Add(int64(res.Generated))
	m.delivered.Add(int64(res.Delivered))
	m.dropped.Add(int64(res.Dropped))
	m.faultBlocked.Add(int64(res.FaultBlocked))
	m.makespan.Set(float64(res.Makespan))
	m.throughput.Set(res.Throughput)
	m.occupancy(created, done)
}

// addPrunes counts fault-pruned paths when metrics are on.
func (m *runMetrics) addPrunes(n int64) {
	if m != nil {
		m.pathPrunes.Add(n)
	}
}

// occupancy replays the message creation/completion events in time order,
// recording the in-flight count at every completion and the overall peak —
// the simulator is event-driven, so this post-pass is the per-tick
// occupancy signal without instrumenting the inner event loop.
func (m *runMetrics) occupancy(created, done []int64) {
	if m == nil || len(created) == 0 {
		return
	}
	type event struct {
		at    int64
		delta int
	}
	events := make([]event, 0, 2*len(created))
	for i := range created {
		events = append(events, event{created[i], +1}, event{done[i], -1})
	}
	// Sort by time; completions before creations at equal timestamps so the
	// count never double-peaks on a same-cycle handoff.
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if e.delta < 0 {
			m.inflight.Observe(float64(cur + 1)) // occupancy just before this delivery
		}
		if cur > peak {
			peak = cur
		}
	}
	m.inflightPeak.Set(float64(peak))
}
