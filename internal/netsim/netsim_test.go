package netsim

import (
	"reflect"
	"testing"
)

func baseConfig() Config {
	return Config{
		M:               3,
		Mode:            SinglePath,
		Flows:           8,
		MessagesPerFlow: 40,
		MessageFlits:    32,
		ArrivalRate:     0.01,
		Seed:            1,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.M = 9 },
		func(c *Config) { c.Flows = 0 },
		func(c *Config) { c.MessagesPerFlow = 0 },
		func(c *Config) { c.MessageFlits = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.FaultCount = -1 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestConservation(t *testing.T) {
	for _, mode := range []RoutingMode{SinglePath, MultiPathStripe, FaultAwareSingle} {
		cfg := baseConfig()
		cfg.Mode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Generated != cfg.Flows*cfg.MessagesPerFlow {
			t.Fatalf("%v: generated %d, want %d", mode, res.Generated, cfg.Flows*cfg.MessagesPerFlow)
		}
		if res.Delivered+res.Dropped != res.Generated {
			t.Fatalf("%v: %d delivered + %d dropped != %d generated",
				mode, res.Delivered, res.Dropped, res.Generated)
		}
		if res.Dropped != 0 {
			t.Fatalf("%v: dropped %d messages without faults", mode, res.Dropped)
		}
		if res.AvgLatency <= 0 || res.MaxLatency <= 0 || res.Makespan <= 0 {
			t.Fatalf("%v: degenerate metrics %+v", mode, res)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = MultiPathStripe
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestPerFlowAccounting(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFlow) != cfg.Flows {
		t.Fatalf("%d flow entries, want %d", len(res.PerFlow), cfg.Flows)
	}
	var gen, del, drop int
	for _, f := range res.PerFlow {
		gen += f.Generated
		del += f.Delivered
		drop += f.Dropped
		if f.Generated != cfg.MessagesPerFlow {
			t.Fatalf("flow generated %d, want %d", f.Generated, cfg.MessagesPerFlow)
		}
		if f.Delivered > 0 && f.AvgLatency <= 0 {
			t.Fatal("delivered flow with zero latency")
		}
	}
	if gen != res.Generated || del != res.Delivered || drop != res.Dropped {
		t.Fatalf("per-flow sums (%d,%d,%d) != totals (%d,%d,%d)",
			gen, del, drop, res.Generated, res.Delivered, res.Dropped)
	}
}

// TestHottestLinkSaturatesUnderHotspot: funneling every flow into one
// destination drives the busiest link toward full occupancy, while uniform
// traffic leaves plenty of slack.
func TestHottestLinkSaturatesUnderHotspot(t *testing.T) {
	base := baseConfig()
	base.Flows = 24
	base.ArrivalRate = 0.005
	base.MessageFlits = 64

	uni := base
	ru, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Pattern = PatternHotspot
	rh, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if rh.HottestLinkShare <= ru.HottestLinkShare {
		t.Fatalf("hotspot hottest-link share %.3f not above uniform %.3f",
			rh.HottestLinkShare, ru.HottestLinkShare)
	}
	if ru.HottestLinkBusy <= 0 || ru.HottestLinkShare > 1.000001 {
		t.Fatalf("implausible link stats: %+v", ru)
	}
}

// TestWarmupExcludesEarlyMessages: with a warmup window past every
// creation time, no latencies are measured, but conservation still holds.
func TestWarmupExcludesEarlyMessages(t *testing.T) {
	cfg := baseConfig()
	cfg.Warmup = 1 << 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 0 || res.MaxLatency != 0 {
		t.Fatalf("warmup did not exclude messages: %+v", res)
	}
	if res.Delivered != res.Generated {
		t.Fatal("warmup must not affect delivery")
	}
	cfg.Warmup = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

// TestStripingBeatsSinglePathForLargeMessages: with big messages and light
// load, splitting across m+1 disjoint paths must cut latency — the
// motivating property of the container construction. Store-and-forward
// latency of an F-flit packet over h hops is F·h, so a (m+1)-way stripe
// moves roughly F/(m+1) flits over slightly longer paths: a clear win for
// large F.
func TestStripingBeatsSinglePathForLargeMessages(t *testing.T) {
	single := baseConfig()
	single.MessageFlits = 512
	single.ArrivalRate = 0.0005 // essentially unloaded
	multi := single
	multi.Mode = MultiPathStripe
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(multi)
	if err != nil {
		t.Fatal(err)
	}
	if rm.AvgLatency >= rs.AvgLatency {
		t.Fatalf("striping did not help: multi %.1f vs single %.1f cycles",
			rm.AvgLatency, rs.AvgLatency)
	}
}

// TestFaultModes: with faults present, plain single-path routing drops
// messages while the fault-aware modes keep delivering everything (fault
// count <= m guarantees a surviving container path).
func TestFaultModes(t *testing.T) {
	cfg := baseConfig()
	cfg.M = 3
	cfg.FaultCount = 3 // = m, within the guarantee
	cfg.Flows = 30
	cfg.Mode = FaultAwareSingle
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("fault-aware dropped %d messages with f <= m", res.Dropped)
	}
	cfg.Mode = MultiPathStripe
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("multi-path dropped %d messages with f <= m", res.Dropped)
	}
}

// TestHeavyFaultsDegradeGracefully: far beyond m faults, some flows may be
// fully blocked, but accounting must stay consistent.
func TestHeavyFaultsDegradeGracefully(t *testing.T) {
	cfg := baseConfig()
	cfg.M = 2 // tiny network (64 nodes) so faults bite
	cfg.FaultCount = 20
	cfg.Flows = 20
	for _, mode := range []RoutingMode{SinglePath, MultiPathStripe, FaultAwareSingle} {
		cfg.Mode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Delivered+res.Dropped != res.Generated {
			t.Fatalf("%v: conservation broken: %+v", mode, res)
		}
	}
}

// TestContentionDelaysSecondMessage: a single flow with messages arriving
// faster than the line rate must queue, so average latency exceeds the
// unloaded baseline.
func TestContentionDelaysSecondMessage(t *testing.T) {
	slow := baseConfig()
	slow.Flows = 1
	slow.MessagesPerFlow = 100
	slow.MessageFlits = 64
	slow.ArrivalRate = 0.00001 // fully drained between messages

	fast := slow
	fast.ArrivalRate = 1.0 // everything at once: deep queues

	rs, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.AvgLatency <= rs.AvgLatency {
		t.Fatalf("contention did not increase latency: loaded %.1f vs unloaded %.1f",
			rf.AvgLatency, rs.AvgLatency)
	}
}

// TestUnloadedLatencyFormula: one message over one flow has latency exactly
// flits × hops (store-and-forward, no contention).
func TestUnloadedLatencyFormula(t *testing.T) {
	cfg := Config{
		M:               2,
		Mode:            SinglePath,
		Flows:           1,
		MessagesPerFlow: 1,
		MessageFlits:    10,
		ArrivalRate:     0.001,
		Seed:            7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantLatency := float64(cfg.MessageFlits) * res.AvgPathHops
	if res.AvgLatency != wantLatency {
		t.Fatalf("latency %.1f, want flits×hops = %.1f", res.AvgLatency, wantLatency)
	}
}

func TestModeStrings(t *testing.T) {
	if SinglePath.String() != "single-path" ||
		MultiPathStripe.String() != "multi-path" ||
		FaultAwareSingle.String() != "fault-aware" {
		t.Fatal("mode names wrong")
	}
	if RoutingMode(99).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
