package netsim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/hhc"
)

func TestPatternsRunAndConserve(t *testing.T) {
	for _, p := range []TrafficPattern{PatternUniform, PatternHotspot, PatternComplement, PatternBitReverse} {
		cfg := baseConfig()
		cfg.Pattern = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Delivered+res.Dropped != res.Generated || res.Dropped != 0 {
			t.Fatalf("%v: %+v", p, res)
		}
	}
}

// TestHotspotCongestsDestination: under identical load, the hotspot pattern
// must exhibit (much) higher latency than uniform traffic — the shared
// destination's links serialize everything.
func TestHotspotCongestsDestination(t *testing.T) {
	base := baseConfig()
	base.Flows = 24
	base.ArrivalRate = 0.002
	base.MessageFlits = 64

	uni := base
	uni.Pattern = PatternUniform
	ru, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Pattern = PatternHotspot
	rh, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if rh.AvgLatency <= ru.AvgLatency {
		t.Fatalf("hotspot (%.1f) not slower than uniform (%.1f)", rh.AvgLatency, ru.AvgLatency)
	}
}

func TestBitReversePairsAreMutual(t *testing.T) {
	cfg := baseConfig()
	cfg.M = 3
	cfg.Pattern = PatternBitReverse
	g, err := hhc.New(cfg.M)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range flowPairsFor(g, cfg) {
		// Reversing the destination's ID must give back the source.
		n := uint(g.N())
		id := g.ID(p.V)
		var rev uint64
		for i := uint(0); i < n; i++ {
			rev |= (id >> i & 1) << (n - 1 - i)
		}
		if g.NodeFromID(rev) != p.U {
			t.Fatalf("bit-reverse not involutive for %v -> %v", p.U, p.V)
		}
	}
}

func TestBitReverseRejectedAtM6(t *testing.T) {
	cfg := baseConfig()
	cfg.M = 6
	cfg.Pattern = PatternBitReverse
	if err := cfg.Validate(); err == nil {
		t.Fatal("bit-reverse at m=6 accepted")
	}
	cfg.Pattern = TrafficPattern(99)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

// TestExplicitFlowPairs: trace-driven runs use exactly the supplied
// endpoints and reject malformed pair lists.
func TestExplicitFlowPairs(t *testing.T) {
	g, err := hhc.New(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.M = 2
	cfg.Flows = 2
	cfg.FlowPairs = []gen.Pair{
		{U: hhc.Node{X: 0, Y: 0}, V: hhc.Node{X: 15, Y: 3}},
		{U: hhc.Node{X: 3, Y: 1}, V: hhc.Node{X: 12, Y: 2}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 2*cfg.MessagesPerFlow {
		t.Fatalf("generated %d", res.Generated)
	}
	// Hop count must match the supplied pair's route exactly for flow 0.
	p0, err := g.Route(cfg.FlowPairs[0].U, cfg.FlowPairs[0].V)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := g.Route(cfg.FlowPairs[1].U, cfg.FlowPairs[1].V)
	if err != nil {
		t.Fatal(err)
	}
	want := float64((len(p0)-1)+(len(p1)-1)) / 2
	if res.AvgPathHops != want {
		t.Fatalf("avg hops %.2f, want %.2f", res.AvgPathHops, want)
	}

	// Count mismatch rejected.
	bad := cfg
	bad.Flows = 3
	if _, err := Run(bad); err == nil {
		t.Fatal("pair/flow count mismatch accepted")
	}
	// Invalid pair rejected.
	bad = cfg
	bad.FlowPairs = []gen.Pair{
		{U: hhc.Node{X: 99, Y: 0}, V: hhc.Node{X: 1, Y: 0}},
		{U: hhc.Node{X: 3, Y: 1}, V: hhc.Node{X: 3, Y: 1}},
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("invalid explicit pair accepted")
	}
}

func TestPatternStrings(t *testing.T) {
	want := map[TrafficPattern]string{
		PatternUniform:    "uniform",
		PatternHotspot:    "hotspot",
		PatternComplement: "complement",
		PatternBitReverse: "bit-reverse",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%v != %s", p, s)
		}
	}
	if TrafficPattern(42).String() == "" {
		t.Fatal("unknown pattern should format")
	}
}
