// Package netsim is a deterministic discrete-event simulator of
// store-and-forward packet switching on a hierarchical hypercube. It exists
// to reproduce the motivating experiments of disjoint-path papers: how much
// end-to-end latency and delivered throughput improve when a message is
// striped across the m+1 node-disjoint paths of the container instead of
// following a single shortest path, and how the network degrades under node
// faults.
//
// Model: every directed link transmits one packet at a time; a packet of F
// flits occupies the link for F cycles and is fully received at the next
// node F cycles after it starts (store-and-forward). Nodes have unbounded
// FIFO output queues, modeled by per-link busy-until times. Messages arrive
// per flow with exponential interarrival times (a Poisson process) and are
// routed on precomputed paths, so the simulation cost depends on traffic,
// not on the 2^n network size.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dessim"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/obs"
	"repro/internal/stats"
)

// RoutingMode selects how messages are mapped onto paths.
type RoutingMode int

const (
	// SinglePath routes every message along one shortest path. Messages
	// whose path crosses a faulty node are dropped.
	SinglePath RoutingMode = iota
	// MultiPathStripe splits every message evenly across the surviving
	// paths of the (m+1)-container; the message completes when its last
	// stripe arrives. Dropped only if every container path is faulty.
	MultiPathStripe
	// FaultAwareSingle routes along the shortest surviving container path
	// (the RouteAround policy): single-path latency, fault tolerance up to
	// m faults.
	FaultAwareSingle
	// AdaptiveLocal routes with local fault discovery only (the deflecting
	// dimension-ordered heuristic): no global fault knowledge, no
	// guarantee, measured delivery probability.
	AdaptiveLocal
)

// String names the mode.
func (m RoutingMode) String() string {
	switch m {
	case SinglePath:
		return "single-path"
	case MultiPathStripe:
		return "multi-path"
	case FaultAwareSingle:
		return "fault-aware"
	case AdaptiveLocal:
		return "adaptive-local"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// Switching selects the flow-control model.
type Switching int

const (
	// StoreAndForward receives a whole packet before forwarding it: an
	// F-flit packet takes F cycles per hop.
	StoreAndForward Switching = iota
	// CutThrough (virtual cut-through) forwards the head flit one hop per
	// cycle while the body streams behind it: unloaded latency is
	// hops + F instead of hops × F. Stalled worms buffer at nodes (no
	// upstream link blocking), which is the classical VCT approximation.
	CutThrough
)

// String names the switching model.
func (s Switching) String() string {
	switch s {
	case StoreAndForward:
		return "store-and-forward"
	case CutThrough:
		return "cut-through"
	default:
		return fmt.Sprintf("Switching(%d)", int(s))
	}
}

// TrafficPattern selects how flow endpoints are drawn — the classical
// interconnection-network evaluation patterns.
type TrafficPattern int

const (
	// PatternUniform draws both endpoints uniformly (the default).
	PatternUniform TrafficPattern = iota
	// PatternHotspot sends every flow to one shared destination,
	// concentrating load on its incident links.
	PatternHotspot
	// PatternComplement pairs each source with its address complement —
	// maximum-distance, maximally structured traffic.
	PatternComplement
	// PatternBitReverse pairs ID x with its n-bit reversal, the classic
	// FFT-style permutation. Needs IDs to fit uint64 (m <= 5).
	PatternBitReverse
)

// String names the pattern.
func (p TrafficPattern) String() string {
	switch p {
	case PatternUniform:
		return "uniform"
	case PatternHotspot:
		return "hotspot"
	case PatternComplement:
		return "complement"
	case PatternBitReverse:
		return "bit-reverse"
	default:
		return fmt.Sprintf("TrafficPattern(%d)", int(p))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	M               int            // HHC parameter; the network has 2^(2^M+M) nodes
	Mode            RoutingMode    // path mapping policy
	Switch          Switching      // flow control; zero value = StoreAndForward
	Pattern         TrafficPattern // endpoint structure; zero value = PatternUniform
	Flows           int            // number of concurrent source/destination flows
	MessagesPerFlow int            // messages generated per flow
	MessageFlits    int            // message size in flits
	ArrivalRate     float64        // mean messages per cycle per flow (Poisson)
	FaultCount      int            // random faulty nodes, never on flow endpoints
	LinkFaultCount  int            // random faulty (undirected) links, never incident to endpoints
	Warmup          int64          // cycles: messages created earlier are simulated but excluded from latency stats
	Seed            int64          // PRNG seed: same seed, same result
	// FlowPairs, when non-empty, supplies the flow endpoints explicitly
	// (trace-driven runs); it overrides Pattern and must have Flows entries.
	FlowPairs []gen.Pair
	// Cache, when non-nil, serves container constructions through the
	// memoizing cache instead of building each flow's container directly.
	// It must be bound to a topology with the same M. With the default
	// exact canonicalization the simulation result is bit-identical to an
	// uncached run; sharing the cache across runs amortizes construction.
	Cache *cache.Cache
	// Obs, when non-nil, receives the run's metrics under the netsim_*
	// namespace: message counters, the delivered-latency histogram,
	// fault-induced path prunes, and in-flight message occupancy. The
	// metrics are registered when Run starts, so a live /metrics endpoint
	// shows the run progressing. Nil disables metric collection entirely.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per run phase (route
	// precompute, workload build, simulate, aggregate).
	Tracer *obs.Tracer
}

// FlowStats aggregates one flow's traffic. Latency percentiles are
// nearest-rank over the flow's measured (post-warmup) deliveries, in
// cycles; all zero when the flow had no measured delivery.
type FlowStats struct {
	Generated  int
	Delivered  int
	Dropped    int
	AvgLatency float64 // over measured (post-warmup) deliveries; 0 if none
	P50Latency int64
	P95Latency int64
	P99Latency int64
}

// Result aggregates a run.
type Result struct {
	Generated    int     // messages created
	Delivered    int     // messages fully received
	Dropped      int     // messages lost to faults
	AvgLatency   float64 // mean delivery latency in cycles
	P50Latency   int64   // median latency
	P95Latency   int64   // 95th percentile latency
	P99Latency   int64   // 99th percentile latency
	MaxLatency   int64   // worst delivery latency
	Makespan     int64   // cycle of last delivery
	FlitsMoved   int64   // total flit·hops of delivered traffic
	Throughput   float64 // delivered flits per cycle (network goodput)
	AvgPathHops  float64 // mean hops of employed paths
	FaultBlocked int     // messages that found every path faulty
	// HottestLinkBusy is the busiest directed link's occupied cycles;
	// HottestLinkShare relates it to the makespan (1.0 = saturated).
	HottestLinkBusy  int64
	HottestLinkShare float64
	PerFlow          []FlowStats
}

// dessimSwitch maps the public switching constant onto the generic engine's.
func dessimSwitch(s Switching) dessim.Switching {
	if s == CutThrough {
		return dessim.CutThrough
	}
	return dessim.StoreAndForward
}

// Validate checks a configuration.
func (cfg Config) Validate() error {
	if cfg.M < hhc.MinM || cfg.M > hhc.MaxM {
		return fmt.Errorf("netsim: M=%d out of range", cfg.M)
	}
	if cfg.Flows <= 0 || cfg.MessagesPerFlow <= 0 {
		return errors.New("netsim: Flows and MessagesPerFlow must be positive")
	}
	if cfg.MessageFlits <= 0 {
		return errors.New("netsim: MessageFlits must be positive")
	}
	if cfg.ArrivalRate <= 0 {
		return errors.New("netsim: ArrivalRate must be positive")
	}
	if cfg.FaultCount < 0 || cfg.LinkFaultCount < 0 {
		return errors.New("netsim: fault counts must be non-negative")
	}
	if cfg.Switch != StoreAndForward && cfg.Switch != CutThrough {
		return fmt.Errorf("netsim: unknown switching model %v", cfg.Switch)
	}
	if cfg.Warmup < 0 {
		return errors.New("netsim: Warmup must be non-negative")
	}
	switch cfg.Pattern {
	case PatternUniform, PatternHotspot, PatternComplement:
	case PatternBitReverse:
		if cfg.M > 5 {
			return errors.New("netsim: bit-reverse pattern needs node IDs to fit uint64 (m <= 5)")
		}
	default:
		return fmt.Errorf("netsim: unknown traffic pattern %v", cfg.Pattern)
	}
	if len(cfg.FlowPairs) > 0 && len(cfg.FlowPairs) != cfg.Flows {
		return fmt.Errorf("netsim: %d explicit flow pairs for %d flows", len(cfg.FlowPairs), cfg.Flows)
	}
	if cfg.Cache != nil && cfg.Cache.M() != cfg.M {
		return fmt.Errorf("netsim: cache bound to m=%d, config has M=%d", cfg.Cache.M(), cfg.M)
	}
	return nil
}

// flowPairsFor draws the flow endpoints for the configured pattern, or
// returns the explicit trace-driven pairs.
func flowPairsFor(g *hhc.Graph, cfg Config) []gen.Pair {
	if len(cfg.FlowPairs) > 0 {
		return cfg.FlowPairs
	}
	switch cfg.Pattern {
	case PatternHotspot:
		r := rand.New(rand.NewSource(cfg.Seed ^ 0x407))
		dst := g.RandomNode(r)
		pairs := make([]gen.Pair, 0, cfg.Flows)
		for len(pairs) < cfg.Flows {
			src := g.RandomNode(r)
			if src != dst {
				pairs = append(pairs, gen.Pair{U: src, V: dst})
			}
		}
		return pairs
	case PatternComplement:
		return gen.Pairs(g, cfg.Flows, gen.Antipodal, cfg.Seed^0x5eed)
	case PatternBitReverse:
		r := rand.New(rand.NewSource(cfg.Seed ^ 0xb17))
		n := uint(g.N())
		pairs := make([]gen.Pair, 0, cfg.Flows)
		for len(pairs) < cfg.Flows {
			src := g.RandomNode(r)
			id := g.ID(src)
			var rev uint64
			for i := uint(0); i < n; i++ {
				rev |= (id >> i & 1) << (n - 1 - i)
			}
			dst := g.NodeFromID(rev)
			if src != dst {
				pairs = append(pairs, gen.Pair{U: src, V: dst})
			}
		}
		return pairs
	default:
		return gen.Pairs(g, cfg.Flows, gen.Uniform, cfg.Seed^0x5eed)
	}
}

// Run executes the simulation and returns aggregate metrics.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	g, err := hhc.New(cfg.M)
	if err != nil {
		return Result{}, err
	}
	metrics := newRunMetrics(cfg.Obs)
	runSpan := cfg.startSpan("netsim.run",
		"mode", cfg.Mode.String(),
		"m", fmt.Sprint(cfg.M),
		"flows", fmt.Sprint(cfg.Flows))
	defer runSpan.end()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Flows: fixed endpoint pairs drawn per the traffic pattern.
	pairs := flowPairsFor(g, cfg)
	if len(cfg.FlowPairs) > 0 {
		for i, pr := range pairs {
			if !g.Contains(pr.U) || !g.Contains(pr.V) || pr.U == pr.V {
				return Result{}, fmt.Errorf("netsim: explicit flow pair %d invalid: %s -> %s", i, g.FormatNode(pr.U), g.FormatNode(pr.V))
			}
		}
	}
	metrics.setFlows(cfg.Flows)
	var protect []hhc.Node
	for _, p := range pairs {
		protect = append(protect, p.U, p.V)
	}
	var faults map[hhc.Node]bool
	if cfg.FaultCount > 0 {
		faults = gen.FaultSet(g, cfg.FaultCount, protect, cfg.Seed^0xfa011)
	}
	var linkFaults map[edgeKey]bool
	if cfg.LinkFaultCount > 0 {
		linkFaults = randomLinkFaults(g, cfg.LinkFaultCount, protect, cfg.Seed^0x11f4)
	}

	// Precompute the path set of each flow according to the mode, through
	// the memoizing cache when one is configured.
	construct := core.Constructor(core.DisjointPathsOpt)
	if cfg.Cache != nil {
		construct = cfg.Cache.Constructor()
	}
	routeSpan := cfg.startSpan("netsim.routes")
	flowPaths := make([][][]hhc.Node, cfg.Flows)
	var res Result
	var hopSum, hopCnt int64
	for i, p := range pairs {
		paths, pruned, err := flowRoutes(g, p.U, p.V, cfg.Mode, faults, linkFaults, construct)
		if err != nil {
			return Result{}, err
		}
		metrics.addPrunes(int64(pruned))
		flowPaths[i] = paths
		for _, path := range paths {
			hopSum += int64(len(path) - 1)
			hopCnt++
		}
	}
	routeSpan.end()
	if hopCnt > 0 {
		res.AvgPathHops = float64(hopSum) / float64(hopCnt)
	}

	// Build the packet workload (Poisson arrivals per flow) for the generic
	// discrete-event engine; message metadata stays on this side.
	workloadSpan := cfg.startSpan("netsim.workload")
	type msgMeta struct {
		flow     int
		created  int64
		measured bool
	}
	var metas []msgMeta
	var packets []dessim.Packet[hhc.Node]
	res.PerFlow = make([]FlowStats, cfg.Flows)
	for i := range pairs {
		t := 0.0
		for k := 0; k < cfg.MessagesPerFlow; k++ {
			t += r.ExpFloat64() / cfg.ArrivalRate
			created := int64(t)
			res.Generated++
			res.PerFlow[i].Generated++
			paths := flowPaths[i]
			if len(paths) == 0 {
				res.Dropped++
				res.FaultBlocked++
				res.PerFlow[i].Dropped++
				continue
			}
			id := len(metas)
			metas = append(metas, msgMeta{flow: i, created: created, measured: created >= cfg.Warmup})
			switch cfg.Mode {
			case MultiPathStripe:
				per := int64((cfg.MessageFlits + len(paths) - 1) / len(paths))
				for _, path := range paths {
					packets = append(packets, dessim.Packet[hhc.Node]{
						Route: path, Flits: per, Release: created, Msg: id,
					})
					res.FlitsMoved += per * int64(len(path)-1)
				}
			default:
				packets = append(packets, dessim.Packet[hhc.Node]{
					Route: paths[0], Flits: int64(cfg.MessageFlits), Release: created, Msg: id,
				})
				res.FlitsMoved += int64(cfg.MessageFlits) * int64(len(paths[0])-1)
			}
		}
	}

	workloadSpan.end()

	simSpan := cfg.startSpan("netsim.simulate", "packets", fmt.Sprint(len(packets)))
	done, links, err := dessim.SimulateEx(packets, len(metas), dessimSwitch(cfg.Switch))
	simSpan.end()
	if err != nil {
		return Result{}, err
	}
	if len(links) > 0 {
		res.HottestLinkBusy = links[0].Busy
	}

	aggSpan := cfg.startSpan("netsim.aggregate")
	var latencies []float64
	flowLats := make([][]float64, cfg.Flows)
	createdAt := make([]int64, len(metas))
	for id, meta := range metas {
		doneAt := done[id]
		createdAt[id] = meta.created
		res.Delivered++
		res.PerFlow[meta.flow].Delivered++
		lat := doneAt - meta.created
		if meta.measured {
			latencies = append(latencies, float64(lat))
			flowLats[meta.flow] = append(flowLats[meta.flow], float64(lat))
			metrics.observeLatency(lat)
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
		}
		if doneAt > res.Makespan {
			res.Makespan = doneAt
		}
	}

	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.AvgLatency = sum / float64(len(latencies))
		qs := stats.Percentiles(latencies, 50, 95, 99)
		res.P50Latency, res.P95Latency, res.P99Latency = int64(qs[0]), int64(qs[1]), int64(qs[2])
	}
	if res.Makespan > 0 {
		res.Throughput = float64(res.Delivered*cfg.MessageFlits) / float64(res.Makespan)
		res.HottestLinkShare = float64(res.HottestLinkBusy) / float64(res.Makespan)
	}
	for i := range res.PerFlow {
		lats := flowLats[i]
		if len(lats) == 0 {
			continue
		}
		var sum float64
		for _, l := range lats {
			sum += l
		}
		res.PerFlow[i].AvgLatency = sum / float64(len(lats))
		qs := stats.Percentiles(lats, 50, 95, 99)
		res.PerFlow[i].P50Latency = int64(qs[0])
		res.PerFlow[i].P95Latency = int64(qs[1])
		res.PerFlow[i].P99Latency = int64(qs[2])
	}
	metrics.record(res, createdAt, done)
	aggSpan.end()
	return res, nil
}

// edgeKey is an undirected link identifier: endpoints stored in canonical
// (X, Y) order.
type edgeKey struct{ a, b hhc.Node }

func canonicalEdge(u, v hhc.Node) edgeKey {
	if u.X > v.X || (u.X == v.X && u.Y > v.Y) {
		u, v = v, u
	}
	return edgeKey{a: u, b: v}
}

// randomLinkFaults draws count distinct faulty links, none incident to a
// protected node (so flows are never cut off at the first hop by fiat).
func randomLinkFaults(g *hhc.Graph, count int, protect []hhc.Node, seed int64) map[edgeKey]bool {
	r := rand.New(rand.NewSource(seed))
	prot := make(map[hhc.Node]bool, len(protect))
	for _, p := range protect {
		prot[p] = true
	}
	faults := make(map[edgeKey]bool, count)
	var buf []hhc.Node
	for len(faults) < count {
		u := g.RandomNode(r)
		if prot[u] {
			continue
		}
		buf = g.Neighbors(u, buf[:0])
		v := buf[r.Intn(len(buf))]
		if prot[v] {
			continue
		}
		faults[canonicalEdge(u, v)] = true
	}
	return faults
}

// flowRoutes computes the path set used by one flow under the given mode;
// an empty set means the flow is completely blocked by faults. pruned
// counts the paths faults removed from consideration — the fault-induced
// reroutes the observability layer reports. The m+1 container paths are
// node-disjoint, hence also link-disjoint, so the f <= m survival
// guarantee covers link faults too.
func flowRoutes(g *hhc.Graph, u, v hhc.Node, mode RoutingMode, faults map[hhc.Node]bool, linkFaults map[edgeKey]bool, construct core.Constructor) (paths [][]hhc.Node, pruned int, err error) {
	switch mode {
	case SinglePath:
		p, err := g.Route(u, v)
		if err != nil {
			return nil, 0, err
		}
		if pathBlocked(p, faults, linkFaults) {
			return nil, 1, nil
		}
		return [][]hhc.Node{p}, 0, nil
	case FaultAwareSingle:
		paths, pruned, err := containerSurvivors(g, u, v, faults, linkFaults, construct)
		if err != nil || len(paths) == 0 {
			return nil, pruned, err
		}
		best := paths[0]
		for _, p := range paths[1:] {
			if len(p) < len(best) {
				best = p
			}
		}
		return [][]hhc.Node{best}, pruned, nil
	case MultiPathStripe:
		return containerSurvivors(g, u, v, faults, linkFaults, construct)
	case AdaptiveLocal:
		res, err := core.AdaptiveRoute(g, u, v, func(w hhc.Node) bool { return faults[w] }, 0)
		if err != nil {
			return nil, 0, err
		}
		if !res.Delivered || pathBlocked(res.Path, nil, linkFaults) {
			return nil, 1, nil
		}
		return [][]hhc.Node{res.Path}, 0, nil
	default:
		return nil, 0, fmt.Errorf("netsim: unknown mode %v", mode)
	}
}

// containerSurvivors constructs the container and filters out paths hit by
// node or link faults, reporting how many were pruned.
func containerSurvivors(g *hhc.Graph, u, v hhc.Node, faults map[hhc.Node]bool, linkFaults map[edgeKey]bool, construct core.Constructor) ([][]hhc.Node, int, error) {
	paths, err := construct(g, u, v, core.Options{})
	if err != nil {
		return nil, 0, err
	}
	var out [][]hhc.Node
	for _, p := range paths {
		if !pathBlocked(p, faults, linkFaults) {
			out = append(out, p)
		}
	}
	return out, len(paths) - len(out), nil
}

func pathBlocked(p []hhc.Node, faults map[hhc.Node]bool, linkFaults map[edgeKey]bool) bool {
	if faults != nil {
		for _, w := range p[1 : len(p)-1] {
			if faults[w] {
				return true
			}
		}
	}
	if linkFaults != nil {
		for i := 1; i < len(p); i++ {
			if linkFaults[canonicalEdge(p[i-1], p[i])] {
				return true
			}
		}
	}
	return false
}
