package netsim

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

func obsConfig() Config {
	return Config{
		M: 2, Mode: MultiPathStripe, Flows: 6, MessagesPerFlow: 8,
		MessageFlits: 16, ArrivalRate: 0.01, Seed: 3,
	}
}

func TestRunRegistersMetrics(t *testing.T) {
	cfg := obsConfig()
	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(64)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := "netsim_messages_generated_total " + strconv.Itoa(res.Generated); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
	if want := "netsim_messages_delivered_total " + strconv.Itoa(res.Delivered); !strings.Contains(out, want) {
		t.Errorf("exposition missing %q", want)
	}
	for _, name := range []string{
		"netsim_flow_latency_cycles_count",
		"netsim_inflight_messages_count",
		"netsim_inflight_messages_peak",
		"netsim_makespan_cycles",
		"netsim_throughput_flits_per_cycle",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing series %s:\n%s", name, out)
		}
	}

	names := map[string]bool{}
	for _, s := range cfg.Tracer.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"netsim.run", "netsim.routes", "netsim.workload", "netsim.simulate", "netsim.aggregate"} {
		if !names[want] {
			t.Errorf("missing span %q; got %v", want, names)
		}
	}
}

// TestRunWithoutObsUnchanged: Obs and Tracer nil must be byte-for-byte the
// same simulation (the instrumentation only reads).
func TestRunWithoutObsUnchanged(t *testing.T) {
	plain, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsConfig()
	cfg.Obs = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(64)
	instr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instr, plain) {
		t.Errorf("instrumented run differs:\n got %+v\nwant %+v", instr, plain)
	}
}

func TestPerFlowPercentiles(t *testing.T) {
	res, err := Run(obsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.P50Latency > res.P95Latency || res.P95Latency > res.P99Latency || res.P99Latency > res.MaxLatency {
		t.Errorf("aggregate percentiles not monotone: p50=%d p95=%d p99=%d max=%d",
			res.P50Latency, res.P95Latency, res.P99Latency, res.MaxLatency)
	}
	if len(res.PerFlow) != obsConfig().Flows {
		t.Fatalf("PerFlow has %d entries, want %d", len(res.PerFlow), obsConfig().Flows)
	}
	sawMeasured := false
	for i, fs := range res.PerFlow {
		if fs.P50Latency > fs.P95Latency || fs.P95Latency > fs.P99Latency {
			t.Errorf("flow %d percentiles not monotone: %+v", i, fs)
		}
		if fs.P99Latency > res.MaxLatency {
			t.Errorf("flow %d p99 %d exceeds global max %d", i, fs.P99Latency, res.MaxLatency)
		}
		if fs.P50Latency > 0 {
			sawMeasured = true
		}
	}
	if !sawMeasured {
		t.Error("no flow reported a positive p50; percentiles never computed?")
	}
}
