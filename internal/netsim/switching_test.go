package netsim

import (
	"testing"

	"repro/internal/hhc"
)

// TestCutThroughUnloadedFormula: one unloaded message under virtual
// cut-through has latency exactly hops + flits (head pipelines one hop per
// cycle, tail streams behind).
func TestCutThroughUnloadedFormula(t *testing.T) {
	cfg := Config{
		M:               2,
		Mode:            SinglePath,
		Switch:          CutThrough,
		Flows:           1,
		MessagesPerFlow: 1,
		MessageFlits:    10,
		ArrivalRate:     0.001,
		Seed:            7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.AvgPathHops + float64(cfg.MessageFlits)
	if res.AvgLatency != want {
		t.Fatalf("cut-through latency %.1f, want hops+flits = %.1f", res.AvgLatency, want)
	}
}

// TestCutThroughBeatsStoreAndForward: for multi-hop paths and non-trivial
// messages, pipelining must strictly reduce latency.
func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	base := Config{
		M:               3,
		Mode:            SinglePath,
		Flows:           12,
		MessagesPerFlow: 30,
		MessageFlits:    64,
		ArrivalRate:     0.0005,
		Seed:            3,
	}
	saf, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ct := base
	ct.Switch = CutThrough
	ctRes, err := Run(ct)
	if err != nil {
		t.Fatal(err)
	}
	if ctRes.AvgLatency >= saf.AvgLatency {
		t.Fatalf("cut-through %.1f did not beat store-and-forward %.1f",
			ctRes.AvgLatency, saf.AvgLatency)
	}
	if ctRes.Delivered != saf.Delivered {
		t.Fatalf("delivery mismatch: %d vs %d", ctRes.Delivered, saf.Delivered)
	}
}

// TestLinkFaultGuarantee: container paths are link-disjoint, so f <= m link
// faults never block the fault-aware modes.
func TestLinkFaultGuarantee(t *testing.T) {
	for _, mode := range []RoutingMode{FaultAwareSingle, MultiPathStripe} {
		cfg := Config{
			M:               3,
			Mode:            mode,
			Flows:           25,
			MessagesPerFlow: 10,
			MessageFlits:    16,
			ArrivalRate:     0.001,
			LinkFaultCount:  3, // = m
			Seed:            11,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Dropped != 0 {
			t.Fatalf("%v dropped %d messages with <= m link faults", mode, res.Dropped)
		}
	}
}

// TestMixedFaultsConservation: node + link faults together still conserve
// messages in all modes.
func TestMixedFaultsConservation(t *testing.T) {
	for _, mode := range []RoutingMode{SinglePath, FaultAwareSingle, MultiPathStripe} {
		cfg := Config{
			M:               2,
			Mode:            mode,
			Switch:          CutThrough,
			Flows:           15,
			MessagesPerFlow: 10,
			MessageFlits:    8,
			ArrivalRate:     0.01,
			FaultCount:      6,
			LinkFaultCount:  6,
			Seed:            4,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Delivered+res.Dropped != res.Generated {
			t.Fatalf("%v conservation: %+v", mode, res)
		}
	}
}

func TestCanonicalEdge(t *testing.T) {
	u := hhc.Node{X: 3, Y: 1}
	v := hhc.Node{X: 3, Y: 0}
	if canonicalEdge(u, v) != canonicalEdge(v, u) {
		t.Fatal("edge canonicalization not symmetric")
	}
	w := hhc.Node{X: 7, Y: 1}
	if canonicalEdge(u, w) != canonicalEdge(w, u) {
		t.Fatal("cross-cube edge canonicalization not symmetric")
	}
}

func TestSwitchingValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Switch = Switching(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown switching model accepted")
	}
	cfg = baseConfig()
	cfg.LinkFaultCount = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative link faults accepted")
	}
	if StoreAndForward.String() != "store-and-forward" || CutThrough.String() != "cut-through" {
		t.Fatal("switching names wrong")
	}
	if Switching(5).String() == "" {
		t.Fatal("unknown switching should format")
	}
}

// TestFaultAwarePicksShortestSurvivor: with no faults at all, fault-aware
// single-path routing uses the shortest container path, which can be a bit
// longer than the true shortest path but never shorter.
func TestFaultAwarePicksShortestSurvivor(t *testing.T) {
	single := Config{
		M: 3, Mode: SinglePath, Flows: 10, MessagesPerFlow: 1,
		MessageFlits: 4, ArrivalRate: 0.001, Seed: 21,
	}
	aware := single
	aware.Mode = FaultAwareSingle
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(aware)
	if err != nil {
		t.Fatal(err)
	}
	if ra.AvgPathHops < rs.AvgPathHops {
		t.Fatalf("container survivor (%.2f hops) beat the shortest path (%.2f hops)",
			ra.AvgPathHops, rs.AvgPathHops)
	}
}
