package netsim_test

import (
	"fmt"
	"log"

	"repro/internal/netsim"
)

// ExampleRun compares single-path and striped transmission on an unloaded
// network: for 256-flit messages, (m+1)-way striping cuts latency sharply.
func ExampleRun() {
	base := netsim.Config{
		M:               3,
		Flows:           4,
		MessagesPerFlow: 10,
		MessageFlits:    256,
		ArrivalRate:     0.0001,
		Seed:            2006,
	}
	single := base
	single.Mode = netsim.SinglePath
	rs, err := netsim.Run(single)
	if err != nil {
		log.Fatal(err)
	}
	multi := base
	multi.Mode = netsim.MultiPathStripe
	rm, err := netsim.Run(multi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivered:", rs.Delivered == rm.Delivered)
	fmt.Println("striping wins:", rm.AvgLatency < rs.AvgLatency)
	// Output:
	// delivered: true
	// striping wins: true
}

// ExampleRun_cutThrough shows the switching model knob.
func ExampleRun_cutThrough() {
	cfg := netsim.Config{
		M:               2,
		Mode:            netsim.SinglePath,
		Switch:          netsim.CutThrough,
		Flows:           1,
		MessagesPerFlow: 1,
		MessageFlits:    64,
		ArrivalRate:     0.001,
		Seed:            7,
	}
	res, err := netsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Virtual cut-through: latency = hops + flits, not hops × flits.
	fmt.Println(res.AvgLatency == res.AvgPathHops+64)
	// Output:
	// true
}
