package netsim

import (
	"testing"
)

func TestAdaptiveModeConservation(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = AdaptiveLocal
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != res.Generated {
		t.Fatalf("conservation: %+v", res)
	}
	if res.Dropped != 0 {
		t.Fatalf("fault-free adaptive dropped %d", res.Dropped)
	}
}

// TestAdaptiveModeUnderFaults: the local heuristic should deliver the vast
// majority under moderate faults — and never crash.
func TestAdaptiveModeUnderFaults(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = AdaptiveLocal
	cfg.M = 3
	cfg.Flows = 40
	cfg.FaultCount = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != res.Generated {
		t.Fatalf("conservation: %+v", res)
	}
	if float64(res.Delivered) < 0.8*float64(res.Generated) {
		t.Fatalf("adaptive delivered only %d/%d under 8 faults", res.Delivered, res.Generated)
	}
}

func TestAdaptiveModeString(t *testing.T) {
	if AdaptiveLocal.String() != "adaptive-local" {
		t.Fatal("mode name wrong")
	}
}
