package deadlock

import (
	"testing"

	"repro/internal/hhc"
)

func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAnalyzeKnownAcyclic: two routes sharing a channel without circular
// waiting form an acyclic CDG.
func TestAnalyzeKnownAcyclic(t *testing.T) {
	g := mustGraph(t, 2)
	a := hhc.Node{X: 0, Y: 0}
	b := g.LocalNeighbor(a, 0)
	c := g.LocalNeighbor(b, 1)
	d := g.ExternalNeighbor(c)
	rep := Analyze([][]hhc.Node{
		{a, b, c},
		{b, c, d},
	})
	if !rep.Acyclic {
		t.Fatalf("expected acyclic, got cycle %v", rep.Cycle)
	}
	if rep.Links != 3 || rep.Dependencies != 2 || rep.Routes != 2 {
		t.Fatalf("stats: %+v", rep)
	}
}

// TestAnalyzeKnownCycle: routes chasing each other around a 4-cycle of the
// network create the textbook circular wait.
func TestAnalyzeKnownCycle(t *testing.T) {
	// A 4-cycle inside one son-cube of HHC_6: y = 0 -> 1 -> 3 -> 2 -> 0.
	n0 := hhc.Node{X: 5, Y: 0}
	n1 := hhc.Node{X: 5, Y: 1}
	n3 := hhc.Node{X: 5, Y: 3}
	n2 := hhc.Node{X: 5, Y: 2}
	rep := Analyze([][]hhc.Node{
		{n0, n1, n3},
		{n1, n3, n2},
		{n3, n2, n0},
		{n2, n0, n1},
	})
	if rep.Acyclic {
		t.Fatal("expected a dependency cycle")
	}
	if len(rep.Cycle) < 3 {
		t.Fatalf("degenerate cycle witness %v", rep.Cycle)
	}
	if rep.Cycle[0] != rep.Cycle[len(rep.Cycle)-1] {
		t.Fatalf("cycle witness not closed: %v", rep.Cycle)
	}
	// Every consecutive pair in the witness must be a recorded dependency
	// (link2 starts where link1 ends).
	for i := 1; i < len(rep.Cycle); i++ {
		if rep.Cycle[i-1].To != rep.Cycle[i].From {
			t.Fatalf("witness not a channel chain at %d: %v", i, rep.Cycle)
		}
	}
}

// TestAnalyzeRouterM1: HHC_3 is an 8-cycle, and minimal routing on a ring
// is Dally's textbook example of a CYCLIC channel dependency graph (each
// clockwise route waits on the next clockwise channel, all the way around)
// — the original motivation for virtual channels. The analysis must find
// that cycle and produce a valid witness.
func TestAnalyzeRouterM1(t *testing.T) {
	g := mustGraph(t, 1)
	rep, err := AnalyzeRouter(g, g.Route, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acyclic {
		t.Fatal("minimal ring routing must have a cyclic CDG (Dally's example)")
	}
	if rep.Links != 16 { // 8 undirected edges, both directions used
		t.Fatalf("links = %d, want 16", rep.Links)
	}
	for i := 1; i < len(rep.Cycle); i++ {
		if rep.Cycle[i-1].To != rep.Cycle[i].From {
			t.Fatalf("invalid witness at %d: %v", i, rep.Cycle)
		}
	}
}

// TestAnalyzeRoutersM2 measures the real question: are the HHC routers
// deadlock-free on HHC_6? The result (either way) is pinned as a regression
// test; experiment E17 reports the numbers.
func TestAnalyzeRoutersM2(t *testing.T) {
	g := mustGraph(t, 2)
	for _, tc := range []struct {
		name   string
		router RouterFunc
	}{
		{"shortest", g.Route},
		{"dim-order", g.RouteDimOrder},
	} {
		rep, err := AnalyzeRouter(g, tc.router, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Routes != 64*63 {
			t.Fatalf("%s: %d routes", tc.name, rep.Routes)
		}
		// All 192 directed links of HHC_6 should be exercised by all-pairs
		// traffic.
		if rep.Links != 192 {
			t.Fatalf("%s: %d links, want 192", tc.name, rep.Links)
		}
		t.Logf("%s: deps=%d acyclic=%v", tc.name, rep.Dependencies, rep.Acyclic)
		if !rep.Acyclic {
			// A cycle witness must at least be structurally valid.
			for i := 1; i < len(rep.Cycle); i++ {
				if rep.Cycle[i-1].To != rep.Cycle[i].From {
					t.Fatalf("%s: invalid witness", tc.name)
				}
			}
		}
	}
}

func TestAnalyzeRouterErrors(t *testing.T) {
	g := mustGraph(t, 4)
	if _, err := AnalyzeRouter(g, g.Route, 1); err == nil {
		t.Fatal("huge network accepted")
	}
}

func TestAnalyzeRouterStride(t *testing.T) {
	g := mustGraph(t, 2)
	rep, err := AnalyzeRouter(g, g.Route, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Routes != 64*63/7 {
		t.Fatalf("stride sampling produced %d routes", rep.Routes)
	}
}
