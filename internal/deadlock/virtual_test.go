package deadlock

import (
	"testing"

	"repro/internal/hhc"
)

// TestVirtualChannelsBreakRingCycle: the Dally ring example again, now with
// the rank-descent discipline — the CDG over virtual channels must be
// acyclic.
func TestVirtualChannelsBreakRingCycle(t *testing.T) {
	g := mustGraph(t, 1)
	// Plain analysis is cyclic (pinned by TestAnalyzeRouterM1); virtual
	// analysis must not be.
	rep, vcs, err := AnalyzeRouterVirtual(g, g.Route, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Acyclic {
		t.Fatalf("virtual-channel CDG still cyclic: %v", rep.Cycle)
	}
	if vcs < 2 {
		t.Fatalf("a ring cannot be deadlock-free with %d virtual channel(s)", vcs)
	}
	t.Logf("ring: %d virtual channels, %d virtual links", vcs, rep.Links)
}

// TestVirtualChannelsM2BothRouters: both routers become deadlock-free on
// HHC_6, with a measured (and bounded) channel count.
func TestVirtualChannelsM2BothRouters(t *testing.T) {
	g := mustGraph(t, 2)
	for _, tc := range []struct {
		name   string
		router RouterFunc
	}{
		{"shortest", g.Route},
		{"dim-order", g.RouteDimOrder},
	} {
		rep, vcs, err := AnalyzeRouterVirtual(g, tc.router, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Acyclic {
			t.Fatalf("%s: still cyclic with virtual channels", tc.name)
		}
		// Descents are bounded by the route length; anything above the
		// diameter bound would indicate a broken assignment.
		if vcs < 1 || vcs > g.DiameterUpperBound() {
			t.Fatalf("%s: implausible virtual channel count %d", tc.name, vcs)
		}
		t.Logf("%s: %d virtual channels suffice (%d virtual links, %d deps)",
			tc.name, vcs, rep.Links, rep.Dependencies)
	}
}

// TestAssignVCsMonotone: along every route, (vc, rank) must increase
// lexicographically — the inductive core of the deadlock-freedom argument.
func TestAssignVCsMonotone(t *testing.T) {
	g := mustGraph(t, 2)
	rank := DefaultRank(g)
	n, _ := g.NumNodes()
	for i := uint64(0); i < n; i += 3 {
		for j := uint64(1); j < n; j += 5 {
			if i == j {
				continue
			}
			route, err := g.Route(g.NodeFromID(i), g.NodeFromID(j))
			if err != nil {
				t.Fatal(err)
			}
			vcs := AssignVCs(route, rank)
			if len(vcs) != len(route)-1 {
				t.Fatalf("vc assignment length %d for %d hops", len(vcs), len(route)-1)
			}
			for k := 1; k < len(vcs); k++ {
				prevRank := rank(Link{From: route[k-1], To: route[k]})
				curRank := rank(Link{From: route[k], To: route[k+1]})
				switch {
				case vcs[k] == vcs[k-1]:
					if curRank <= prevRank {
						t.Fatalf("rank descent without vc bump at hop %d", k)
					}
				case vcs[k] == vcs[k-1]+1:
					// fine: a descent
				default:
					t.Fatalf("vc jumped from %d to %d", vcs[k-1], vcs[k])
				}
			}
		}
	}
}

func TestAssignVCsDegenerate(t *testing.T) {
	g := mustGraph(t, 2)
	rank := DefaultRank(g)
	if vcs := AssignVCs(nil, rank); vcs != nil {
		t.Fatal("nil route should yield nil")
	}
	u := hhc.Node{X: 0, Y: 0}
	if vcs := AssignVCs([]hhc.Node{u}, rank); vcs != nil {
		t.Fatal("single-node route should yield nil")
	}
	v := g.LocalNeighbor(u, 0)
	if vcs := AssignVCs([]hhc.Node{u, v}, rank); len(vcs) != 1 || vcs[0] != 0 {
		t.Fatalf("single-hop route: %v", vcs)
	}
}

func TestNeededVCsEmpty(t *testing.T) {
	g := mustGraph(t, 2)
	if got := NeededVCs(nil, DefaultRank(g)); got != 1 {
		t.Fatalf("no routes need %d vcs, want 1", got)
	}
}
