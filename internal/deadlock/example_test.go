package deadlock_test

import (
	"fmt"
	"log"

	"repro/internal/deadlock"
	"repro/internal/hhc"
)

// Example runs the Dally–Seitz analysis on HHC_3 (an 8-cycle): minimal ring
// routing is the textbook deadlock, and rank-descent virtual channels cure
// it — both facts checked mechanically.
func Example() {
	g, err := hhc.New(1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := deadlock.AnalyzeRouter(g, g.Route, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physical channels acyclic:", rep.Acyclic)

	vrep, vcs, err := deadlock.AnalyzeRouterVirtual(g, g.Route, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("virtual channels acyclic:", vrep.Acyclic)
	fmt.Println("virtual channels needed:", vcs)
	// Output:
	// physical channels acyclic: false
	// virtual channels acyclic: true
	// virtual channels needed: 4
}
