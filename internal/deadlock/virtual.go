package deadlock

import (
	"fmt"

	"repro/internal/hhc"
)

// Virtual channels. E17's finding — cyclic channel dependency graphs for
// both routers — has the classical cure: split every physical link into
// virtual channels and make routes climb a global (vc, rank) order. This
// file implements the generic "rank-descent" discipline:
//
//   - fix any total order (rank) on physical channels;
//   - a packet starts on virtual channel 0 and moves to the next virtual
//     channel whenever its route's next physical channel has rank <= the
//     current one (a "descent").
//
// Along any route the pair (vc, rank) is then strictly increasing
// lexicographically, so the dependency graph over virtual channels is
// acyclic BY CONSTRUCTION — and AnalyzeVirtual re-verifies that mechanically
// rather than trusting the argument. The price is the number of virtual
// channels: 1 + the maximum number of descents over all routes, which
// NeededVCs measures for a workload.

// RankFunc totally orders physical channels. Any injective function works;
// the default ranks by (From, To) address order.
type RankFunc func(Link) uint64

// DefaultRank orders channels lexicographically by endpoint addresses.
// Valid whenever node IDs fit 32 bits per coordinate (every enumerable
// instance).
func DefaultRank(g *hhc.Graph) RankFunc {
	return func(l Link) uint64 {
		return g.ID(l.From)<<32 | g.ID(l.To)
	}
}

// AssignVCs returns the virtual channel of every hop of a route under the
// rank-descent discipline (length = len(route)-1).
func AssignVCs(route []hhc.Node, rank RankFunc) []int {
	if len(route) < 2 {
		return nil
	}
	vcs := make([]int, len(route)-1)
	vc := 0
	prev := rank(Link{From: route[0], To: route[1]})
	for i := 2; i < len(route); i++ {
		cur := rank(Link{From: route[i-1], To: route[i]})
		if cur <= prev {
			vc++
		}
		vcs[i-1] = vc
		prev = cur
	}
	return vcs
}

// NeededVCs returns the number of virtual channels the discipline needs for
// the given routes: 1 + max descents.
func NeededVCs(routes [][]hhc.Node, rank RankFunc) int {
	max := 0
	for _, route := range routes {
		vcs := AssignVCs(route, rank)
		if len(vcs) > 0 && vcs[len(vcs)-1] > max {
			max = vcs[len(vcs)-1]
		}
	}
	return max + 1
}

// virtualLink is a channel replicated onto a virtual lane.
type virtualLink struct {
	l  Link
	vc int
}

// AnalyzeVirtual rebuilds the dependency graph over (channel, vc) pairs and
// checks acyclicity — the mechanical proof that the assignment removed the
// deadlock. It returns the virtual report plus the channel count used.
func AnalyzeVirtual(routes [][]hhc.Node, rank RankFunc) (Report, int) {
	ids := make(map[virtualLink]int)
	var rev []virtualLink
	idOf := func(v virtualLink) int {
		if id, ok := ids[v]; ok {
			return id
		}
		id := len(rev)
		ids[v] = id
		rev = append(rev, v)
		return id
	}
	adj := make(map[int]map[int]bool)
	deps := 0
	for _, route := range routes {
		vcs := AssignVCs(route, rank)
		prev := -1
		for i := 1; i < len(route); i++ {
			cur := idOf(virtualLink{l: Link{From: route[i-1], To: route[i]}, vc: vcs[i-1]})
			if prev >= 0 {
				if adj[prev] == nil {
					adj[prev] = make(map[int]bool)
				}
				if !adj[prev][cur] {
					adj[prev][cur] = true
					deps++
				}
			}
			prev = cur
		}
	}
	rep := Report{Routes: len(routes), Links: len(rev), Dependencies: deps}
	cycle := findCycle(len(rev), adj)
	if cycle == nil {
		rep.Acyclic = true
	} else {
		for _, id := range cycle {
			rep.Cycle = append(rep.Cycle, rev[id].l)
		}
	}
	return rep, NeededVCs(routes, rank)
}

// AnalyzeRouterVirtual is AnalyzeRouter under the virtual-channel
// discipline.
func AnalyzeRouterVirtual(g *hhc.Graph, router RouterFunc, stride int) (Report, int, error) {
	n, ok := g.NumNodes()
	if !ok || n > 1<<12 {
		return Report{}, 0, fmt.Errorf("deadlock: network too large to enumerate")
	}
	if stride < 1 {
		stride = 1
	}
	var routes [][]hhc.Node
	count := 0
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			if i == j {
				continue
			}
			count++
			if count%stride != 0 {
				continue
			}
			p, err := router(g.NodeFromID(i), g.NodeFromID(j))
			if err != nil {
				return Report{}, 0, err
			}
			routes = append(routes, p)
		}
	}
	rep, vcs := AnalyzeVirtual(routes, DefaultRank(g))
	return rep, vcs, nil
}
