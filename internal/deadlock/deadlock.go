// Package deadlock performs channel-dependency-graph (CDG) analysis of
// routing functions on the hierarchical hypercube — the classical Dally &
// Seitz criterion: wormhole routing is deadlock-free iff the directed graph
// whose vertices are network channels (directed links) and whose edges are
// the consecutive channel pairs some route can occupy is acyclic.
//
// The package enumerates (or samples) routes produced by a routing
// function, accumulates the dependency relation, and either certifies
// acyclicity or returns a concrete dependency cycle — the witness that the
// routing function needs virtual channels on a wormhole network.
package deadlock

import (
	"fmt"

	"repro/internal/hhc"
)

// Link is a directed channel.
type Link struct {
	From, To hhc.Node
}

// Report is the outcome of a CDG analysis.
type Report struct {
	Routes       int  // routes analyzed
	Links        int  // distinct channels used
	Dependencies int  // distinct consecutive-channel pairs
	Acyclic      bool // Dally–Seitz criterion satisfied
	// Cycle is a witness dependency cycle (first link repeated at the end)
	// when Acyclic is false.
	Cycle []Link
}

// Analyze builds the CDG of the given routes and checks it for cycles.
// Routes must be valid walks (consecutive nodes adjacent); single-node and
// single-edge routes contribute channels but no dependencies.
func Analyze(routes [][]hhc.Node) Report {
	linkID := make(map[Link]int)
	var links []Link
	idOf := func(l Link) int {
		if id, ok := linkID[l]; ok {
			return id
		}
		id := len(links)
		linkID[l] = id
		links = append(links, l)
		return id
	}
	adj := make(map[int]map[int]bool)
	deps := 0
	for _, route := range routes {
		prev := -1
		for i := 1; i < len(route); i++ {
			cur := idOf(Link{From: route[i-1], To: route[i]})
			if prev >= 0 {
				if adj[prev] == nil {
					adj[prev] = make(map[int]bool)
				}
				if !adj[prev][cur] {
					adj[prev][cur] = true
					deps++
				}
			}
			prev = cur
		}
	}
	rep := Report{Routes: len(routes), Links: len(links), Dependencies: deps}
	cycle := findCycle(len(links), adj)
	if cycle == nil {
		rep.Acyclic = true
		return rep
	}
	for _, id := range cycle {
		rep.Cycle = append(rep.Cycle, links[id])
	}
	return rep
}

// findCycle runs an iterative three-color DFS and returns one directed
// cycle as link IDs (first element repeated last), or nil.
func findCycle(n int, adj map[int]map[int]bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		// Iterative DFS with explicit stack of (node, iterator state).
		type frame struct {
			v    int
			next []int
		}
		neighbors := func(v int) []int {
			out := make([]int, 0, len(adj[v]))
			for w := range adj[v] {
				out = append(out, w)
			}
			return out
		}
		stack := []frame{{v: start, next: neighbors(start)}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.next) == 0 {
				color[top.v] = black
				stack = stack[:len(stack)-1]
				continue
			}
			w := top.next[0]
			top.next = top.next[1:]
			switch color[w] {
			case white:
				color[w] = gray
				parent[w] = top.v
				stack = append(stack, frame{v: w, next: neighbors(w)})
			case gray:
				// Found a back edge top.v -> w: reconstruct the cycle.
				cycle := []int{w}
				for c := top.v; c != w; c = parent[c] {
					cycle = append(cycle, c)
				}
				cycle = append(cycle, w)
				// Reverse into forward order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
		}
	}
	return nil
}

// RouterFunc produces a route between two nodes.
type RouterFunc func(u, v hhc.Node) ([]hhc.Node, error)

// AnalyzeRouter runs the CDG analysis over every ordered node pair of an
// enumerable network (m <= 2 exhaustive is 4032 routes; m = 3 is ~4M, so a
// stride parameter subsamples the pair space deterministically).
func AnalyzeRouter(g *hhc.Graph, router RouterFunc, stride int) (Report, error) {
	n, ok := g.NumNodes()
	if !ok || n > 1<<12 {
		return Report{}, fmt.Errorf("deadlock: network too large to enumerate (use a subsample of pairs)")
	}
	if stride < 1 {
		stride = 1
	}
	var routes [][]hhc.Node
	count := 0
	for i := uint64(0); i < n; i++ {
		for j := uint64(0); j < n; j++ {
			if i == j {
				continue
			}
			count++
			if count%stride != 0 {
				continue
			}
			p, err := router(g.NodeFromID(i), g.NodeFromID(j))
			if err != nil {
				return Report{}, err
			}
			routes = append(routes, p)
		}
	}
	return Analyze(routes), nil
}
