package cluster

import (
	"time"

	"repro/internal/obs"
)

// Register exports the cluster's membership and per-target-peer series.
// The aggregate cluster_forwarded_total / cluster_forward_errors_total
// counters live on the pathsvc server (they count the server's routing
// decisions); this set covers what only the cluster layer knows — which
// peer each forward went to, breaker state, and ring ownership shares.
func (c *Cluster) Register(reg *obs.Registry) {
	reg.GaugeFunc("cluster_peers",
		"Configured cluster membership size.",
		func() float64 { return float64(len(c.cfg.Peers)) })
	reg.GaugeFunc("cluster_self_index",
		"This process's index in the ordered peer list.",
		func() float64 { return float64(c.cfg.Self) })
	shares := c.ring.Shares()
	for i, addr := range c.cfg.Peers {
		lbl := `{peer="` + addr + `"}`
		share := shares[i]
		reg.GaugeFunc("cluster_ring_share"+lbl,
			"Fraction of the consistent-hash circle this peer owns.",
			func() float64 { return share })
		p := c.peers[i]
		if p == nil { // self: no forwarding handle
			continue
		}
		reg.CounterFunc("cluster_peer_forwarded_total"+lbl,
			"Forwards answered through this peer.", p.forwarded.Load)
		reg.CounterFunc("cluster_peer_forward_errors_total"+lbl,
			"Forwards this peer failed (dial, stream, or breaker).", p.errs.Load)
		pp := p
		reg.GaugeFunc("cluster_peer_down"+lbl,
			"1 while the failure breaker holds this peer down, else 0.",
			func() float64 {
				if pp.down(time.Now()) {
					return 1
				}
				return 0
			})
	}
}
