package cluster

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/pathsvc"
)

// DebugPeer is one membership row of the /debug/cluster report: ring
// share plus the forward ledger (self carries only the share — a process
// never forwards to itself).
type DebugPeer struct {
	Addr      string  `json:"addr"`
	Self      bool    `json:"self,omitempty"`
	RingShare float64 `json:"ring_share"`
	Forwarded int64   `json:"forwarded"`
	Errors    int64   `json:"errors"`
	Down      bool    `json:"down"`
}

// DebugCounters is the routing server's forward ledger with stable JSON
// names (pathsvc.Snapshot is a CLI type and has none).
type DebugCounters struct {
	Requests     int64   `json:"requests"`
	Forwarded    int64   `json:"forwarded"`
	ForwardErrs  int64   `json:"forward_errors"`
	ForwardedIn  int64   `json:"forwarded_in"`
	DegradedLoc  int64   `json:"degraded_local"`
	BatchLocal   int64   `json:"batch_local"`
	ForwardShare float64 `json:"forward_share"` // forwarded / requests
}

// DebugSnapshot is the JSON body of /debug/cluster: this peer's identity,
// the full membership with ring shares and breaker state, the server's
// forward counters, and latency exemplars (request + exec rids) so a
// fleet scraper can jump from a hot bucket straight to a traceable rid.
type DebugSnapshot struct {
	Self             string         `json:"self"`
	Peers            []DebugPeer    `json:"peers"`
	Counters         DebugCounters  `json:"counters"`
	RequestExemplars []obs.Exemplar `json:"request_exemplars,omitempty"`
	ExecExemplars    []obs.Exemplar `json:"exec_exemplars,omitempty"`
}

// Debug assembles the cluster-layer half of the snapshot (membership,
// shares, ledgers, breaker state). Server counters and exemplars are
// merged by DebugHandler, which owns the *pathsvc.Server handle.
func (c *Cluster) Debug() DebugSnapshot {
	now := time.Now()
	shares := c.ring.Shares()
	peers := make([]DebugPeer, 0, len(c.cfg.Peers))
	for i, addr := range c.cfg.Peers {
		dp := DebugPeer{Addr: addr, RingShare: shares[i]}
		if p := c.peers[i]; p != nil {
			dp.Forwarded = p.forwarded.Load()
			dp.Errors = p.errs.Load()
			dp.Down = p.down(now)
		} else {
			dp.Self = true
		}
		peers = append(peers, dp)
	}
	return DebugSnapshot{Self: c.Self(), Peers: peers}
}

// DebugHandler serves the stitched /debug/cluster report for this peer.
// srv may be nil (membership-only view); with a server attached the
// report gains the forward counters and the request/exec exemplars.
func (c *Cluster) DebugHandler(srv *pathsvc.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := c.Debug()
		if srv != nil {
			cnt := srv.Counters()
			snap.Counters = DebugCounters{
				Requests:    cnt.Requests,
				Forwarded:   cnt.Forwarded,
				ForwardErrs: cnt.ForwardErrors,
				ForwardedIn: cnt.ForwardedIn,
				DegradedLoc: cnt.DegradedLoc,
				BatchLocal:  cnt.BatchLocal,
			}
			if cnt.Requests > 0 {
				snap.Counters.ForwardShare = float64(cnt.Forwarded) / float64(cnt.Requests)
			}
			snap.RequestExemplars = srv.RequestExemplars()
			snap.ExecExemplars = srv.ExecExemplars()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
