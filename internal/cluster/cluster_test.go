package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/hhc"
	"repro/internal/pathsvc"
)

// testCluster is one live N-peer deployment on loopback listeners.
type testCluster struct {
	addrs    []string
	servers  []*pathsvc.Server
	clusters []*Cluster
}

// startTestCluster binds n listeners first (the membership list needs the
// final addresses), then starts one routed pathsvc server per peer.
func startTestCluster(t *testing.T, n, m int) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{addrs: addrs}
	for i := 0; i < n; i++ {
		cl, err := New(Config{
			Peers: addrs,
			Self:  i,
			Dial:  pathsvc.DialOptions{IOTimeout: 2 * time.Second},
			// Fast breaker recovery so owner-down tests are not flaky on
			// their timing.
			Cooldown: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := pathsvc.New(pathsvc.Config{M: m, Router: cl, Peer: addrs[i]})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		ln := lns[i]
		go func() { serveErr <- srv.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
			cl.Close()
		})
		tc.servers = append(tc.servers, srv)
		tc.clusters = append(tc.clusters, cl)
	}
	return tc
}

// stop shuts one peer down mid-test (owner-down scenarios).
func (tc *testCluster) stop(t *testing.T, i int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tc.servers[i].Shutdown(ctx); err != nil {
		t.Fatalf("shutdown peer %d: %v", i, err)
	}
}

// pairOwnedBy finds a query pair the ring assigns to peer `owner`.
func (tc *testCluster) pairOwnedBy(t *testing.T, owner int) (u, v hhc.Node) {
	t.Helper()
	for _, k := range sampleKeys(4096) {
		if tc.clusters[0].Ring().Owner(k[0], k[1]) == owner {
			return k[0], k[1]
		}
	}
	t.Fatal("no sampled pair owned by peer", owner)
	return
}

// TestClusterMatchesSingleNode drives every peer of a 3-peer cluster with
// the same query set a plain single-node server answers, and requires
// bit-identical containers — forwarding must be invisible to results.
// It also requires the load to have actually exercised forwarding on at
// least two peers.
func TestClusterMatchesSingleNode(t *testing.T) {
	const m = 3
	tc := startTestCluster(t, 3, m)
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}

	solo, err := pathsvc.New(pathsvc.Config{M: m})
	if err != nil {
		t.Fatal(err)
	}
	soloLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	soloErr := make(chan error, 1)
	go func() { soloErr <- solo.Serve(soloLn) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = solo.Shutdown(ctx)
		if err := <-soloErr; err != nil {
			t.Errorf("solo Serve: %v", err)
		}
	})
	soloClient, err := pathsvc.Dial(soloLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer soloClient.Close()

	clients := make([]*pathsvc.Client, len(tc.addrs))
	for i, addr := range tc.addrs {
		if clients[i], err = pathsvc.Dial(addr); err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}

	for i, k := range sampleKeys(60) {
		us, vs := g.FormatNode(k[0]), g.FormatNode(k[1])
		want, err := soloClient.Do(pathsvc.Request{Op: pathsvc.OpPaths, U: us, V: vs})
		if err != nil {
			t.Fatalf("solo %s-%s: %v", us, vs, err)
		}
		// Every peer must give the same answer, owned or forwarded.
		cl := clients[i%len(clients)]
		got, err := cl.Do(pathsvc.Request{Op: pathsvc.OpPaths, U: us, V: vs})
		if err != nil {
			t.Fatalf("cluster %s-%s: %v", us, vs, err)
		}
		if got.Code != pathsvc.CodeOK {
			t.Fatalf("cluster %s-%s: code %q err %q", us, vs, got.Code, got.Err)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("cluster answer for %s-%s differs from single-node:\n got %v\nwant %v",
				us, vs, got.Paths, want.Paths)
		}
	}

	forwarding := 0
	for i, srv := range tc.servers {
		snap := srv.Counters()
		if snap.Forwarded > 0 {
			forwarding++
		}
		if snap.ForwardErrors > 0 || snap.DegradedLoc > 0 {
			t.Errorf("peer %d: unexpected forward errors in a healthy cluster: %s", i, snap)
		}
	}
	if forwarding < 2 {
		t.Errorf("only %d peers forwarded; the sample should exercise at least 2", forwarding)
	}
}

// TestHopGuardNeverReforwards sends a frame that already carries the
// hop-guard bit to a peer that does NOT own it. The peer must answer
// locally: forwarded-in counted, no outgoing forward, correct container.
func TestHopGuardNeverReforwards(t *testing.T) {
	const m = 3
	tc := startTestCluster(t, 2, m)
	u, v := tc.pairOwnedBy(t, 1) // peer 0 does not own it

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pathsvc.ResponseV2
	if err := c.DoV2(&pathsvc.RequestV2{Op: pathsvc.OpCodePaths, U: u, V: v, Forwarded: true}, &resp); err != nil {
		t.Fatalf("forwarded-marked request: %v", err)
	}
	if len(resp.Paths) == 0 {
		t.Fatal("forwarded-marked request returned no paths")
	}
	snap := tc.servers[0].Counters()
	if snap.ForwardedIn != 1 {
		t.Errorf("peer 0 ForwardedIn = %d, want 1", snap.ForwardedIn)
	}
	if snap.Forwarded != 0 {
		t.Errorf("peer 0 re-forwarded a hop-guarded frame (Forwarded = %d)", snap.Forwarded)
	}
	if owner := tc.servers[1].Counters(); owner.Requests != 0 {
		t.Errorf("owner peer saw %d requests; the hop-guarded frame must not reach it", owner.Requests)
	}
}

// TestOwnerDownFallback kills the owning peer and requires the survivor to
// keep answering its non-owned queries locally — correct paths, degraded
// accounting, zero client-visible errors.
func TestOwnerDownFallback(t *testing.T) {
	const m = 3
	tc := startTestCluster(t, 2, m)
	u, v := tc.pairOwnedBy(t, 1)
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	us, vs := g.FormatNode(u), g.FormatNode(v)

	c, err := pathsvc.Dial(tc.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Healthy first: the query forwards.
	resp, err := c.Do(pathsvc.Request{Op: pathsvc.OpPaths, U: us, V: vs})
	if err != nil || resp.Code != pathsvc.CodeOK {
		t.Fatalf("healthy forward: %v %+v", err, resp)
	}
	if snap := tc.servers[0].Counters(); snap.Forwarded != 1 {
		t.Fatalf("expected 1 forward before the kill, got %s", snap)
	}

	tc.stop(t, 1)

	// Every post-kill query must still be answered, now locally.
	for i := 0; i < 10; i++ {
		resp, err := c.Do(pathsvc.Request{Op: pathsvc.OpPaths, U: us, V: vs})
		if err != nil {
			t.Fatalf("query %d after owner death: %v", i, err)
		}
		if resp.Code != pathsvc.CodeOK {
			t.Fatalf("query %d after owner death: code %q err %q", i, resp.Code, resp.Err)
		}
		if len(resp.Paths) != m+1 {
			t.Fatalf("query %d: %d paths, want full width %d", i, len(resp.Paths), m+1)
		}
	}
	snap := tc.servers[0].Counters()
	if snap.DegradedLoc < 10 {
		t.Errorf("DegradedLocal = %d, want >= 10 local fallbacks", snap.DegradedLoc)
	}
	if snap.ForwardErrors == 0 {
		t.Error("ForwardErrors = 0, want > 0 after owner death")
	}
	st := tc.clusters[0].Status()
	if len(st) != 1 || st[0].Errors == 0 {
		t.Errorf("cluster status did not record peer errors: %+v", st)
	}
}

// TestForwardSelfOwned pins the Forwarder contract edge: asking the
// cluster to forward a pair it owns itself is an error, not a loop.
func TestForwardSelfOwned(t *testing.T) {
	tc := startTestCluster(t, 2, 3)
	u, v := tc.pairOwnedBy(t, 0)
	var resp pathsvc.ResponseV2
	_, err := tc.clusters[0].Forward(&pathsvc.RequestV2{Op: pathsvc.OpCodePaths, U: u, V: v}, &resp)
	if err == nil {
		t.Fatal("Forward of a self-owned pair succeeded; want an error")
	}
}

// TestMutualForwardHammer drives two peers that forward to each other
// under concurrent load — the liveness pin for the forwarding design
// (forwards must not consume construction workers, or the two pools
// could deadlock waiting on each other). Run with -race in CI.
func TestMutualForwardHammer(t *testing.T) {
	const m = 2
	tc := startTestCluster(t, 2, m)
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeysM2(64)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		c, err := pathsvc.DialWith(tc.addrs[w%2], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(w int, c *pathsvc.Client) {
			defer wg.Done()
			var resp pathsvc.ResponseV2
			for i := 0; i < 100; i++ {
				k := keys[(w*100+i)%len(keys)]
				req := pathsvc.RequestV2{Op: pathsvc.OpCodePaths, U: k[0], V: k[1]}
				if err := c.DoV2(&req, &resp); err != nil {
					errc <- fmt.Errorf("worker %d query %d (%s-%s): %w",
						w, i, g.FormatNode(k[0]), g.FormatNode(k[1]), err)
					return
				}
				if len(resp.Paths) == 0 {
					errc <- fmt.Errorf("worker %d query %d: empty container", w, i)
					return
				}
			}
		}(w, c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for i, srv := range tc.servers {
		snap := srv.Counters()
		if snap.Forwarded == 0 {
			t.Errorf("peer %d never forwarded under the hammer: %s", i, snap)
		}
		if snap.ForwardedIn == 0 {
			t.Errorf("peer %d never received a forward under the hammer: %s", i, snap)
		}
	}
}

// sampleKeysM2 yields pairs inside the m=2 topology (X in [0,16), Y in [0,4)).
func sampleKeysM2(n int) [][2]hhc.Node {
	pairs := make([][2]hhc.Node, 0, n)
	for i := 0; len(pairs) < n; i++ {
		h := finalize(uint64(i)*0x9e3779b97f4a7c15 + 0x7654321)
		u := hhc.Node{X: h & 0xf, Y: uint8((h >> 8) & 3)}
		v := hhc.Node{X: (h >> 16) & 0xf, Y: uint8((h >> 24) & 3)}
		if u == v {
			continue
		}
		pairs = append(pairs, [2]hhc.Node{u, v})
	}
	return pairs
}

// TestForwardPeerDownError pins the breaker's typed error surface.
func TestForwardPeerDownError(t *testing.T) {
	peers := testPeers(2)
	c, err := New(Config{Peers: peers, Self: 0, FailThreshold: 1, Cooldown: time.Hour,
		Dial: pathsvc.DialOptions{IOTimeout: 200 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	u, v := hhc.Node{X: 1, Y: 0}, hhc.Node{X: 2, Y: 1}
	// Find a pair owned by the (unreachable) remote peer.
	for _, k := range sampleKeys(512) {
		if c.Ring().Owner(k[0], k[1]) == 1 {
			u, v = k[0], k[1]
			break
		}
	}
	var resp pathsvc.ResponseV2
	req := pathsvc.RequestV2{Op: pathsvc.OpCodePaths, U: u, V: v}
	if _, err := c.Forward(&req, &resp); err == nil {
		t.Fatal("forward to an unreachable peer succeeded")
	}
	// FailThreshold 1 trips the breaker on the first failure; the next
	// forward must short-circuit with ErrPeerDown instead of redialing.
	if _, err := c.Forward(&req, &resp); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("second forward = %v, want ErrPeerDown", err)
	}
	if !req.Forwarded {
		t.Error("Forward did not set the hop-guard bit on the outgoing request")
	}
}
