package cluster

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/hhc"
)

// testPeers fabricates n distinct peer addresses.
func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:9%03d", i+1, i)
	}
	return peers
}

// sampleKeys yields a deterministic, well-spread set of query pairs for an
// m=3 topology (X in [0,256), Y in [0,8)): a Weyl sequence through the
// avalanche mix, so near-every sample is a distinct canonical class.
func sampleKeys(n int) [][2]hhc.Node {
	pairs := make([][2]hhc.Node, 0, n)
	for i := 0; len(pairs) < n; i++ {
		h := finalize(uint64(i)*0x9e3779b97f4a7c15 + 0x1234567)
		u := hhc.Node{X: h & 0xff, Y: uint8((h >> 8) & 7)}
		v := hhc.Node{X: (h >> 16) & 0xff, Y: uint8((h >> 24) & 7)}
		if u == v {
			continue
		}
		pairs = append(pairs, [2]hhc.Node{u, v})
	}
	return pairs
}

// TestRingDistribution pins the skew bound virtual nodes buy: across 3, 5,
// and 8 peers, both the analytic hash-circle shares and the ownership of a
// concrete key sample must stay within a modest max/min ratio.
func TestRingDistribution(t *testing.T) {
	const maxSkew = 3.0
	keys := sampleKeys(4096)
	for _, n := range []int{3, 5, 8} {
		r := NewRing(testPeers(n), 0)

		shares := r.Shares()
		minS, maxS, sum := shares[0], shares[0], 0.0
		for _, s := range shares {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
			sum += s
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("n=%d: shares sum to %g, want 1", n, sum)
		}
		if ratio := maxS / minS; ratio > maxSkew {
			t.Errorf("n=%d: hash-circle share skew %.2f (max %g, min %g) exceeds %g",
				n, ratio, maxS, minS, maxSkew)
		}

		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Owner(k[0], k[1])]++
		}
		minC, maxC := counts[0], counts[0]
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if minC == 0 {
			t.Fatalf("n=%d: a peer owns none of %d sampled keys: %v", n, len(keys), counts)
		}
		if ratio := float64(maxC) / float64(minC); ratio > maxSkew {
			t.Errorf("n=%d: sampled ownership skew %.2f (%v) exceeds %g", n, ratio, counts, maxSkew)
		}
	}
}

// TestRingDeterministic pins that the ring is a pure function of its
// inputs: same peers, same vnodes, same ownership on every peer.
func TestRingDeterministic(t *testing.T) {
	peers := testPeers(5)
	a, b := NewRing(peers, 32), NewRing(peers, 32)
	for _, k := range sampleKeys(512) {
		if a.Owner(k[0], k[1]) != b.Owner(k[0], k[1]) {
			t.Fatalf("owner of %v differs between identically built rings", k)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing contract: adding a
// peer only moves keys onto the new peer (existing points are untouched,
// so no key can move between two surviving peers), and the moved fraction
// is near the new peer's fair share.
func TestRingMinimalMovement(t *testing.T) {
	keys := sampleKeys(4096)
	for _, n := range []int{3, 5, 8} {
		peers := testPeers(n + 1)
		oldRing := NewRing(peers[:n], 0)
		newRing := NewRing(peers, 0)
		moved := 0
		for _, k := range keys {
			before, after := oldRing.Owner(k[0], k[1]), newRing.Owner(k[0], k[1])
			if before == after {
				continue
			}
			if after != n {
				t.Fatalf("n=%d: key %v moved from peer %d to surviving peer %d; only moves onto the new peer are allowed",
					n, k, before, after)
			}
			moved++
		}
		frac := float64(moved) / float64(len(keys))
		fair := 1.0 / float64(n+1)
		if frac > 2.5*fair {
			t.Errorf("n=%d: %.1f%% of keys moved on peer add, want near fair share %.1f%%",
				n, 100*frac, 100*fair)
		}
		if moved == 0 {
			t.Errorf("n=%d: no key moved onto the added peer", n)
		}
	}
}

// TestRingRemovalMovement is the symmetric property: removing a peer only
// reassigns that peer's keys.
func TestRingRemovalMovement(t *testing.T) {
	keys := sampleKeys(2048)
	peers := testPeers(5)
	full := NewRing(peers, 0)
	// Remove the last peer (so surviving indices align between rings).
	reduced := NewRing(peers[:4], 0)
	for _, k := range keys {
		before, after := full.Owner(k[0], k[1]), reduced.Owner(k[0], k[1])
		if before != 4 && before != after {
			t.Fatalf("key %v moved from surviving peer %d to %d on removal of peer 4",
				k, before, after)
		}
	}
}

// TestKeyHashCanonical pins that the ring key is the CanonExact class:
// X-translating both endpoints by the same offset never changes the hash
// (those requests share a cache entry on the owner), while genuinely
// different pairs hash apart.
func TestKeyHashCanonical(t *testing.T) {
	u := hhc.Node{X: 0x2b, Y: 3}
	v := hhc.Node{X: 0x91, Y: 6}
	base := KeyHash(u, v)
	for _, tr := range []uint64{1, 0x10, 0x55, 0xff} {
		tu := hhc.Node{X: u.X ^ tr, Y: u.Y}
		tv := hhc.Node{X: v.X ^ tr, Y: v.Y}
		if KeyHash(tu, tv) != base {
			t.Fatalf("X-translate by %#x changed the key hash", tr)
		}
	}
	if KeyHash(v, u) == base {
		t.Error("reversed pair unexpectedly hashed identically (distinct canonical class)")
	}
	if KeyHash(hhc.Node{X: u.X, Y: u.Y ^ 1}, v) == base {
		t.Error("different source position unexpectedly hashed identically")
	}
}

// TestParsePeers pins the typed validation error hhcd's flag handling
// relies on.
func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("a:1, b:2 ,c:3")
	if err != nil {
		t.Fatalf("valid list: %v", err)
	}
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "  ", "a:1,,b:2", "a:1,b", "noport", "a:1,a:1", ":5", "x:"} {
		if _, err := ParsePeers(bad); !errors.Is(err, ErrBadPeers) {
			t.Errorf("ParsePeers(%q) = %v, want ErrBadPeers", bad, err)
		}
	}
}

// TestNewValidation pins membership validation.
func TestNewValidation(t *testing.T) {
	peers := testPeers(3)
	for _, tc := range []Config{
		{Peers: peers[:1], Self: 0},
		{Peers: peers, Self: -1},
		{Peers: peers, Self: 3},
		{Peers: []string{"a:1", "a:1", "b:2"}, Self: 0},
	} {
		if _, err := New(tc); !errors.Is(err, ErrBadPeers) {
			t.Errorf("New(%+v) = %v, want ErrBadPeers", tc, err)
		}
	}
	c, err := New(Config{Peers: peers, Self: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Self() != peers[1] {
		t.Fatalf("Self() = %q, want %q", c.Self(), peers[1])
	}
}
