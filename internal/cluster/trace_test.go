package cluster

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pathsvc"
)

// startTracedCluster is startTestCluster plus a flight recorder and a
// metric registry per peer — the harness for the cross-peer tracing
// end-to-end pins (rid propagation, stitching, exemplars).
func startTracedCluster(t *testing.T, n, m int) (*testCluster, []*obs.RequestTracer) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{addrs: addrs}
	tracers := make([]*obs.RequestTracer, n)
	for i := 0; i < n; i++ {
		cl, err := New(Config{
			Peers:    addrs,
			Self:     i,
			Dial:     pathsvc.DialOptions{IOTimeout: 2 * time.Second},
			Cooldown: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		tracers[i] = obs.NewRequestTracer(64)
		srv, err := pathsvc.New(pathsvc.Config{
			M:        m,
			Router:   cl,
			Peer:     addrs[i],
			Reg:      obs.NewRegistry(),
			Requests: tracers[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		ln := lns[i]
		go func() { serveErr <- srv.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
			cl.Close()
		})
		tc.servers = append(tc.servers, srv)
		tc.clusters = append(tc.clusters, cl)
	}
	return tc, tracers
}

// ridTraces returns every recorded tree carrying the rid, polling briefly:
// the owner finishes its trace before answering, but the requester's
// response can beat the recorder's mirror hand-off by a scheduler tick.
func ridTraces(t *testing.T, tr *obs.RequestTracer, rid string, want int) []*obs.RequestTrace {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var got []*obs.RequestTrace
		for _, x := range tr.Snapshot().Recent {
			if x.ID == rid {
				got = append(got, x)
			}
		}
		if len(got) >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// topSpanOf finds the first top-level span named name (nil if absent).
func topSpanOf(tr *obs.RequestTrace, name string) *obs.ReqSpan {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// TestForwardPropagatesRID drives a forwarded query with a client rid
// through a 3-peer cluster and requires the same rid on both sides of the
// hop: the requester's tree (no origin, forward span) and the owner's
// tree (origin = requester's address), and on no third peer.
func TestForwardPropagatesRID(t *testing.T) {
	const m, rid = 3, "rid-e2e-fwd"
	tc, tracers := startTracedCluster(t, 3, m)
	u, v := tc.pairOwnedBy(t, 1) // forward: peer 0 does not own it

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pathsvc.ResponseV2
	if err := c.DoV2(&pathsvc.RequestV2{Op: pathsvc.OpCodePaths, RID: rid, U: u, V: v}, &resp); err != nil {
		t.Fatal(err)
	}
	if snap := tc.servers[0].Counters(); snap.Forwarded != 1 {
		t.Fatalf("expected exactly one forward, got %s", snap)
	}

	reqTrees := ridTraces(t, tracers[0], rid, 1)
	if len(reqTrees) != 1 {
		t.Fatalf("requester recorded %d trees for rid %q, want 1", len(reqTrees), rid)
	}
	root := reqTrees[0]
	if root.Origin != "" {
		t.Errorf("requester tree has origin %q, want none", root.Origin)
	}
	fwd := topSpanOf(root, "forward")
	if fwd == nil {
		t.Fatalf("requester tree has no forward span: %+v", root.Spans)
	}

	ownTrees := ridTraces(t, tracers[1], rid, 1)
	if len(ownTrees) != 1 {
		t.Fatalf("owner recorded %d trees for rid %q, want 1", len(ownTrees), rid)
	}
	if ownTrees[0].Origin != tc.addrs[0] {
		t.Errorf("owner tree origin = %q, want requester %q", ownTrees[0].Origin, tc.addrs[0])
	}
	if topSpanOf(ownTrees[0], "exec") == nil {
		t.Errorf("owner tree has no exec span: %+v", ownTrees[0].Spans)
	}
	if stray := ridTraces(t, tracers[2], rid, 0); len(stray) != 0 {
		t.Errorf("uninvolved peer recorded rid %q: %d trees", rid, len(stray))
	}

	// The owner relayed its queue/exec timing; the requester's forward
	// span must carry the remote_exec decomposition child.
	var names []string
	for _, ch := range fwd.Children {
		names = append(names, ch.Name)
	}
	found := false
	for _, n := range names {
		if n == "remote_exec" {
			found = true
		}
	}
	if !found {
		t.Errorf("forward span children = %v, want a remote_exec phase", names)
	}
}

// TestHopGuardDoesNotDuplicateRID sends an already hop-guarded frame to a
// non-owner: it must be answered locally, producing exactly one tree for
// the rid cluster-wide — a guarded hop may never re-forward and so may
// never mint a second tree for the same rid on another peer.
func TestHopGuardDoesNotDuplicateRID(t *testing.T) {
	const m, rid = 3, "rid-e2e-guard"
	tc, tracers := startTracedCluster(t, 2, m)
	u, v := tc.pairOwnedBy(t, 1)

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pathsvc.ResponseV2
	req := pathsvc.RequestV2{Op: pathsvc.OpCodePaths, RID: rid, U: u, V: v,
		Forwarded: true, Origin: "synthetic-peer:1"}
	if err := c.DoV2(&req, &resp); err != nil {
		t.Fatal(err)
	}
	local := ridTraces(t, tracers[0], rid, 1)
	if len(local) != 1 {
		t.Fatalf("local peer recorded %d trees for rid %q, want 1", len(local), rid)
	}
	if local[0].Origin != "synthetic-peer:1" {
		t.Errorf("hop-guarded tree origin = %q, want the frame's origin", local[0].Origin)
	}
	if owner := ridTraces(t, tracers[1], rid, 0); len(owner) != 0 {
		t.Errorf("hop-guarded frame re-forwarded: owner recorded %d trees for rid %q", len(owner), rid)
	}
	if snap := tc.servers[0].Counters(); snap.Forwarded != 0 || snap.ForwardedIn != 1 {
		t.Errorf("counters after guarded frame: %s", snap)
	}
}

// TestStitchedClusterTrace joins the two halves of a live forwarded query
// with obs.StitchTraces and requires the stitched tree to equal the sum
// of the per-peer recordings: remote phases equal the owner's queue/exec
// spans and the remote child carries the owner's span tree.
func TestStitchedClusterTrace(t *testing.T) {
	const m, rid = 3, "rid-e2e-stitch"
	tc, tracers := startTracedCluster(t, 3, m)
	u, v := tc.pairOwnedBy(t, 2)

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pathsvc.ResponseV2
	if err := c.DoV2(&pathsvc.RequestV2{Op: pathsvc.OpCodePaths, RID: rid, U: u, V: v}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(ridTraces(t, tracers[0], rid, 1)) != 1 || len(ridTraces(t, tracers[2], rid, 1)) != 1 {
		t.Fatal("both halves of the forwarded trace must be recorded")
	}

	byPeer := make(map[string][]*obs.RequestTrace, len(tracers))
	for i, tr := range tracers {
		byPeer[tc.addrs[i]] = tr.Snapshot().Recent
	}
	stitched := obs.StitchTraces(byPeer)
	var st *obs.StitchedTrace
	for _, s := range stitched {
		if s.RID == rid {
			st = s
		}
	}
	if st == nil {
		t.Fatalf("no stitched trace for rid %q (got %d stitched)", rid, len(stitched))
	}
	if st.RequesterPeer != tc.addrs[0] || st.OwnerPeer != tc.addrs[2] {
		t.Errorf("stitched peers = %s -> %s, want %s -> %s",
			st.RequesterPeer, st.OwnerPeer, tc.addrs[0], tc.addrs[2])
	}
	owner := ridTraces(t, tracers[2], rid, 1)[0]
	wantQueue, wantExec := int64(0), int64(0)
	if sp := topSpanOf(owner, "queue"); sp != nil {
		wantQueue = sp.Dur
	}
	if sp := topSpanOf(owner, "exec"); sp != nil {
		wantExec = sp.Dur
	}
	if st.RemoteQueueNS != wantQueue || st.RemoteExecNS != wantExec {
		t.Errorf("stitched remote phases queue=%d exec=%d, owner spans queue=%d exec=%d",
			st.RemoteQueueNS, st.RemoteExecNS, wantQueue, wantExec)
	}
	if st.ForwardNS <= 0 || st.ForwardNS < st.RemoteExecNS {
		t.Errorf("forward span %dns shorter than the remote exec %dns it contains",
			st.ForwardNS, st.RemoteExecNS)
	}
	fwd := topSpanOf(st.Root, "forward")
	if fwd == nil {
		t.Fatal("stitched root lost its forward span")
	}
	var remote *obs.ReqSpan
	for _, ch := range fwd.Children {
		if ch.Name == "remote" {
			remote = ch
		}
	}
	if remote == nil {
		t.Fatal("stitched forward span has no grafted remote child")
	}
	if len(remote.Children) != len(owner.Spans) {
		t.Errorf("remote child carries %d spans, owner recorded %d",
			len(remote.Children), len(owner.Spans))
	}
	// The requester relays the owner's timing to its client: queue_ns and
	// exec_ns describe the remote work, not a local zero. (The response
	// fields and the trace spans are sampled at slightly different points,
	// so this pins presence, not nanosecond equality.)
	if resp.QueueNS <= 0 || resp.ExecNS <= 0 {
		t.Errorf("forwarded response timing queue=%d exec=%d, want the owner's relayed values",
			resp.QueueNS, resp.ExecNS)
	}
}

// TestBatchLocalCounter pins the batch forwarding gap's visibility: a
// batch containing a non-owned pair is answered locally and counted in
// BatchLocal; an all-owned batch is not.
func TestBatchLocalCounter(t *testing.T) {
	const m = 3
	tc := startTestCluster(t, 2, m)
	ownedU, ownedV := tc.pairOwnedBy(t, 0)
	foreignU, foreignV := tc.pairOwnedBy(t, 1)

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var resp pathsvc.ResponseV2
	allOwned := pathsvc.RequestV2{Op: pathsvc.OpCodeBatch,
		Pairs: []pathsvc.NodePair{{U: ownedU, V: ownedV}}}
	if err := c.DoV2(&allOwned, &resp); err != nil {
		t.Fatal(err)
	}
	if snap := tc.servers[0].Counters(); snap.BatchLocal != 0 {
		t.Fatalf("all-owned batch counted as local gap: %s", snap)
	}

	mixed := pathsvc.RequestV2{Op: pathsvc.OpCodeBatch,
		Pairs: []pathsvc.NodePair{{U: ownedU, V: ownedV}, {U: foreignU, V: foreignV}}}
	if err := c.DoV2(&mixed, &resp); err != nil {
		t.Fatal(err)
	}
	snap := tc.servers[0].Counters()
	if snap.BatchLocal != 1 {
		t.Errorf("BatchLocal = %d after one mixed batch, want 1", snap.BatchLocal)
	}
	if snap.Forwarded != 0 {
		t.Errorf("batch pairs must not forward individually: %s", snap)
	}
}

// TestDebugClusterHandler serves /debug/cluster for a peer that just
// forwarded and checks the report: identity, full membership with ring
// shares summing to 1, forward counters, and a request exemplar carrying
// the forwarded rid.
func TestDebugClusterHandler(t *testing.T) {
	const m, rid = 3, "rid-e2e-debug"
	tc, _ := startTracedCluster(t, 3, m)
	u, v := tc.pairOwnedBy(t, 1)

	c, err := pathsvc.DialWith(tc.addrs[0], pathsvc.DialOptions{Proto: pathsvc.ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp pathsvc.ResponseV2
	if err := c.DoV2(&pathsvc.RequestV2{Op: pathsvc.OpCodePaths, RID: rid, U: u, V: v}, &resp); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	tc.clusters[0].DebugHandler(tc.servers[0]).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap DebugSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /debug/cluster: %v\n%s", err, rec.Body.String())
	}
	if snap.Self != tc.addrs[0] {
		t.Errorf("self = %q, want %q", snap.Self, tc.addrs[0])
	}
	if len(snap.Peers) != 3 {
		t.Fatalf("report lists %d peers, want 3", len(snap.Peers))
	}
	sum := 0.0
	selfRows := 0
	for _, p := range snap.Peers {
		sum += p.RingShare
		if p.Self {
			selfRows++
			if p.Addr != tc.addrs[0] {
				t.Errorf("self row addr = %q, want %q", p.Addr, tc.addrs[0])
			}
		}
	}
	if selfRows != 1 {
		t.Errorf("report has %d self rows, want 1", selfRows)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ring shares sum to %v, want 1", sum)
	}
	if snap.Counters.Forwarded != 1 || snap.Counters.Requests == 0 {
		t.Errorf("counters = %+v, want the forward accounted", snap.Counters)
	}
	found := false
	for _, ex := range snap.RequestExemplars {
		if ex.RID == rid {
			found = true
		}
	}
	if !found {
		t.Errorf("request exemplars %+v do not carry rid %q", snap.RequestExemplars, rid)
	}
}
