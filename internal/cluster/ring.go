// Package cluster turns N hhcd processes into one logical path service.
// Membership is static: every peer is started with the same ordered peer
// list and its own index in it. A consistent-hash ring over the cache's
// canonical pair key assigns each (u, v) query class an owning peer;
// non-owned queries are relayed to their owner over the pathsvc binary
// wire (protocol v2) with the hop-guard bit set, so a query crosses at
// most one peer hop even when two peers disagree about ownership. When
// the owner is unreachable the server falls back to a local answer —
// the cluster degrades to correctness-preserving slowness, never to
// errors.
//
// The ring hashes the CanonExact class representative of a pair (see
// internal/cache): all X-translates of a pair share one owner, so the
// owner's memoized-container cache sees every symmetric variant of its
// keys and the cluster-wide hit rate matches the single-node one.
package cluster

import (
	"sort"

	"repro/internal/hhc"
)

// DefaultVNodes is the virtual-node count per peer. Splitting each peer
// into many ring points bounds ownership skew: with v virtual nodes per
// peer the expected max/min shard ratio concentrates toward 1 as v grows
// (64 keeps the ratio under ~2 for small clusters, cheap to build and
// search).
const DefaultVNodes = 64

// fnv64 constants (FNV-1a), matching the cache's shard hash family.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// finalize runs a splitmix64-style avalanche over a raw FNV state. FNV-1a
// alone is fine for bucketed hash tables (only the low bits matter) but
// not for a hash circle: low-entropy inputs — sequential vnode indices,
// near-identical peer addresses, small node coordinates — leave the raw
// state correlated across the full 64-bit range, which showed up as >10×
// ownership skew. The finalizer spreads every input bit over the whole
// word, and is just as deterministic.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node: a position on the hash circle owned by a peer.
type point struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is an immutable consistent-hash ring over the canonical pair-key
// space. Construction is deterministic: the same peer list and virtual-node
// count always produce the same ring, on every peer, in every process.
type Ring struct {
	points []point // sorted by hash
	peers  []string
	vnodes int
}

// NewRing builds the ring for an ordered peer list. vnodes <= 0 selects
// DefaultVNodes.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		peers:  append([]string(nil), peers...),
		vnodes: vnodes,
		points: make([]point, 0, len(peers)*vnodes),
	}
	for i, p := range r.peers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(p, v), peer: i})
		}
	}
	// Ties broken by peer index so two peers hashing onto the same point
	// (astronomically unlikely, but possible) still sort identically
	// everywhere.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// pointHash places one virtual node: FNV-1a over the peer address and the
// virtual-node index.
func pointHash(peer string, vnode int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= fnvPrime
	}
	h ^= '#' // separator: "ab"+vnode 1 must not collide with "ab1"+vnode 0
	h *= fnvPrime
	x := uint64(vnode)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return finalize(h)
}

// KeyHash hashes a query pair onto the ring's key space through its
// CanonExact class representative ((0, u.Y), (u.X^v.X, v.Y)): every
// X-translate of a pair — exactly the requests the owner's cache collapses
// onto one entry — lands on the same owner.
func KeyHash(u, v hhc.Node) uint64 {
	h := uint64(fnvOffset)
	x := u.X ^ v.X
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	h ^= uint64(u.Y)
	h *= fnvPrime
	h ^= uint64(v.Y)
	h *= fnvPrime
	return finalize(h)
}

// Owner returns the index of the peer owning the pair (u, v).
func (r *Ring) Owner(u, v hhc.Node) int {
	return r.ownerOf(KeyHash(u, v))
}

// ownerOf finds the first ring point at or clockwise of h (wrapping).
func (r *Ring) ownerOf(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the ordered peer list the ring was built from (a copy).
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Shares reports the fraction of the hash circle each peer owns — the
// expected share of a uniform query load. The fractions sum to 1.
func (r *Ring) Shares() []float64 {
	shares := make([]float64, len(r.peers))
	if len(r.points) == 0 {
		return shares
	}
	const whole = float64(1<<63) * 2 // 2^64 as a float
	// Each point owns the arc from its predecessor (exclusive) to itself;
	// the first point also owns the wrap-around arc after the last point.
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arc := p.hash - prev // uint64 subtraction wraps exactly like the circle
		shares[p.peer] += float64(arc) / whole
		prev = p.hash
	}
	return shares
}
