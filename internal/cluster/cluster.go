package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/hhc"
	"repro/internal/pathsvc"
	"repro/internal/stats"
)

// Membership errors. ErrBadPeers wraps every peer-list validation failure
// so callers (hhcd's flag validation) can classify without string matching.
var (
	ErrBadPeers = errors.New("cluster: bad peer list")
	// ErrPeerDown reports a forward refused because the owner is inside its
	// failure cooldown; the server answers locally instead.
	ErrPeerDown = errors.New("cluster: owner peer is down")
)

// Defaults for Config zero values.
const (
	// DefaultFailThreshold is how many consecutive transport failures mark
	// a peer down.
	DefaultFailThreshold = 3
	// DefaultCooldown is how long a down peer is left unprobed before the
	// next forward retries it.
	DefaultCooldown = 500 * time.Millisecond
)

// ParsePeers splits and validates a comma-separated peer list
// ("host1:port,host2:port,..."). Every failure wraps ErrBadPeers.
func ParsePeers(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty peer list", ErrBadPeers)
	}
	parts := strings.Split(spec, ",")
	peers := make([]string, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("%w: empty peer entry in %q", ErrBadPeers, spec)
		}
		host, port, ok := splitHostPort(p)
		if !ok || host == "" || port == "" {
			return nil, fmt.Errorf("%w: peer %q is not host:port", ErrBadPeers, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("%w: duplicate peer %q", ErrBadPeers, p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	return peers, nil
}

// splitHostPort splits on the last colon (IPv6-bracket tolerant enough for
// a static config check; the real validation is the dial).
func splitHostPort(s string) (host, port string, ok bool) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

// Config describes one peer's view of the cluster. Every peer must be
// started with the identical Peers list (same order); Self is this
// process's index in it.
type Config struct {
	// Peers is the ordered address list of every cluster member, this
	// process included.
	Peers []string
	// Self is this process's index into Peers.
	Self int
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// Dial tunes the peer-to-peer forwarding connections. Proto is forced
	// to v2 — forwards always travel the binary wire.
	Dial pathsvc.DialOptions
	// FailThreshold is how many consecutive transport failures mark a peer
	// down (0 = DefaultFailThreshold).
	FailThreshold int
	// Cooldown is how long a down peer stays unprobed
	// (0 = DefaultCooldown).
	Cooldown time.Duration
}

// peer is the health-tracked forwarding handle for one remote member.
// All mutable state is atomic: the forward path is called from many
// forward goroutines at once and must not serialize on a lock.
type peer struct {
	addr string
	rc   *pathsvc.Reconn

	fails     atomic.Int64 // consecutive transport failures
	downUntil atomic.Int64 // unix nanos; 0 = up

	forwarded stats.Counter // forwards answered through this peer
	errs      stats.Counter // forwards this peer failed
}

// down reports whether the peer is inside its failure cooldown.
func (p *peer) down(now time.Time) bool {
	return now.UnixNano() < p.downUntil.Load()
}

// Cluster implements pathsvc.Forwarder over a static membership: a
// deterministic ring decides ownership, one self-healing pipelined v2
// client per remote peer carries the forwards, and a consecutive-failure
// breaker keeps a dead owner from stalling every non-owned query for a
// dial timeout each.
type Cluster struct {
	cfg  Config
	ring *Ring
	// peers is indexed like cfg.Peers; the self slot is nil (a process
	// never forwards to itself).
	peers []*peer
}

// New validates cfg and builds the ring and the per-peer client pool. No
// connection is dialed until the first forward needs it.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 peers, have %d", ErrBadPeers, len(cfg.Peers))
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("%w: self index %d out of range [0,%d)", ErrBadPeers, cfg.Self, len(cfg.Peers))
	}
	seen := make(map[string]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if seen[p] {
			return nil, fmt.Errorf("%w: duplicate peer %q", ErrBadPeers, p)
		}
		seen[p] = true
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	cfg.Dial.Proto = pathsvc.ProtocolV2
	c := &Cluster{
		cfg:   cfg,
		ring:  NewRing(cfg.Peers, cfg.VNodes),
		peers: make([]*peer, len(cfg.Peers)),
	}
	for i, addr := range cfg.Peers {
		if i == cfg.Self {
			continue
		}
		c.peers[i] = &peer{addr: addr, rc: pathsvc.NewReconn(addr, cfg.Dial)}
	}
	return c, nil
}

// Self returns this process's own address.
func (c *Cluster) Self() string { return c.cfg.Peers[c.cfg.Self] }

// Ring returns the membership's consistent-hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Owns reports whether this process owns the pair's canonical key.
func (c *Cluster) Owns(u, v hhc.Node) bool {
	return c.ring.Owner(u, v) == c.cfg.Self
}

// Forward relays req to the owning peer over the binary wire and decodes
// the answer into resp, returning the owner's address so the caller's
// trace can attribute the hop. The hop-guard bit is always set on the
// outgoing frame, whatever the caller passed: a relayed query must never
// be relayed again. Transport failures feed the peer's breaker; a
// *pathsvc.ServerError is the owner's verdict and leaves the breaker
// untouched.
func (c *Cluster) Forward(req *pathsvc.RequestV2, resp *pathsvc.ResponseV2) (string, error) {
	req.Forwarded = true
	owner := c.ring.Owner(req.U, req.V)
	if owner == c.cfg.Self {
		// Only reachable when the caller's ownership check and ours
		// disagree, which a static single-ring membership rules out; answer
		// the impossible case safely.
		return "", fmt.Errorf("cluster: pair is self-owned by %s", c.Self())
	}
	p := c.peers[owner]
	now := time.Now()
	if p.down(now) {
		p.errs.Inc()
		return p.addr, fmt.Errorf("%w: %s", ErrPeerDown, p.addr)
	}
	cl, err := p.rc.Client()
	if err != nil {
		p.errs.Inc()
		c.noteFailure(p, now)
		return p.addr, fmt.Errorf("cluster: dial %s: %w", p.addr, err)
	}
	if err := cl.DoV2(req, resp); err != nil {
		var se *pathsvc.ServerError
		if errors.As(err, &se) {
			// The stream worked; the owner answered. Overload/shutdown
			// verdicts are the caller's cue to fall back, not a peer-health
			// signal.
			p.fails.Store(0)
			return p.addr, err
		}
		p.errs.Inc()
		p.rc.Invalidate(cl)
		c.noteFailure(p, now)
		return p.addr, fmt.Errorf("cluster: forward to %s: %w", p.addr, err)
	}
	p.fails.Store(0)
	p.downUntil.Store(0)
	p.forwarded.Inc()
	return p.addr, nil
}

// noteFailure counts one consecutive transport failure and trips the
// breaker at the threshold.
func (c *Cluster) noteFailure(p *peer, now time.Time) {
	if p.fails.Add(1) >= int64(c.cfg.FailThreshold) {
		p.downUntil.Store(now.Add(c.cfg.Cooldown).UnixNano())
		p.fails.Store(0)
	}
}

// Close tears down every peer connection.
func (c *Cluster) Close() {
	for _, p := range c.peers {
		if p != nil {
			p.rc.Close()
		}
	}
}

// String renders the membership for banners and logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster of %d peers, self=%s (index %d, %d vnodes/peer)",
		len(c.cfg.Peers), c.Self(), c.cfg.Self, c.ring.vnodes)
}

// PeerStatus is one remote peer's forward ledger for CLI summaries:
// address, forwards answered, forward errors, and whether the breaker
// currently holds the peer down.
type PeerStatus struct {
	Addr      string
	Forwarded int64
	Errors    int64
	Down      bool
}

// Status returns the current per-peer ledger (self omitted).
func (c *Cluster) Status() []PeerStatus {
	now := time.Now()
	st := make([]PeerStatus, 0, len(c.peers)-1)
	for _, p := range c.peers {
		if p == nil {
			continue
		}
		st = append(st, PeerStatus{
			Addr:      p.addr,
			Forwarded: p.forwarded.Load(),
			Errors:    p.errs.Load(),
			Down:      p.down(now),
		})
	}
	sort.Slice(st, func(i, j int) bool { return st[i].Addr < st[j].Addr })
	return st
}
