package exp

import (
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/stats"
)

// E18Allocation drives the buddy subcube allocator with a synthetic
// space-sharing job stream (geometric job sizes, exponential-ish lifetimes)
// and reports acceptance rate and external fragmentation across offered
// loads — the standard processor-allocation evaluation for partitionable
// machines.
func E18Allocation(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Buddy subcube allocation under a job stream",
		"t", "target-util", "jobs", "accepted", "rate", "mean-frag", "max-frag")
	ts := []int{4, 8, 16}
	steps := 20000
	if cfg.Quick {
		ts = []int{4, 8}
		steps = 2000
	}
	for _, t := range ts {
		for _, util := range []float64{0.3, 0.6, 0.9} {
			row, err := allocRun(t, util, steps, cfg.Seed)
			if err != nil {
				return nil, err
			}
			tab.AddRow(t, util, row.jobs, row.accepted,
				float64(row.accepted)/float64(row.jobs), row.meanFrag, row.maxFrag)
		}
	}
	return []*stats.Table{tab}, nil
}

type allocStats struct {
	jobs     int
	accepted int
	meanFrag float64
	maxFrag  float64
}

// allocRun simulates a job stream targeting the given utilization: each
// step one job arrives with geometric size, and running jobs depart with a
// probability tuned so steady-state usage hovers near the target.
func allocRun(t int, targetUtil float64, steps int, seed int64) (allocStats, error) {
	a, err := alloc.New(t)
	if err != nil {
		return allocStats{}, err
	}
	r := rand.New(rand.NewSource(seed + int64(t*100)))
	type job struct {
		base    uint64
		departs int
	}
	var running []job
	var st allocStats
	var fragSum float64
	total := uint64(1) << uint(t)
	// Mean lifetime chosen so offered load ≈ target utilization: each job
	// holds ~2^(t-3) cubes on average (sizes 0..t/2 geometric), so lifetime
	// scales with target.
	meanLife := int(targetUtil*float64(total)) + 1
	for step := 0; step < steps; step++ {
		// Departures.
		keep := running[:0]
		for _, j := range running {
			if j.departs <= step {
				if err := a.Free(j.base); err != nil {
					return allocStats{}, err
				}
			} else {
				keep = append(keep, j)
			}
		}
		running = keep
		// One arrival per step: geometric size capped at t/2.
		order := 0
		for order < t/2 && r.Intn(2) == 0 {
			order++
		}
		st.jobs++
		base, err := a.Alloc(order)
		if err == nil {
			st.accepted++
			life := 1 + r.Intn(2*meanLife)
			running = append(running, job{base: base, departs: step + life})
		}
		f := a.Fragmentation()
		fragSum += f
		if f > st.maxFrag {
			st.maxFrag = f
		}
	}
	st.meanFrag = fragSum / float64(steps)
	return st, nil
}
