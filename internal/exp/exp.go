// Package exp is the experiment harness: every table and figure of the
// reproduction (E1..E22 in DESIGN.md) has one entry here that regenerates
// its rows. The same entries back cmd/hhcbench, the Benchmark* functions in
// the repository root, and the measurements recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Config tunes sample sizes. Quick mode keeps every experiment under a
// second or two for use inside the test suite; the full mode is what
// EXPERIMENTS.md reports.
type Config struct {
	Quick bool
	Seed  int64
}

// DefaultConfig is the full-fidelity configuration.
func DefaultConfig() Config { return Config{Seed: 20060425} }

// Entry is one reproducible experiment.
type Entry struct {
	ID    string // E1..E22
	Title string // what the paper reports
	Run   func(Config) ([]*stats.Table, error)
}

// All returns the registry in presentation order.
func All() []Entry {
	return []Entry{
		{ID: "E1", Title: "Table 1: topology properties of HHC", Run: E1Properties},
		{ID: "E2", Title: "Theorem check: container construction on sampled/exhaustive pairs", Run: E2Construct},
		{ID: "E3", Title: "Figure 1: container path length vs super-distance", Run: E3Profile},
		{ID: "E4", Title: "Table 2: construction vs max-flow baseline", Run: E4Baseline},
		{ID: "E5", Title: "Figure 2: construction cost scaling (size-independence)", Run: E5Scaling},
		{ID: "E6", Title: "Table 3: fault tolerance of the container", Run: E6Faults},
		{ID: "E7", Title: "Figure 3: wide-diameter estimate vs diameter", Run: E7WideDiameter},
		{ID: "E8", Title: "Table 4: cyclic-order strategy ablation", Run: E8Ablation},
		{ID: "E9", Title: "Table 5: HHC vs hypercube of equal size", Run: E9Compare},
		{ID: "E10", Title: "Figure 4: DES latency/throughput, single vs multi-path", Run: E10Netsim},
		{ID: "E11", Title: "Table 6: measured HHC vs Q_n vs CCC at equal node counts", Run: E11Measured},
		{ID: "E12", Title: "Table 7: broadcast rounds on the distributed spanning tree", Run: E12Broadcast},
		{ID: "E13", Title: "Table 8: ring embeddings via Hamiltonian son-cube paths", Run: E13Rings},
		{ID: "E14", Title: "Table 9: link congestion under permutation traffic", Run: E14Permutation},
		{ID: "E15", Title: "Figure 5: cross-network DES latency at equal node counts", Run: E15CrossNetworkDES},
		{ID: "E16", Title: "Table 10: traffic patterns × routing policies", Run: E16Patterns},
		{ID: "E17", Title: "Table 11: wormhole deadlock analysis (channel dependency graphs)", Run: E17Deadlock},
		{ID: "E18", Title: "Table 12: buddy subcube allocation under job streams", Run: E18Allocation},
		{ID: "E19", Title: "Table 13: space-sharing scheduling, FCFS vs EASY backfill", Run: E19Scheduling},
		{ID: "E20", Title: "Table 14: fault routing with global vs local knowledge", Run: E20Adaptive},
		{ID: "E21", Title: "Table 15: container quality across equal-sized networks", Run: E21CrossContainers},
		{ID: "E22", Title: "Figure 6: saturation-throughput search per routing policy", Run: E22Saturation},
	}
}

// Find returns the entry with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}

// RunAndRender executes an entry and renders its tables to w as aligned
// plain text.
func RunAndRender(e Entry, cfg Config, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n\n", e.ID, e.Title); err != nil {
		return err
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAndRenderMarkdown executes an entry and renders its tables as
// GitHub-flavored markdown under an H2 heading.
func RunAndRenderMarkdown(e Entry, cfg Config, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s \u2014 %s\n\n", e.ID, e.Title); err != nil {
		return err
	}
	tables, err := e.Run(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.RenderMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAndRenderCSV executes an entry and renders its tables as CSV blocks,
// each preceded by a "# <id>/<index>: <title>" comment line.
func RunAndRenderCSV(e Entry, cfg Config, w io.Writer) error {
	tables, err := e.Run(cfg)
	if err != nil {
		return err
	}
	for i, t := range tables {
		if _, err := fmt.Fprintf(w, "# %s/%d: %s\n", e.ID, i, t.Title); err != nil {
			return err
		}
		if err := t.RenderCSV(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
