package exp

import (
	"errors"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// graphDistance is a tiny wrapper so construct.go can call BFS distance
// without importing graph there twice.
func graphDistance(dg graph.Graph, s, t uint64) (int, error) {
	return graph.Distance(dg, s, t)
}

// E6Faults sweeps the number of random node faults and measures how often
// the container keeps at least one usable path. For f <= m the disjointness
// theorem guarantees 100% survival; past the connectivity the probability
// decays but stays high because a random fault must land exactly on the few
// container vertices to hurt.
func E6Faults(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Container survival under node faults (random and clustered)",
		"m", "fault-model", "faults", "trials", "survived", "rate", "min-surviving-paths", "guarantee")
	ms := []int{2, 3, 4}
	trials := 600
	if cfg.Quick {
		ms = []int{3}
		trials = 80
	}
	models := []struct {
		name string
		draw func(g *hhc.Graph, count int, protect []hhc.Node, seed int64) map[hhc.Node]bool
	}{
		{"random", gen.FaultSet},
		{"clustered", gen.ClusteredFaultSet},
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		for _, model := range models {
			for f := 0; f <= m+2; f++ {
				pairs := gen.Pairs(g, trials, gen.Uniform, cfg.Seed+int64(1000*m+f))
				survived := 0
				minSurvivors := m + 2
				for i, pr := range pairs {
					faults := model.draw(g, f, []hhc.Node{pr.U, pr.V}, cfg.Seed+int64(i*7+f))
					paths, err := core.DisjointPaths(g, pr.U, pr.V)
					if err != nil {
						return nil, err
					}
					alive := len(core.SurvivingPaths(paths, faults))
					if alive < minSurvivors {
						minSurvivors = alive
					}
					if alive > 0 {
						survived++
					}
					// Cross-check with the routing policy.
					_, err = core.RouteAround(g, pr.U, pr.V, faults)
					if alive > 0 && err != nil {
						return nil, err
					}
					if alive == 0 && !errors.Is(err, core.ErrAllPathsFaulty) {
						return nil, err
					}
				}
				guarantee := ""
				if f <= m {
					guarantee = "guaranteed"
					if survived != len(pairs) {
						return nil, errors.New("exp: survival guarantee violated with f <= m")
					}
				}
				tab.AddRow(m, model.name, f, len(pairs), survived,
					float64(survived)/float64(len(pairs)), minSurvivors, guarantee)
			}
		}
	}
	return []*stats.Table{tab}, nil
}
