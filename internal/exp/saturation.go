package exp

import (
	"repro/internal/netsim"
	"repro/internal/stats"
)

// E22Saturation locates each routing policy's saturation point: the offered
// load at which average latency exceeds 3× the unloaded baseline, found by
// bisection over the arrival rate. Saturation load and the goodput achieved
// there are the standard single-number summaries of an interconnect's
// capacity; striping should push both upward by spreading traffic over the
// container.
func E22Saturation(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Saturation search (latency > 3x unloaded)",
		"mode", "unloaded-latency", "saturation-load", "goodput-at-saturation", "latency-at-saturation")
	flows, msgs := 24, 40
	iters := 12
	if cfg.Quick {
		flows, msgs = 8, 12
		iters = 6
	}
	run := func(mode netsim.RoutingMode, rate float64) (netsim.Result, error) {
		return netsim.Run(netsim.Config{
			M: 3, Mode: mode, Flows: flows, MessagesPerFlow: msgs,
			MessageFlits: 64, ArrivalRate: rate, Seed: cfg.Seed,
		})
	}
	for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
		base, err := run(mode, 1e-5)
		if err != nil {
			return nil, err
		}
		threshold := 3 * base.AvgLatency
		lo, hi := 1e-5, 0.2
		// Make sure hi is actually saturated; if not, report the ceiling.
		top, err := run(mode, hi)
		if err != nil {
			return nil, err
		}
		if top.AvgLatency <= threshold {
			tab.AddRow(mode.String(), base.AvgLatency, ">0.2", top.Throughput, top.AvgLatency)
			continue
		}
		var atSat netsim.Result
		for i := 0; i < iters; i++ {
			mid := (lo + hi) / 2
			res, err := run(mode, mid)
			if err != nil {
				return nil, err
			}
			if res.AvgLatency > threshold {
				hi = mid
				atSat = res
			} else {
				lo = mid
			}
		}
		tab.AddRow(mode.String(), base.AvgLatency, hi, atSat.Throughput, atSat.AvgLatency)
	}
	return []*stats.Table{tab}, nil
}
