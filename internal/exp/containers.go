package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/flow"
	"repro/internal/nets"
	"repro/internal/stats"
)

// E21CrossContainers compares the *container quality* of the four rival
// topologies at equal node counts: for sampled pairs, the maximum family of
// vertex-disjoint paths (computed exactly by min-cost flow, so the family
// has minimum total length for its width) — width, average length, and the
// longest member, which estimates each network's wide diameter. This is the
// fault-tolerance counterpart of E15's latency comparison: CCC's cheap
// degree buys only width 3, while HHC and HCN scale width with size.
func E21CrossContainers(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Maximum disjoint-path families across equal-sized networks (min-cost flow)",
		"m", "network", "width", "mean-len", "mean-max-len", "worst-len", "pairs")
	ms := []int{2, 3}
	pairs := 40
	if cfg.Quick {
		ms = []int{2}
		pairs = 8
	}
	for _, m := range ms {
		candidates, err := nets.Triple(m)
		if err != nil {
			return nil, err
		}
		for _, n := range candidates {
			dg, err := n.Dense()
			if err != nil {
				return nil, err
			}
			r := rand.New(rand.NewSource(cfg.Seed + int64(m)))
			var widths, worst int
			var lenSum float64
			var lenCnt, maxLenSum int
			sampled := 0
			for sampled < pairs {
				s := uint64(r.Int63n(dg.Order()))
				d := uint64(r.Int63n(dg.Order()))
				if s == d {
					continue
				}
				fam, err := flow.VertexDisjointPaths(dg, s, d, 0, true)
				if err != nil {
					return nil, err
				}
				if len(fam) == 0 {
					continue
				}
				sampled++
				if widths == 0 || len(fam) < widths {
					widths = len(fam)
				}
				localMax := 0
				for _, p := range fam {
					l := len(p) - 1
					lenSum += float64(l)
					lenCnt++
					if l > localMax {
						localMax = l
					}
				}
				maxLenSum += localMax
				if localMax > worst {
					worst = localMax
				}
			}
			tab.AddRow(m, n.Name(), fmt.Sprintf(">=%d", widths),
				lenSum/float64(lenCnt), float64(maxLenSum)/float64(sampled), worst, sampled)
		}
	}
	return []*stats.Table{tab}, nil
}
