package exp

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
)

// E10Netsim regenerates the end-to-end payoff figure: message latency and
// goodput across an offered-load sweep, for single-path routing versus
// (m+1)-way disjoint-path striping, on fault-free and faulty networks.
func E10Netsim(cfg Config) ([]*stats.Table, error) {
	loadTab := stats.NewTable("DES: latency/goodput vs offered load (m=3, 256-flit messages, fault-free)",
		"load(msg/cyc/flow)", "mode", "avg-latency", "p95-latency", "goodput(flits/cyc)", "delivered")
	loads := []float64{0.0002, 0.0005, 0.001, 0.002, 0.004}
	flows, msgs := 24, 60
	if cfg.Quick {
		loads = []float64{0.0005, 0.002}
		flows, msgs = 8, 15
	}
	for _, load := range loads {
		for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
			res, err := netsim.Run(netsim.Config{
				M:               3,
				Mode:            mode,
				Flows:           flows,
				MessagesPerFlow: msgs,
				MessageFlits:    256,
				ArrivalRate:     load,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			loadTab.AddRow(fmt.Sprintf("%g", load), mode.String(), res.AvgLatency, res.P95Latency,
				res.Throughput, res.Delivered)
		}
	}

	faultTab := stats.NewTable("DES: delivery under node faults (m=3, moderate load)",
		"faults", "mode", "delivered", "dropped", "avg-latency")
	faultCounts := []int{0, 3, 12, 48}
	if cfg.Quick {
		faultCounts = []int{0, 3}
	}
	for _, f := range faultCounts {
		for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.FaultAwareSingle, netsim.MultiPathStripe, netsim.AdaptiveLocal} {
			res, err := netsim.Run(netsim.Config{
				M:               3,
				Mode:            mode,
				Flows:           flows,
				MessagesPerFlow: msgs,
				MessageFlits:    64,
				ArrivalRate:     0.001,
				FaultCount:      f,
				Seed:            cfg.Seed + int64(f),
			})
			if err != nil {
				return nil, err
			}
			faultTab.AddRow(f, mode.String(), res.Delivered, res.Dropped, res.AvgLatency)
		}
	}

	switchTab := stats.NewTable("DES: switching model × routing mode (m=3, light load)",
		"switching", "mode", "avg-latency", "p95-latency", "avg-hops")
	for _, sw := range []netsim.Switching{netsim.StoreAndForward, netsim.CutThrough} {
		for _, mode := range []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe} {
			res, err := netsim.Run(netsim.Config{
				M:               3,
				Mode:            mode,
				Switch:          sw,
				Flows:           flows,
				MessagesPerFlow: msgs,
				MessageFlits:    256,
				ArrivalRate:     0.0005,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			switchTab.AddRow(sw.String(), mode.String(), res.AvgLatency, res.P95Latency, res.AvgPathHops)
		}
	}
	return []*stats.Table{loadTab, faultTab, switchTab}, nil
}
