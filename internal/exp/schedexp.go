package exp

import (
	"math/rand"

	"repro/internal/sched"
	"repro/internal/stats"
)

// E19Scheduling compares FCFS and EASY backfilling on synthetic job traces
// over the buddy-partitioned machine: the standard space-sharing scheduler
// evaluation (mean/max wait, utilization, makespan).
func E19Scheduling(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Space-sharing job scheduling: FCFS vs EASY backfill",
		"t", "jobs", "policy", "mean-wait", "max-wait", "utilization", "makespan")
	type plan struct{ t, jobs int }
	plans := []plan{{4, 200}, {8, 400}}
	if cfg.Quick {
		plans = []plan{{4, 60}}
	}
	for _, p := range plans {
		jobs := syntheticTrace(p.t, p.jobs, cfg.Seed)
		for _, policy := range []sched.Policy{sched.FCFS, sched.Backfill} {
			_, m, err := sched.Run(p.t, jobs, policy)
			if err != nil {
				return nil, err
			}
			tab.AddRow(p.t, p.jobs, policy.String(), m.MeanWait, m.MaxWait, m.Utilization, m.Makespan)
		}
	}
	return []*stats.Table{tab}, nil
}

// syntheticTrace draws a bursty trace: geometric sizes (small jobs common,
// occasional near-machine jobs), exponential-ish durations, Poisson-ish
// arrivals.
func syntheticTrace(t, n int, seed int64) []sched.Job {
	r := rand.New(rand.NewSource(seed + int64(t)))
	jobs := make([]sched.Job, n)
	at := int64(0)
	for i := range jobs {
		at += int64(r.Intn(8))
		order := 0
		for order < t && r.Intn(2) == 0 {
			order++
		}
		jobs[i] = sched.Job{
			ID:       i + 1,
			Arrival:  at,
			Order:    order,
			Duration: int64(1 + r.Intn(60)),
		}
	}
	return jobs
}
