package exp

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// E20Adaptive sweeps fault density and contrasts the guaranteed
// container-based policy (RouteAround) with the local-information adaptive
// heuristic: delivery probability, path stretch, and deflection counts. The
// adaptive router sees only its neighbors' health; the container router
// needs the global fault set — the experiment quantifies what that
// knowledge is worth.
func E20Adaptive(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Fault routing: global-knowledge container vs local-information adaptive",
		"m", "faults", "trials", "container-ok", "adaptive-ok", "adaptive-stretch", "mean-deflections")
	ms := []int{3, 4}
	trials := 400
	if cfg.Quick {
		ms = []int{3}
		trials = 60
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		for _, f := range []int{0, m, 4 * m, 16 * m} {
			pairs := gen.Pairs(g, trials, gen.Uniform, cfg.Seed+int64(m*1000+f))
			containerOK, adaptiveOK := 0, 0
			var stretchSum float64
			var deflections, delivered int
			for i, pr := range pairs {
				faults := gen.FaultSet(g, f, []hhc.Node{pr.U, pr.V}, cfg.Seed+int64(i*13+f))
				if _, err := core.RouteAround(g, pr.U, pr.V, faults); err == nil {
					containerOK++
				}
				res, err := core.AdaptiveRoute(g, pr.U, pr.V,
					func(w hhc.Node) bool { return faults[w] }, 0)
				if err != nil {
					return nil, err
				}
				if res.Delivered {
					adaptiveOK++
					d, _, err := g.Distance(pr.U, pr.V)
					if err != nil {
						return nil, err
					}
					if d > 0 {
						stretchSum += float64(len(res.Path)-1) / float64(d)
					}
					deflections += res.Deflection
					delivered++
				}
			}
			stretch := 0.0
			meanDefl := 0.0
			if delivered > 0 {
				stretch = stretchSum / float64(delivered)
				meanDefl = float64(deflections) / float64(delivered)
			}
			tab.AddRow(m, f, trials,
				float64(containerOK)/float64(trials),
				float64(adaptiveOK)/float64(trials),
				stretch, meanDefl)
		}
	}
	return []*stats.Table{tab}, nil
}
