package exp

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/hhc"
	"repro/internal/hypercube"
	"repro/internal/nets"
	"repro/internal/stats"
)

// E11Measured is the measured three-way comparison: HHC_n vs Q_n vs
// CCC(2^m) at *identical* node counts 2^n (the sizes align exactly for
// n = 2^m + m). Diameters come from BFS where the instance is enumerable,
// connectivity from max flow — numbers, not formulas.
func E11Measured(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Measured comparison at equal node count (n = 2^m + m)",
		"m", "network", "nodes", "degree", "connectivity", "diameter", "deg*diam")
	ms := []int{2, 3}
	samples := 6
	sources := 16
	if cfg.Quick {
		ms = []int{2}
		samples, sources = 3, 4
	}
	for _, m := range ms {
		triple, err := nets.Triple(m)
		if err != nil {
			return nil, err
		}
		for _, n := range triple {
			diam, err := nets.MeasuredDiameter(n, sources, cfg.Seed)
			if err != nil {
				return nil, err
			}
			connCell := fmt.Sprintf("%d (analytic)", n.ContainerWidth())
			if dg, err := n.Dense(); err == nil && dg.Order() <= 1<<12 {
				k, err := nets.MeasuredConnectivity(n, samples, cfg.Seed)
				if err != nil {
					return nil, err
				}
				connCell = fmt.Sprintf("%d (flow)", k)
			}
			cost := "n/a"
			if d := parseLeadingInt(diam); d > 0 {
				cost = fmt.Sprintf("%d", n.Degree()*d)
			}
			tab.AddRow(m, n.Name(), fmt.Sprintf("2^%d", n.LogNodes()),
				n.Degree(), connCell, diam, cost)
		}
	}
	return []*stats.Table{tab}, nil
}

// parseLeadingInt extracts the integer from "13", ">=13" or "<=13".
func parseLeadingInt(s string) int {
	for len(s) > 0 && (s[0] == '<' || s[0] == '>' || s[0] == '=') {
		s = s[1:]
	}
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + int(c-'0')
	}
	return v
}

// E12Broadcast evaluates the distributed broadcast trees: depth (all-port
// rounds) and exact minimum one-port rounds versus the information-theoretic
// lower bound ceil(log2 N), across roots.
func E12Broadcast(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Broadcast on the dimension-ordered spanning tree",
		"m", "nodes", "roots", "depth(max)", "one-port(max)", "lower-bound", "Qn-binomial", "max-fanout")
	ms := []int{2, 3, 4}
	roots := 8
	if cfg.Quick {
		ms = []int{2, 3}
		roots = 3
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		n, _ := g.NumNodes()
		lower := int(math.Ceil(math.Log2(float64(n))))
		maxDepth, maxOne, maxFan := 0, 0, 0
		count := 0
		rootList := sampleRoots(g, roots, cfg.Seed)
		for _, root := range rootList {
			tree, err := collective.BuildTree(g, root)
			if err != nil {
				return nil, err
			}
			if err := tree.Validate(g); err != nil {
				return nil, err
			}
			if tree.Depth > maxDepth {
				maxDepth = tree.Depth
			}
			if o := tree.OnePortRounds(); o > maxOne {
				maxOne = o
			}
			if f := tree.MaxChildren(); f > maxFan {
				maxFan = f
			}
			count++
		}
		// The hypercube with the same node count broadcasts in exactly n
		// one-port rounds via the binomial tree — the degree-rich yardstick.
		tab.AddRow(m, fmt.Sprintf("2^%d", g.N()), count, maxDepth, maxOne, lower,
			hypercube.BinomialRounds(g.N()), maxFan)
	}
	return []*stats.Table{tab}, nil
}

// sampleRoots returns k deterministic distinct roots.
func sampleRoots(g *hhc.Graph, k int, seed int64) []hhc.Node {
	n, _ := g.NumNodes()
	roots := make([]hhc.Node, 0, k)
	step := n/uint64(k) + 1
	for id := uint64(seed) % step; id < n && len(roots) < k; id += step {
		roots = append(roots, g.NodeFromID(id))
	}
	if len(roots) == 0 {
		roots = append(roots, g.NodeFromID(0))
	}
	return roots
}
