package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// E1Properties regenerates the standard topology-properties table: for each
// m, the address length n, node count, degree, measured connectivity and
// diameter (exact where the network is enumerable, sampled/analytic beyond).
func E1Properties(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("HHC topology properties",
		"m", "n", "nodes", "degree", "connectivity", "diameter", "diam-method", "mean-dist")
	maxM := 5
	meanM := 4
	if cfg.Quick {
		maxM = 3
		meanM = 3
	}
	for m := 1; m <= maxM; m++ {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		nodes := fmt.Sprintf("2^%d", g.N())
		conn, err := measuredConnectivity(g, cfg)
		if err != nil {
			return nil, err
		}
		diam, how, err := measuredDiameter(g, cfg)
		if err != nil {
			return nil, err
		}
		meanCell := "n/a"
		if m <= meanM {
			// Exact by one BFS: the network is vertex-transitive, so a
			// single source's distance histogram is the global one.
			mean, err := g.MeanDistance()
			if err != nil {
				return nil, err
			}
			meanCell = fmt.Sprintf("%.3f", mean)
		}
		tab.AddRow(m, g.N(), nodes, g.Degree(), conn, diam, how, meanCell)
	}
	return []*stats.Table{tab}, nil
}

// measuredConnectivity verifies κ = m+1 by flow on sampled pairs for small
// m; larger m report the theoretical value (proved constructively by E2's
// verified containers).
func measuredConnectivity(g *hhc.Graph, cfg Config) (string, error) {
	if g.M() > 3 {
		return fmt.Sprintf("%d (constructive)", g.Degree()), nil
	}
	dg, err := g.Dense()
	if err != nil {
		return "", err
	}
	pairs := 10
	if cfg.Quick {
		pairs = 3
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	minK := g.Degree() + 1
	for i := 0; i < pairs; i++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u == v || g.Adjacent(u, v) {
			continue
		}
		k, err := flow.LocalConnectivity(dg, g.ID(u), g.ID(v))
		if err != nil {
			return "", err
		}
		if k < minK {
			minK = k
		}
	}
	return fmt.Sprintf("%d (flow)", minK), nil
}

// measuredDiameter computes the exact diameter for m <= 2 (all-source BFS),
// a high-confidence estimate for m = 3 (eccentricities from sampled
// sources), and reports the analytic bound beyond.
func measuredDiameter(g *hhc.Graph, cfg Config) (string, string, error) {
	switch {
	case g.M() <= 2:
		dg, err := g.Dense()
		if err != nil {
			return "", "", err
		}
		d, err := graph.Diameter(dg)
		if err != nil {
			return "", "", err
		}
		return fmt.Sprintf("%d", d), "exact", nil
	case g.M() == 3:
		dg, err := g.Dense()
		if err != nil {
			return "", "", err
		}
		sources := 64
		if cfg.Quick {
			sources = 8
		}
		r := rand.New(rand.NewSource(cfg.Seed + 1))
		best := 0
		for i := 0; i < sources; i++ {
			src := g.ID(g.RandomNode(r))
			ecc, _, err := graph.Eccentricity(dg, src)
			if err != nil {
				return "", "", err
			}
			if ecc > best {
				best = ecc
			}
		}
		return fmt.Sprintf(">=%d", best), "sampled", nil
	default:
		return fmt.Sprintf("<=%d", g.DiameterUpperBound()), "bound", nil
	}
}

// E7WideDiameter estimates the (m+1)-wide diameter: the maximum over node
// pairs of the longest path in the constructed container. Exhaustive for
// m <= 2, sampled (uniform + antipodal adversarial pairs) beyond; contrasted
// with the ordinary diameter and the analytic construction bound.
func E7WideDiameter(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Wide-diameter estimate (container max length)",
		"m", "pairs", "diameter", "wide-diam>=", "analytic<=", "method")
	maxM := 4
	if cfg.Quick {
		maxM = 3
	}
	for m := 1; m <= maxM; m++ {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		var worst, boundWorst, count int
		if m <= 2 {
			n, _ := g.NumNodes()
			for i := uint64(0); i < n; i++ {
				for j := uint64(0); j < n; j++ {
					if i == j {
						continue
					}
					u, v := g.NodeFromID(i), g.NodeFromID(j)
					w, b, err := containerWorst(g, u, v)
					if err != nil {
						return nil, err
					}
					if w > worst {
						worst = w
					}
					if b > boundWorst {
						boundWorst = b
					}
					count++
				}
			}
		} else {
			samples := 2000
			if cfg.Quick {
				samples = 200
			}
			pairs := gen.Pairs(g, samples/2, gen.Uniform, cfg.Seed+int64(m))
			pairs = append(pairs, gen.Pairs(g, samples/2, gen.Antipodal, cfg.Seed-int64(m))...)
			for _, p := range pairs {
				w, b, err := containerWorst(g, p.U, p.V)
				if err != nil {
					return nil, err
				}
				if w > worst {
					worst = w
				}
				if b > boundWorst {
					boundWorst = b
				}
				count++
			}
		}
		diam, _, err := measuredDiameter(g, cfg)
		if err != nil {
			return nil, err
		}
		method := "sampled"
		if m <= 2 {
			method = "exhaustive"
		}
		tab.AddRow(m, count, diam, worst, boundWorst, method)
	}
	return []*stats.Table{tab}, nil
}

// E9Compare contrasts HHC_n with the ordinary hypercube Q_n on the classic
// cost metrics the hierarchical design trades on: same node count, a
// fraction of the degree, a modest diameter penalty — so a much lower
// degree×diameter cost — and a container of width degree in both cases.
func E9Compare(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("HHC_n vs hypercube Q_n (equal node count 2^n)",
		"m", "n", "deg(HHC)", "deg(Q)", "diam(HHC)<=", "diam(Q)", "cost(HHC)", "cost(Q)", "container(HHC)", "container(Q)")
	maxM := 5
	if cfg.Quick {
		maxM = 3
	}
	for m := 1; m <= maxM; m++ {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		n := g.N()
		diamHHC := g.DiameterUpperBound()
		costHHC := g.Degree() * diamHHC
		costQ := n * n
		tab.AddRow(m, n, g.Degree(), n, diamHHC, n, costHHC, costQ, g.Degree(), n)
	}
	return []*stats.Table{tab}, nil
}
