package exp

import (
	"fmt"

	"repro/internal/hhc"
	"repro/internal/stats"
)

// E13Rings regenerates the ring-embedding table: for each m, every
// supported ring exponent r gives a verified simple cycle of 2^(r+m) nodes
// that fully consumes 2^r son-cubes. The table reports the largest rings
// and the fraction of the network they cover.
func E13Rings(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Ring embeddings (Hamiltonian-path glued super-walks)",
		"m", "r", "son-cubes", "ring-nodes", "network-nodes", "coverage", "verified")
	ms := []int{2, 3, 4, 5}
	if cfg.Quick {
		ms = []int{2, 3}
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		for r := 2; r <= g.MaxRingExponent(); r++ {
			dims, err := g.RingDims(r)
			if err != nil {
				return nil, err
			}
			ring, err := g.EmbedRing(0, dims)
			if err != nil {
				return nil, err
			}
			if err := g.VerifyRing(ring); err != nil {
				return nil, fmt.Errorf("exp: m=%d r=%d: %w", m, r, err)
			}
			coverage := "n/a"
			if total, ok := g.NumNodes(); ok {
				coverage = fmt.Sprintf("%.1f%%", 100*float64(len(ring))/float64(total))
			}
			tab.AddRow(m, r, 1<<uint(r), len(ring), fmt.Sprintf("2^%d", g.N()), coverage, "yes")
		}
	}
	return []*stats.Table{tab}, nil
}
