package exp

import (
	"repro/internal/netsim"
	"repro/internal/stats"
)

// E16Patterns sweeps the classical traffic patterns (uniform, hotspot,
// complement, bit-reverse) against the routing policies: structured traffic
// is where multi-path striping shows its load-spreading advantage, and the
// hotspot row quantifies the serialization that no routing policy can
// avoid (the destination's m+1 links are the bottleneck).
func E16Patterns(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("DES: traffic pattern × routing policy (m=3, 64-flit messages)",
		"pattern", "mode", "avg-latency", "p95-latency", "goodput(flits/cyc)")
	flows, msgs := 24, 40
	if cfg.Quick {
		flows, msgs = 8, 10
	}
	patterns := []netsim.TrafficPattern{
		netsim.PatternUniform, netsim.PatternHotspot,
		netsim.PatternComplement, netsim.PatternBitReverse,
	}
	modes := []netsim.RoutingMode{netsim.SinglePath, netsim.MultiPathStripe}
	for _, p := range patterns {
		for _, mode := range modes {
			res, err := netsim.Run(netsim.Config{
				M:               3,
				Mode:            mode,
				Pattern:         p,
				Flows:           flows,
				MessagesPerFlow: msgs,
				MessageFlits:    64,
				ArrivalRate:     0.001,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(p.String(), mode.String(), res.AvgLatency, res.P95Latency, res.Throughput)
		}
	}
	return []*stats.Table{tab}, nil
}
