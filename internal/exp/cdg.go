package exp

import (
	"repro/internal/deadlock"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// E17Deadlock runs the Dally–Seitz channel-dependency analysis on the two
// routers over all-pairs traffic of the enumerable instances. The finding —
// cyclic CDGs everywhere, starting with the 8-ring HHC_3 — is the classical
// result that minimal routing on networks containing rings needs virtual
// channels for wormhole deadlock freedom; the table quantifies how many
// dependencies each router induces.
func E17Deadlock(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Channel-dependency-graph analysis (Dally–Seitz)",
		"m", "router", "routes", "channels", "dependencies", "acyclic", "witness-len")
	type routerCase struct {
		name string
		get  func(g *hhc.Graph) deadlock.RouterFunc
	}
	routers := []routerCase{
		{"shortest", func(g *hhc.Graph) deadlock.RouterFunc { return g.Route }},
		{"dim-order", func(g *hhc.Graph) deadlock.RouterFunc { return g.RouteDimOrder }},
	}
	ms := []int{1, 2}
	stride := 1
	if cfg.Quick {
		stride = 3
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		for _, rc := range routers {
			rep, err := deadlock.AnalyzeRouter(g, rc.get(g), stride)
			if err != nil {
				return nil, err
			}
			witness := 0
			if !rep.Acyclic {
				witness = len(rep.Cycle) - 1
			}
			tab.AddRow(m, rc.name, rep.Routes, rep.Links, rep.Dependencies, rep.Acyclic, witness)
		}
	}

	vcTab := stats.NewTable("The cure: rank-descent virtual channels (mechanically re-verified)",
		"m", "router", "virtual-channels", "virtual-links", "dependencies", "acyclic")
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		for _, rc := range routers {
			rep, vcs, err := deadlock.AnalyzeRouterVirtual(g, rc.get(g), stride)
			if err != nil {
				return nil, err
			}
			vcTab.AddRow(m, rc.name, vcs, rep.Links, rep.Dependencies, rep.Acyclic)
		}
	}
	return []*stats.Table{tab, vcTab}, nil
}
