package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// containerWorst constructs and verifies one container, returning its
// longest path length and the analytic bound for the pair.
func containerWorst(g *hhc.Graph, u, v hhc.Node) (worst, bound int, err error) {
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		return 0, 0, err
	}
	if err := core.VerifyContainer(g, u, v, paths); err != nil {
		return 0, 0, fmt.Errorf("exp: verification failed for %s->%s: %w", g.FormatNode(u), g.FormatNode(v), err)
	}
	return core.MaxLength(paths), core.MaxLenBound(g, u, v), nil
}

// E2Construct is the theorem check: for every m it constructs containers on
// an exhaustive or sampled pair population, verifies all of them, and
// reports the measured length profile against the analytic bound.
func E2Construct(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Container construction check (all families verified node-disjoint)",
		"m", "pairs", "verified", "mean-max-len", "worst-len", "analytic-bound", "population")
	type plan struct {
		m       int
		samples int // 0 = exhaustive
	}
	plans := []plan{{1, 0}, {2, 0}, {3, 4000}, {4, 2000}, {5, 800}, {6, 300}}
	if cfg.Quick {
		plans = []plan{{1, 0}, {2, 0}, {3, 300}, {4, 100}, {5, 50}, {6, 20}}
	}
	for _, p := range plans {
		g, err := hhc.New(p.m)
		if err != nil {
			return nil, err
		}
		var pairs []gen.Pair
		population := "sampled"
		if p.samples == 0 {
			population = "exhaustive"
			n, _ := g.NumNodes()
			for i := uint64(0); i < n; i++ {
				for j := uint64(0); j < n; j++ {
					if i != j {
						pairs = append(pairs, gen.Pair{U: g.NodeFromID(i), V: g.NodeFromID(j)})
					}
				}
			}
		} else {
			pairs = gen.Pairs(g, p.samples, gen.Uniform, cfg.Seed+int64(p.m))
		}
		var maxLens []int
		worst, worstBound := 0, 0
		for _, pr := range pairs {
			w, b, err := containerWorst(g, pr.U, pr.V)
			if err != nil {
				return nil, err
			}
			maxLens = append(maxLens, w)
			if w > worst {
				worst = w
			}
			if b > worstBound {
				worstBound = b
			}
		}
		s := stats.Summarize(maxLens)
		tab.AddRow(p.m, len(pairs), fmt.Sprintf("%d/%d", len(pairs), len(pairs)),
			s.Mean, worst, worstBound, population)
	}
	return []*stats.Table{tab}, nil
}

// E3Profile regenerates the path-length figure: container mean/max length
// and shortest-path distance as the super-distance d = |a⊕b| sweeps 0..2^m.
func E3Profile(cfg Config) ([]*stats.Table, error) {
	ms := []int{3, 4}
	samples := 400
	if cfg.Quick {
		ms = []int{3}
		samples = 60
	}
	var tables []*stats.Table
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		tab := stats.NewTable(fmt.Sprintf("Container length vs super-distance (m=%d)", m),
			"d", "dist-mean", "container-mean", "container-max", "bound")
		for d := 0; d <= g.T(); d++ {
			pairs, err := gen.PairsAtSuperDistance(g, samples, d, cfg.Seed+int64(100*m+d))
			if err != nil {
				return nil, err
			}
			var dists, maxLens []int
			bound := 0
			for _, pr := range pairs {
				dist, _, err := g.Distance(pr.U, pr.V)
				if err != nil {
					return nil, err
				}
				dists = append(dists, dist)
				w, b, err := containerWorst(g, pr.U, pr.V)
				if err != nil {
					return nil, err
				}
				maxLens = append(maxLens, w)
				if b > bound {
					bound = b
				}
			}
			ds, ms := stats.Summarize(dists), stats.Summarize(maxLens)
			tab.AddRow(d, ds.Mean, ms.Mean, ms.Max, bound)
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// E4Baseline races the constructive algorithm against the generic max-flow
// (Menger) baseline on the same pairs: identical path counts, comparable
// lengths, and a construction that is orders of magnitude faster because it
// never touches the 2^n-node graph.
func E4Baseline(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Construction vs max-flow baseline",
		"m", "pairs", "width", "flow-width", "maxlen", "flow-maxlen",
		"construct-us/pair", "flow-us/pair", "speedup")
	type plan struct{ m, pairs int }
	plans := []plan{{2, 60}, {3, 40}, {4, 6}}
	if cfg.Quick {
		plans = []plan{{2, 10}, {3, 5}}
	}
	for _, p := range plans {
		g, err := hhc.New(p.m)
		if err != nil {
			return nil, err
		}
		dg, err := g.Dense()
		if err != nil {
			return nil, err
		}
		pairs := gen.Pairs(g, p.pairs, gen.Uniform, cfg.Seed+int64(p.m))

		start := time.Now()
		var maxLen, width int
		for _, pr := range pairs {
			paths, err := core.DisjointPaths(g, pr.U, pr.V)
			if err != nil {
				return nil, err
			}
			width = len(paths)
			if l := core.MaxLength(paths); l > maxLen {
				maxLen = l
			}
		}
		consTime := time.Since(start)

		start = time.Now()
		var flowMaxLen, flowWidth int
		minCost := p.m <= 3
		for _, pr := range pairs {
			paths, err := flow.VertexDisjointPaths(dg, g.ID(pr.U), g.ID(pr.V), 0, minCost)
			if err != nil {
				return nil, err
			}
			flowWidth = len(paths)
			for _, fp := range paths {
				if l := len(fp) - 1; l > flowMaxLen {
					flowMaxLen = l
				}
			}
		}
		flowTime := time.Since(start)

		consUS := float64(consTime.Microseconds()) / float64(len(pairs))
		flowUS := float64(flowTime.Microseconds()) / float64(len(pairs))
		speedup := 0.0
		if consUS > 0 {
			speedup = flowUS / consUS
		}
		tab.AddRow(p.m, len(pairs), width, flowWidth, maxLen, flowMaxLen,
			consUS, flowUS, fmt.Sprintf("%.0fx", speedup))
	}
	return []*stats.Table{tab}, nil
}

// E5Scaling shows the headline complexity claim: per-pair construction time
// stays flat as the network grows from 2^3 to 2^70 nodes, while anything
// that must traverse the network (BFS shortest path) blows up and becomes
// impossible past m = 4.
func E5Scaling(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Construction cost vs network size",
		"m", "n", "nodes", "construct-us/pair", "bfs-us/pair")
	reps := 300
	if cfg.Quick {
		reps = 40
	}
	for m := 1; m <= 6; m++ {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		pairs := gen.Pairs(g, reps, gen.Uniform, cfg.Seed+int64(m))
		start := time.Now()
		for _, pr := range pairs {
			if _, err := core.DisjointPaths(g, pr.U, pr.V); err != nil {
				return nil, err
			}
		}
		consUS := float64(time.Since(start).Microseconds()) / float64(len(pairs))

		bfsCell := "n/a (network too large)"
		if m <= hhc.MaxDenseM {
			dg, err := g.Dense()
			if err != nil {
				return nil, err
			}
			bfsPairs := pairs
			if m == 4 && len(bfsPairs) > 3 {
				bfsPairs = bfsPairs[:3] // a million-node BFS per pair
			}
			start = time.Now()
			for _, pr := range bfsPairs {
				if _, err := graphDistance(dg, g.ID(pr.U), g.ID(pr.V)); err != nil {
					return nil, err
				}
			}
			bfsCell = fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/float64(len(bfsPairs)))
		}
		tab.AddRow(m, g.N(), fmt.Sprintf("2^%d", g.N()), consUS, bfsCell)
	}
	return []*stats.Table{tab}, nil
}

// E8Ablation compares the cyclic-order strategies on identical pair sets.
func E8Ablation(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Cyclic-order strategy ablation",
		"m", "strategy", "pairs", "mean-max-len", "worst-len", "mean-total-len")
	ms := []int{3, 4, 5}
	samples := 1500
	if cfg.Quick {
		ms = []int{3}
		samples = 150
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		pairs := gen.Pairs(g, samples, gen.Uniform, cfg.Seed+int64(m))
		combos := []core.Options{
			{Order: core.OrderAscending},
			{Order: core.OrderGray},
			{Order: core.OrderNearest},
			{Order: core.OrderNearest, Detour: core.DetourNearest},
		}
		for _, opt := range combos {
			var maxLens, totals []int
			for _, pr := range pairs {
				paths, err := core.DisjointPathsOpt(g, pr.U, pr.V, opt)
				if err != nil {
					return nil, err
				}
				maxLens = append(maxLens, core.MaxLength(paths))
				totals = append(totals, core.TotalLength(paths))
			}
			label := opt.Order.String()
			if opt.Detour != core.DetourAscending {
				label += "+" + opt.Detour.String()
			}
			ml, tl := stats.Summarize(maxLens), stats.Summarize(totals)
			tab.AddRow(m, label, len(pairs), ml.Mean, ml.Max, tl.Mean)
		}
	}
	return []*stats.Table{tab}, nil
}
