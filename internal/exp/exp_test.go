package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 99} }

// TestAllExperimentsRun executes every registry entry in quick mode, checks
// each produces at least one non-empty table, and that rendering works.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tab := range tables {
				if tab.NumRows() == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tab.Title)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if buf.Len() == 0 {
					t.Fatalf("%s: empty render", e.ID)
				}
			}
		})
	}
}

func TestFind(t *testing.T) {
	e, err := Find("E3")
	if err != nil || e.ID != "E3" {
		t.Fatalf("Find(E3) = %v, %v", e, err)
	}
	if _, err := Find("E99"); err == nil {
		t.Fatal("Find(E99): want error")
	}
}

func TestRunAndRender(t *testing.T) {
	e, err := Find("E9")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunAndRender(e, quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E9") || !strings.Contains(out, "cost") {
		t.Fatalf("render output suspicious:\n%s", out)
	}
}

func TestRunAndRenderCSV(t *testing.T) {
	e, err := Find("E9")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunAndRenderCSV(e, quickCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# E9/0:") {
		t.Fatalf("missing CSV block header:\n%.80s", out)
	}
	if !strings.Contains(out, "m,n,") {
		t.Fatalf("missing CSV column header:\n%.200s", out)
	}
}

// TestE1Shape sanity-checks the rows of the properties table: degree m+1,
// connectivity m+1, diameter within the analytic bound.
func TestE1Shape(t *testing.T) {
	tables, err := E1Properties(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		m, _ := strconv.Atoi(row[0])
		deg, _ := strconv.Atoi(row[3])
		if deg != m+1 {
			t.Fatalf("m=%d: degree column %s", m, row[3])
		}
		if !strings.HasPrefix(row[4], strconv.Itoa(m+1)) {
			t.Fatalf("m=%d: connectivity column %s, want %d", m, row[4], m+1)
		}
	}
}

// TestE6GuaranteeColumn: every row with faults <= m must be marked
// guaranteed with full survival (the harness itself errors otherwise, but
// assert the rendered rate too).
func TestE6GuaranteeColumn(t *testing.T) {
	tables, err := E6Faults(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows() {
		if row[7] == "guaranteed" && row[5] != "1.000" {
			t.Fatalf("guaranteed row has rate %s", row[5])
		}
	}
}

// TestE19BackfillNeverWorse: on every row pair, backfill's mean wait must
// not exceed FCFS's for the same trace.
func TestE19BackfillNeverWorse(t *testing.T) {
	tables, err := E19Scheduling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	if len(rows)%2 != 0 {
		t.Fatalf("odd row count %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		fcfs, err1 := strconv.ParseFloat(rows[i][3], 64)
		bf, err2 := strconv.ParseFloat(rows[i+1][3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable waits %q %q", rows[i][3], rows[i+1][3])
		}
		if rows[i][2] != "fcfs" || rows[i+1][2] != "backfill" {
			t.Fatalf("row order unexpected: %v", rows[i])
		}
		if bf > fcfs {
			t.Fatalf("backfill wait %.2f > fcfs %.2f", bf, fcfs)
		}
	}
}

// TestE20GuaranteeColumn: the container policy must report 100 % for every
// f <= m row.
func TestE20GuaranteeColumn(t *testing.T) {
	tables, err := E20Adaptive(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows() {
		m, _ := strconv.Atoi(row[0])
		f, _ := strconv.Atoi(row[1])
		if f <= m && row[3] != "1.000" {
			t.Fatalf("container-ok %s with f=%d <= m=%d", row[3], f, m)
		}
	}
}

// TestE9CostAdvantage: the cost (degree×diameter bound) of HHC must beat
// the hypercube's n² for every m >= 2 row — the design's selling point.
func TestE9CostAdvantage(t *testing.T) {
	tables, err := E9Compare(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows() {
		m, _ := strconv.Atoi(row[0])
		costHHC, _ := strconv.Atoi(row[6])
		costQ, _ := strconv.Atoi(row[7])
		if m >= 3 && costHHC >= costQ {
			t.Fatalf("m=%d: HHC cost %d not below Q cost %d", m, costHHC, costQ)
		}
	}
}
