package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/ccc"
	"repro/internal/dessim"
	"repro/internal/hcn"
	"repro/internal/hhc"
	"repro/internal/hypercube"
	"repro/internal/stats"
)

// E15CrossNetworkDES races the candidate topologies under identical
// offered load on the generic discrete-event engine: same number of flows,
// same Poisson arrivals, same message sizes, each network routing with its
// own native single-path router. This isolates what topology (diameter,
// path diversity at equal node count) does to delivered latency.
func E15CrossNetworkDES(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Cross-network DES at equal node count (single-path, store-and-forward)",
		"m", "network", "nodes", "flows", "avg-hops", "avg-latency", "p95-latency")
	ms := []int{2, 3}
	flows, msgs := 24, 40
	if cfg.Quick {
		ms = []int{2}
		flows, msgs = 8, 10
	}
	const flits = 32
	const rate = 0.002
	for _, m := range ms {
		routers, err := crossRouters(m)
		if err != nil {
			return nil, err
		}
		for _, rt := range routers {
			avgHops, lat, err := simulateNetwork(rt, flows, msgs, flits, rate, cfg.Seed+int64(m))
			if err != nil {
				return nil, fmt.Errorf("exp: %s: %w", rt.name, err)
			}
			s := stats.SummarizeFloats(lat)
			p95 := stats.Percentiles(lat, 95)[0]
			tab.AddRow(m, rt.name, fmt.Sprintf("2^%d", rt.logNodes), flows, avgHops, s.Mean, p95)
		}
	}
	return []*stats.Table{tab}, nil
}

// crossRouter bundles a network's size and single-path router over IDs.
type crossRouter struct {
	name     string
	logNodes int
	order    uint64
	route    func(u, v uint64) ([]uint64, error)
}

// crossRouters builds the equal-sized candidates for parameter m.
func crossRouters(m int) ([]crossRouter, error) {
	hg, err := hhc.New(m)
	if err != nil {
		return nil, err
	}
	n := hg.N()
	nodes := uint64(1) << uint(n)
	out := []crossRouter{
		{
			name: hgName(hg), logNodes: n, order: nodes,
			route: func(u, v uint64) ([]uint64, error) {
				p, err := hg.Route(hg.NodeFromID(u), hg.NodeFromID(v))
				if err != nil {
					return nil, err
				}
				return hg.PathIDs(p), nil
			},
		},
		{
			name: fmt.Sprintf("Q_%d", n), logNodes: n, order: nodes,
			route: func(u, v uint64) ([]uint64, error) {
				return hypercube.BitFixPath(u, v), nil
			},
		},
	}
	// CCC(2^m): same node count; routes with its native sweep router.
	cg, err := ccc.New(hg.T())
	if err != nil {
		return nil, err
	}
	out = append(out, crossRouter{
		name: fmt.Sprintf("CCC(%d)", hg.T()), logNodes: n, order: cg.NumNodes(),
		route: func(u, v uint64) ([]uint64, error) {
			p, err := cg.Route(cg.NodeFromID(u), cg.NodeFromID(v))
			if err != nil {
				return nil, err
			}
			ids := make([]uint64, len(p))
			for i, w := range p {
				ids[i] = cg.ID(w)
			}
			return ids, nil
		},
	})
	// HCN(n/2) exists for even n.
	if n%2 == 0 {
		hcg, err := hcn.New(n / 2)
		if err != nil {
			return nil, err
		}
		out = append(out, crossRouter{
			name: fmt.Sprintf("HCN(%d)", n/2), logNodes: n, order: hcg.NumNodes(),
			route: func(u, v uint64) ([]uint64, error) {
				p, err := hcg.Route(hcg.NodeFromID(u), hcg.NodeFromID(v))
				if err != nil {
					return nil, err
				}
				ids := make([]uint64, len(p))
				for i, w := range p {
					ids[i] = hcg.ID(w)
				}
				return ids, nil
			},
		})
	}
	return out, nil
}

func hgName(g *hhc.Graph) string { return fmt.Sprintf("HHC_%d", g.N()) }

// simulateNetwork runs one network under the shared workload shape.
func simulateNetwork(rt crossRouter, flows, msgs, flits int, rate float64, seed int64) (avgHops float64, latencies []float64, err error) {
	r := rand.New(rand.NewSource(seed))
	var packets []dessim.Packet[uint64]
	var created []int64
	var hopSum, hopCnt int64
	msgID := 0
	for f := 0; f < flows; f++ {
		u := uint64(r.Int63n(int64(rt.order)))
		v := uint64(r.Int63n(int64(rt.order)))
		if u == v {
			v = (v + 1) % rt.order
		}
		route, err := rt.route(u, v)
		if err != nil {
			return 0, nil, err
		}
		hopSum += int64(len(route) - 1)
		hopCnt++
		t := 0.0
		for k := 0; k < msgs; k++ {
			t += r.ExpFloat64() / rate
			packets = append(packets, dessim.Packet[uint64]{
				Route: route, Flits: int64(flits), Release: int64(t), Msg: msgID,
			})
			created = append(created, int64(t))
			msgID++
		}
	}
	done, err := dessim.Simulate(packets, msgID, dessim.StoreAndForward)
	if err != nil {
		return 0, nil, err
	}
	for i, d := range done {
		if d >= 0 {
			latencies = append(latencies, float64(d-created[i]))
		}
	}
	return float64(hopSum) / float64(hopCnt), latencies, nil
}
