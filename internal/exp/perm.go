package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hhc"
	"repro/internal/stats"
)

// E14Permutation measures link congestion under a full random permutation
// workload: every node sends one message to a distinct destination, routes
// are laid down, and the maximum and mean number of routes crossing any
// directed link is reported — for the optimal centralized router, the
// distributed dimension-ordered router, and container striping (whose load
// per path is 1/(m+1) of a message). Congestion is the classical proxy for
// saturation throughput.
func E14Permutation(cfg Config) ([]*stats.Table, error) {
	tab := stats.NewTable("Link congestion under a full random permutation",
		"m", "nodes", "router", "max-load", "mean-load", "loaded-links")
	ms := []int{2, 3}
	perms := 3
	if cfg.Quick {
		ms = []int{2}
		perms = 1
	}
	for _, m := range ms {
		g, err := hhc.New(m)
		if err != nil {
			return nil, err
		}
		n, _ := g.NumNodes()
		for _, router := range []string{"shortest", "dim-order", "multi-path"} {
			maxLoad, meanSum, linkSum := 0, 0.0, 0
			for p := 0; p < perms; p++ {
				loads, err := permutationLoads(g, n, router, cfg.Seed+int64(p))
				if err != nil {
					return nil, err
				}
				mx, mean := loadStats(loads)
				if mx > maxLoad {
					maxLoad = mx
				}
				meanSum += mean
				linkSum += len(loads)
			}
			tab.AddRow(m, fmt.Sprintf("2^%d", g.N()), router,
				maxLoad, meanSum/float64(perms), linkSum/perms)
		}
	}
	return []*stats.Table{tab}, nil
}

type dirLink struct{ from, to hhc.Node }

// permutationLoads routes a random permutation and counts per-link loads.
// Multi-path striping contributes 1/(m+1) of a message per container path.
func permutationLoads(g *hhc.Graph, n uint64, router string, seed int64) (map[dirLink]float64, error) {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(int(n))
	loads := make(map[dirLink]float64)
	addPath := func(p []hhc.Node, weight float64) {
		for i := 1; i < len(p); i++ {
			loads[dirLink{p[i-1], p[i]}] += weight
		}
	}
	for src, dst := range perm {
		if src == dst {
			continue
		}
		u := g.NodeFromID(uint64(src))
		v := g.NodeFromID(uint64(dst))
		switch router {
		case "shortest":
			p, err := g.Route(u, v)
			if err != nil {
				return nil, err
			}
			addPath(p, 1)
		case "dim-order":
			p, err := g.RouteDimOrder(u, v)
			if err != nil {
				return nil, err
			}
			addPath(p, 1)
		case "multi-path":
			paths, err := core.DisjointPaths(g, u, v)
			if err != nil {
				return nil, err
			}
			w := 1 / float64(len(paths))
			for _, p := range paths {
				addPath(p, w)
			}
		default:
			return nil, fmt.Errorf("exp: unknown router %q", router)
		}
	}
	return loads, nil
}

func loadStats(loads map[dirLink]float64) (maxLoad int, mean float64) {
	if len(loads) == 0 {
		return 0, 0
	}
	var sum float64
	var mx float64
	for _, l := range loads {
		sum += l
		if l > mx {
			mx = l
		}
	}
	return int(mx + 0.5), sum / float64(len(loads))
}
