package hcn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
)

func mustNew(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBounds(t *testing.T) {
	for _, n := range []int{0, 32, -1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error", n)
		}
	}
	g := mustNew(t, 3)
	if g.N() != 3 || g.NumNodes() != 64 || g.Degree() != 4 {
		t.Fatalf("metadata: n=%d nodes=%d deg=%d", g.N(), g.NumNodes(), g.Degree())
	}
}

func TestContains(t *testing.T) {
	g := mustNew(t, 3)
	if !g.Contains(Node{I: 7, J: 7}) {
		t.Error("max node rejected")
	}
	if g.Contains(Node{I: 8, J: 0}) || g.Contains(Node{I: 0, J: 8}) {
		t.Error("out-of-range accepted")
	}
}

func TestNeighborsStructure(t *testing.T) {
	g := mustNew(t, 3)
	// Off-diagonal: swap edge.
	u := Node{I: 0b101, J: 0b010}
	nbrs := g.Neighbors(u, nil)
	if len(nbrs) != 4 {
		t.Fatalf("degree %d", len(nbrs))
	}
	ext := nbrs[3]
	if ext != (Node{I: 0b010, J: 0b101}) {
		t.Fatalf("swap neighbor %v", ext)
	}
	// Diagonal: complement edge.
	d := Node{I: 0b011, J: 0b011}
	ext = g.ExternalNeighbor(d)
	if ext != (Node{I: 0b100, J: 0b100}) {
		t.Fatalf("diagonal neighbor %v", ext)
	}
	// External edges are involutions in both cases.
	if g.ExternalNeighbor(g.ExternalNeighbor(u)) != u {
		t.Fatal("swap not involution")
	}
	if g.ExternalNeighbor(g.ExternalNeighbor(d)) != d {
		t.Fatal("diagonal not involution")
	}
}

func TestAdjacentMatchesNeighbors(t *testing.T) {
	g := mustNew(t, 2)
	n := g.NumNodes()
	for i := uint64(0); i < n; i++ {
		u := g.NodeFromID(i)
		nbrSet := map[Node]bool{}
		for _, w := range g.Neighbors(u, nil) {
			nbrSet[w] = true
		}
		for j := uint64(0); j < n; j++ {
			v := g.NodeFromID(j)
			if got := g.Adjacent(u, v); got != nbrSet[v] {
				t.Fatalf("Adjacent(%v,%v) = %v, neighbors say %v", u, v, got, nbrSet[v])
			}
		}
	}
}

func TestIDRoundTrip(t *testing.T) {
	g := mustNew(t, 5)
	prop := func(i, j uint32) bool {
		u := Node{I: i & 0x1F, J: j & 0x1F}
		return g.NodeFromID(g.ID(u)) == u
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDenseStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		g := mustNew(t, n)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.CheckSymmetric(dg); err != nil {
			t.Fatalf("HCN(%d): %v", n, err)
		}
		conn, err := graph.IsConnected(dg)
		if err != nil || !conn {
			t.Fatalf("HCN(%d) connected = %v, %v", n, conn, err)
		}
		edges, err := graph.CountEdges(dg)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(g.NumNodes()) * int64(g.Degree()) / 2
		if edges != want {
			t.Fatalf("HCN(%d): %d edges, want %d (regular of degree n+1)", n, edges, want)
		}
	}
	if _, err := mustNew(t, 12).Dense(); err == nil {
		t.Fatal("HCN(12) dense: want too-large error")
	}
}

func TestDiameterWithinBound(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		g := mustNew(t, n)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		diam, err := graph.Diameter(dg)
		if err != nil {
			t.Fatal(err)
		}
		if diam > g.DiameterUpperBound() {
			t.Fatalf("HCN(%d): diameter %d exceeds bound %d", n, diam, g.DiameterUpperBound())
		}
		if diam < n {
			t.Fatalf("HCN(%d): diameter %d below the in-cluster lower bound %d", n, diam, n)
		}
	}
}

// TestConnectivity: the container width of HCN(n) is n+1 (regular and
// maximally fault-tolerant, like HHC and the hypercube).
func TestConnectivity(t *testing.T) {
	for _, n := range []int{2, 3} {
		g := mustNew(t, n)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(n)))
		minK := g.Degree() + 1
		for trial := 0; trial < 20; trial++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v || g.Adjacent(u, v) {
				continue
			}
			k, err := flow.LocalConnectivity(dg, g.ID(u), g.ID(v))
			if err != nil {
				t.Fatal(err)
			}
			if k < minK {
				minK = k
			}
		}
		if minK != g.Degree() {
			t.Fatalf("HCN(%d): measured connectivity %d, want %d", n, minK, g.Degree())
		}
	}
}

func TestRandomNodeValid(t *testing.T) {
	g := mustNew(t, 6)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		if u := g.RandomNode(r); !g.Contains(u) {
			t.Fatalf("invalid %v", u)
		}
	}
}
