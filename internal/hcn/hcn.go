// Package hcn implements the hierarchical cubic network HCN(n) (Ghose &
// Desai, 1995), the other classical hierarchical derivative of the
// hypercube and a frequent comparison point for the hierarchical hypercube:
// 2^n clusters, each an n-cube, joined by one "swap" link per node.
//
// A node is a pair (I, J) of n-bit words: I names the cluster, J the node
// inside it. Edges:
//
//   - local:    (I, J) ~ (I, J⊕e_i)           — the cluster's n-cube;
//   - swap:     (I, J) ~ (J, I)   for I ≠ J   — mirror across the diagonal;
//   - diagonal: (I, I) ~ (Ī, Ī)               — complement link for the
//     2^n diagonal nodes, which would otherwise lack an external edge.
//
// Every node has degree n+1, the network has 2^(2n) nodes, and like the
// hierarchical hypercube it buys near-hypercube diameter with roughly half
// the address length in degree.
package hcn

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// MinN and MaxN bound the cluster dimension. n = 10 already gives 2^20
// nodes, the largest dense view we materialize.
const (
	MinN = 1
	MaxN = 31
)

// Node is an HCN node: I the cluster address, J the in-cluster address.
type Node struct {
	I uint32
	J uint32
}

// String formats a node.
func (u Node) String() string { return fmt.Sprintf("(I=%#x,J=%#x)", u.I, u.J) }

// Graph is an HCN(n) topology handle.
type Graph struct {
	n    int
	mask uint32
}

// New returns HCN(n).
func New(n int) (*Graph, error) {
	if n < MinN || n > MaxN {
		return nil, fmt.Errorf("hcn: n = %d out of range [%d,%d]", n, MinN, MaxN)
	}
	return &Graph{n: n, mask: 1<<uint(n) - 1}, nil
}

// N returns the cluster dimension n.
func (g *Graph) N() int { return g.n }

// NumNodes returns 2^(2n).
func (g *Graph) NumNodes() uint64 { return 1 << uint(2*g.n) }

// Degree returns n+1.
func (g *Graph) Degree() int { return g.n + 1 }

// Contains validates a node.
func (g *Graph) Contains(u Node) bool {
	return u.I&^g.mask == 0 && u.J&^g.mask == 0
}

// LocalNeighbor returns the neighbor across in-cluster dimension i.
func (g *Graph) LocalNeighbor(u Node, i int) Node {
	return Node{I: u.I, J: u.J ^ 1<<uint(i)}
}

// ExternalNeighbor returns the swap neighbor (J, I), or the complement
// diagonal neighbor for I == J.
func (g *Graph) ExternalNeighbor(u Node) Node {
	if u.I == u.J {
		return Node{I: ^u.I & g.mask, J: ^u.J & g.mask}
	}
	return Node{I: u.J, J: u.I}
}

// Neighbors appends u's n+1 neighbors (locals first, then the external).
func (g *Graph) Neighbors(u Node, buf []Node) []Node {
	for i := 0; i < g.n; i++ {
		buf = append(buf, g.LocalNeighbor(u, i))
	}
	return append(buf, g.ExternalNeighbor(u))
}

// Adjacent reports whether u and v are joined by an edge.
func (g *Graph) Adjacent(u, v Node) bool {
	if u.I == v.I {
		d := u.J ^ v.J
		return d != 0 && d&(d-1) == 0
	}
	if u.I == v.J && u.J == v.I && u.I != u.J {
		return true
	}
	return u.I == u.J && v.I == v.J && v.I == ^u.I&g.mask
}

// ID packs a node into 0..2^(2n)-1.
func (g *Graph) ID(u Node) uint64 { return uint64(u.I)<<uint(g.n) | uint64(u.J) }

// NodeFromID inverts ID.
func (g *Graph) NodeFromID(id uint64) Node {
	return Node{I: uint32(id>>uint(g.n)) & g.mask, J: uint32(id) & g.mask}
}

// RandomNode draws a uniform node.
func (g *Graph) RandomNode(r *rand.Rand) Node {
	return Node{I: uint32(r.Uint64()) & g.mask, J: uint32(r.Uint64()) & g.mask}
}

// MaxDenseN bounds dense views (n = 10 → 2^20 nodes).
const MaxDenseN = 10

// Dense returns a graph.Graph view for ground-truth traversal.
func (g *Graph) Dense() (graph.Graph, error) {
	if g.n > MaxDenseN {
		return nil, fmt.Errorf("%w: HCN(%d) has 2^%d nodes", graph.ErrTooLarge, g.n, 2*g.n)
	}
	return denseView{g}, nil
}

type denseView struct{ g *Graph }

func (d denseView) Order() int64   { return int64(d.g.NumNodes()) }
func (d denseView) MaxDegree() int { return d.g.n + 1 }

func (d denseView) Neighbors(v uint64, buf []uint64) []uint64 {
	u := d.g.NodeFromID(v)
	for _, w := range d.g.Neighbors(u, nil) {
		buf = append(buf, d.g.ID(w))
	}
	return buf
}

// DiameterUpperBound returns the published bound n + floor((n+1)/3) + 1
// (Ghose & Desai); we only use it as a sanity ceiling for measured values.
func (g *Graph) DiameterUpperBound() int { return g.n + (g.n+1)/3 + 1 }
