package hcn

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestRouteExhaustiveValidity routes every ordered pair of HCN(2) and
// HCN(3), verifying validity and measuring worst-case stretch vs BFS.
func TestRouteExhaustiveValidity(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		g := mustNew(t, n)
		dg, err := g.Dense()
		if err != nil {
			t.Fatal(err)
		}
		total := g.NumNodes()
		worstStretch := 0
		for i := uint64(0); i < total; i++ {
			u := g.NodeFromID(i)
			dist, err := graph.BFS(dg, i)
			if err != nil {
				t.Fatal(err)
			}
			for j := uint64(0); j < total; j++ {
				v := g.NodeFromID(j)
				p, err := g.Route(u, v)
				if err != nil {
					t.Fatalf("Route(%v,%v): %v", u, v, err)
				}
				if err := g.VerifyPath(u, v, p); err != nil {
					t.Fatalf("Route(%v,%v) invalid: %v", u, v, err)
				}
				if s := (len(p) - 1) - int(dist[j]); s > worstStretch {
					worstStretch = s
				}
			}
		}
		// The heuristic router is not shortest, but its additive stretch
		// must stay small (a constant few hops at these sizes).
		if worstStretch > n+2 {
			t.Fatalf("HCN(%d): worst additive stretch %d too large", n, worstStretch)
		}
	}
}

func TestRouteRandomLarge(t *testing.T) {
	g := mustNew(t, 10) // 2^20 nodes: routing must not enumerate anything
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		p, err := g.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyPath(u, v, p); err != nil {
			t.Fatal(err)
		}
		// Bounded by local + swap + local + diagonal slack.
		if len(p)-1 > 3*g.N()+3 {
			t.Fatalf("route length %d implausible", len(p)-1)
		}
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	g := mustNew(t, 3)
	u := Node{I: 5, J: 2}
	p, err := g.Route(u, u)
	if err != nil || len(p) != 1 {
		t.Fatalf("self route: %v, %v", p, err)
	}
	if _, err := g.Route(Node{I: 99, J: 0}, u); err == nil {
		t.Fatal("invalid source accepted")
	}
	if _, err := g.Route(u, Node{I: 0, J: 99}); err == nil {
		t.Fatal("invalid destination accepted")
	}
}

func TestRouteUsesDiagonalWhenProfitable(t *testing.T) {
	g := mustNew(t, 3)
	// From cluster 0b000 to cluster 0b111 (the complement): the diagonal
	// edge (0,0)-(7,7) should make this cheap.
	u := Node{I: 0, J: 0}
	v := Node{I: 7, J: 7}
	p, err := g.Route(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(p)-1 != 1 {
		t.Fatalf("complement diagonal pair should be 1 hop, got %d", len(p)-1)
	}
}

func TestVerifyPathRejections(t *testing.T) {
	g := mustNew(t, 2)
	u, v := Node{I: 0, J: 0}, Node{I: 0, J: 1}
	if err := g.VerifyPath(u, v, []Node{u, v}); err != nil {
		t.Fatalf("edge rejected: %v", err)
	}
	if err := g.VerifyPath(u, v, nil); err == nil {
		t.Error("empty accepted")
	}
	if err := g.VerifyPath(u, v, []Node{u, {I: 3, J: 3}, v}); err == nil {
		t.Error("jump accepted")
	}
	if err := g.VerifyPath(u, v, []Node{u, v, u, v}); err == nil {
		t.Error("repeat accepted")
	}
}
