package hcn

import (
	"fmt"
	"math/bits"
)

// Routing in HCN(n). The swap edge (I,J)~(J,I) suggests the canonical
// two-phase scheme for reaching (K,L) from (I,J):
//
//	(I,J) --local--> (I,K) --swap--> (K,I) --local--> (K,L)
//
// of length ham(J,K) + 1 + ham(I,L). Three alternatives can be shorter:
// staying inside the cluster when I == K, the mirrored scheme that swaps
// first (useful when J is already close to K's mirror), and the
// diagonal-complement shortcut for far-apart clusters. Route evaluates the
// candidates and returns the best; it is a constant-stretch heuristic (the
// classic HCN routing algorithm family), verified against BFS ground truth
// in the tests.

// Route returns a valid path from u to v.
func (g *Graph) Route(u, v Node) ([]Node, error) {
	if !g.Contains(u) || !g.Contains(v) {
		return nil, fmt.Errorf("hcn: invalid endpoint %v / %v", u, v)
	}
	if u == v {
		return []Node{u}, nil
	}
	best := g.routeDirect(u, v)
	if alt := g.routeSwapFirst(u, v); alt != nil && len(alt) < len(best) {
		best = alt
	}
	if alt := g.routeDiagonal(u, v); alt != nil && len(alt) < len(best) {
		best = alt
	}
	return best, nil
}

// localWalk appends the greedy in-cluster walk from (I, from) to (I, to),
// excluding the starting node.
func (g *Graph) localWalk(path []Node, cluster, from, to uint32) []Node {
	cur := from
	diff := from ^ to
	for diff != 0 {
		i := uint(bits.TrailingZeros32(diff))
		cur ^= 1 << i
		diff &^= 1 << i
		path = append(path, Node{I: cluster, J: cur})
	}
	return path
}

// routeDirect: walk to K inside the source cluster, swap, walk to L.
// Degenerates gracefully when I == K (pure local) and when the swap pivot
// coincides with an endpoint.
func (g *Graph) routeDirect(u, v Node) []Node {
	path := []Node{u}
	if u.I == v.I {
		return g.localWalk(path, u.I, u.J, v.J)
	}
	path = g.localWalk(path, u.I, u.J, v.I)
	// Swap (I, K) -> (K, I); the swap edge needs I != K, true here.
	path = append(path, Node{I: v.I, J: u.I})
	return g.localWalk(path, v.I, u.I, v.J)
}

// routeSwapFirst: swap out of the source cluster immediately (possible when
// I != J), then continue with the direct scheme from (J, I).
func (g *Graph) routeSwapFirst(u, v Node) []Node {
	if u.I == u.J || u.I == v.I {
		return nil
	}
	start := Node{I: u.J, J: u.I}
	if start == v {
		return []Node{u, v}
	}
	rest := g.routeDirect(start, v)
	return append([]Node{u}, rest...)
}

// routeDiagonal: ride the complement edge of the source cluster's diagonal
// node — (I,J) ⇝ (I,I) → (Ī,Ī) ⇝ onward — which pays off when the target
// cluster is nearly the complement of I.
func (g *Graph) routeDiagonal(u, v Node) []Node {
	if v.I == u.I {
		// Leaving and re-entering the source cluster risks revisiting the
		// initial walk's nodes; the direct scheme handles this case.
		return nil
	}
	diag := Node{I: u.I, J: u.I}
	comp := Node{I: ^u.I & g.mask, J: ^u.I & g.mask}
	path := []Node{u}
	if u != diag {
		path = g.localWalk(path, u.I, u.J, u.I)
	}
	path = append(path, comp)
	if comp == v {
		return path
	}
	rest := g.routeDirect(comp, v)
	return append(path, rest[1:]...)
}

// VerifyPath checks a simple path between u and v.
func (g *Graph) VerifyPath(u, v Node, path []Node) error {
	if len(path) == 0 {
		return fmt.Errorf("hcn: empty path")
	}
	if path[0] != u || path[len(path)-1] != v {
		return fmt.Errorf("hcn: path runs %v..%v, want %v..%v", path[0], path[len(path)-1], u, v)
	}
	seen := make(map[Node]bool, len(path))
	for i, w := range path {
		if !g.Contains(w) {
			return fmt.Errorf("hcn: invalid node %v", w)
		}
		if seen[w] {
			return fmt.Errorf("hcn: repeated node %v", w)
		}
		seen[w] = true
		if i > 0 && !g.Adjacent(path[i-1], w) {
			return fmt.Errorf("hcn: %v-%v not adjacent", path[i-1], w)
		}
	}
	return nil
}
