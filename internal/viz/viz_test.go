package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hhc"
)

func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopologyDOT(t *testing.T) {
	g := mustGraph(t, 2)
	var buf bytes.Buffer
	if err := TopologyDOT(g, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph hhc6 {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT graph:\n%.120s", out)
	}
	// 16 son-cube clusters, 96 edges.
	if got := strings.Count(out, "subgraph cluster_"); got != 16 {
		t.Fatalf("%d clusters, want 16", got)
	}
	if got := strings.Count(out, " -- "); got != 96 {
		t.Fatalf("%d edges, want 96", got)
	}
	// Larger m refused.
	if err := TopologyDOT(mustGraph(t, 3), &buf); err == nil {
		t.Fatal("m=3 topology should be refused")
	}
}

func TestContainerDOT(t *testing.T) {
	g := mustGraph(t, 3)
	u, v := hhc.Node{X: 0x01, Y: 0}, hhc.Node{X: 0xF0, Y: 6}
	paths, err := core.DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ContainerDOT(g, u, v, paths, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "peripheries=2") {
		t.Fatal("endpoints not highlighted")
	}
	edges := strings.Count(out, " -- ")
	if edges != core.TotalLength(paths) {
		t.Fatalf("%d edges rendered, container has %d", edges, core.TotalLength(paths))
	}
	for _, color := range []string{"crimson", "royalblue", "forestgreen", "darkorange"} {
		if !strings.Contains(out, color) {
			t.Fatalf("path color %s missing (4 paths expected)", color)
		}
	}
	if err := ContainerDOT(g, u, v, nil, &buf); err == nil {
		t.Fatal("empty container accepted")
	}
}

func TestRingDOT(t *testing.T) {
	g := mustGraph(t, 2)
	dims, err := g.RingDims(2)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := g.EmbedRing(0, dims)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RingDOT(g, ring, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, " -- "); got != len(ring) {
		t.Fatalf("%d edges, want %d (a cycle)", got, len(ring))
	}
	// External hops are highlighted; a ring through 4 cubes has 4 of them.
	if got := strings.Count(out, "crimson"); got != 4 {
		t.Fatalf("%d external hops highlighted, want 4", got)
	}
	if err := RingDOT(g, ring[:2], &buf); err == nil {
		t.Fatal("short ring accepted")
	}
}
