// Package viz renders hierarchical hypercube structures as Graphviz DOT:
// whole (small) topologies clustered by son-cube, and containers with one
// color per disjoint path. The output is plain DOT text, so no external
// dependency is needed to produce it — pipe it to `dot -Tsvg` to draw.
package viz

import (
	"fmt"
	"io"

	"repro/internal/hhc"
)

// palette cycles through visually distinct Graphviz color names for paths.
var palette = []string{
	"crimson", "royalblue", "forestgreen", "darkorange",
	"purple", "teal", "goldenrod", "deeppink",
}

// nodeID formats a DOT-safe node identifier.
func nodeID(u hhc.Node) string { return fmt.Sprintf("\"x%X_y%d\"", u.X, u.Y) }

// nodeLabel formats the human-readable label.
func nodeLabel(g *hhc.Graph, u hhc.Node) string { return g.FormatNode(u) }

// TopologyDOT writes the whole network as DOT, one cluster per son-cube.
// Practical for m <= 2 (64 nodes); larger networks are rejected.
func TopologyDOT(g *hhc.Graph, w io.Writer) error {
	if g.M() > 2 {
		return fmt.Errorf("viz: topology rendering supports m <= 2, have %d", g.M())
	}
	n, _ := g.NumNodes()
	if _, err := fmt.Fprintf(w, "graph hhc%d {\n  layout=neato;\n  node [shape=circle fontsize=9];\n", g.N()); err != nil {
		return err
	}
	// Clusters per son-cube.
	for x := uint64(0); x < 1<<uint(g.T()); x++ {
		fmt.Fprintf(w, "  subgraph cluster_x%X {\n    label=\"S_%X\";\n", x, x)
		for y := 0; y < g.T(); y++ {
			u := hhc.Node{X: x, Y: uint8(y)}
			fmt.Fprintf(w, "    %s [label=\"%s\"];\n", nodeID(u), nodeLabel(g, u))
		}
		fmt.Fprintf(w, "  }\n")
	}
	// Undirected edges, emitted once per pair.
	for id := uint64(0); id < n; id++ {
		u := g.NodeFromID(id)
		for _, v := range g.Neighbors(u, nil) {
			if g.ID(v) > id {
				style := ""
				if u.X != v.X {
					style = " [style=bold color=gray40]"
				}
				fmt.Fprintf(w, "  %s -- %s%s;\n", nodeID(u), nodeID(v), style)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// ContainerDOT writes a container as DOT: the union of the given paths,
// one color per path, endpoints doubled.
func ContainerDOT(g *hhc.Graph, u, v hhc.Node, paths [][]hhc.Node, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("viz: no paths")
	}
	if _, err := fmt.Fprintf(w, "graph container {\n  rankdir=LR;\n  node [shape=box fontsize=9];\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %s [label=\"%s\" peripheries=2 style=filled fillcolor=lightyellow];\n",
		nodeID(u), nodeLabel(g, u))
	fmt.Fprintf(w, "  %s [label=\"%s\" peripheries=2 style=filled fillcolor=lightyellow];\n",
		nodeID(v), nodeLabel(g, v))
	emitted := map[hhc.Node]bool{u: true, v: true}
	for pi, p := range paths {
		color := palette[pi%len(palette)]
		for _, node := range p {
			if !emitted[node] {
				emitted[node] = true
				fmt.Fprintf(w, "  %s [label=\"%s\" color=%s];\n", nodeID(node), nodeLabel(g, node), color)
			}
		}
		for i := 1; i < len(p); i++ {
			fmt.Fprintf(w, "  %s -- %s [color=%s penwidth=2];\n", nodeID(p[i-1]), nodeID(p[i]), color)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// RingDOT writes an embedded ring as a cycle of colored edges.
func RingDOT(g *hhc.Graph, ring []hhc.Node, w io.Writer) error {
	if len(ring) < 3 {
		return fmt.Errorf("viz: ring too short (%d)", len(ring))
	}
	if _, err := fmt.Fprintf(w, "graph ring {\n  layout=circo;\n  node [shape=point];\n"); err != nil {
		return err
	}
	for i, node := range ring {
		next := ring[(i+1)%len(ring)]
		color := "royalblue"
		if node.X != next.X {
			color = "crimson" // external hop
		}
		fmt.Fprintf(w, "  %s -- %s [color=%s];\n", nodeID(node), nodeID(next), color)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
