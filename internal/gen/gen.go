// Package gen produces deterministic, seeded workloads for the experiment
// harness and the randomized test suites: node pairs with controlled
// structure (uniform, same son-cube, antipodal, fixed super-distance) and
// fault sets.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/hhc"
)

// Pair is a source/destination workload item.
type Pair struct {
	U, V hhc.Node
}

// PairKind selects the structure of generated pairs.
type PairKind int

const (
	// Uniform draws both endpoints uniformly (conditioned on u != v).
	Uniform PairKind = iota
	// SameCube draws endpoints within one son-cube (exercises the
	// construction's intra-cube case).
	SameCube
	// Antipodal pairs complement both coordinates — the worst case for
	// super-distance and a classic adversarial workload.
	Antipodal
	// CrossCube guarantees different son-cubes.
	CrossCube
)

// String names the kind.
func (k PairKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case SameCube:
		return "same-cube"
	case Antipodal:
		return "antipodal"
	case CrossCube:
		return "cross-cube"
	default:
		return fmt.Sprintf("PairKind(%d)", int(k))
	}
}

// Pairs generates n pairs of the given kind using a private PRNG seeded with
// seed, so workloads are reproducible across runs and platforms.
func Pairs(g *hhc.Graph, n int, kind PairKind, seed int64) []Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, n)
	xmask := ^uint64(0)
	if g.T() < 64 {
		xmask = 1<<uint(g.T()) - 1
	}
	for len(out) < n {
		u := g.RandomNode(r)
		var v hhc.Node
		switch kind {
		case SameCube:
			v = hhc.Node{X: u.X, Y: uint8(r.Intn(g.T()))}
		case Antipodal:
			v = hhc.Node{X: ^u.X & xmask, Y: u.Y ^ uint8(g.T()-1)}
		case CrossCube:
			v = g.RandomNode(r)
			if v.X == u.X {
				v.X ^= 1 << uint(r.Intn(g.T()))
			}
		default:
			v = g.RandomNode(r)
		}
		if u == v {
			continue
		}
		out = append(out, Pair{U: u, V: v})
	}
	return out
}

// PairsAtSuperDistance generates pairs whose son-cube addresses differ in
// exactly d dimensions (0 <= d <= 2^m); processor addresses are uniform.
// Used by the path-length-profile experiment.
func PairsAtSuperDistance(g *hhc.Graph, n, d int, seed int64) ([]Pair, error) {
	if d < 0 || d > g.T() {
		return nil, fmt.Errorf("gen: super distance %d out of range [0,%d]", d, g.T())
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, n)
	for len(out) < n {
		u := g.RandomNode(r)
		// Flip exactly d random X dimensions.
		perm := r.Perm(g.T())[:d]
		x := u.X
		for _, i := range perm {
			x ^= 1 << uint(i)
		}
		v := hhc.Node{X: x, Y: uint8(r.Intn(g.T()))}
		if u == v {
			continue
		}
		out = append(out, Pair{U: u, V: v})
	}
	return out, nil
}

// FaultSet draws count distinct faulty nodes, never touching any node in
// protect (typically the endpoints of the pair under test).
func FaultSet(g *hhc.Graph, count int, protect []hhc.Node, seed int64) map[hhc.Node]bool {
	r := rand.New(rand.NewSource(seed))
	prot := make(map[hhc.Node]bool, len(protect))
	for _, p := range protect {
		prot[p] = true
	}
	faults := make(map[hhc.Node]bool, count)
	for len(faults) < count {
		f := g.RandomNode(r)
		if !prot[f] && !faults[f] {
			faults[f] = true
		}
	}
	return faults
}

// ClusteredFaultSet draws count distinct faulty nodes concentrated around a
// random seed node: faults grow outward through random neighbors, modeling
// spatially correlated failures (a dead board / region) — a much harsher
// test of path diversity than uniform faults, since a fault cluster can
// locally saturate the container. Protected nodes are skipped.
func ClusteredFaultSet(g *hhc.Graph, count int, protect []hhc.Node, seed int64) map[hhc.Node]bool {
	r := rand.New(rand.NewSource(seed))
	prot := make(map[hhc.Node]bool, len(protect))
	for _, p := range protect {
		prot[p] = true
	}
	faults := make(map[hhc.Node]bool, count)
	var frontier []hhc.Node
	var buf []hhc.Node
	for len(faults) < count {
		if len(frontier) == 0 {
			c := g.RandomNode(r)
			if prot[c] || faults[c] {
				continue
			}
			faults[c] = true
			frontier = append(frontier, c)
			continue
		}
		// Expand from a random frontier node.
		fi := r.Intn(len(frontier))
		buf = g.Neighbors(frontier[fi], buf[:0])
		w := buf[r.Intn(len(buf))]
		if !prot[w] && !faults[w] {
			faults[w] = true
			frontier = append(frontier, w)
		} else if r.Intn(4) == 0 {
			// Occasionally retire a frontier node so saturated clusters
			// cannot stall the loop.
			frontier[fi] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
	}
	return faults
}
