package gen

import (
	"testing"

	"repro/internal/hhc"
	"repro/internal/hypercube"
)

func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPairsValidAndDistinct(t *testing.T) {
	g := mustGraph(t, 3)
	for _, kind := range []PairKind{Uniform, SameCube, Antipodal, CrossCube} {
		pairs := Pairs(g, 200, kind, 42)
		if len(pairs) != 200 {
			t.Fatalf("%v: %d pairs", kind, len(pairs))
		}
		for _, p := range pairs {
			if !g.Contains(p.U) || !g.Contains(p.V) {
				t.Fatalf("%v: invalid node in %v", kind, p)
			}
			if p.U == p.V {
				t.Fatalf("%v: identical endpoints %v", kind, p)
			}
		}
	}
}

func TestPairsKinds(t *testing.T) {
	g := mustGraph(t, 3)
	for _, p := range Pairs(g, 100, SameCube, 1) {
		if p.U.X != p.V.X {
			t.Fatalf("same-cube pair crosses cubes: %v", p)
		}
	}
	for _, p := range Pairs(g, 100, CrossCube, 2) {
		if p.U.X == p.V.X {
			t.Fatalf("cross-cube pair shares cube: %v", p)
		}
	}
	for _, p := range Pairs(g, 100, Antipodal, 3) {
		if hypercube.Hamming(p.U.X, p.V.X) != g.T() {
			t.Fatalf("antipodal pair not antipodal in X: %v", p)
		}
		if p.U.Y^p.V.Y != uint8(g.T()-1) {
			t.Fatalf("antipodal pair not antipodal in Y: %v", p)
		}
	}
}

func TestPairsDeterministic(t *testing.T) {
	g := mustGraph(t, 2)
	a := Pairs(g, 50, Uniform, 7)
	b := Pairs(g, 50, Uniform, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Pairs(g, 50, Uniform, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestPairsAtSuperDistance(t *testing.T) {
	g := mustGraph(t, 3)
	for d := 0; d <= g.T(); d++ {
		pairs, err := PairsAtSuperDistance(g, 50, d, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			if got := hypercube.Hamming(p.U.X, p.V.X); got != d {
				t.Fatalf("d=%d: pair at super distance %d", d, got)
			}
		}
	}
	if _, err := PairsAtSuperDistance(g, 1, -1, 0); err == nil {
		t.Fatal("negative distance: want error")
	}
	if _, err := PairsAtSuperDistance(g, 1, g.T()+1, 0); err == nil {
		t.Fatal("excess distance: want error")
	}
}

func TestFaultSet(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 0, Y: 0}, hhc.Node{X: 15, Y: 3}
	faults := FaultSet(g, 10, []hhc.Node{u, v}, 5)
	if len(faults) != 10 {
		t.Fatalf("%d faults, want 10", len(faults))
	}
	if faults[u] || faults[v] {
		t.Fatal("protected node faulted")
	}
	for f := range faults {
		if !g.Contains(f) {
			t.Fatalf("invalid fault %v", f)
		}
	}
}

func TestClusteredFaultSet(t *testing.T) {
	g := mustGraph(t, 3)
	u, v := hhc.Node{X: 0, Y: 0}, hhc.Node{X: 255, Y: 7}
	faults := ClusteredFaultSet(g, 12, []hhc.Node{u, v}, 5)
	if len(faults) != 12 {
		t.Fatalf("%d faults, want 12", len(faults))
	}
	if faults[u] || faults[v] {
		t.Fatal("protected node faulted")
	}
	// Clustering: most faults should be adjacent to another fault.
	adjacentPairs := 0
	for f := range faults {
		for _, w := range g.Neighbors(f, nil) {
			if faults[w] {
				adjacentPairs++
				break
			}
		}
	}
	if adjacentPairs < len(faults)/2 {
		t.Fatalf("only %d of %d faults touch another fault — not clustered", adjacentPairs, len(faults))
	}
	// Determinism.
	again := ClusteredFaultSet(g, 12, []hhc.Node{u, v}, 5)
	for f := range faults {
		if !again[f] {
			t.Fatal("same seed gave a different cluster")
		}
	}
}

// TestClusteredFaultSetSaturation: asking for more faults than one cluster
// can hold (a whole protected ring around it) must still terminate by
// seeding new clusters.
func TestClusteredFaultSetSaturation(t *testing.T) {
	g := mustGraph(t, 2) // 64 nodes
	faults := ClusteredFaultSet(g, 40, nil, 9)
	if len(faults) != 40 {
		t.Fatalf("%d faults, want 40", len(faults))
	}
}
