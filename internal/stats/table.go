package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders a fixed-width plain-text table, the
// output format of every experiment in this repository (one Table per paper
// table/figure series).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is formatted with %v, floats with %.3g
// via Cell helpers when needed.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cells (for programmatic inspection in tests).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, width[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// pad right-pads s to width n.
func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table with
// the title as a bold caption line.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as RFC-4180 CSV: a comment-style title row is
// omitted; the header row carries the column names.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
