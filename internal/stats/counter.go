package stats

import (
	"fmt"
	"sync/atomic"
)

// Counter is a lock-free monotonic event counter, safe for concurrent use.
// The zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// CacheCounters groups the standard metrics of a memoizing cache. All
// fields are updated atomically and may be read while the cache is serving.
type CacheCounters struct {
	Hits          Counter // lookups answered from a stored entry
	Misses        Counter // lookups that ran the underlying construction
	Evictions     Counter // entries displaced by capacity pressure
	InflightWaits Counter // lookups coalesced onto an in-flight construction
}

// Snapshot captures the counters plus the current entry count.
func (c *CacheCounters) Snapshot(size int64) CacheSnapshot {
	return CacheSnapshot{
		Hits:          c.Hits.Load(),
		Misses:        c.Misses.Load(),
		Evictions:     c.Evictions.Load(),
		InflightWaits: c.InflightWaits.Load(),
		Size:          size,
	}
}

// CacheSnapshot is a point-in-time reading of CacheCounters. Lookups
// serviced by piggybacking on an in-flight construction count as
// InflightWaits, not as hits or misses.
type CacheSnapshot struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	InflightWaits int64
	Size          int64
}

// Lookups returns the total number of serviced lookups.
func (s CacheSnapshot) Lookups() int64 {
	return s.Hits + s.Misses + s.InflightWaits
}

// HitRate returns the fraction of lookups that avoided a construction
// (hits plus in-flight coalescing), or 0 for an idle cache.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Lookups()
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.InflightWaits) / float64(total)
}

// String renders the snapshot on one line for CLI reports.
func (s CacheSnapshot) String() string {
	return fmt.Sprintf("hits=%d misses=%d inflight-waits=%d evictions=%d size=%d hit-rate=%.1f%%",
		s.Hits, s.Misses, s.InflightWaits, s.Evictions, s.Size, 100*s.HitRate())
}
