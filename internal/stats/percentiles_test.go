package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestPercentilesNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	got := Percentiles(xs, 5, 30, 40, 50, 100)
	// Nearest rank: ceil(p/100 * 5) -> ranks 1, 2, 2, 3, 5.
	want := []float64{15, 20, 20, 35, 50}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Percentiles = %v, want %v", got, want)
	}
}

func TestPercentilesEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Percentiles(xs, 0, -5, 100, 150)
	if want := []float64{1, 1, 3, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("edge percentiles = %v, want %v", got, want)
	}
	if got := Percentiles(nil, 50, 99); !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Errorf("empty sample = %v, want zeros", got)
	}
	// Input must not be mutated (sorted copy).
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Errorf("input mutated: %v", xs)
	}
}

// TestWeightedMatchesExpanded: weighted percentiles must agree with the
// plain implementation on the expanded sample, for any percentile.
func TestWeightedMatchesExpanded(t *testing.T) {
	values := []float64{10, 1, 5}
	weights := []int64{3, 2, 4}
	var expanded []float64
	for i, v := range values {
		for k := int64(0); k < weights[i]; k++ {
			expanded = append(expanded, v)
		}
	}
	ps := []float64{1, 10, 25, 50, 75, 90, 99, 100}
	got := WeightedPercentiles(values, weights, ps...)
	want := Percentiles(expanded, ps...)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("weighted %v != expanded %v", got, want)
	}
}

func TestWeightedPercentilesZeroWeights(t *testing.T) {
	got := WeightedPercentiles([]float64{1, 2, 3}, []int64{0, 5, 0}, 50, 100)
	if want := []float64{2, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("zero-weight values leaked in: %v, want %v", got, want)
	}
	if got := WeightedPercentiles([]float64{1}, []int64{0}, 50); got[0] != 0 {
		t.Errorf("all-zero weights = %v, want 0", got)
	}
}

func TestWeightedPercentilesInfinity(t *testing.T) {
	// The obs histogram overflow bucket reports +Inf; the tail percentile
	// must surface it rather than a finite bound.
	got := WeightedPercentiles([]float64{1, math.Inf(1)}, []int64{99, 1}, 50, 100)
	if got[0] != 1 || !math.IsInf(got[1], 1) {
		t.Errorf("got %v, want [1 +Inf]", got)
	}
}

func TestWeightedPercentilesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WeightedPercentiles([]float64{1, 2}, []int64{1}, 50)
}

// TestPercentileDelegation: the original int API is now a veneer over
// Percentiles and must keep its nearest-rank behavior.
func TestPercentileDelegation(t *testing.T) {
	xs := []int{9, 1, 5, 3, 7}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) = %d, want 5", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("Percentile(100) = %d, want 9", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %d, want 0", got)
	}
}
