// Package stats provides the small aggregation and fixed-width table
// rendering layer used by the experiment harness: summaries (min/mean/max/
// stddev/percentiles), integer histograms, and plain-text tables that print
// the same rows the paper's evaluation section reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of integers.
type Summary struct {
	Count int
	Min   int
	Max   int
	Mean  float64
	Std   float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sample
// using nearest-rank; the sample is copied, not mutated.
func Percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// SummarizeFloats aggregates a float sample.
type FloatSummary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Std   float64
}

// SummarizeFloats computes a FloatSummary.
func SummarizeFloats(xs []float64) FloatSummary {
	if len(xs) == 0 {
		return FloatSummary{}
	}
	s := FloatSummary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Histogram counts occurrences per value.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		h[x]++
	}
	return h
}

// HistogramString renders a histogram as "value:count value:count …" in
// ascending value order, for compact logging.
func HistogramString(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", k, h[k])
	}
	return out
}
