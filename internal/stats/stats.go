// Package stats provides the small aggregation and fixed-width table
// rendering layer used by the experiment harness: summaries (min/mean/max/
// stddev/percentiles), integer histograms, and plain-text tables that print
// the same rows the paper's evaluation section reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample of integers.
type Summary struct {
	Count int
	Min   int
	Max   int
	Mean  float64
	Std   float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sample
// using nearest-rank; the sample is copied, not mutated.
func Percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return int(Percentiles(fs, p)[0])
}

// Percentiles returns the requested percentiles (0 <= p <= 100) of the
// sample by nearest rank, one result per requested p. The sample is
// copied, not mutated. An empty sample yields zeros. This is the single
// percentile implementation of the repository: Summary tables, the netsim
// latency report, and obs histogram snapshots all route through it.
func Percentiles(xs []float64, ps ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(ps))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	weights := make([]int64, len(sorted))
	for i := range weights {
		weights[i] = 1
	}
	return weightedFromSorted(sorted, weights, ps)
}

// WeightedPercentiles returns nearest-rank percentiles over a weighted
// sample: values[i] occurs weights[i] times. This is how fixed-bucket
// histograms (internal/obs) estimate percentiles — each bucket's upper
// bound weighted by its count. Values need not be sorted; zero-weight
// values are ignored. values and weights must have equal length.
func WeightedPercentiles(values []float64, weights []int64, ps ...float64) []float64 {
	if len(values) != len(weights) {
		panic("stats: WeightedPercentiles: len(values) != len(weights)")
	}
	type vw struct {
		v float64
		w int64
	}
	pairs := make([]vw, 0, len(values))
	for i, v := range values {
		if weights[i] > 0 {
			pairs = append(pairs, vw{v, weights[i]})
		}
	}
	if len(pairs) == 0 {
		return make([]float64, len(ps))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	vs := make([]float64, len(pairs))
	ws := make([]int64, len(pairs))
	for i, p := range pairs {
		vs[i], ws[i] = p.v, p.w
	}
	return weightedFromSorted(vs, ws, ps)
}

// weightedFromSorted resolves nearest-rank percentiles over values sorted
// ascending with positive weights: the p-th percentile is the first value
// whose cumulative weight reaches ceil(p/100 × total).
func weightedFromSorted(values []float64, weights []int64, ps []float64) []float64 {
	var total int64
	for _, w := range weights {
		total += w
	}
	out := make([]float64, len(ps))
	for k, p := range ps {
		switch {
		case p <= 0:
			out[k] = values[0]
			continue
		case p >= 100:
			out[k] = values[len(values)-1]
			continue
		}
		rank := int64(math.Ceil(p / 100 * float64(total)))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i, w := range weights {
			cum += w
			if cum >= rank {
				out[k] = values[i]
				break
			}
		}
	}
	return out
}

// SummarizeFloats aggregates a float sample.
type FloatSummary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Std   float64
}

// SummarizeFloats computes a FloatSummary.
func SummarizeFloats(xs []float64) FloatSummary {
	if len(xs) == 0 {
		return FloatSummary{}
	}
	s := FloatSummary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	return s
}

// Histogram counts occurrences per value.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		h[x]++
	}
	return h
}

// HistogramString renders a histogram as "value:count value:count …" in
// ascending value order, for compact logging.
func HistogramString(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", k, h[k])
	}
	return out
}
