package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-9 {
		t.Fatalf("mean %f, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Fatalf("std %f, want 2", s.Std)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestSummarizeProperties(t *testing.T) {
	prop := func(xs []int16) bool {
		ints := make([]int, len(xs))
		for i, x := range xs {
			ints[i] = int(x)
		}
		s := Summarize(ints)
		if len(ints) == 0 {
			return s.Count == 0
		}
		if s.Min > s.Max || float64(s.Min) > s.Mean || s.Mean > float64(s.Max) {
			return false
		}
		return s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int{5, 1, 9, 3, 7}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := Percentile(xs, 100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %d", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestSummarizeFloats(t *testing.T) {
	s := SummarizeFloats([]float64{1, 2, 3})
	if s.Count != 3 || s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-9 {
		t.Fatalf("%+v", s)
	}
	if z := SummarizeFloats(nil); z.Count != 0 {
		t.Fatalf("%+v", z)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{1, 1, 2, 5, 5, 5})
	if h[1] != 2 || h[2] != 1 || h[5] != 3 {
		t.Fatalf("%v", h)
	}
	if s := HistogramString(h); s != "1:2 2:1 5:3" {
		t.Fatalf("%q", s)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("T1: demo", "m", "nodes", "value")
	tab.AddRow(1, 8, 3.14159)
	tab.AddRow(2, 64, "n/a")
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T1: demo", "m", "nodes", "value", "3.142", "n/a", "64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	rows := tab.Rows()
	if rows[0][2] != "3.142" {
		t.Fatalf("float formatting: %q", rows[0][2])
	}
	// Rows() must be a copy.
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] == "mutated" {
		t.Fatal("Rows leaked internal state")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := NewTable("caption", "a", "b|c")
	tab.AddRow("x|y", 2)
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**caption**") {
		t.Fatalf("caption missing:\n%s", out)
	}
	if !strings.Contains(out, `b\|c`) || !strings.Contains(out, `x\|y`) {
		t.Fatalf("pipes not escaped:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("separator missing:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("ignored title", "a", "b")
	tab.AddRow(1, "x,with,commas")
	tab.AddRow(2.5, `quote"inside`)
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], `"x,with,commas"`) {
		t.Fatalf("comma cell not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"quote""inside"`) {
		t.Fatalf("quote cell not escaped: %q", lines[2])
	}
}
