package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1005 {
		t.Fatalf("count = %d, want %d", got, 8*1005)
	}
}

func TestCacheSnapshot(t *testing.T) {
	var cc CacheCounters
	cc.Hits.Add(90)
	cc.Misses.Add(8)
	cc.InflightWaits.Add(2)
	cc.Evictions.Add(3)
	s := cc.Snapshot(7)
	if s.Lookups() != 100 {
		t.Fatalf("lookups = %d, want 100", s.Lookups())
	}
	if got := s.HitRate(); got != 0.92 {
		t.Fatalf("hit rate = %v, want 0.92", got)
	}
	if s.Size != 7 || s.Evictions != 3 {
		t.Fatalf("snapshot fields wrong: %+v", s)
	}
	str := s.String()
	for _, want := range []string{"hits=90", "misses=8", "inflight-waits=2", "evictions=3", "size=7", "92.0%"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestCacheSnapshotIdle(t *testing.T) {
	var cc CacheCounters
	if got := cc.Snapshot(0).HitRate(); got != 0 {
		t.Fatalf("idle hit rate = %v, want 0", got)
	}
}
