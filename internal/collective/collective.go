// Package collective implements collective communication on the
// hierarchical hypercube: spanning broadcast trees derived from the
// distributed dimension-ordered routing function, with exact minimum-round
// scheduling under the classical one-port and all-port models.
//
// The tree needs no global state: each node's parent is simply its
// dimension-ordered next hop toward the root, so any node can determine its
// tree position in O(1) — the property that makes the schedule deployable
// on real routers. The package materializes the tree (for networks small
// enough to enumerate) to validate it and to compute optimal round counts.
package collective

import (
	"fmt"
	"sort"

	"repro/internal/hhc"
)

// Parent returns w's parent in the broadcast tree rooted at root: its
// dimension-ordered next hop toward root. Parent(root) is root itself.
func Parent(g *hhc.Graph, w, root hhc.Node) (hhc.Node, error) {
	return g.NextHopDimOrder(w, root)
}

// Tree is a materialized broadcast tree.
type Tree struct {
	Root     hhc.Node
	Children map[hhc.Node][]hhc.Node
	Depth    int
	Size     int
}

// MaxTreeM bounds tree materialization (2^20 nodes at m = 4).
const MaxTreeM = 4

// BuildTree enumerates the spanning tree rooted at root. Only m <= MaxTreeM.
func BuildTree(g *hhc.Graph, root hhc.Node) (*Tree, error) {
	if g.M() > MaxTreeM {
		return nil, fmt.Errorf("collective: cannot materialize tree for m=%d (> %d)", g.M(), MaxTreeM)
	}
	if !g.Contains(root) {
		return nil, fmt.Errorf("collective: invalid root %s", g.FormatNode(root))
	}
	n, _ := g.NumNodes()
	t := &Tree{Root: root, Children: make(map[hhc.Node][]hhc.Node), Size: int(n)}
	depth := make(map[hhc.Node]int, n)
	depth[root] = 0
	// depthOf resolves a node's depth by walking parents, memoizing along
	// the way. The walk is guaranteed to terminate by the routing progress
	// measure.
	var depthOf func(w hhc.Node) (int, error)
	depthOf = func(w hhc.Node) (int, error) {
		if d, ok := depth[w]; ok {
			return d, nil
		}
		p, err := Parent(g, w, root)
		if err != nil {
			return 0, err
		}
		if p == w {
			return 0, fmt.Errorf("collective: non-root fixpoint at %s", g.FormatNode(w))
		}
		pd, err := depthOf(p)
		if err != nil {
			return 0, err
		}
		depth[w] = pd + 1
		return pd + 1, nil
	}
	for id := uint64(0); id < n; id++ {
		w := g.NodeFromID(id)
		d, err := depthOf(w)
		if err != nil {
			return nil, err
		}
		if d > t.Depth {
			t.Depth = d
		}
		if w != root {
			p, err := Parent(g, w, root)
			if err != nil {
				return nil, err
			}
			t.Children[p] = append(t.Children[p], w)
		}
	}
	return t, nil
}

// Validate checks the spanning-tree invariants: every tree edge is a real
// network edge, every node except the root has exactly one parent, and the
// tree reaches all 2^n nodes.
func (t *Tree) Validate(g *hhc.Graph) error {
	n, ok := g.NumNodes()
	if !ok {
		return fmt.Errorf("collective: network too large to validate")
	}
	seen := map[hhc.Node]bool{t.Root: true}
	queue := []hhc.Node{t.Root}
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[v] {
			if !g.Adjacent(v, c) {
				return fmt.Errorf("collective: tree edge %s-%s is not a network edge", g.FormatNode(v), g.FormatNode(c))
			}
			if seen[c] {
				return fmt.Errorf("collective: node %s reached twice", g.FormatNode(c))
			}
			seen[c] = true
			count++
			queue = append(queue, c)
		}
	}
	if uint64(count) != n {
		return fmt.Errorf("collective: tree reaches %d of %d nodes", count, n)
	}
	return nil
}

// AllPortRounds is the broadcast time when an informed node may send to all
// its tree children simultaneously: the tree depth.
func (t *Tree) AllPortRounds() int { return t.Depth }

// OnePortRounds computes the exact minimum number of rounds to broadcast
// over this tree when each informed node can inform at most one neighbor
// per round. The classical linear-time tree DP applies: a node's broadcast
// time is max_i (i + b(c_i)) with children sorted by b descending — serving
// slow subtrees first is optimal (exchange argument).
func (t *Tree) OnePortRounds() int {
	memo := make(map[hhc.Node]int, t.Size)
	var b func(v hhc.Node) int
	b = func(v hhc.Node) int {
		if r, ok := memo[v]; ok {
			return r
		}
		kids := t.Children[v]
		times := make([]int, len(kids))
		for i, c := range kids {
			times[i] = b(c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(times)))
		best := 0
		for i, bt := range times {
			if r := i + 1 + bt; r > best {
				best = r
			}
		}
		memo[v] = best
		return best
	}
	return b(t.Root)
}

// MaxChildren returns the maximum fan-out in the tree (bounded by the
// network degree m+1).
func (t *Tree) MaxChildren() int {
	best := 0
	for _, kids := range t.Children {
		if len(kids) > best {
			best = len(kids)
		}
	}
	return best
}

// ReduceRounds returns the minimum one-port rounds to combine a value from
// every node into the root over this tree: by time-reversal symmetry of the
// one-port model, exactly the broadcast time.
func (t *Tree) ReduceRounds() int { return t.OnePortRounds() }

// AllReduceRounds returns the rounds for reduce-then-broadcast over the
// tree, the straightforward (2× broadcast) allreduce schedule.
func (t *Tree) AllReduceRounds() int { return 2 * t.OnePortRounds() }

// GatherHops returns the total link traversals of a gather (every node's
// value forwarded to the root along tree edges, counted per hop): the sum
// of all node depths. It measures traffic, not rounds.
func (t *Tree) GatherHops() int64 {
	var total int64
	var walk func(v hhc.Node, depth int64)
	walk = func(v hhc.Node, depth int64) {
		total += depth
		for _, c := range t.Children[v] {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return total
}

// Levels groups the nodes by tree depth: Levels()[d] lists the nodes
// informed at round d under the all-port model.
func (t *Tree) Levels() [][]hhc.Node {
	levels := [][]hhc.Node{{t.Root}}
	frontier := []hhc.Node{t.Root}
	for len(frontier) > 0 {
		var next []hhc.Node
		for _, v := range frontier {
			next = append(next, t.Children[v]...)
		}
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
		frontier = next
	}
	return levels
}
