package collective_test

import (
	"fmt"
	"log"

	"repro/internal/collective"
	"repro/internal/hhc"
)

// ExampleBuildTree analyzes broadcast from a root: tree depth is the
// all-port round count, and the exact one-port optimum comes from the
// classical tree DP.
func ExampleBuildTree() {
	g, err := hhc.New(2)
	if err != nil {
		log.Fatal(err)
	}
	root := hhc.Node{X: 0, Y: 0}
	tree, err := collective.BuildTree(g, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spans:", tree.Validate(g) == nil)
	fmt.Println("nodes:", tree.Size)
	fmt.Println("all-port rounds:", tree.AllPortRounds())
	fmt.Println("one-port rounds:", tree.OnePortRounds())
	// Output:
	// spans: true
	// nodes: 64
	// all-port rounds: 12
	// one-port rounds: 12
}

// ExampleParent is O(1) and needs no global state — it works on networks
// far too large to materialize.
func ExampleParent() {
	g, err := hhc.New(6) // 2^70 nodes
	if err != nil {
		log.Fatal(err)
	}
	root := hhc.Node{X: 0, Y: 0}
	w := hhc.Node{X: 1 << 40, Y: 13}
	p, err := collective.Parent(g, w, root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adjacent:", g.Adjacent(w, p))
	// Output:
	// adjacent: true
}
