package collective

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hhc"
)

func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTreeSpansEveryRootM2 builds and validates the broadcast tree from
// every possible root of HHC_6.
func TestTreeSpansEveryRootM2(t *testing.T) {
	g := mustGraph(t, 2)
	n, _ := g.NumNodes()
	for id := uint64(0); id < n; id++ {
		root := g.NodeFromID(id)
		tree, err := BuildTree(g, root)
		if err != nil {
			t.Fatalf("BuildTree(root=%v): %v", root, err)
		}
		if err := tree.Validate(g); err != nil {
			t.Fatalf("root %v: %v", root, err)
		}
		if tree.Size != int(n) {
			t.Fatalf("root %v: size %d", root, tree.Size)
		}
	}
}

// TestTreeM3 checks a handful of roots on the 2048-node network and the
// schedule quality invariants:
//
//	ceil(log2 N) <= one-port rounds, depth <= one-port rounds <= depth·(m+1)
func TestTreeM3(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(6))
	n, _ := g.NumNodes()
	lower := int(math.Ceil(math.Log2(float64(n))))
	for trial := 0; trial < 5; trial++ {
		root := g.RandomNode(r)
		tree, err := BuildTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(g); err != nil {
			t.Fatal(err)
		}
		one := tree.OnePortRounds()
		if one < lower {
			t.Fatalf("one-port %d below information lower bound %d", one, lower)
		}
		if one < tree.Depth {
			t.Fatalf("one-port %d below depth %d", one, tree.Depth)
		}
		if one > tree.Depth*(g.Degree()) {
			t.Fatalf("one-port %d implausibly large vs depth %d", one, tree.Depth)
		}
		if tree.AllPortRounds() != tree.Depth {
			t.Fatal("all-port rounds must equal depth")
		}
		if mc := tree.MaxChildren(); mc > g.Degree() {
			t.Fatalf("fan-out %d exceeds degree %d", mc, g.Degree())
		}
	}
}

// TestLevelsPartition: levels form a partition of all nodes with the root
// alone at level 0 and sizes summing to N.
func TestLevelsPartition(t *testing.T) {
	g := mustGraph(t, 2)
	root := hhc.Node{X: 5, Y: 1}
	tree, err := BuildTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	levels := tree.Levels()
	if len(levels[0]) != 1 || levels[0][0] != root {
		t.Fatalf("level 0 = %v", levels[0])
	}
	if len(levels)-1 != tree.Depth {
		t.Fatalf("levels %d vs depth %d", len(levels)-1, tree.Depth)
	}
	seen := map[hhc.Node]bool{}
	total := 0
	for _, level := range levels {
		for _, v := range level {
			if seen[v] {
				t.Fatalf("node %v in two levels", v)
			}
			seen[v] = true
			total++
		}
	}
	n, _ := g.NumNodes()
	if total != int(n) {
		t.Fatalf("levels cover %d of %d nodes", total, n)
	}
}

// TestParentIsO1AtHugeM: the distributed parent function works on the
// 2^70-node network even though the tree cannot be materialized.
func TestParentIsO1AtHugeM(t *testing.T) {
	g := mustGraph(t, 6)
	r := rand.New(rand.NewSource(2))
	root := g.RandomNode(r)
	for i := 0; i < 200; i++ {
		w := g.RandomNode(r)
		p, err := Parent(g, w, root)
		if err != nil {
			t.Fatal(err)
		}
		if w == root {
			if p != root {
				t.Fatal("root's parent must be itself")
			}
			continue
		}
		if w != root && !g.Adjacent(w, p) {
			t.Fatalf("parent %v not adjacent to %v", p, w)
		}
	}
	if _, err := BuildTree(g, root); err == nil {
		t.Fatal("BuildTree at m=6 should refuse")
	}
}

// TestCollectiveWrappers checks the reduce/allreduce/gather identities.
func TestCollectiveWrappers(t *testing.T) {
	g := mustGraph(t, 2)
	tree, err := BuildTree(g, hhc.Node{X: 9, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.ReduceRounds() != tree.OnePortRounds() {
		t.Fatal("reduce != broadcast rounds")
	}
	if tree.AllReduceRounds() != 2*tree.OnePortRounds() {
		t.Fatal("allreduce != 2x broadcast rounds")
	}
	// Gather hops = sum of depths = sum over levels of level×|level|.
	var want int64
	for d, level := range tree.Levels() {
		want += int64(d) * int64(len(level))
	}
	if got := tree.GatherHops(); got != want {
		t.Fatalf("gather hops %d, want %d", got, want)
	}
	if tree.GatherHops() < int64(tree.Size-1) {
		t.Fatal("gather must traverse at least one hop per non-root node")
	}
}

func TestBuildTreeRejectsInvalidRoot(t *testing.T) {
	g := mustGraph(t, 2)
	if _, err := BuildTree(g, hhc.Node{X: 0, Y: 9}); err == nil {
		t.Fatal("invalid root accepted")
	}
}

// TestOnePortRoundsKnownTree pins the DP on a hand-built tree: a root with
// two children, one of which has a chain of two below it. Optimal: serve
// the slow child first => 3 rounds.
func TestOnePortRoundsKnownTree(t *testing.T) {
	g := mustGraph(t, 2)
	root := hhc.Node{X: 0, Y: 0}
	a := g.LocalNeighbor(root, 0) // (0,1)
	b := g.LocalNeighbor(root, 1) // (0,2)
	c := g.LocalNeighbor(a, 1)    // (0,3)
	d := g.ExternalNeighbor(c)    // (8,3)
	tree := &Tree{
		Root: root,
		Children: map[hhc.Node][]hhc.Node{
			root: {a, b},
			a:    {c},
			c:    {d},
		},
		Depth: 3,
		Size:  5,
	}
	// b(c)=1+b(d)=1... b(d)=0, b(c)=1, b(a)=2, b(root)=max(1+2, 2+... with
	// children sorted by time desc: a(2) then b(0): max(1+2, 2+0)=3.
	if got := tree.OnePortRounds(); got != 3 {
		t.Fatalf("one-port rounds = %d, want 3", got)
	}
	if tree.AllPortRounds() != 3 {
		t.Fatalf("all-port = depth = 3")
	}
}
