package core

import (
	"fmt"

	"repro/internal/hhc"
)

// Adaptive fault routing with local information only. RouteAround assumes
// the source knows every fault up front; a real router discovers faults
// only when a neighbor stops answering. AdaptiveRoute models that regime:
// it walks the dimension-ordered next-hop function and, when the preferred
// hop is faulty (or already visited, to avoid livelock), deflects to the
// best alternative neighbor — ranked by how much closer it brings the
// packet — up to a hop budget.
//
// Unlike the container-based policies this is a heuristic: with more than
// m faults or unlucky deflections it can fail, and experiment E6's
// container numbers are the guaranteed baseline it is compared against.

// AdaptiveResult reports an adaptive routing attempt.
type AdaptiveResult struct {
	Path       []hhc.Node
	Deflection int  // hops taken off the preferred next-hop
	Delivered  bool // false when the TTL expired or the router got stuck
}

// AdaptiveRoute walks from u toward v, querying isFaulty only for nodes it
// is about to step on (local discovery). ttl <= 0 selects 4× the
// dimension-ordered length bound.
func AdaptiveRoute(g *hhc.Graph, u, v hhc.Node, isFaulty func(hhc.Node) bool, ttl int) (AdaptiveResult, error) {
	if !g.Contains(u) || !g.Contains(v) {
		return AdaptiveResult{}, fmt.Errorf("core: invalid endpoint %s / %s", g.FormatNode(u), g.FormatNode(v))
	}
	if isFaulty == nil {
		isFaulty = func(hhc.Node) bool { return false }
	}
	if isFaulty(u) {
		return AdaptiveResult{}, fmt.Errorf("core: source %s is faulty", g.FormatNode(u))
	}
	if isFaulty(v) {
		return AdaptiveResult{}, fmt.Errorf("core: destination %s is faulty", g.FormatNode(v))
	}
	if ttl <= 0 {
		ttl = 4 * g.DimOrderLengthBound()
	}
	res := AdaptiveResult{Path: []hhc.Node{u}}
	visited := map[hhc.Node]bool{u: true}
	cur := u
	var buf []hhc.Node
	for cur != v && len(res.Path)-1 < ttl {
		preferred, err := g.NextHopDimOrder(cur, v)
		if err != nil {
			return AdaptiveResult{}, err
		}
		next := preferred
		if isFaulty(next) || visited[next] {
			// Deflect: among non-faulty, unvisited neighbors pick the one
			// with the smallest remaining distance estimate.
			next = hhc.Node{}
			found := false
			bestScore := 0
			buf = g.Neighbors(cur, buf[:0])
			for _, w := range buf {
				if isFaulty(w) || visited[w] {
					continue
				}
				d, _, err := g.Distance(w, v)
				if err != nil {
					return AdaptiveResult{}, err
				}
				if !found || d < bestScore {
					found, bestScore, next = true, d, w
				}
			}
			if !found {
				return res, nil // stuck: every way forward is faulty or visited
			}
			res.Deflection++
		}
		visited[next] = true
		res.Path = append(res.Path, next)
		cur = next
	}
	res.Delivered = cur == v
	return res, nil
}
