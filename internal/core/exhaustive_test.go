package core

import (
	"os"
	"runtime"
	"sync"
	"testing"
)

// TestDisjointPathsExhaustiveM3Full verifies the container theorem on EVERY
// ordered pair of HHC_11 — 2048 × 2047 ≈ 4.2 million constructions. It
// takes about a minute, so it only runs when explicitly requested:
//
//	HHC_EXHAUSTIVE=1 go test -run ExhaustiveM3Full ./internal/core
func TestDisjointPathsExhaustiveM3Full(t *testing.T) {
	if os.Getenv("HHC_EXHAUSTIVE") == "" {
		t.Skip("set HHC_EXHAUSTIVE=1 to run the 4.2M-pair sweep")
	}
	g := mustGraph(t, 3)
	n, _ := g.NumNodes()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := uint64(w); i < n; i += uint64(workers) {
				u := g.NodeFromID(i)
				for j := uint64(0); j < n; j++ {
					if i == j {
						continue
					}
					v := g.NodeFromID(j)
					paths, err := DisjointPaths(g, u, v)
					if err != nil {
						errCh <- err
						return
					}
					if err := VerifyContainer(g, u, v, paths); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
