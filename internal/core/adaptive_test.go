package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/hhc"
)

func TestAdaptiveRouteNoFaults(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		res, err := AdaptiveRoute(g, u, v, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("fault-free adaptive route failed %v->%v", u, v)
		}
		if res.Deflection != 0 {
			t.Fatalf("fault-free route deflected %d times", res.Deflection)
		}
		if err := g.VerifyPath(u, v, res.Path); err != nil {
			t.Fatal(err)
		}
		// Without faults the walk IS the dimension-ordered route.
		dim, err := g.RouteDimOrder(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(dim) != len(res.Path) {
			t.Fatalf("adaptive (%d) != dim-order (%d) without faults", len(res.Path), len(dim))
		}
	}
}

func TestAdaptiveRouteUnderFaults(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(15))
	delivered := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u == v {
			continue
		}
		faults := gen.FaultSet(g, 10, []hhc.Node{u, v}, int64(trial))
		res, err := AdaptiveRoute(g, u, v, func(w hhc.Node) bool { return faults[w] }, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
			if err := g.VerifyPath(u, v, res.Path); err != nil {
				t.Fatal(err)
			}
			for _, w := range res.Path {
				if faults[w] {
					t.Fatalf("delivered path crosses fault %v", w)
				}
			}
		}
	}
	// The heuristic has no guarantee, but on a 2048-node network with 10
	// random faults it should deliver the overwhelming majority.
	if delivered < trials*9/10 {
		t.Fatalf("adaptive routing delivered only %d/%d under 10 faults", delivered, trials)
	}
}

func TestAdaptiveRouteSelf(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 3, Y: 1}
	res, err := AdaptiveRoute(g, u, u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || len(res.Path) != 1 {
		t.Fatalf("self route: %+v", res)
	}
}

func TestAdaptiveRouteErrors(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 1, Y: 0}, hhc.Node{X: 2, Y: 1}
	if _, err := AdaptiveRoute(g, hhc.Node{X: 99, Y: 0}, v, nil, 0); err == nil {
		t.Error("invalid source accepted")
	}
	bad := func(w hhc.Node) bool { return w == u }
	if _, err := AdaptiveRoute(g, u, v, bad, 0); err == nil {
		t.Error("faulty source accepted")
	}
	badDst := func(w hhc.Node) bool { return w == v }
	if _, err := AdaptiveRoute(g, u, v, badDst, 0); err == nil {
		t.Error("faulty destination accepted")
	}
}

// TestAdaptiveRouteSurrounded: when every neighbor of the source is faulty
// the router must report non-delivery gracefully, not loop.
func TestAdaptiveRouteSurrounded(t *testing.T) {
	g := mustGraph(t, 2)
	u, v := hhc.Node{X: 0, Y: 0}, hhc.Node{X: 15, Y: 3}
	wall := map[hhc.Node]bool{}
	for _, w := range g.Neighbors(u, nil) {
		wall[w] = true
	}
	res, err := AdaptiveRoute(g, u, v, func(w hhc.Node) bool { return wall[w] }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("delivered through a sealed source!?")
	}
	if len(res.Path) != 1 {
		t.Fatalf("stuck router should not have moved: %v", res.Path)
	}
}

// TestAdaptiveRouteTTL: a tiny TTL forces non-delivery on distant pairs.
func TestAdaptiveRouteTTL(t *testing.T) {
	g := mustGraph(t, 3)
	u := hhc.Node{X: 0, Y: 0}
	v := hhc.Node{X: 0xFF, Y: 7}
	res, err := AdaptiveRoute(g, u, v, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("TTL 2 cannot reach an antipodal-ish pair")
	}
	if len(res.Path)-1 > 2 {
		t.Fatalf("TTL exceeded: %d hops", len(res.Path)-1)
	}
}
