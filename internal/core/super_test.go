package core

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/hypercube"
)

// checkSelection asserts the port-discipline invariants selectSupers must
// guarantee for realize() to work:
//
//  1. exactly `count` sequences;
//  2. every sequence is a valid super-path from a to a^mask (XOR of dims
//     equals mask, prefix vertices distinct);
//  3. pairwise internally disjoint in Q_t;
//  4. pairwise distinct first dims and pairwise distinct last dims;
//  5. exactly one first dim == aDim and exactly one last dim == bDim.
func checkSelection(t *testing.T, tDim, count int, mask uint64, order []int, aDim, bDim int, seqs [][]int) {
	t.Helper()
	if len(seqs) != count {
		t.Fatalf("got %d sequences, want %d", len(seqs), count)
	}
	paths := make([][]uint64, len(seqs))
	firsts := map[int]int{}
	lasts := map[int]int{}
	for i, seq := range seqs {
		var xor uint64
		for _, d := range seq {
			if d < 0 || d >= tDim {
				t.Fatalf("seq %d: dim %d out of range", i, d)
			}
			xor ^= 1 << uint(d)
		}
		if xor != mask {
			t.Fatalf("seq %d does not connect a to b: xor %#x, want %#x", i, xor, mask)
		}
		firsts[seq[0]]++
		lasts[seq[len(seq)-1]]++
		paths[i] = hypercube.ApplyDims(0, seq) // disjointness is translation-invariant
	}
	if err := hypercube.VerifyDisjoint(tDim, 0, mask, paths); err != nil {
		t.Fatalf("super-paths not disjoint: %v", err)
	}
	for d, c := range firsts {
		if c > 1 {
			t.Fatalf("first dim %d used %d times", d, c)
		}
	}
	for d, c := range lasts {
		if c > 1 {
			t.Fatalf("last dim %d used %d times", d, c)
		}
	}
	if firsts[aDim] != 1 {
		t.Fatalf("first dim aDim=%d used %d times, want exactly 1", aDim, firsts[aDim])
	}
	if lasts[bDim] != 1 {
		t.Fatalf("last dim bDim=%d used %d times, want exactly 1", bDim, lasts[bDim])
	}
}

// TestSelectSupersExhaustiveSmall sweeps every mask and every (aDim, bDim)
// combination for t = 4 and t = 8 (m = 2, 3).
func TestSelectSupersExhaustiveSmall(t *testing.T) {
	for _, cfg := range []struct{ tDim, count int }{{4, 3}, {8, 4}} {
		for mask := uint64(1); mask < 1<<uint(cfg.tDim); mask++ {
			order := hypercube.Dims(mask)
			for aDim := 0; aDim < cfg.tDim; aDim++ {
				for bDim := 0; bDim < cfg.tDim; bDim++ {
					seqs, err := selectSupers(cfg.tDim, cfg.count, mask, order, aDim, bDim, nil)
					if err != nil {
						t.Fatalf("t=%d mask=%#x a=%d b=%d: %v", cfg.tDim, mask, aDim, bDim, err)
					}
					checkSelection(t, cfg.tDim, cfg.count, mask, order, aDim, bDim, seqs)
				}
			}
		}
	}
}

// TestSelectSupersRandomLarge samples the t = 16..64 regimes with random
// masks, endpoints, and shuffled cyclic orders.
func TestSelectSupersRandomLarge(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, cfg := range []struct{ tDim, count int }{{16, 5}, {32, 6}, {64, 7}} {
		limit := uint64(1)<<uint(cfg.tDim) - 1
		if cfg.tDim == 64 {
			limit = ^uint64(0)
		}
		for trial := 0; trial < 400; trial++ {
			mask := r.Uint64() & limit
			if mask == 0 {
				continue
			}
			order := hypercube.Dims(mask)
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			aDim := r.Intn(cfg.tDim)
			bDim := r.Intn(cfg.tDim)
			// Random detour preference permutation.
			pref := r.Perm(cfg.tDim)
			seqs, err := selectSupers(cfg.tDim, cfg.count, mask, order, aDim, bDim, pref)
			if err != nil {
				t.Fatalf("t=%d mask=%#x: %v", cfg.tDim, mask, err)
			}
			checkSelection(t, cfg.tDim, cfg.count, mask, order, aDim, bDim, seqs)
		}
	}
}

// TestSelectSupersRotationPreference: when |D| >= count, all selected
// sequences must be rotations (length |D|), never detours.
func TestSelectSupersRotationPreference(t *testing.T) {
	mask := uint64(0b11111) // d = 5 >= count = 4
	order := hypercube.Dims(mask)
	seqs, err := selectSupers(8, 4, mask, order, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		if len(seq) != bits.OnesCount64(mask) {
			t.Fatalf("seq %d has length %d, want rotation length %d", i, len(seq), bits.OnesCount64(mask))
		}
	}
}

// TestSelectSupersEmptyMask rejects d = 0.
func TestSelectSupersEmptyMask(t *testing.T) {
	if _, err := selectSupers(8, 4, 0, nil, 0, 0, nil); err == nil {
		t.Fatal("empty dimension set accepted")
	}
}

// TestCyclicOrderStrategies: every strategy emits a permutation of the
// differing dims.
func TestCyclicOrderStrategies(t *testing.T) {
	mask := uint64(0b1011010)
	want := hypercube.Dims(mask)
	for _, s := range []OrderStrategy{OrderAscending, OrderGray, OrderNearest} {
		got := cyclicOrder(mask, 3, s)
		if len(got) != len(want) {
			t.Fatalf("%v: %d dims", s, len(got))
		}
		seen := map[int]bool{}
		for _, d := range got {
			if seen[d] || mask>>uint(d)&1 == 0 {
				t.Fatalf("%v: bad order %v", s, got)
			}
			seen[d] = true
		}
	}
	if OrderAscending.String() != "ascending" || OrderGray.String() != "gray" ||
		OrderNearest.String() != "nearest" {
		t.Fatal("strategy names wrong")
	}
	if OrderStrategy(42).String() == "" {
		t.Fatal("unknown strategy should format")
	}
}

// TestDetourPreferencePermutation: both strategies emit permutations of
// 0..t-1, and DetourNearest ranks endpoint-close labels first.
func TestDetourPreferencePermutation(t *testing.T) {
	for _, s := range []DetourStrategy{DetourAscending, DetourNearest} {
		pref := detourPreference(16, 5, 9, s, 0)
		if len(pref) != 16 {
			t.Fatalf("%v: %d entries", s, len(pref))
		}
		seen := map[int]bool{}
		for _, d := range pref {
			if d < 0 || d >= 16 || seen[d] {
				t.Fatalf("%v: not a permutation: %v", s, pref)
			}
			seen[d] = true
		}
	}
	pref := detourPreference(16, 5, 5, DetourNearest, 0)
	if pref[0] != 5 {
		t.Fatalf("nearest preference should rank the endpoint label first, got %v", pref[:4])
	}
}
