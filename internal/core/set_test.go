package core

import (
	"math/rand"
	"testing"

	"repro/internal/hhc"
)

func TestSetContainerBasic(t *testing.T) {
	g := mustGraph(t, 3)
	u := hhc.Node{X: 0x00, Y: 0}
	targets := []hhc.Node{
		{X: 0xFF, Y: 7},
		{X: 0x0F, Y: 3},
		{X: 0xA5, Y: 1},
		{X: 0x01, Y: 0},
	}
	paths, err := DisjointPathsToSet(g, u, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySetContainer(g, u, targets, paths); err != nil {
		t.Fatal(err)
	}
}

func TestSetContainerRandom(t *testing.T) {
	for _, m := range []int{2, 3} {
		g := mustGraph(t, m)
		r := rand.New(rand.NewSource(int64(m * 3)))
		for trial := 0; trial < 40; trial++ {
			u := g.RandomNode(r)
			k := 1 + r.Intn(g.Degree())
			seen := map[hhc.Node]bool{u: true}
			targets := make([]hhc.Node, 0, k)
			for len(targets) < k {
				v := g.RandomNode(r)
				if !seen[v] {
					seen[v] = true
					targets = append(targets, v)
				}
			}
			paths, err := DisjointPathsToSet(g, u, targets)
			if err != nil {
				t.Fatalf("m=%d k=%d: %v", m, k, err)
			}
			if err := VerifySetContainer(g, u, targets, paths); err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
		}
	}
}

func TestSetContainerErrors(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 0, Y: 0}
	a := hhc.Node{X: 5, Y: 1}
	if _, err := DisjointPathsToSet(g, u, nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := DisjointPathsToSet(g, u, []hhc.Node{a, a}); err == nil {
		t.Error("duplicate target accepted")
	}
	if _, err := DisjointPathsToSet(g, u, []hhc.Node{u}); err == nil {
		t.Error("target == source accepted")
	}
	if _, err := DisjointPathsToSet(g, u, []hhc.Node{{X: 99, Y: 0}}); err == nil {
		t.Error("invalid target accepted")
	}
	too := []hhc.Node{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0}}
	if _, err := DisjointPathsToSet(g, u, too); err == nil {
		t.Error("width overflow accepted (m+1 = 3)")
	}
	// Too-large network.
	g5 := mustGraph(t, 5)
	if _, err := DisjointPathsToSet(g5, hhc.Node{}, []hhc.Node{{X: 1, Y: 0}}); err == nil {
		t.Error("m=5 should refuse (not enumerable)")
	}
}

func TestSetContainerWidth(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 0, Y: 0}
	targets := []hhc.Node{{X: 9, Y: 2}, {X: 6, Y: 1}, {X: 12, Y: 3}}
	w, err := SetContainerWidth(g, u, targets)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Fatalf("width %d, want 3 (HHC_6 is 3-connected)", w)
	}
}

func TestVerifySetContainerRejections(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 0, Y: 0}
	targets := []hhc.Node{{X: 3, Y: 1}, {X: 12, Y: 2}}
	paths, err := DisjointPathsToSet(g, u, targets)
	if err != nil {
		t.Fatal(err)
	}
	// Cardinality mismatch.
	if err := VerifySetContainer(g, u, targets, paths[:1]); err == nil {
		t.Error("short family accepted")
	}
	// Swap endpoints: path i no longer ends at targets[i].
	swapped := [][]hhc.Node{paths[1], paths[0]}
	if err := VerifySetContainer(g, u, targets, swapped); err == nil {
		t.Error("swapped family accepted")
	}
}
