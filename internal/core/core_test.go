package core

import (
	"math/rand"
	"testing"

	"repro/internal/hhc"
)

// mustGraph returns the HHC handle or fails the test.
func mustGraph(t *testing.T, m int) *hhc.Graph {
	t.Helper()
	g, err := hhc.New(m)
	if err != nil {
		t.Fatalf("hhc.New(%d): %v", m, err)
	}
	return g
}

// allNodes enumerates every node for small m.
func allNodes(g *hhc.Graph) []hhc.Node {
	n, ok := g.NumNodes()
	if !ok {
		panic("allNodes: too many nodes")
	}
	out := make([]hhc.Node, 0, n)
	for id := uint64(0); id < n; id++ {
		out = append(out, g.NodeFromID(id))
	}
	return out
}

// TestDisjointPathsExhaustiveSmall verifies the full container property on
// every ordered node pair of HHC_3 (m=1, 8 nodes) and HHC_6 (m=2, 64 nodes):
// exactly m+1 paths, individually valid, pairwise internally disjoint, and
// within the analytic length bound.
func TestDisjointPathsExhaustiveSmall(t *testing.T) {
	for _, m := range []int{1, 2} {
		g := mustGraph(t, m)
		nodes := allNodes(g)
		for _, u := range nodes {
			for _, v := range nodes {
				if u == v {
					continue
				}
				paths, err := DisjointPaths(g, u, v)
				if err != nil {
					t.Fatalf("m=%d DisjointPaths(%v,%v): %v", m, u, v, err)
				}
				if err := VerifyContainer(g, u, v, paths); err != nil {
					t.Fatalf("m=%d container %v->%v: %v", m, u, v, err)
				}
				if max, bound := MaxLength(paths), MaxLenBound(g, u, v); max > bound {
					t.Fatalf("m=%d %v->%v: max length %d exceeds bound %d", m, u, v, max, bound)
				}
			}
		}
	}
}

// TestDisjointPathsExhaustiveM3 covers every pair with a fixed source plus a
// random sample of full pairs on HHC_11 (m=3, 2048 nodes).
func TestDisjointPathsExhaustiveM3(t *testing.T) {
	g := mustGraph(t, 3)
	nodes := allNodes(g)
	u := hhc.Node{X: 0, Y: 0}
	for _, v := range nodes {
		if v == u {
			continue
		}
		paths, err := DisjointPaths(g, u, v)
		if err != nil {
			t.Fatalf("DisjointPaths(%v,%v): %v", u, v, err)
		}
		if err := VerifyContainer(g, u, v, paths); err != nil {
			t.Fatalf("container %v->%v: %v", u, v, err)
		}
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		a, b := g.RandomNode(r), g.RandomNode(r)
		if a == b {
			continue
		}
		paths, err := DisjointPaths(g, a, b)
		if err != nil {
			t.Fatalf("DisjointPaths(%v,%v): %v", a, b, err)
		}
		if err := VerifyContainer(g, a, b, paths); err != nil {
			t.Fatalf("container %v->%v: %v", a, b, err)
		}
	}
}

// TestDisjointPathsRandomLargeM samples pairs on m = 4, 5, 6 — networks with
// 2^20, 2^37 and 2^70 nodes — exercising the construction's independence
// from network size.
func TestDisjointPathsRandomLargeM(t *testing.T) {
	for _, tc := range []struct{ m, pairs int }{{4, 2000}, {5, 800}, {6, 300}} {
		g := mustGraph(t, tc.m)
		r := rand.New(rand.NewSource(int64(100 + tc.m)))
		for i := 0; i < tc.pairs; i++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v {
				continue
			}
			paths, err := DisjointPaths(g, u, v)
			if err != nil {
				t.Fatalf("m=%d DisjointPaths(%v,%v): %v", tc.m, u, v, err)
			}
			if err := VerifyContainer(g, u, v, paths); err != nil {
				t.Fatalf("m=%d container %v->%v: %v", tc.m, u, v, err)
			}
			if max, bound := MaxLength(paths), MaxLenBound(g, u, v); max > bound {
				t.Fatalf("m=%d %v->%v: max length %d exceeds bound %d", tc.m, u, v, max, bound)
			}
		}
	}
}

// TestDisjointPathsAllStrategies checks every order strategy yields a valid
// container.
func TestDisjointPathsAllStrategies(t *testing.T) {
	g := mustGraph(t, 3)
	r := rand.New(rand.NewSource(7))
	for _, s := range []OrderStrategy{OrderAscending, OrderGray, OrderNearest} {
		for i := 0; i < 500; i++ {
			u, v := g.RandomNode(r), g.RandomNode(r)
			if u == v {
				continue
			}
			paths, err := DisjointPathsOpt(g, u, v, Options{Order: s})
			if err != nil {
				t.Fatalf("strategy %v: %v", s, err)
			}
			if err := VerifyContainer(g, u, v, paths); err != nil {
				t.Fatalf("strategy %v %v->%v: %v", s, u, v, err)
			}
		}
	}
}

// TestSameNode rejects u == v.
func TestSameNode(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 5, Y: 1}
	if _, err := DisjointPaths(g, u, u); err != ErrSameNode {
		t.Fatalf("want ErrSameNode, got %v", err)
	}
}

// TestAdjacentPairs: adjacent nodes must still get a full container, one of
// whose paths is the direct edge.
func TestAdjacentPairs(t *testing.T) {
	g := mustGraph(t, 2)
	nodes := allNodes(g)
	for _, u := range nodes {
		var buf []hhc.Node
		for _, v := range g.Neighbors(u, buf) {
			paths, err := DisjointPaths(g, u, v)
			if err != nil {
				t.Fatalf("DisjointPaths(%v,%v): %v", u, v, err)
			}
			if err := VerifyContainer(g, u, v, paths); err != nil {
				t.Fatalf("container %v->%v: %v", u, v, err)
			}
			direct := false
			for _, p := range paths {
				if len(p) == 2 {
					direct = true
				}
			}
			if !direct {
				t.Fatalf("adjacent %v->%v: no direct edge among container paths", u, v)
			}
		}
	}
}
