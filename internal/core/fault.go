package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hhc"
)

// ErrAllPathsFaulty is returned when every path of the container crosses a
// faulty node. With at most m faults this cannot happen: the m+1 paths are
// internally disjoint, so m faults can block at most m of them.
var ErrAllPathsFaulty = errors.New("core: every disjoint path is blocked by faults")

// RouteAround returns a shortest surviving path of the (m+1)-container
// between u and v that avoids every node in faults. u and v themselves must
// be fault-free. Because the container has width m+1 = the connectivity,
// success is guaranteed whenever |faults| <= m; with more faults it degrades
// gracefully, failing only when all m+1 paths are hit.
func RouteAround(g *hhc.Graph, u, v hhc.Node, faults map[hhc.Node]bool) ([]hhc.Node, error) {
	if faults[u] {
		return nil, fmt.Errorf("core: source %s is faulty", g.FormatNode(u))
	}
	if faults[v] {
		return nil, fmt.Errorf("core: destination %s is faulty", g.FormatNode(v))
	}
	paths, err := DisjointPaths(g, u, v)
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) < len(paths[j]) })
	for _, p := range paths {
		if !pathHitsFault(p, faults) {
			return p, nil
		}
	}
	return nil, ErrAllPathsFaulty
}

// SurvivingPaths filters a container down to the paths avoiding all faults.
func SurvivingPaths(paths [][]hhc.Node, faults map[hhc.Node]bool) [][]hhc.Node {
	var out [][]hhc.Node
	for _, p := range paths {
		if !pathHitsFault(p, faults) {
			out = append(out, p)
		}
	}
	return out
}

func pathHitsFault(p []hhc.Node, faults map[hhc.Node]bool) bool {
	for _, w := range p[1 : len(p)-1] {
		if faults[w] {
			return true
		}
	}
	return false
}
