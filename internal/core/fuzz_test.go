package core

import (
	"testing"

	"repro/internal/hhc"
)

// FuzzDisjointPaths drives the construction with arbitrary addresses and
// verifies every successful family — the strongest single invariant in the
// repository. Run long with:
//
//	go test -fuzz=FuzzDisjointPaths ./internal/core
func FuzzDisjointPaths(f *testing.F) {
	f.Add(uint8(2), uint64(0), uint8(0), uint64(15), uint8(3), uint8(0), uint8(0))
	f.Add(uint8(3), uint64(0x13), uint8(2), uint64(0xE4), uint8(6), uint8(1), uint8(1))
	f.Add(uint8(4), uint64(0xFFFF), uint8(15), uint64(0), uint8(0), uint8(2), uint8(0))
	f.Add(uint8(6), uint64(1)<<63, uint8(63), uint64(7), uint8(9), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, mRaw uint8, x1 uint64, y1 uint8, x2 uint64, y2 uint8, order, detour uint8) {
		m := int(mRaw%6) + 1
		g, err := hhc.New(m)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if g.T() < 64 {
			mask = 1<<uint(g.T()) - 1
		}
		u := hhc.Node{X: x1 & mask, Y: y1 & uint8(g.T()-1)}
		v := hhc.Node{X: x2 & mask, Y: y2 & uint8(g.T()-1)}
		opt := Options{
			Order:  OrderStrategy(order % 3),
			Detour: DetourStrategy(detour % 2),
		}
		paths, err := DisjointPathsOpt(g, u, v, opt)
		if u == v {
			if err == nil {
				t.Fatal("same-node pair accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("construction failed for valid pair %v->%v: %v", u, v, err)
		}
		if err := VerifyContainer(g, u, v, paths); err != nil {
			t.Fatalf("invalid container for %v->%v (m=%d, %v): %v", u, v, m, opt, err)
		}
		if MaxLength(paths) > MaxLenBound(g, u, v) {
			t.Fatalf("length bound violated for %v->%v", u, v)
		}
	})
}

// FuzzRouteAgainstBound checks the router on arbitrary pairs: valid path,
// consistent Distance, never above the diameter bound.
func FuzzRouteAgainstBound(f *testing.F) {
	f.Add(uint8(3), uint64(5), uint8(1), uint64(250), uint8(7))
	f.Add(uint8(5), uint64(1)<<31, uint8(30), uint64(0), uint8(2))
	f.Fuzz(func(t *testing.T, mRaw uint8, x1 uint64, y1 uint8, x2 uint64, y2 uint8) {
		m := int(mRaw%6) + 1
		g, err := hhc.New(m)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if g.T() < 64 {
			mask = 1<<uint(g.T()) - 1
		}
		u := hhc.Node{X: x1 & mask, Y: y1 & uint8(g.T()-1)}
		v := hhc.Node{X: x2 & mask, Y: y2 & uint8(g.T()-1)}
		p, err := g.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.VerifyPath(u, v, p); err != nil {
			t.Fatal(err)
		}
		d, _, err := g.Distance(u, v)
		if err != nil || d != len(p)-1 {
			t.Fatalf("Distance %d vs route %d (%v)", d, len(p)-1, err)
		}
		if len(p)-1 > g.DiameterUpperBound() {
			t.Fatalf("route length %d above diameter bound %d", len(p)-1, g.DiameterUpperBound())
		}
	})
}
