package core

import (
	"fmt"

	"repro/internal/hhc"
	"repro/internal/hypercube"
)

// realize lifts the selected super-paths into concrete node-disjoint paths.
//
// Every super-path with first dimension j ≠ dec(α) exits the source son-cube
// at processor j; a fan inside S_a connects α to all those exits without
// collisions. Symmetrically a fan inside S_b gathers the entry processors
// into β. The pass-through son-cubes of different super-paths are disjoint,
// so inside them a plain greedy walk needs no coordination.
func realize(g *hhc.Graph, u, v hhc.Node, seqs [][]int) ([][]hhc.Node, error) {
	m := g.M()
	alpha, beta := uint64(u.Y), uint64(v.Y)

	// Fan targets preserve the order of seqs so paths can look them up.
	exitFor := make([]int, len(seqs))  // index into fanA, or -1 for direct exit
	entryFor := make([]int, len(seqs)) // index into fanB, or -1 for direct entry
	var exitTargets, entryTargets []uint64
	for i, seq := range seqs {
		first, last := uint64(seq[0]), uint64(seq[len(seq)-1])
		if first == alpha {
			exitFor[i] = -1
		} else {
			exitFor[i] = len(exitTargets)
			exitTargets = append(exitTargets, first)
		}
		if last == beta {
			entryFor[i] = -1
		} else {
			entryFor[i] = len(entryTargets)
			entryTargets = append(entryTargets, last)
		}
	}
	fanA, err := hypercube.Fan(m, alpha, exitTargets)
	if err != nil {
		return nil, fmt.Errorf("core: source fan: %w", err)
	}
	fanB, err := hypercube.Fan(m, beta, entryTargets)
	if err != nil {
		return nil, fmt.Errorf("core: destination fan: %w", err)
	}

	paths := make([][]hhc.Node, len(seqs))
	for i, seq := range seqs {
		path := []hhc.Node{u}
		x, y := u.X, alpha
		if fi := exitFor[i]; fi >= 0 {
			for _, w := range fanA[fi][1:] {
				path = append(path, hhc.Node{X: x, Y: uint8(w)})
			}
			y = exitTargets[fi]
		}
		for k, dim := range seq {
			if k == 0 {
				if y != uint64(dim) {
					return nil, fmt.Errorf("core: internal: exit %d != first dim %d", y, dim)
				}
			} else {
				for _, w := range hypercube.BitFixPath(y, uint64(dim))[1:] {
					path = append(path, hhc.Node{X: x, Y: uint8(w)})
				}
				y = uint64(dim)
			}
			x ^= 1 << uint(dim)
			path = append(path, hhc.Node{X: x, Y: uint8(y)})
		}
		if x != v.X {
			return nil, fmt.Errorf("core: internal: super-path %d lands in cube %#x, want %#x", i, x, v.X)
		}
		if fi := entryFor[i]; fi >= 0 {
			fb := fanB[fi] // β … entry; traverse backwards from entry to β
			if y != fb[len(fb)-1] {
				return nil, fmt.Errorf("core: internal: entry mismatch on path %d", i)
			}
			for k := len(fb) - 2; k >= 0; k-- {
				path = append(path, hhc.Node{X: x, Y: uint8(fb[k])})
			}
		}
		if got := path[len(path)-1]; got != v {
			return nil, fmt.Errorf("core: internal: path %d ends at %s, want %s", i, g.FormatNode(got), g.FormatNode(v))
		}
		paths[i] = path
	}
	return paths, nil
}
