package core

import (
	"math/rand"
	"testing"

	"repro/internal/hhc"
)

func randomPairs(g *hhc.Graph, n int, seed int64) []Pair {
	r := rand.New(rand.NewSource(seed))
	pairs := make([]Pair, 0, n)
	for len(pairs) < n {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u != v {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	}
	return pairs
}

func TestBatchMatchesSequential(t *testing.T) {
	g := mustGraph(t, 3)
	pairs := randomPairs(g, 120, 5)
	results := DisjointPathsBatch(g, pairs, Options{}, 8)
	if len(results) != len(pairs) {
		t.Fatalf("%d results for %d pairs", len(results), len(pairs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Pair != pairs[i] {
			t.Fatalf("item %d misaligned", i)
		}
		// Determinism: concurrent result equals the sequential one.
		seq, err := DisjointPaths(g, pairs[i].U, pairs[i].V)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(r.Paths) {
			t.Fatalf("item %d: widths differ", i)
		}
		for pi := range seq {
			if len(seq[pi]) != len(r.Paths[pi]) {
				t.Fatalf("item %d path %d: lengths differ", i, pi)
			}
			for k := range seq[pi] {
				if seq[pi][k] != r.Paths[pi][k] {
					t.Fatalf("item %d path %d: node %d differs", i, pi, k)
				}
			}
		}
	}
	if err := BatchVerify(g, results); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCollectsPerPairErrors(t *testing.T) {
	g := mustGraph(t, 2)
	u := hhc.Node{X: 1, Y: 1}
	pairs := []Pair{
		{U: u, V: hhc.Node{X: 2, Y: 0}},
		{U: u, V: u},                     // same-node error
		{U: hhc.Node{X: 99, Y: 0}, V: u}, // invalid node error
	}
	results := DisjointPathsBatch(g, pairs, Options{}, 2)
	if results[0].Err != nil {
		t.Fatalf("good pair failed: %v", results[0].Err)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatal("bad pairs did not record errors")
	}
	if err := BatchVerify(g, results); err != nil {
		t.Fatalf("BatchVerify must skip errored items: %v", err)
	}
}

func TestBatchEdgeCases(t *testing.T) {
	g := mustGraph(t, 2)
	if got := DisjointPathsBatch(g, nil, Options{}, 4); len(got) != 0 {
		t.Fatal("empty batch should return empty results")
	}
	// workers > len(pairs) and workers <= 0 both fine.
	pairs := randomPairs(g, 3, 9)
	for _, workers := range []int{-1, 0, 1, 64} {
		results := DisjointPathsBatch(g, pairs, Options{}, workers)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, r.Err)
			}
		}
	}
}

func TestDisjointPathsK(t *testing.T) {
	g := mustGraph(t, 3)
	u, v := hhc.Node{X: 0x00, Y: 0}, hhc.Node{X: 0x9c, Y: 5}
	full, err := DisjointPaths(g, u, v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= g.Degree(); k++ {
		paths, err := DisjointPathsK(g, u, v, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(paths) != k {
			t.Fatalf("k=%d: got %d paths", k, len(paths))
		}
		if err := VerifyDisjoint(g, u, v, paths); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Sorted shortest-first, never longer than the full family's max.
		for i := 1; i < len(paths); i++ {
			if len(paths[i]) < len(paths[i-1]) {
				t.Fatalf("k=%d: not sorted by length", k)
			}
		}
		if MaxLength(paths) > MaxLength(full) {
			t.Fatalf("k=%d: longer than the full container", k)
		}
	}
	if _, err := DisjointPathsK(g, u, v, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := DisjointPathsK(g, u, v, g.Degree()+1); err == nil {
		t.Fatal("k > m+1 accepted")
	}
}

func TestDetourStrategies(t *testing.T) {
	g := mustGraph(t, 4)
	pairs := randomPairs(g, 300, 77)
	for _, det := range []DetourStrategy{DetourAscending, DetourNearest} {
		for _, p := range pairs {
			paths, err := DisjointPathsOpt(g, p.U, p.V, Options{Detour: det})
			if err != nil {
				t.Fatalf("%v: %v", det, err)
			}
			if err := VerifyContainer(g, p.U, p.V, paths); err != nil {
				t.Fatalf("%v %v->%v: %v", det, p.U, p.V, err)
			}
		}
	}
	if DetourAscending.String() != "det-ascending" || DetourNearest.String() != "det-nearest" {
		t.Fatal("strategy names wrong")
	}
	if DetourStrategy(9).String() == "" {
		t.Fatal("unknown strategy should format")
	}
}

// TestDetourNearestHelpsSameCubeNeighbors: for pairs with few differing
// super-dimensions (forcing many detours), the nearest strategy must never
// lose to ascending on total length by a large margin, and should usually
// win. We assert the aggregate, not each instance.
func TestDetourNearestAggregateWin(t *testing.T) {
	g := mustGraph(t, 4)
	r := rand.New(rand.NewSource(123))
	totalAsc, totalNear := 0, 0
	for trial := 0; trial < 300; trial++ {
		u := g.RandomNode(r)
		// Single differing super-dimension: the container needs m detours.
		v := hhc.Node{X: u.X ^ (1 << uint(r.Intn(g.T()))), Y: uint8(r.Intn(g.T()))}
		pa, err := DisjointPathsOpt(g, u, v, Options{Detour: DetourAscending})
		if err != nil {
			t.Fatal(err)
		}
		pn, err := DisjointPathsOpt(g, u, v, Options{Detour: DetourNearest})
		if err != nil {
			t.Fatal(err)
		}
		totalAsc += TotalLength(pa)
		totalNear += TotalLength(pn)
	}
	if totalNear > totalAsc {
		t.Fatalf("nearest detours (%d) should not exceed ascending (%d) in aggregate",
			totalNear, totalAsc)
	}
}
