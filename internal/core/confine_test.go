package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hhc"
)

// TestConfineDetoursKeepsMask: with a mask covering enough dimensions, all
// freely-chosen detours stay inside it (the forced external-port detours
// dec(α)/dec(β) are exempt by design).
func TestConfineDetoursKeepsMask(t *testing.T) {
	g := mustGraph(t, 4)
	r := rand.New(rand.NewSource(3))
	mask := uint64(0xFF) // low 8 of 16 dimensions
	checked := 0
	for trial := 0; trial < 400; trial++ {
		// Endpoints inside the "partition": x-high bits equal, ports in
		// the mask so even the forced crossings are confined.
		x := r.Uint64() & 0xFF
		u := hhc.Node{X: x, Y: uint8(r.Intn(8))}
		v := hhc.Node{X: r.Uint64() & 0xFF, Y: uint8(r.Intn(8))}
		if u == v || u.X == v.X {
			continue
		}
		paths, err := DisjointPathsOpt(g, u, v, Options{ConfineDetours: mask})
		if errors.Is(err, ErrCannotConfine) {
			continue // legitimate when the mask runs out of candidates
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyContainer(g, u, v, paths); err != nil {
			t.Fatal(err)
		}
		// Every node of every path stays in the low-8-bit cube region.
		for _, p := range paths {
			for _, w := range p {
				if w.X&^mask != 0 {
					t.Fatalf("node %v escaped the confined region (%v -> %v)", w, u, v)
				}
			}
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d confined containers produced", checked)
	}
}

// TestConfineDetoursErrors: an impossible mask must fail with
// ErrCannotConfine, not silently widen.
func TestConfineDetoursErrors(t *testing.T) {
	g := mustGraph(t, 4)
	u := hhc.Node{X: 0b0001, Y: 0}
	v := hhc.Node{X: 0b0010, Y: 1}
	// d = 2 differing dims; width 5 needs 3 detours, but the mask allows
	// only the two differing dimensions.
	_, err := DisjointPathsOpt(g, u, v, Options{ConfineDetours: 0b0011})
	if !errors.Is(err, ErrCannotConfine) {
		t.Fatalf("want ErrCannotConfine, got %v", err)
	}
	// Zero mask = unrestricted: must succeed.
	if _, err := DisjointPathsOpt(g, u, v, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestConfineDetoursSameAsUnconfinedWhenFull: the full mask changes nothing.
func TestConfineDetoursSameAsUnconfinedWhenFull(t *testing.T) {
	g := mustGraph(t, 3)
	full := uint64(1)<<uint(g.T()) - 1
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		u, v := g.RandomNode(r), g.RandomNode(r)
		if u == v {
			continue
		}
		a, err := DisjointPathsOpt(g, u, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := DisjointPathsOpt(g, u, v, Options{ConfineDetours: full})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("full mask changed the container width")
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatal("full mask changed path lengths")
			}
		}
	}
}
