package core

import (
	"testing"

	"repro/internal/hhc"
	"repro/internal/obs"
)

// withObserver installs a fresh observer for the test and uninstalls it on
// cleanup, so the package-global pointer never leaks across tests.
func withObserver(t *testing.T) (*Observer, *obs.Registry, *obs.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	o := NewObserver(reg, tr)
	SetObserver(o)
	t.Cleanup(func() { SetObserver(nil) })
	return o, reg, tr
}

func TestObserverInstrumentsConstruction(t *testing.T) {
	o, _, tr := withObserver(t)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u := hhc.Node{X: 0x00, Y: 0}
	same := hhc.Node{X: 0x00, Y: 5}  // same son-cube: only Y differs
	cross := hhc.Node{X: 0xff, Y: 3} // different son-cube
	if _, err := DisjointPathsOpt(g, u, same, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := DisjointPathsOpt(g, u, cross, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := o.SameCube.Count(); got != 1 {
		t.Errorf("same-cube histogram count = %d, want 1", got)
	}
	if got := o.CrossCube.Count(); got != 1 {
		t.Errorf("cross-cube histogram count = %d, want 1", got)
	}
	for name, h := range map[string]*obs.Histogram{
		"derive": o.Derive, "select": o.Select, "realize": o.Realize,
	} {
		if h.Count() != 1 {
			t.Errorf("phase %q count = %d, want 1", name, h.Count())
		}
	}
	// The tracer saw one construct span per call plus the cross-cube
	// phase spans.
	names := map[string]int{}
	for _, s := range tr.Spans() {
		names[s.Name]++
	}
	if names["construct"] != 2 || names["derive"] != 1 || names["realize"] != 1 {
		t.Errorf("span names = %v", names)
	}
}

func TestObserverCountsErrors(t *testing.T) {
	o, _, _ := withObserver(t)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u := hhc.Node{X: 0x01, Y: 0}
	v := hhc.Node{X: 0x02, Y: 1}
	// An unsatisfiable confinement: a one-dimension detour mask cannot
	// yield m+1 disjoint super-paths, forcing ErrCannotConfine.
	if _, err := DisjointPathsOpt(g, u, v, Options{ConfineDetours: 1}); err == nil {
		t.Skip("confinement unexpectedly satisfiable; no error to count")
	}
	if got := o.Errors.Load(); got < 1 {
		t.Errorf("error counter = %d, want >= 1", got)
	}
}

func TestObserverInstrumentsVerify(t *testing.T) {
	o, _, _ := withObserver(t)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0x2a, Y: 3}
	paths, err := DisjointPathsOpt(g, u, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDisjoint(g, u, v, paths); err != nil {
		t.Fatal(err)
	}
	if got := o.Verify.Count(); got != 1 {
		t.Errorf("verify histogram count = %d, want 1", got)
	}
}

func TestObserverInstrumentsBatch(t *testing.T) {
	o, _, tr := withObserver(t)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{
		{U: hhc.Node{X: 0x00, Y: 0}, V: hhc.Node{X: 0xff, Y: 3}},
		{U: hhc.Node{X: 0x01, Y: 1}, V: hhc.Node{X: 0x80, Y: 7}},
		{U: hhc.Node{X: 0x10, Y: 2}, V: hhc.Node{X: 0x10, Y: 6}},
	}
	for _, r := range DisjointPathsBatch(g, pairs, Options{}, 2) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := o.BatchItems.Load(); got != int64(len(pairs)) {
		t.Errorf("batch items = %d, want %d", got, len(pairs))
	}
	if got := o.BatchQueueWait.Count(); got != int64(len(pairs)) {
		t.Errorf("queue wait observations = %d, want %d", got, len(pairs))
	}
	if o.BatchBusyNanos.Load() <= 0 {
		t.Error("worker busy time not recorded")
	}
	if got := o.BatchWorkers.Load(); got != 0 {
		t.Errorf("workers gauge = %g after batch, want 0", got)
	}
	found := false
	for _, s := range tr.Spans() {
		if s.Name == "batch" {
			found = true
		}
	}
	if !found {
		t.Error("no batch span recorded")
	}
}

// TestNoObserverPathsUnchanged: with instrumentation uninstalled the
// constructor must behave identically (guards the uninstrumented branch).
func TestNoObserverPathsUnchanged(t *testing.T) {
	SetObserver(nil)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0xff, Y: 3}
	base, err := DisjointPathsOpt(g, u, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, reg, _ := withObserver(t)
	instrumented, err := DisjointPathsOpt(g, u, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(instrumented) {
		t.Fatalf("container width changed under instrumentation: %d vs %d", len(base), len(instrumented))
	}
	for i := range base {
		for j := range base[i] {
			if base[i][j] != instrumented[i][j] {
				t.Fatalf("path %d differs under instrumentation", i)
			}
		}
	}
	if names := reg.SeriesNames(); len(names) == 0 {
		t.Error("observer registered no series")
	}
}

// TestUninstrumentedAllocIdentity pins the zero-cost-when-off contract at
// the allocation level: with no observer installed, DisjointPathsOpt must
// allocate exactly the same before and after an install/uninstall cycle.
// A hook that leaks cost into the disabled path (a closure that escapes, a
// span allocated before the nil check) shows up as a count change here.
func TestUninstrumentedAllocIdentity(t *testing.T) {
	SetObserver(nil)
	g, err := hhc.New(3)
	if err != nil {
		t.Fatal(err)
	}
	u := hhc.Node{X: 0x00, Y: 0}
	v := hhc.Node{X: 0xff, Y: 3} // cross-cube: exercises every phase hook
	construct := func() {
		if _, err := DisjointPathsOpt(g, u, v, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	before := testing.AllocsPerRun(50, construct)

	reg := obs.NewRegistry()
	SetObserver(NewObserver(reg, obs.NewTracer(64)))
	construct() // one instrumented run, then back off
	SetObserver(nil)

	after := testing.AllocsPerRun(50, construct)
	if before != after {
		t.Errorf("uninstrumented allocs/op changed across an observer cycle: %.1f -> %.1f", before, after)
	}
}
